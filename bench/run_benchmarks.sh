#!/usr/bin/env bash
# Runs the hot-path benchmarks and merges their JSON output (plus computed
# batched-vs-baseline speedups) into BENCH_hotpath.json at the repo root.
#
# Usage: FDC_BENCH_BIN_DIR=build bench/run_benchmarks.sh [output.json]
# Also available as the CMake target `bench_hotpath`.
set -euo pipefail

bin_dir="${FDC_BENCH_BIN_DIR:-build}"
out="${1:-BENCH_hotpath.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run() {
  local name="$1"
  echo ">> $name" >&2
  "$bin_dir/$name" \
    --benchmark_out="$tmp/$name.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 >&2
}

run fig_batch_monitor
run fig5_labeler

python3 - "$tmp" "$out" <<'EOF'
import json, sys, os

tmp, out = sys.argv[1], sys.argv[2]
merged = {"benchmarks": {}, "speedups": {}}

for name in ("fig_batch_monitor", "fig5_labeler"):
    with open(os.path.join(tmp, name + ".json")) as f:
        data = json.load(f)
    merged.setdefault("context", data.get("context", {}))
    for bench in data.get("benchmarks", []):
        merged["benchmarks"][bench["name"]] = {
            k: bench[k]
            for k in ("real_time", "cpu_time", "time_unit",
                      "items_per_second", "queries_per_second",
                      "sec_per_1M_queries")
            if k in bench
        }

def rate(name):
    b = merged["benchmarks"].get(name, {})
    return b.get("queries_per_second") or b.get("items_per_second")

# Batched monitor pipeline vs the seed per-query path.
for atoms in (3, 6, 9, 12, 15):
    base = rate(f"BatchMonitor/per_query_baseline/max_atoms/{atoms}")
    batched = rate(f"BatchMonitor/batched/max_atoms/{atoms}")
    if base and batched:
        merged["speedups"][f"batch_monitor_vs_baseline/max_atoms/{atoms}"] = \
            round(batched / base, 2)

# Packed labeler vs the §4.2 baseline (Figure 5 series).
for atoms in (3, 6, 9, 12, 15):
    base = rate(f"Fig5/baseline/max_atoms/{atoms}")
    packed = rate(f"Fig5/bitvectors_and_hashing/max_atoms/{atoms}")
    if base and packed:
        merged["speedups"][f"fig5_packed_vs_baseline/max_atoms/{atoms}"] = \
            round(packed / base, 2)

ratios = [v for k, v in merged["speedups"].items()
          if k.startswith("batch_monitor_vs_baseline")]
merged["min_batch_monitor_speedup"] = min(ratios) if ratios else None

with open(out, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}; min batched speedup = {merged['min_batch_monitor_speedup']}")
EOF
