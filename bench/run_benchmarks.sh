#!/usr/bin/env bash
# Runs the hot-path benchmarks and merges their JSON output (plus computed
# batched-vs-baseline speedups and engine thread-scaling efficiency) into
# BENCH_hotpath.json at the repo root.
#
# Usage: FDC_BENCH_BIN_DIR=build bench/run_benchmarks.sh [output.json]
# Also available as the CMake target `bench_hotpath`.
set -euo pipefail

bin_dir="${FDC_BENCH_BIN_DIR:-build}"
out="${1:-BENCH_hotpath.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

benchmarks=(fig_batch_monitor fig5_labeler fig_engine_scaling fig_matcher
            fig_principal_churn fig_server)

# Run metadata so the bench trajectory across PRs is attributable to a
# commit and a machine shape. Each field may be pre-set by the caller
# (e.g. CI passing its own checkout sha).
repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
detect_sha() {
  local sha
  sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null)" || { echo unknown; return; }
  # Flag uncommitted state so results are never misattributed to a clean sha.
  if [[ -n "$(git -C "$repo_root" status --porcelain 2>/dev/null)" ]]; then
    sha="$sha-dirty"
  fi
  echo "$sha"
}
export FDC_BENCH_GIT_SHA="${FDC_BENCH_GIT_SHA:-$(detect_sha)}"
export FDC_BENCH_CORES="${FDC_BENCH_CORES:-$(nproc 2>/dev/null || echo unknown)}"
export FDC_BENCH_TIMESTAMP="${FDC_BENCH_TIMESTAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Fail up front with a clear message instead of dying mid-merge: every
# benchmark binary must exist and be executable before we run any of them.
missing=()
for name in "${benchmarks[@]}"; do
  [[ -x "$bin_dir/$name" ]] || missing+=("$name")
done
if ((${#missing[@]})); then
  echo "error: missing benchmark binaries in '$bin_dir': ${missing[*]}" >&2
  echo "hint: build them first, e.g." >&2
  echo "  cmake --build build --target ${missing[*]}" >&2
  echo "(or run via: cmake --build build --target bench_hotpath)" >&2
  exit 1
fi

run() {
  local name="$1"
  echo ">> $name" >&2
  "$bin_dir/$name" \
    --benchmark_out="$tmp/$name.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 >&2
}

for name in "${benchmarks[@]}"; do
  run "$name"
done

python3 - "$tmp" "$out" <<'EOF'
import json, sys, os

tmp, out = sys.argv[1], sys.argv[2]
merged = {"benchmarks": {}, "speedups": {}}
merged["run_metadata"] = {
    "git_sha": os.environ.get("FDC_BENCH_GIT_SHA", "unknown"),
    "hardware_cores": os.environ.get("FDC_BENCH_CORES", "unknown"),
    "timestamp_utc": os.environ.get("FDC_BENCH_TIMESTAMP", "unknown"),
}

for name in ("fig_batch_monitor", "fig5_labeler", "fig_engine_scaling",
             "fig_matcher", "fig_principal_churn", "fig_server"):
    with open(os.path.join(tmp, name + ".json")) as f:
        data = json.load(f)
    merged.setdefault("context", data.get("context", {}))
    # Custom context entries (e.g. fig_matcher's simd_isa) live only in the
    # binary that registered them; lift them over the first file's context.
    if "simd_isa" in data.get("context", {}):
        merged["context"]["simd_isa"] = data["context"]["simd_isa"]
    for bench in data.get("benchmarks", []):
        merged["benchmarks"][bench["name"]] = {
            k: bench[k]
            for k in ("real_time", "cpu_time", "time_unit",
                      "items_per_second", "queries_per_second",
                      "masks_per_second", "sec_per_1M_queries",
                      "num_principals", "residual_records", "residual_bytes",
                      "residual_bytes_after_swap", "evictions",
                      "residual_hits", "decisions_per_second",
                      "avg_coalesced_batch", "max_coalesced_batch",
                      "reconnects", "injected_faults",
                      "overlay_reader_locks", "epoch_retires",
                      "p50_us", "p99_us", "p999_us")
            if k in bench
        }

def rate(name):
    b = merged["benchmarks"].get(name, {})
    return b.get("queries_per_second") or b.get("items_per_second")

# Batched monitor pipeline vs the seed per-query path.
for atoms in (3, 6, 9, 12, 15):
    base = rate(f"BatchMonitor/per_query_baseline/max_atoms/{atoms}")
    batched = rate(f"BatchMonitor/batched/max_atoms/{atoms}")
    if base and batched:
        merged["speedups"][f"batch_monitor_vs_baseline/max_atoms/{atoms}"] = \
            round(batched / base, 2)

# Packed labeler vs the §4.2 baseline (Figure 5 series).
for atoms in (3, 6, 9, 12, 15):
    base = rate(f"Fig5/baseline/max_atoms/{atoms}")
    packed = rate(f"Fig5/bitvectors_and_hashing/max_atoms/{atoms}")
    if base and packed:
        merged["speedups"][f"fig5_packed_vs_baseline/max_atoms/{atoms}"] = \
            round(packed / base, 2)

ratios = [v for k, v in merged["speedups"].items()
          if k.startswith("batch_monitor_vs_baseline")]
merged["min_batch_monitor_speedup"] = min(ratios) if ratios else None

# Compiled catalog matcher vs the seed per-view loop (cold masks, no
# memoization on either side). Acceptance floor: ≥ 3x at 64 catalog views.
def mask_rate(name):
    b = merged["benchmarks"].get(name, {})
    return b.get("masks_per_second") or b.get("items_per_second")

merged["fig_matcher"] = {}
for views in (8, 16, 32, 64, 128, 256):
    seed = mask_rate(f"Matcher/seed_per_view/views/{views}")
    compiled = mask_rate(f"Matcher/compiled/views/{views}")
    if seed:
        merged["fig_matcher"][f"seed_per_view/views/{views}"] = seed
    if compiled:
        merged["fig_matcher"][f"compiled/views/{views}"] = compiled
    if seed and compiled:
        merged["speedups"][f"matcher_compiled_vs_seed/views/{views}"] = \
            round(compiled / seed, 2)
merged["matcher_compiled_speedup_at_64_views"] = \
    merged["speedups"].get("matcher_compiled_vs_seed/views/64")

# Wide-mask sweep: 256-view catalog at 64/128 views per relation, full
# multi-word masks on both sides (no packed cap). Acceptance floor: the
# compiled wide kernel stays >= 3x the uncapped per-view loop at 64
# views/relation (recorded below next to the measured ratios).
merged["fig_matcher_wide"] = {}
for vpr in (64, 128):
    seed = mask_rate(f"MatcherWide/seed_per_view/vpr/{vpr}")
    compiled = mask_rate(f"MatcherWide/compiled/vpr/{vpr}")
    if seed:
        merged["fig_matcher_wide"][f"seed_per_view/vpr/{vpr}"] = seed
    if compiled:
        merged["fig_matcher_wide"][f"compiled/vpr/{vpr}"] = compiled
    if seed and compiled:
        merged["speedups"][f"matcher_wide_vs_seed/vpr/{vpr}"] = \
            round(compiled / seed, 2)
merged["matcher_wide_speedup_at_64_vpr"] = \
    merged["speedups"].get("matcher_wide_vs_seed/vpr/64")
merged["matcher_wide_speedup_at_128_vpr"] = \
    merged["speedups"].get("matcher_wide_vs_seed/vpr/128")
merged["matcher_wide_speedup_floor"] = 3.0

# Batched sweep: the batch-structured kernel (scalar-forced and
# SIMD-dispatched) vs the per-atom loop over the same per-relation
# contiguous pools. The fig_matcher binary records which ISA the runtime
# dispatcher selected; lift it into run_metadata so the batch numbers are
# attributable to a vector unit (or its absence — on scalar-only hardware
# the simd series equals the scalar series and the floor is carried by
# batch structure alone). Acceptance floor: ≥ 1.5x over per-atom at some
# batch size ≥ 64.
merged["run_metadata"]["simd_isa"] = \
    merged.get("context", {}).get("simd_isa", "unknown")
merged["fig_matcher_batch"] = {}
for vpr in (64, 128):
    per_batch = {}
    for batch in (1, 8, 64, 512):
        suffix = f"vpr:{vpr}/batch:{batch}"
        per_atom = mask_rate(f"MatcherBatch/per_atom/{suffix}")
        scalar = mask_rate(f"MatcherBatch/scalar/{suffix}")
        simd = mask_rate(f"MatcherBatch/simd/{suffix}")
        for series, r in (("per_atom", per_atom), ("scalar", scalar),
                          ("simd", simd)):
            if r:
                merged["fig_matcher_batch"][
                    f"{series}/vpr/{vpr}/batch/{batch}"] = r
        if scalar and simd:
            merged["speedups"][
                f"matcher_batch_vs_scalar/vpr/{vpr}/batch/{batch}"] = \
                round(simd / scalar, 2)
        if per_atom and simd:
            merged["speedups"][
                f"matcher_batch_vs_per_atom/vpr/{vpr}/batch/{batch}"] = \
                round(simd / per_atom, 2)
            if batch >= 64:
                per_batch[batch] = simd / per_atom
    merged[f"matcher_batch_speedup_at_{vpr}_vpr"] = \
        round(max(per_batch.values()), 2) if per_batch else None
merged["matcher_batch_speedup_floor"] = 1.5

# Principal churn: steady-state footprint over a principal population 5x
# the bounded engine's live capacity (4096). The bench binary itself
# hard-fails when the bound is violated; the merged metrics record the
# measured footprint next to the unbounded baseline's.
merged["principal_churn"] = {"capacity": 4096, "churn_factor": 5}
for series in ("bounded", "unbounded"):
    # Fixed-iteration benchmarks report as "PrincipalChurn/<series>/
    # iterations:N" — match by prefix.
    prefix = f"PrincipalChurn/{series}"
    b = next((bench for name, bench in merged["benchmarks"].items()
              if name == prefix or name.startswith(prefix + "/")), {})
    for k in ("num_principals", "residual_records", "residual_bytes",
              "residual_bytes_after_swap", "evictions", "residual_hits"):
        if k in b:
            merged["principal_churn"][f"{series}/{k}"] = b[k]
    r = b.get("queries_per_second") or b.get("items_per_second")
    if r:
        merged["principal_churn"][f"{series}/queries_per_second"] = r
bounded_live = merged["principal_churn"].get("bounded/num_principals")
merged["principal_churn"]["bounded_within_capacity"] = \
    bounded_live is not None and bounded_live <= 4096

# Socket serving front end: closed-loop loopback decisions/s per pipelined
# connection count, the sockets-free SubmitCoalesced reference, and the
# unloaded call/response tail latencies. Acceptance floor: >= 1M coalesced
# decisions/s over loopback on one worker.
def server_counter(name, key):
    return merged["benchmarks"].get(name, {}).get(key)

merged["fig_server"] = {"decisions_per_second_floor": 1_000_000}
for conns in (1, 16):
    r = server_counter(f"ServerLoad/engine_only/conns/{conns}",
                       "decisions_per_second")
    if r:
        merged["fig_server"][f"engine_only/conns/{conns}"] = r
for conns in (1, 4, 16):
    row = f"ServerLoad/pipelined/conns/{conns}/real_time"
    r = server_counter(row, "decisions_per_second")
    if r:
        merged["fig_server"][f"pipelined/conns/{conns}"] = r
        avg = server_counter(row, "avg_coalesced_batch")
        if avg:
            merged["fig_server"][f"pipelined/conns/{conns}/avg_batch"] =                 round(avg, 1)
for k in ("p50_us", "p99_us", "p999_us"):
    v = server_counter("ServerLoad/latency/real_time", k)
    if v is not None:
        merged["fig_server"][f"latency/{k}"] = round(v, 2)
# Degraded mode: the same burst shape with ~1% benign + ~0.2% lethal
# faults injected into the server's recv/send path and reconnecting
# clients. Floor: answered throughput stays >= 0.5x the clean series at
# the same connection count.
merged["fig_server"]["degraded_ratio_floor"] = 0.5
deg_row = "ServerLoad/degraded/conns/4/real_time"
deg = server_counter(deg_row, "decisions_per_second")
clean4 = merged["fig_server"].get("pipelined/conns/4")
if deg:
    merged["fig_server"]["degraded/conns/4"] = deg
    for k in ("reconnects", "injected_faults"):
        v = server_counter(deg_row, k)
        if v is not None:
            merged["fig_server"][f"degraded/{k}"] = int(v)
if deg and clean4:
    ratio = round(deg / clean4, 3)
    merged["fig_server"]["degraded_ratio"] = ratio
    merged["fig_server"]["degraded_meets_floor"] = ratio >= 0.5

pipelined_rates = [v for k, v in merged["fig_server"].items()
                   if k.startswith("pipelined/") and not k.endswith("avg_batch")]
merged["fig_server"]["pipelined_min_decisions_per_second"] =     round(min(pipelined_rates), 1) if pipelined_rates else None
merged["fig_server"]["meets_floor"] =     bool(pipelined_rates) and min(pipelined_rates) >= 1_000_000

# Engine thread-scaling: aggregate throughput and parallel efficiency
# rate(N) / (N * rate(1)) per series. Multi-threaded google-benchmark rows
# are suffixed "/threads:N" except N=1 with UseRealTime ("/real_time").
def engine_rate(series, n):
    for name in (f"EngineScaling/{series}/threads/real_time/threads:{n}",
                 f"EngineScaling/{series}/threads/threads:{n}",
                 f"EngineScaling/{series}/threads/real_time"):
        r = rate(name)
        if r and (f"threads:{n}" in name or n == 1):
            return r
    return None

merged["engine_scaling"] = {}
merged["engine_scaling_efficiency"] = {}
for series in ("submit_batch", "submit"):
    one = engine_rate(series, 1)
    if not one:
        continue
    for n in (1, 2, 4, 8):
        r = engine_rate(series, n)
        if not r:
            continue
        merged["engine_scaling"][f"{series}/threads/{n}"] = r
        merged["engine_scaling_efficiency"][f"{series}/threads/{n}"] = \
            round(r / (n * one), 3)
        merged["speedups"][f"engine_scaling/{series}/threads/{n}"] = \
            round(r / one, 2)

# Reclaim ablation: the EBR wait-free read path vs the locked oracle on
# the identical per-query Submit shape (cold-frozen engines, overlay-warm).
# Floor: EBR >= 0.95x locked single-thread throughput — the grace-period
# machinery must not tax the uncontended case — and the lifted counters
# must show the EBR leg took zero reader-side lock acquisitions.
def reclaim_row(series, n):
    for name in (f"EngineReclaim/{series}/threads/real_time/threads:{n}",
                 f"EngineReclaim/{series}/threads/threads:{n}",
                 f"EngineReclaim/{series}/threads/real_time"):
        b = merged["benchmarks"].get(name)
        if b and (f"threads:{n}" in name or n == 1):
            return b
    return None

merged["engine_ebr_vs_locked"] = {"single_thread_floor": 0.95}
for n in (1, 2, 4, 8):
    rows = {s: reclaim_row(s, n) for s in ("ebr", "locked")}
    rates = {}
    for series, b in rows.items():
        if not b:
            continue
        r = b.get("queries_per_second") or b.get("items_per_second")
        if r:
            rates[series] = r
            merged["engine_ebr_vs_locked"][f"{series}/threads/{n}"] = r
    if "ebr" in rates and "locked" in rates:
        merged["engine_ebr_vs_locked"][f"ratio/threads/{n}"] = \
            round(rates["ebr"] / rates["locked"], 3)
for series in ("ebr", "locked"):
    b = reclaim_row(series, 1)
    if not b:
        continue
    for key in ("overlay_reader_locks", "epoch_retires"):
        if key in b:
            merged["engine_ebr_vs_locked"][f"{series}/{key}"] = int(b[key])
ratio1 = merged["engine_ebr_vs_locked"].get("ratio/threads/1")
merged["engine_ebr_vs_locked"]["meets_floor"] = \
    ratio1 is not None and ratio1 >= 0.95

with open(out, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
msg = f"wrote {out}; min batched speedup = {merged['min_batch_monitor_speedup']}"
eff4 = merged["engine_scaling_efficiency"].get("submit_batch/threads/4")
if eff4 is not None:
    msg += f"; engine 4-thread efficiency = {eff4}"
m64 = merged["matcher_compiled_speedup_at_64_views"]
if m64 is not None:
    msg += f"; compiled matcher @64 views = {m64}x"
w64 = merged["matcher_wide_speedup_at_64_vpr"]
if w64 is not None:
    msg += f"; wide matcher @64 views/relation = {w64}x"
b64 = merged["matcher_batch_speedup_at_64_vpr"]
if b64 is not None:
    msg += (f"; batch kernel @64 views/relation = {b64}x "
            f"({merged['run_metadata']['simd_isa']})")
churn_live = merged["principal_churn"].get("bounded/num_principals")
if churn_live is not None:
    msg += (f"; churn live principals = {int(churn_live)}/4096 "
            f"(5x churn)")
srv = merged["fig_server"].get("pipelined_min_decisions_per_second")
if srv is not None:
    p99 = merged["fig_server"].get("latency/p99_us")
    msg += (f"; server pipelined min = {srv/1e6:.2f}M dec/s "
            f"(floor 1M, p99 = {p99} us)")
dr = merged["fig_server"].get("degraded_ratio")
if dr is not None:
    msg += f"; degraded/clean ratio = {dr} (floor 0.5)"
if ratio1 is not None:
    locks1 = merged["engine_ebr_vs_locked"].get("ebr/overlay_reader_locks")
    msg += (f"; ebr/locked @1 thread = {ratio1} (floor 0.95, "
            f"ebr reader locks = {locks1})")
print(msg)
EOF
