// End-to-end hot path: label a query stream and run every label through the
// reference monitor — the inline per-app-request enforcement loop the
// paper's practicality claim rests on.
//
// Two modes over the same repeated-structure workload (a pregenerated §7.2
// query pool, cycled, as an app re-issuing its templates):
//   * per_query_baseline — the seed path: every query is dissected, folded,
//     and scanned against the view catalog from scratch, then submitted to
//     the monitor one at a time (LabelingPipeline ablate_interning mode).
//   * batched — the intern → index → memoize → batch path: queries are
//     hash-consed, whole-query labels memoized, batches bucketed by
//     interned id, and monitor submits deduplicated (LabelBatch +
//     SubmitBatch).
// The acceptance target for this layer is ≥ 5× on the batched series;
// bench/run_benchmarks.sh computes the ratio into BENCH_hotpath.json.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "policy/reference_monitor.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr int kPoolSize = 2048;
constexpr int kBatchSize = 256;

const std::vector<cq::ConjunctiveQuery>& PoolFor(int subqueries) {
  static std::vector<cq::ConjunctiveQuery> pools[6];
  auto& pool = pools[subqueries];
  if (pool.empty()) {
    pool = MakeQueryPool(subqueries, kPoolSize, 0xba7c'5eedULL + subqueries);
  }
  return pool;
}

const policy::SecurityPolicy& Policy() {
  static const policy::SecurityPolicy policy = [] {
    workload::PolicyOptions options;
    options.max_partitions = 5;
    options.max_elements_per_partition = 15;
    workload::PolicyGenerator generator(FacebookEnv::Get().catalog.get(),
                                        options, 0x5107'e001);
    return generator.Next();
  }();
  return policy;
}

void ReportRate(benchmark::State& state, int queries_per_iteration) {
  state.SetItemsProcessed(state.iterations() * queries_per_iteration);
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * queries_per_iteration,
      benchmark::Counter::kIsRate);
}

void BM_PerQueryBaseline(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelingPipeline::Options options;
  options.ablate_interning = true;
  label::LabelingPipeline pipeline(FacebookEnv::Get().catalog.get(),
                                   /*interner=*/nullptr, /*cache=*/nullptr,
                                   {}, options);
  policy::ReferenceMonitor monitor(&Policy());
  policy::PrincipalState principal = monitor.InitialState();
  size_t i = 0;
  for (auto _ : state) {
    // One batch per iteration, submitted query-by-query (the seed shape).
    if (i + kBatchSize > pool.size()) i = 0;
    principal = monitor.InitialState();
    for (int j = 0; j < kBatchSize; ++j) {
      benchmark::DoNotOptimize(
          monitor.Submit(&principal, pipeline.Label(pool[i + j])));
    }
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
}

void BM_Batched(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelingPipeline pipeline(FacebookEnv::Get().catalog.get());
  policy::ReferenceMonitor monitor(&Policy());
  policy::PrincipalState principal = monitor.InitialState();
  size_t i = 0;
  for (auto _ : state) {
    if (i + kBatchSize > pool.size()) i = 0;
    principal = monitor.InitialState();
    std::span<const cq::ConjunctiveQuery> batch(pool.data() + i, kBatchSize);
    benchmark::DoNotOptimize(
        monitor.SubmitBatch(&principal, pipeline.LabelBatch(batch)));
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
}

// Ablation between the two: interning + memoized labels, but per-query
// monitor submits — isolates how much of the win each layer contributes.
void BM_InternedPerQuerySubmit(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelingPipeline pipeline(FacebookEnv::Get().catalog.get());
  policy::ReferenceMonitor monitor(&Policy());
  policy::PrincipalState principal = monitor.InitialState();
  size_t i = 0;
  for (auto _ : state) {
    if (i + kBatchSize > pool.size()) i = 0;
    principal = monitor.InitialState();
    for (int j = 0; j < kBatchSize; ++j) {
      benchmark::DoNotOptimize(
          monitor.Submit(&principal, pipeline.Label(pool[i + j])));
    }
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
}

void MaxAtomsAxis(benchmark::internal::Benchmark* bench) {
  for (int max_atoms : {3, 6, 9, 12, 15}) bench->Arg(max_atoms);
}

BENCHMARK(BM_PerQueryBaseline)->Apply(MaxAtomsAxis)
    ->Name("BatchMonitor/per_query_baseline/max_atoms");
BENCHMARK(BM_InternedPerQuerySubmit)->Apply(MaxAtomsAxis)
    ->Name("BatchMonitor/interned_per_query/max_atoms");
BENCHMARK(BM_Batched)->Apply(MaxAtomsAxis)
    ->Name("BatchMonitor/batched/max_atoms");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
