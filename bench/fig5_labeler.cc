// Figure 5: disclosure labeler performance.
//
// Reproduces the four series of the paper's Figure 5 over the §7.2 workload:
//   * query_generation_only — the cost of producing a parsed random query;
//   * baseline              — LabelGen with a linear scan over all views;
//   * hashing_only          — views partitioned by relation;
//   * bitvectors_and_hashing— relation partitioning + packed ℓ+ masks.
// The x-axis is the maximum number of atoms per query: 3·k for k = 1..5
// stress subqueries, i.e. 3, 6, 9, 12, 15, exactly as in the paper.
//
// The reported counter `sec_per_1M_queries` matches the paper's y-axis
// ("time to analyze a million queries").
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace fdc::bench {
namespace {

constexpr int kPoolSize = 2048;

const std::vector<cq::ConjunctiveQuery>& PoolFor(int subqueries) {
  static std::vector<cq::ConjunctiveQuery> pools[6];
  auto& pool = pools[subqueries];
  if (pool.empty()) {
    pool = MakeQueryPool(subqueries, kPoolSize, 0xf16'5eedULL + subqueries);
  }
  return pool;
}

void ReportRate(benchmark::State& state) {
  state.SetItemsProcessed(state.iterations());
  // kIsRate divides by elapsed time, kInvert flips: the reported value is
  // elapsed_seconds * 1e6 / iterations — seconds per million queries.
  state.counters["sec_per_1M_queries"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_QueryGenerationOnly(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  workload::GeneratorOptions options;
  options.subqueries = subqueries;
  workload::QueryGenerator generator(&FacebookEnv::Get().schema, options,
                                     42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.Next());
  }
  ReportRate(state);
}

void BM_Baseline(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelBaseline(pool[i]));
    i = (i + 1) % pool.size();
  }
  ReportRate(state);
}

void BM_HashingOnly(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelHashed(pool[i]));
    i = (i + 1) % pool.size();
  }
  ReportRate(state);
}

void BM_BitvectorsAndHashing(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto& pool = PoolFor(subqueries);
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelPacked(pool[i]));
    i = (i + 1) % pool.size();
  }
  ReportRate(state);
}

void MaxAtomsAxis(benchmark::internal::Benchmark* bench) {
  for (int max_atoms : {3, 6, 9, 12, 15}) bench->Arg(max_atoms);
}

BENCHMARK(BM_QueryGenerationOnly)->Apply(MaxAtomsAxis)
    ->Name("Fig5/query_generation_only/max_atoms");
BENCHMARK(BM_Baseline)->Apply(MaxAtomsAxis)->Name("Fig5/baseline/max_atoms");
BENCHMARK(BM_HashingOnly)->Apply(MaxAtomsAxis)
    ->Name("Fig5/hashing_only/max_atoms");
BENCHMARK(BM_BitvectorsAndHashing)->Apply(MaxAtomsAxis)
    ->Name("Fig5/bitvectors_and_hashing/max_atoms");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
