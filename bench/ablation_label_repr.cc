// Ablation A2: disclosure-label representations (§6.1).
//
// Compares the three label representations on identical workloads:
//   * set     — sorted vectors of view ids (the §4.2 formulation);
//   * wide    — per-relation multi-word bitmasks (no 32-view limit);
//   * packed  — one 64-bit word per atom (the §6.1 design).
// Measured separately: label construction and label comparison (the two
// operations §6.1 optimizes). The packed representation should win both,
// with the gap largest on comparisons — they collapse to a handful of
// bitmask instructions.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace fdc::bench {
namespace {

const std::vector<cq::ConjunctiveQuery>& Pool() {
  static const auto pool = MakeQueryPool(/*subqueries=*/1, 2048, 0xab1a'0002);
  return pool;
}

void BM_BuildSet(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelHashed(Pool()[i]));
    i = (i + 1) % Pool().size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BuildWide(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelWide(Pool()[i]));
    i = (i + 1) % Pool().size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BuildPacked(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelPacked(Pool()[i]));
    i = (i + 1) % Pool().size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CompareSet(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  std::vector<label::SetLabel> labels;
  for (const auto& q : Pool()) labels.push_back(pipeline.LabelHashed(q));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        labels[i].Leq(labels[(i + 1) % labels.size()]));
    i = (i + 1) % labels.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CompareWide(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  std::vector<label::WideLabel> labels;
  for (const auto& q : Pool()) labels.push_back(pipeline.LabelWide(q));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        labels[i].Leq(labels[(i + 1) % labels.size()]));
    i = (i + 1) % labels.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ComparePacked(benchmark::State& state) {
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  std::vector<label::DisclosureLabel> labels;
  for (const auto& q : Pool()) labels.push_back(pipeline.LabelPacked(q));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        labels[i].Leq(labels[(i + 1) % labels.size()]));
    i = (i + 1) % labels.size();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_BuildSet)->Name("AblationRepr/build/set");
BENCHMARK(BM_BuildWide)->Name("AblationRepr/build/wide");
BENCHMARK(BM_BuildPacked)->Name("AblationRepr/build/packed");
BENCHMARK(BM_CompareSet)->Name("AblationRepr/compare/set");
BENCHMARK(BM_CompareWide)->Name("AblationRepr/compare/wide");
BENCHMARK(BM_ComparePacked)->Name("AblationRepr/compare/packed");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
