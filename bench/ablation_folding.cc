// Ablation A1: the folding step inside Dissect (§5.2).
//
// Folding costs homomorphism searches per query but removes redundant atoms
// before labeling. This ablation measures (a) end-to-end labeling time with
// and without folding and (b) the imprecision introduced by skipping it:
// the fraction of queries whose no-fold label is strictly higher in the
// label lattice (`strictly_wider_rate`).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace fdc::bench {
namespace {

void BM_LabelWithFold(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto pool = MakeQueryPool(subqueries, 1024, 0xab1a'0001);
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelPacked(pool[i]));
    i = (i + 1) % pool.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LabelWithoutFold(benchmark::State& state) {
  const int subqueries = static_cast<int>(state.range(0)) / 3;
  const auto pool = MakeQueryPool(subqueries, 1024, 0xab1a'0001);
  label::DissectOptions options;
  options.fold = false;
  label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get(), options);

  // Precision accounting happens before the timed loop.
  label::LabelerPipeline folded(FacebookEnv::Get().catalog.get());
  int64_t wider = 0;
  for (const auto& q : pool) {
    label::DisclosureLabel with = folded.LabelPacked(q);
    label::DisclosureLabel without = pipeline.LabelPacked(q);
    // `without` is always ⪰ `with`; strict means not ⪯ back.
    if (!without.Leq(with)) ++wider;
  }

  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelPacked(pool[i]));
    i = (i + 1) % pool.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["strictly_wider_rate"] =
      static_cast<double>(wider) / static_cast<double>(pool.size());
}

BENCHMARK(BM_LabelWithFold)->Arg(3)->Arg(9)->Arg(15)
    ->Name("AblationFolding/with_fold/max_atoms");
BENCHMARK(BM_LabelWithoutFold)->Arg(3)->Arg(9)->Arg(15)
    ->Name("AblationFolding/without_fold/max_atoms");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
