// Ablation A4: reference-monitor modes (§6.2).
//
// Measures the per-decision cost of:
//   * the stateless check (k = 1 equivalent model),
//   * the stateful Chinese-Wall submit with the consistency bit vector,
//   * partition-count sweep 1..64 (the paper caps at 5; the design holds up
//     to the 64-bit state word).
// The bit-vector design predicts near-identical stateless/stateful cost and
// sub-linear growth in the partition count.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "policy/policy_store.h"
#include "workload/label_stream.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr uint32_t kPrincipals = 10'000;

const std::vector<workload::LabeledQuery>& Stream() {
  static const auto stream = [] {
    label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
    return workload::GenerateLabelStream(pipeline, 1 << 15, kPrincipals,
                                         0xab1a'0004);
  }();
  return stream;
}

policy::PolicyStore* StoreWithPartitions(int partitions) {
  static int current = -1;
  static std::unique_ptr<policy::PolicyStore> store;
  if (store != nullptr && current == partitions) return store.get();
  const FacebookEnv& env = FacebookEnv::Get();
  workload::PolicyOptions options;
  options.max_partitions = partitions;
  options.max_elements_per_partition = 15;
  workload::PolicyGenerator generator(env.catalog.get(), options,
                                      0x5107'e000 + partitions);
  store = std::make_unique<policy::PolicyStore>(env.schema.NumRelations());
  store->Reserve(kPrincipals, partitions);
  for (uint32_t p = 0; p < kPrincipals; ++p) {
    if (!store->AddPrincipal(generator.Next()).ok()) std::abort();
  }
  current = partitions;
  return store.get();
}

void BM_StatelessCheck(benchmark::State& state) {
  policy::PolicyStore* store =
      StoreWithPartitions(static_cast<int>(state.range(0)));
  const auto& stream = Stream();
  size_t i = 0;
  for (auto _ : state) {
    const auto& lq = stream[i];
    benchmark::DoNotOptimize(store->CheckStateless(lq.principal, lq.label));
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StatefulSubmit(benchmark::State& state) {
  policy::PolicyStore* store =
      StoreWithPartitions(static_cast<int>(state.range(0)));
  store->ResetStates();
  const auto& stream = Stream();
  size_t i = 0;
  for (auto _ : state) {
    const auto& lq = stream[i];
    benchmark::DoNotOptimize(store->Submit(lq.principal, lq.label));
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void PartitionAxis(benchmark::internal::Benchmark* bench) {
  for (int k : {1, 2, 5, 8, 16, 32, 64}) bench->Arg(k);
}

BENCHMARK(BM_StatelessCheck)->Apply(PartitionAxis)
    ->Name("AblationMonitor/stateless/partitions");
BENCHMARK(BM_StatefulSubmit)->Apply(PartitionAxis)
    ->Name("AblationMonitor/stateful/partitions");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
