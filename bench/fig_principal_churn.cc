// Principal-churn benchmark: steady-state enforcement over a principal
// population ≥ 5x the configured live capacity (the Lalaine-style app-
// ecosystem shape: huge, heavily long-tailed). The bounded engine must
// serve it with a bounded footprint:
//
//   * PrincipalChurn/bounded   — capacity 4096 + TTL sweeps + one policy
//     epoch swap per full churn pass (the residual store's natural TTL).
//   * PrincipalChurn/unbounded — the pre-lifecycle behavior: the map only
//     grows (one live slot per distinct principal ever seen).
//
// Reported counters: num_principals (live slots after the run),
// residual_bytes / residual_records (steady state within an epoch, plus
// residual_bytes_after_swap proving the swap collapses the store), and the
// eviction/residual-hit traffic. The bounded run *hard-fails the process*
// if the live-slot bound or the residual collapse is violated, so the CI
// bench smoke job enforces the footprint acceptance floor on every run.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/disclosure_engine.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr size_t kCapacity = 4096;       // bounded engine's live-slot cap
constexpr size_t kChurnFactor = 5;       // distinct principals = 5x capacity
constexpr size_t kPrincipals = kCapacity * kChurnFactor;
constexpr int kQueriesPerVisit = 4;
constexpr int kPoolSize = 512;
constexpr int kSubqueries = 2;

const std::vector<cq::ConjunctiveQuery>& Pool() {
  static const std::vector<cq::ConjunctiveQuery> pool =
      MakeQueryPool(kSubqueries, kPoolSize, 0xc4'121eULL);
  return pool;
}

const policy::SecurityPolicy& Policy() {
  static const policy::SecurityPolicy policy = [] {
    workload::PolicyOptions options;
    options.max_partitions = 5;
    options.max_elements_per_partition = 15;
    workload::PolicyGenerator generator(FacebookEnv::Get().catalog.get(),
                                        options, 0x90'90'90ULL);
    // A Chinese-Wall shape with real walls: under a 1-partition policy
    // consistency bits cannot narrow, and the churn would never touch the
    // residual machinery it is here to measure.
    policy::SecurityPolicy candidate = generator.Next();
    while (candidate.num_partitions() < 3) candidate = generator.Next();
    return candidate;
  }();
  return policy;
}

// One iteration = one principal visit (a 4-query batch). Principals cycle
// round-robin through a population kChurnFactor times the bounded
// capacity, so every principal keeps returning long after its slot was
// reclaimed; a full pass ends with an epoch swap.
void RunChurn(benchmark::State& state, const engine::EngineOptions& options,
              engine::DisclosureEngine::EngineStats* out_stats,
              engine::DisclosureEngine::EngineStats* out_after_swap) {
  engine::DisclosureEngine engine(/*db=*/nullptr,
                                  FacebookEnv::Get().catalog.get(), Policy(),
                                  options);
  const auto& pool = Pool();
  size_t serial = 0;
  for (auto _ : state) {
    // Even visits round-robin the whole 5x-capacity population (full
    // coverage); odd visits revisit a pseudo-random principal, so evicted
    // principals return *within* an epoch and exercise residual
    // rehydration (pure round-robin would only return after the swap
    // below already dropped every residual).
    uint64_t mix = serial;
    const size_t p = (serial & 1)
                         ? SplitMix64Next(&mix) % kPrincipals
                         : (serial / 2) % kPrincipals;
    if (serial != 0 && serial % (2 * kPrincipals) == 0) {
      // Full pass over the population: publish a new epoch. Consistency
      // bits never transfer across epochs, so this drops every residual —
      // the natural TTL that keeps the residual store bounded.
      engine.UpdatePolicy(Policy());
    }
    const std::string principal = "app-" + std::to_string(p);
    std::vector<cq::ConjunctiveQuery> batch;
    batch.reserve(kQueriesPerVisit);
    for (int j = 0; j < kQueriesPerVisit; ++j) {
      batch.push_back(pool[(serial * 7 + static_cast<size_t>(j) * 131) %
                           pool.size()]);
    }
    benchmark::DoNotOptimize(
        engine.SubmitBatch(principal, std::span(batch.data(), batch.size())));
    ++serial;
  }
  *out_stats = engine.Stats();
  // One more swap outside the timed loop: the residual store must collapse.
  engine.UpdatePolicy(Policy());
  *out_after_swap = engine.Stats();

  state.SetItemsProcessed(state.iterations() * kQueriesPerVisit);
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kQueriesPerVisit,
      benchmark::Counter::kIsRate);
  state.counters["num_principals"] =
      static_cast<double>(out_stats->num_principals);
  state.counters["residual_records"] =
      static_cast<double>(out_stats->principal_map.residuals);
  state.counters["residual_bytes"] =
      static_cast<double>(out_stats->principal_map.residual_bytes);
  state.counters["residual_bytes_after_swap"] =
      static_cast<double>(out_after_swap->principal_map.residual_bytes);
  state.counters["evictions"] =
      static_cast<double>(out_stats->principal_map.evictions);
  state.counters["residual_hits"] =
      static_cast<double>(out_stats->principal_map.residual_hits);
}

void BM_PrincipalChurnBounded(benchmark::State& state) {
  engine::EngineOptions options;
  options.principals.shards = 64;  // 4096 / 64 = 64 live slots per shard
  options.principals.max_principals = kCapacity;
  options.principals.idle_ttl_ticks = 2;
  options.principal_sweep_interval = 8192;
  engine::DisclosureEngine::EngineStats stats, after_swap;
  RunChurn(state, options, &stats, &after_swap);

  // Acceptance floor (enforced in CI by the bench smoke job): live slots
  // stay within the configured capacity under 5x-capacity churn, the
  // residual store never outgrows one epoch's distinct churned population,
  // and an epoch swap collapses it entirely.
  if (stats.num_principals > kCapacity) {
    std::fprintf(stderr,
                 "FAIL: bounded engine holds %zu live principals "
                 "(capacity %zu)\n",
                 stats.num_principals, kCapacity);
    std::exit(1);
  }
  if (stats.principal_map.residuals > kPrincipals) {
    std::fprintf(stderr,
                 "FAIL: %zu residuals exceed the per-epoch distinct "
                 "population %zu\n",
                 stats.principal_map.residuals, kPrincipals);
    std::exit(1);
  }
  if (after_swap.principal_map.residual_bytes != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu residual bytes survived an epoch swap\n",
                 after_swap.principal_map.residual_bytes);
    std::exit(1);
  }
  if (stats.principal_map.residual_hits == 0) {
    std::fprintf(stderr,
                 "FAIL: no evicted principal ever resumed a residual — the "
                 "churn pattern is not exercising rehydration\n");
    std::exit(1);
  }
}

void BM_PrincipalChurnUnbounded(benchmark::State& state) {
  engine::DisclosureEngine::EngineStats stats, after_swap;
  RunChurn(state, engine::EngineOptions{}, &stats, &after_swap);
}

// Fixed iteration count (overrides --benchmark_min_time): exactly two full
// round-robin passes over the 5x-capacity population (half the visits are
// the randomized revisit stream), so every run — including the CI smoke
// run — actually churns 20480 distinct principals through 4096 slots and
// crosses one in-loop epoch swap. Time-based iteration scaling would
// silently shrink the workload below the capacity on fast exits.
BENCHMARK(BM_PrincipalChurnBounded)
    ->Name("PrincipalChurn/bounded")
    ->Iterations(static_cast<int64_t>(kPrincipals) * 4);
BENCHMARK(BM_PrincipalChurnUnbounded)
    ->Name("PrincipalChurn/unbounded")
    ->Iterations(static_cast<int64_t>(kPrincipals) * 4);

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
