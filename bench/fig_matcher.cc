// Cold-mask kernel sweep: the compiled catalog matcher vs the seed
// per-view loop, across catalog sizes 8 → 256 views.
//
// "Cold" means no memoization anywhere — every evaluation computes the full
// per-relation ℓ+ mask for a pattern it has never seen, which is exactly
// the work a novel query pays on the labeling path. The seed series runs
// one AtomRewritable per (pattern, view) pair (the pre-PR-3 kernel); the
// compiled series evaluates the discrimination net in one pass. Catalogs
// pack 32 views per relation (the packed-label capacity), so the per-view
// loop's cost per atom grows with catalog density while the compiled
// evaluation stays O(arity + requirements).
//
// bench/run_benchmarks.sh folds the ratio into BENCH_hotpath.json as
// matcher_compiled_vs_seed/views/N; the acceptance floor is ≥ 3× at 64
// views.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cq/pattern.h"
#include "cq/schema.h"
#include "label/compiled_matcher.h"
#include "label/view_catalog.h"
#include "rewriting/atom_rewriting.h"

namespace fdc::bench {
namespace {

using cq::Atom;
using cq::AtomPattern;
using cq::Term;

constexpr int kArity = 6;
constexpr int kViewsPerRelation = 32;
constexpr int kPatternPool = 1024;

// One catalog of `num_views` views, packed 32 per relation over
// ceil(num_views / 32) Album-like relations, plus a pregenerated pattern
// pool. Views are projection/selection shapes (distinguished subsets,
// per-view selection constants) with a few repeated-variable views mixed in
// so the compiled net's equality machinery is on the measured path.
struct MatcherEnv {
  cq::Schema schema;
  std::unique_ptr<label::ViewCatalog> catalog;
  label::CompiledCatalogMatcher matcher;
  std::vector<AtomPattern> patterns;

  explicit MatcherEnv(int num_views) {
    const int num_relations =
        (num_views + kViewsPerRelation - 1) / kViewsPerRelation;
    for (int r = 0; r < num_relations; ++r) {
      auto id = schema.AddRelation(
          "T" + std::to_string(r),
          {"uid", "viewer_rel", "c1", "c2", "c3", "c4"});
      if (!id.ok()) std::abort();
    }
    catalog = std::make_unique<label::ViewCatalog>(&schema);
    for (int v = 0; v < num_views; ++v) {
      const int relation = v / kViewsPerRelation;
      const int k = v % kViewsPerRelation;
      std::vector<Term> terms;
      terms.push_back(Term::Var(0));  // uid
      if (k % 2 == 1) {
        terms.push_back(Term::Const("g" + std::to_string(k / 2)));
      } else {
        terms.push_back(Term::Var(1));
      }
      for (int p = 0; p < 4; ++p) terms.push_back(Term::Var(2 + p));
      if (k % 8 == 7) terms[3] = Term::Var(2);  // repeated variable (c1=c2)
      std::vector<bool> distinguished(6, false);
      distinguished[0] = true;       // uid always exposed
      distinguished[1] = k % 4 < 2;  // viewer_rel sometimes exposed
      for (int p = 0; p < 4; ++p) {
        distinguished[2 + p] = ((k / 2) >> p) & 1;
      }
      AtomPattern pattern = AtomPattern::FromAtom(
          Atom(relation, std::move(terms)), distinguished);
      auto added = catalog->AddView("v" + std::to_string(v),
                                    pattern.ToQuery("V"));
      if (!added.ok()) std::abort();
    }
    matcher = label::CompiledCatalogMatcher::Compile(*catalog);

    Rng rng(0x3a7c'4e00ULL + num_views);
    patterns.reserve(kPatternPool);
    for (int i = 0; i < kPatternPool; ++i) {
      const int relation = static_cast<int>(rng.Below(num_relations));
      std::vector<Term> terms;
      terms.push_back(Term::Var(0));
      if (rng.Chance(0.6)) {
        terms.push_back(Term::Const("g" + std::to_string(rng.Below(16))));
      } else {
        terms.push_back(Term::Var(1));
      }
      for (int p = 0; p < 4; ++p) {
        if (rng.Chance(0.15)) {
          terms.push_back(Term::Const("x" + std::to_string(rng.Below(4))));
        } else {
          // Occasional repeats so the C5 path is exercised.
          terms.push_back(Term::Var(rng.Chance(0.2)
                                        ? 2
                                        : 2 + static_cast<int>(p)));
        }
      }
      std::vector<bool> distinguished(6, false);
      for (int c = 0; c < 6; ++c) distinguished[c] = rng.Chance(0.5);
      patterns.push_back(AtomPattern::FromAtom(
          Atom(relation, std::move(terms)), distinguished));
    }
  }

  static const MatcherEnv& Get(int num_views) {
    static std::map<int, std::unique_ptr<MatcherEnv>> envs;
    auto it = envs.find(num_views);
    if (it == envs.end()) {
      it = envs.emplace(num_views, std::make_unique<MatcherEnv>(num_views))
               .first;
    }
    return *it->second;
  }
};

void ReportRate(benchmark::State& state, int masks_per_iteration) {
  state.SetItemsProcessed(state.iterations() * masks_per_iteration);
  state.counters["masks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * masks_per_iteration,
      benchmark::Counter::kIsRate);
}

// The pre-PR-3 kernel: one AtomRewritable per (pattern, view) pair, with
// the packed 32-view guard — identical decisions to the compiled net
// (property-tested in tests/compiled_matcher_test.cc).
void BM_SeedPerView(benchmark::State& state) {
  const MatcherEnv& env = MatcherEnv::Get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      uint32_t mask = 0;
      for (int view_id : env.catalog->ViewsOfRelation(pattern.relation)) {
        const label::SecurityView& view = env.catalog->view(view_id);
        if (view.bit < 32 &&
            rewriting::AtomRewritable(pattern, view.pattern)) {
          mask |= uint32_t{1} << view.bit;
        }
      }
      benchmark::DoNotOptimize(mask);
    }
  }
  ReportRate(state, kPatternPool);
}

void BM_Compiled(benchmark::State& state) {
  const MatcherEnv& env = MatcherEnv::Get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      benchmark::DoNotOptimize(env.matcher.MatchMask(pattern));
    }
  }
  ReportRate(state, kPatternPool);
}

void CatalogAxis(benchmark::internal::Benchmark* bench) {
  for (int views : {8, 16, 32, 64, 128, 256}) bench->Arg(views);
}

BENCHMARK(BM_SeedPerView)->Apply(CatalogAxis)
    ->Name("Matcher/seed_per_view/views");
BENCHMARK(BM_Compiled)->Apply(CatalogAxis)
    ->Name("Matcher/compiled/views");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
