// Cold-mask kernel sweep: the compiled catalog matcher vs the seed
// per-view loop, across catalog sizes 8 → 256 views.
//
// "Cold" means no memoization anywhere — every evaluation computes the full
// per-relation ℓ+ mask for a pattern it has never seen, which is exactly
// the work a novel query pays on the labeling path. The seed series runs
// one AtomRewritable per (pattern, view) pair (the pre-PR-3 kernel); the
// compiled series evaluates the discrimination net in one pass. The packed
// sweep keeps 32 views per relation (the packed-label capacity), so the
// per-view loop's cost per atom grows with catalog density while the
// compiled evaluation stays O(arity + requirements).
//
// The wide sweep (MatcherWide/*) fixes the catalog at 256 views and raises
// the *density* to 64 and 128 views per relation — one- and two-word
// multi-word masks, the Lalaine-scale shape where every view used to fall
// off the packed 32-view edge. Both series compute full wide masks
// (MatchMaskWords vs the uncapped per-view loop), so the ratio isolates
// the wide compiled kernel.
//
// The batched sweep (MatcherBatch/*) keeps the wide catalogs (64 / 128
// views per relation) and varies the batch size 1 → 512: per_atom runs
// MatchMaskWords once per pattern (the PR-4 shape), scalar runs
// MatchMaskBatch with vector dispatch forced off, simd runs it under the
// detected ISA. The per-relation pools are contiguous AtomPattern arrays —
// exactly what LabelBatch's buckets hand the kernel — so the ratio
// isolates batch structure (shared probes, position-major AND passes) from
// vectorization (the scalar→simd gap).
//
// bench/run_benchmarks.sh folds the ratios into BENCH_hotpath.json as
// matcher_compiled_vs_seed/views/N, matcher_wide_vs_seed/vpr/N, and
// matcher_batch_vs_scalar/vpr/N/batch/B; the acceptance floors are ≥ 3× at
// 64 views (packed sweep), ≥ 3× at 64 views/relation (wide sweep), and
// ≥ 1.5× batch-over-per-atom at batch ≥ 64 (batched sweep).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "cq/pattern.h"
#include "cq/schema.h"
#include "label/compiled_matcher.h"
#include "label/view_catalog.h"
#include "rewriting/atom_rewriting.h"

namespace fdc::bench {
namespace {

using cq::Atom;
using cq::AtomPattern;
using cq::Term;

constexpr int kArity = 6;
constexpr int kViewsPerRelation = 32;
constexpr int kPatternPool = 1024;

// One catalog of `num_views` views, `views_per_relation` per relation over
// ceil(num_views / views_per_relation) Album-like relations, plus a
// pregenerated pattern pool. Views are projection/selection shapes
// (distinguished subsets, per-view selection constants) with a few
// repeated-variable views mixed in so the compiled net's equality machinery
// is on the measured path.
struct MatcherEnv {
  cq::Schema schema;
  std::unique_ptr<label::ViewCatalog> catalog;
  label::CompiledCatalogMatcher matcher;
  std::vector<AtomPattern> patterns;

  MatcherEnv(int num_views, int views_per_relation) {
    const int num_relations =
        (num_views + views_per_relation - 1) / views_per_relation;
    for (int r = 0; r < num_relations; ++r) {
      auto id = schema.AddRelation(
          "T" + std::to_string(r),
          {"uid", "viewer_rel", "c1", "c2", "c3", "c4"});
      if (!id.ok()) std::abort();
    }
    catalog = std::make_unique<label::ViewCatalog>(&schema);
    for (int v = 0; v < num_views; ++v) {
      const int relation = v / views_per_relation;
      const int k = v % views_per_relation;
      std::vector<Term> terms;
      terms.push_back(Term::Var(0));  // uid
      if (k % 2 == 1) {
        terms.push_back(Term::Const("g" + std::to_string(k / 2)));
      } else {
        terms.push_back(Term::Var(1));
      }
      for (int p = 0; p < 4; ++p) terms.push_back(Term::Var(2 + p));
      if (k % 8 == 7) terms[3] = Term::Var(2);  // repeated variable (c1=c2)
      std::vector<bool> distinguished(6, false);
      distinguished[0] = true;       // uid always exposed
      distinguished[1] = k % 4 < 2;  // viewer_rel sometimes exposed
      for (int p = 0; p < 4; ++p) {
        distinguished[2 + p] = ((k / 2) >> p) & 1;
      }
      AtomPattern pattern = AtomPattern::FromAtom(
          Atom(relation, std::move(terms)), distinguished);
      auto added = catalog->AddView("v" + std::to_string(v),
                                    pattern.ToQuery("V"));
      if (!added.ok()) std::abort();
    }
    matcher = label::CompiledCatalogMatcher::Compile(*catalog);

    Rng rng(0x3a7c'4e00ULL + num_views * 31 + views_per_relation);
    patterns.reserve(kPatternPool);
    for (int i = 0; i < kPatternPool; ++i) {
      const int relation = static_cast<int>(rng.Below(num_relations));
      std::vector<Term> terms;
      terms.push_back(Term::Var(0));
      if (rng.Chance(0.6)) {
        terms.push_back(Term::Const("g" + std::to_string(rng.Below(16))));
      } else {
        terms.push_back(Term::Var(1));
      }
      for (int p = 0; p < 4; ++p) {
        if (rng.Chance(0.15)) {
          terms.push_back(Term::Const("x" + std::to_string(rng.Below(4))));
        } else {
          // Occasional repeats so the C5 path is exercised.
          terms.push_back(Term::Var(rng.Chance(0.2)
                                        ? 2
                                        : 2 + static_cast<int>(p)));
        }
      }
      std::vector<bool> distinguished(6, false);
      for (int c = 0; c < 6; ++c) distinguished[c] = rng.Chance(0.5);
      patterns.push_back(AtomPattern::FromAtom(
          Atom(relation, std::move(terms)), distinguished));
    }
  }

  static const MatcherEnv& Get(int num_views,
                               int views_per_relation = kViewsPerRelation) {
    static std::map<std::pair<int, int>, std::unique_ptr<MatcherEnv>> envs;
    const std::pair<int, int> key(num_views, views_per_relation);
    auto it = envs.find(key);
    if (it == envs.end()) {
      it = envs.emplace(key, std::make_unique<MatcherEnv>(num_views,
                                                          views_per_relation))
               .first;
    }
    return *it->second;
  }
};

void ReportRate(benchmark::State& state, int masks_per_iteration) {
  state.SetItemsProcessed(state.iterations() * masks_per_iteration);
  state.counters["masks_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * masks_per_iteration,
      benchmark::Counter::kIsRate);
}

// The pre-PR-3 kernel: one AtomRewritable per (pattern, view) pair, with
// the packed 32-view guard — identical decisions to the compiled net
// (property-tested in tests/compiled_matcher_test.cc).
void BM_SeedPerView(benchmark::State& state) {
  const MatcherEnv& env = MatcherEnv::Get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      uint32_t mask = 0;
      for (int view_id : env.catalog->ViewsOfRelation(pattern.relation)) {
        const label::SecurityView& view = env.catalog->view(view_id);
        if (view.bit < 32 &&
            rewriting::AtomRewritable(pattern, view.pattern)) {
          mask |= uint32_t{1} << view.bit;
        }
      }
      benchmark::DoNotOptimize(mask);
    }
  }
  ReportRate(state, kPatternPool);
}

void BM_Compiled(benchmark::State& state) {
  const MatcherEnv& env = MatcherEnv::Get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      benchmark::DoNotOptimize(env.matcher.MatchMask(pattern));
    }
  }
  ReportRate(state, kPatternPool);
}

void CatalogAxis(benchmark::internal::Benchmark* bench) {
  for (int views : {8, 16, 32, 64, 128, 256}) bench->Arg(views);
}

// Wide sweep: 256-view catalog at 64 / 128 views per relation — full
// multi-word masks on both sides, no packed cap anywhere, so the former
// 32-view edge is squarely on the measured path.
constexpr int kWideCatalogViews = 256;
constexpr int kMaxMaskWords = 4;  // enough for 256 views on one relation

// The uncapped seed kernel: one AtomRewritable per (pattern, view) pair,
// every bit recorded — what labeling beyond the packed edge costs without
// the compiled net (decision-identical to MatchMaskWords, property-tested
// in tests/wide_matcher_property_test.cc).
void BM_SeedPerViewWide(benchmark::State& state) {
  const MatcherEnv& env =
      MatcherEnv::Get(kWideCatalogViews, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      uint64_t words[kMaxMaskWords] = {0, 0, 0, 0};
      for (int view_id : env.catalog->ViewsOfRelation(pattern.relation)) {
        const label::SecurityView& view = env.catalog->view(view_id);
        if (rewriting::AtomRewritable(pattern, view.pattern)) {
          words[view.bit / 64] |= uint64_t{1} << (view.bit % 64);
        }
      }
      benchmark::DoNotOptimize(words);
    }
  }
  ReportRate(state, kPatternPool);
}

void BM_CompiledWide(benchmark::State& state) {
  const MatcherEnv& env =
      MatcherEnv::Get(kWideCatalogViews, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const AtomPattern& pattern : env.patterns) {
      uint64_t words[kMaxMaskWords];
      env.matcher.MatchMaskWords(pattern, words);
      benchmark::DoNotOptimize(words);
    }
  }
  ReportRate(state, kPatternPool);
}

void WideAxis(benchmark::internal::Benchmark* bench) {
  for (int views_per_relation : {64, 128}) bench->Arg(views_per_relation);
}

// ---------------------------------------------------------------------------
// Batched sweep: per-relation contiguous pools over the wide catalogs,
// evaluated in chunks of the batch size. 512 patterns per relation so
// every batch size in {1, 8, 64, 512} tiles the pool exactly.
// ---------------------------------------------------------------------------
constexpr int kBatchPool = 512;

struct BatchEnv {
  const MatcherEnv* base;
  // Contiguous per-relation pools, each exactly kBatchPool patterns
  // (cycling the base env's mixed-relation pool to fill).
  std::vector<std::vector<AtomPattern>> by_relation;

  explicit BatchEnv(int views_per_relation) {
    base = &MatcherEnv::Get(kWideCatalogViews, views_per_relation);
    const int num_relations = kWideCatalogViews / views_per_relation;
    by_relation.resize(static_cast<size_t>(num_relations));
    for (int r = 0; r < num_relations; ++r) {
      std::vector<AtomPattern>& pool = by_relation[static_cast<size_t>(r)];
      pool.reserve(kBatchPool);
      while (static_cast<int>(pool.size()) < kBatchPool) {
        for (const AtomPattern& p : base->patterns) {
          if (p.relation == r) {
            pool.push_back(p);
            if (static_cast<int>(pool.size()) == kBatchPool) break;
          }
        }
      }
    }
  }

  static const BatchEnv& Get(int views_per_relation) {
    static std::map<int, std::unique_ptr<BatchEnv>> envs;
    auto it = envs.find(views_per_relation);
    if (it == envs.end()) {
      it = envs.emplace(views_per_relation,
                        std::make_unique<BatchEnv>(views_per_relation))
               .first;
    }
    return *it->second;
  }
};

// Per-atom baseline over the same pools and the same output layout: one
// MatchMaskWords call per pattern, rows written at the batch stride.
void BM_BatchPerAtom(benchmark::State& state) {
  const BatchEnv& env = BatchEnv::Get(static_cast<int>(state.range(0)));
  const int batch = static_cast<int>(state.range(1));
  std::vector<uint64_t> rows(
      static_cast<size_t>(batch) * kMaxMaskWords);
  for (auto _ : state) {
    for (const std::vector<AtomPattern>& pool : env.by_relation) {
      const int w = env.base->matcher.MaskWords(pool.front().relation);
      for (int begin = 0; begin < kBatchPool; begin += batch) {
        for (int i = 0; i < batch; ++i) {
          env.base->matcher.MatchMaskWords(
              pool[static_cast<size_t>(begin + i)],
              rows.data() + static_cast<size_t>(i) * w);
        }
        benchmark::DoNotOptimize(rows.data());
      }
    }
  }
  ReportRate(state,
             static_cast<int>(env.by_relation.size()) * kBatchPool);
}

void RunBatchKernel(benchmark::State& state, simd::Isa isa) {
  const BatchEnv& env = BatchEnv::Get(static_cast<int>(state.range(0)));
  const int batch = static_cast<int>(state.range(1));
  simd::ForceIsa(isa);
  label::BatchScratch scratch;
  std::vector<uint64_t> rows(
      static_cast<size_t>(batch) * kMaxMaskWords);
  for (auto _ : state) {
    for (const std::vector<AtomPattern>& pool : env.by_relation) {
      for (int begin = 0; begin < kBatchPool; begin += batch) {
        env.base->matcher.MatchMaskBatch(
            std::span<const AtomPattern>(
                pool.data() + begin, static_cast<size_t>(batch)),
            rows.data(), &scratch);
        benchmark::DoNotOptimize(rows.data());
      }
    }
  }
  simd::ClearForcedIsa();
  ReportRate(state,
             static_cast<int>(env.by_relation.size()) * kBatchPool);
}

// Batch kernel with vector dispatch forced off: batch structure alone.
void BM_BatchScalar(benchmark::State& state) {
  RunBatchKernel(state, simd::Isa::kScalar);
}

// Batch kernel under the detected ISA; on hardware with no vector unit
// this equals the scalar series (ForceIsa clamps) and the script's
// speedup floor is carried by batch structure alone.
void BM_BatchSimd(benchmark::State& state) {
  RunBatchKernel(state, simd::DetectIsa());
}

void BatchAxis(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"vpr", "batch"});
  for (int vpr : {64, 128}) {
    for (int batch : {1, 8, 64, 512}) bench->Args({vpr, batch});
  }
}

BENCHMARK(BM_SeedPerView)->Apply(CatalogAxis)
    ->Name("Matcher/seed_per_view/views");
BENCHMARK(BM_Compiled)->Apply(CatalogAxis)
    ->Name("Matcher/compiled/views");
BENCHMARK(BM_SeedPerViewWide)->Apply(WideAxis)
    ->Name("MatcherWide/seed_per_view/vpr");
BENCHMARK(BM_CompiledWide)->Apply(WideAxis)
    ->Name("MatcherWide/compiled/vpr");
BENCHMARK(BM_BatchPerAtom)->Apply(BatchAxis)->Name("MatcherBatch/per_atom");
BENCHMARK(BM_BatchScalar)->Apply(BatchAxis)->Name("MatcherBatch/scalar");
BENCHMARK(BM_BatchSimd)->Apply(BatchAxis)->Name("MatcherBatch/simd");

}  // namespace
}  // namespace fdc::bench

// Custom main (instead of BENCHMARK_MAIN) so the run records which ISA the
// runtime dispatcher actually selected — run_benchmarks.sh lifts this into
// BENCH_hotpath.json's run_metadata so batch-sweep numbers are attributable
// to a vector unit (or its absence).
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_isa", fdc::simd::IsaName(fdc::simd::ActiveIsa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
