// Table 2: the Facebook documentation audit (§7.1).
//
// Not a timing benchmark — this harness regenerates the paper's Table 2 by
// diffing the encoded FQL and Graph API permission documentation for the 42
// User views, resolving each discrepancy against observed behaviour, and
// cross-checking every permission-guarded attribute against the
// machine-computed disclosure label. Exits non-zero if the audit does not
// reproduce the paper's result (6 inconsistencies, 0 labeler mismatches).
#include <cstdio>

#include "fb/fb_audit.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/view_catalog.h"

int main() {
  fdc::cq::Schema schema = fdc::fb::BuildFacebookSchema();
  fdc::label::ViewCatalog catalog(&schema);
  auto added = fdc::fb::RegisterFacebookViews(&catalog);
  if (!added.ok()) {
    std::fprintf(stderr, "view registration failed: %s\n",
                 added.status().ToString().c_str());
    return 1;
  }

  fdc::fb::AuditResult result = fdc::fb::RunFacebookAudit(catalog);
  std::printf("%s\n", fdc::fb::RenderTable2(result).c_str());

  if (result.inconsistencies.size() != 6 ||
      !result.labeler_mismatches.empty() || result.total_views != 42) {
    std::fprintf(stderr, "audit did not reproduce the paper's Table 2\n");
    return 1;
  }
  std::printf("OK: reproduced Table 2 (6/42 inconsistent, labeler clean)\n");
  return 0;
}
