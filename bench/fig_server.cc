// Socket serving benchmark: closed-loop load against the disclosure
// server over loopback, measuring end-to-end wire throughput (decode →
// coalesced SubmitBatch → encode) and request tail latency.
//
// Series:
//   * ServerLoad/pipelined/conns/N — N connections, each pipelining
//     kPipeline template submits per flush (the shape the per-wake
//     coalescing layer is designed for). Counter: decisions_per_second.
//     The process *hard-fails* if any response is missing, reordered onto
//     the wrong connection, or a protocol error — the throughput number is
//     only meaningful if every submitted request produced exactly one
//     decision.
//   * ServerLoad/latency — one connection, strict call/response (each
//     submit waits for its decision): the unloaded full-stack RTT.
//     Counters: p50_us / p99_us / p999_us.
//
// By default each run spins up an in-process server (1 worker — the CI
// container is single-core; client and server share it, so the closed
// loop ping-pongs through the loopback socket). Set
// FDC_SERVER_CONNECT=host:port to drive an external disclosure_serverd
// daemon instead (the CI integration job does this); the daemon must host
// the §7.2 Facebook catalog.
//
// bench/run_benchmarks.sh folds the series into BENCH_hotpath.json as the
// `fig_server` block next to the 1M decisions/s acceptance floor.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "cq/printer.h"
#include "engine/disclosure_engine.h"
#include "server/client.h"
#include "server/disclosure_server.h"
#include "server/failpoints.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr int kTemplates = 64;   // registered per connection
constexpr int kPipeline = 256;   // submits per connection per flush
constexpr int kPoolSize = 512;
constexpr int kSubqueries = 2;

const std::vector<cq::ConjunctiveQuery>& Pool() {
  static const std::vector<cq::ConjunctiveQuery> pool =
      MakeQueryPool(kSubqueries, kPoolSize, 0x5e43ULL);
  return pool;
}

/// The serving endpoint: an in-process DisclosureServer by default, or an
/// external daemon named by FDC_SERVER_CONNECT=host:port.
struct ServeEndpoint {
  std::unique_ptr<engine::DisclosureEngine> engine;  // in-process only
  std::unique_ptr<server::DisclosureServer> server;  // in-process only
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool external = false;

  ServeEndpoint() {
    if (const char* target = std::getenv("FDC_SERVER_CONNECT")) {
      const std::string spec(target);
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "FDC_SERVER_CONNECT must be host:port, got %s\n",
                     target);
        std::abort();
      }
      host = spec.substr(0, colon);
      port = static_cast<uint16_t>(std::stoi(spec.substr(colon + 1)));
      external = true;
      return;
    }
    workload::PolicyOptions options;
    options.max_partitions = 5;
    options.max_elements_per_partition = 15;
    workload::PolicyGenerator generator(FacebookEnv::Get().catalog.get(),
                                        options, 0x5107'e002);
    // Warm the frozen label tier with the template pool: registered
    // templates re-parsed from Datalog are structurally identical, so
    // serving-time labeling resolves lock-free (the deployment shape — a
    // daemon pre-labels its app ecosystem's known templates at startup).
    const auto& pool = Pool();
    engine = std::make_unique<engine::DisclosureEngine>(
        /*db=*/nullptr, FacebookEnv::Get().catalog.get(), generator.Next(),
        engine::EngineOptions{}, std::span(pool.data(), pool.size()));
    server::ServerOptions sopts;
    sopts.workers = 1;
    server = std::make_unique<server::DisclosureServer>(engine.get(), sopts);
    Status s = server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
      std::abort();
    }
    port = server->port();
  }

  static ServeEndpoint& Get() {
    static ServeEndpoint endpoint;
    return endpoint;
  }
};

void Die(const char* what, const Status& s) {
  std::fprintf(stderr, "fig_server: %s: %s\n", what, s.ToString().c_str());
  std::abort();
}

/// Connects one client and registers the template pool prefix.
server::BlockingClient MakeClient(const std::string& principal) {
  ServeEndpoint& ep = ServeEndpoint::Get();
  server::BlockingClient client;
  if (Status s = client.Connect(ep.host, ep.port, principal); !s.ok()) {
    Die("connect", s);
  }
  const auto& pool = Pool();
  const cq::Schema& schema = FacebookEnv::Get().schema;
  for (int t = 0; t < kTemplates; ++t) {
    if (Status s = client.RegisterTemplate(
            static_cast<uint32_t>(t), cq::ToDatalog(pool[t], schema));
        !s.ok()) {
      Die("register template", s);
    }
  }
  return client;
}

// Unique principal names across benchmark runs so every run starts from
// fresh monitor state instead of a saturated wall.
std::string NextPrincipal() {
  static int serial = 0;
  return "load-" + std::to_string(serial++);
}

// Reference series without sockets: the same cross-connection batch shape
// handed straight to SubmitCoalesced. The gap between this and
// ServerLoad/pipelined is the wire cost (decode + encode + syscalls +
// scheduler ping-pong on a shared core).
void BM_SubmitCoalescedOnly(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  workload::PolicyOptions options;
  options.max_partitions = 5;
  options.max_elements_per_partition = 15;
  workload::PolicyGenerator generator(FacebookEnv::Get().catalog.get(),
                                      options, 0x5107'e002);
  const auto& pool = Pool();
  engine::DisclosureEngine engine(
      /*db=*/nullptr, FacebookEnv::Get().catalog.get(), generator.Next(), {},
      std::span(pool.data(), pool.size()));
  std::vector<std::string> principals;
  for (int i = 0; i < conns; ++i) principals.push_back(NextPrincipal());
  Rng rng(0xe6'917eULL);
  std::vector<engine::DisclosureEngine::SubmitRequest> requests;
  std::vector<bool> decisions;
  std::vector<uint64_t> epochs;
  for (auto _ : state) {
    requests.clear();
    for (int i = 0; i < conns; ++i) {
      for (int j = 0; j < kPipeline; ++j) {
        requests.push_back({principals[i], &pool[rng.Below(kTemplates)]});
      }
    }
    engine.SubmitCoalesced(requests, &decisions, &epochs);
    benchmark::DoNotOptimize(decisions);
  }
  const int per_iteration = conns * kPipeline;
  state.SetItemsProcessed(state.iterations() * per_iteration);
  state.counters["decisions_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_iteration,
      benchmark::Counter::kIsRate);
}

void BM_ServerPipelined(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  std::vector<server::BlockingClient> clients;
  clients.reserve(conns);
  for (int i = 0; i < conns; ++i) clients.push_back(MakeClient(NextPrincipal()));

  Rng rng(0xc0'77ec7 + static_cast<uint64_t>(conns));
  uint64_t submitted = 0;
  uint64_t answered = 0;
  uint64_t batches_before = 0;
  uint64_t decisions_before = 0;
  if (!ServeEndpoint::Get().external) {
    const auto before = ServeEndpoint::Get().server->stats();
    batches_before = before.coalesced_batches;
    decisions_before = before.decisions;
  }
  for (auto _ : state) {
    // Closed loop: burst every connection's pipeline, then drain every
    // connection's responses. One burst lands as few epoll wakes on the
    // server, so the decode batch spans connections.
    for (auto& client : clients) {
      for (int j = 0; j < kPipeline; ++j) {
        client.QueueSubmit(static_cast<uint32_t>(rng.Below(kTemplates)));
      }
      if (Status s = client.Flush(); !s.ok()) Die("flush", s);
      submitted += kPipeline;
    }
    for (auto& client : clients) {
      for (int j = 0; j < kPipeline; ++j) {
        server::ClientResponse resp;
        if (Status s = client.ReadResponse(&resp); !s.ok()) Die("read", s);
        if (resp.type != server::FrameType::kDecision) {
          std::fprintf(stderr,
                       "fig_server: frame %d of pipeline was type %u, not a "
                       "decision\n",
                       j, static_cast<unsigned>(resp.type));
          std::abort();
        }
        ++answered;
      }
    }
  }
  // The acceptance gate: every submit produced exactly one decision on its
  // own connection, in order (ReadResponse would have desynced otherwise).
  if (answered != submitted) {
    std::fprintf(stderr, "fig_server: %llu submits but %llu decisions\n",
                 static_cast<unsigned long long>(submitted),
                 static_cast<unsigned long long>(answered));
    std::abort();
  }
  const int per_iteration = conns * kPipeline;
  state.SetItemsProcessed(state.iterations() * per_iteration);
  state.counters["decisions_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_iteration,
      benchmark::Counter::kIsRate);
  if (!ServeEndpoint::Get().external) {
    const auto stats = ServeEndpoint::Get().server->stats();
    state.counters["max_coalesced_batch"] = benchmark::Counter(
        static_cast<double>(stats.max_coalesced_batch));
    const uint64_t batches = stats.coalesced_batches - batches_before;
    state.counters["avg_coalesced_batch"] = benchmark::Counter(
        batches == 0 ? 0.0
                     : static_cast<double>(stats.decisions - decisions_before) /
                           static_cast<double>(batches));
  }
}

void BM_ServerLatency(benchmark::State& state) {
  server::BlockingClient client = MakeClient(NextPrincipal());
  Rng rng(0x1a7e'c1ULL);
  std::vector<double> samples_us;
  samples_us.reserve(1 << 16);
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    server::ClientResponse resp;
    if (Status s = client.Submit(
            static_cast<uint32_t>(rng.Below(kTemplates)), &resp);
        !s.ok()) {
      Die("submit", s);
    }
    if (resp.type != server::FrameType::kDecision) {
      std::fprintf(stderr, "fig_server: latency probe got frame type %u\n",
                   static_cast<unsigned>(resp.type));
      std::abort();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  std::sort(samples_us.begin(), samples_us.end());
  auto percentile = [&](double p) {
    if (samples_us.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(p * (samples_us.size() - 1));
    return samples_us[idx];
  };
  state.SetItemsProcessed(state.iterations());
  state.counters["decisions_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = benchmark::Counter(percentile(0.50));
  state.counters["p99_us"] = benchmark::Counter(percentile(0.99));
  state.counters["p999_us"] = benchmark::Counter(percentile(0.999));
}

// Degraded-mode series: the same closed-loop burst shape as /pipelined,
// but with ~1% benign (EINTR/EAGAIN/short IO) and ~0.2% lethal
// (ECONNRESET/EPIPE) faults injected into the server's recv/send path,
// and clients that reconnect (fresh session + template re-registration)
// whenever a lethal fault kills their connection mid-burst. Submits lost
// with a killed connection are not counted — decisions_per_second is
// *answered* decisions, so the clean/degraded ratio in BENCH_hotpath.json
// honestly prices both the fault overhead and the reconnect churn.
// In-process only (the failpoints live in this process); registered last
// so the clean series always runs first.
void BM_ServerDegraded(benchmark::State& state) {
  if (ServeEndpoint::Get().external) {
    state.SkipWithError("degraded series needs the in-process server");
    return;
  }
  const int conns = static_cast<int>(state.range(0));

  server::RetryOptions retry;
  retry.max_attempts = 12;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 20;
  // Registration (64 call/response roundtrips per client) runs under the
  // storm too, so clients are built with the retry machinery armed.
  auto make_degraded_client = [&](const std::string& principal) {
    server::BlockingClient client;
    client.EnableRetry(retry);
    if (Status s = client.SetCallDeadline(5000); !s.ok()) Die("deadline", s);
    Status s = Status::OK();
    for (int attempt = 0; attempt < 8; ++attempt) {
      s = client.Connect(ServeEndpoint::Get().host, ServeEndpoint::Get().port,
                         principal);
      if (s.ok()) break;
    }
    if (!s.ok()) Die("connect", s);
    const auto& pool = Pool();
    const cq::Schema& schema = FacebookEnv::Get().schema;
    for (int t = 0; t < kTemplates; ++t) {
      if (Status st = client.RegisterTemplate(
              static_cast<uint32_t>(t), cq::ToDatalog(pool[t], schema));
          !st.ok()) {
        Die("register template", st);
      }
    }
    return client;
  };

  server::failpoints::Config cfg;
  cfg.seed = 0xdecadeULL + static_cast<uint64_t>(conns);
  cfg.rate = 0.01;
  cfg.lethal_rate = 0.002;
  cfg.short_io = 0.5;
  cfg.ops = server::failpoints::kRecv | server::failpoints::kSend;
  server::failpoints::ScopedFailpoints scoped(cfg);

  std::vector<std::string> principals;
  std::vector<server::BlockingClient> clients;
  clients.reserve(conns);
  for (int i = 0; i < conns; ++i) {
    principals.push_back(NextPrincipal());
    clients.push_back(make_degraded_client(principals.back()));
  }

  Rng rng(0xdeadULL + static_cast<uint64_t>(conns));
  uint64_t answered = 0;
  uint64_t reconnects = 0;
  for (auto _ : state) {
    for (int i = 0; i < conns; ++i) {
      // Pipelined bursts are outside the retry machinery by design: when
      // a lethal fault kills the connection mid-burst the unanswered
      // remainder is abandoned and the client rebuilt — the recovery
      // policy a real pipelining caller would implement.
      auto& client = clients[static_cast<size_t>(i)];
      for (int j = 0; j < kPipeline; ++j) {
        client.QueueSubmit(static_cast<uint32_t>(rng.Below(kTemplates)));
      }
      bool alive = client.Flush().ok();
      for (int j = 0; alive && j < kPipeline; ++j) {
        server::ClientResponse resp;
        if (!client.ReadResponse(&resp).ok()) {
          alive = false;
          break;
        }
        if (resp.type == server::FrameType::kDecision) ++answered;
      }
      if (!alive) {
        ++reconnects;
        clients[static_cast<size_t>(i)] =
            make_degraded_client(principals[static_cast<size_t>(i)]);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(answered));
  state.counters["decisions_per_second"] = benchmark::Counter(
      static_cast<double>(answered), benchmark::Counter::kIsRate);
  state.counters["reconnects"] =
      benchmark::Counter(static_cast<double>(reconnects));
  const server::failpoints::Stats fstats = server::failpoints::Current();
  state.counters["injected_faults"] =
      benchmark::Counter(static_cast<double>(fstats.faults));
}

BENCHMARK(BM_SubmitCoalescedOnly)
    ->Arg(1)
    ->Arg(16)
    ->Name("ServerLoad/engine_only/conns");
BENCHMARK(BM_ServerPipelined)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Name("ServerLoad/pipelined/conns");
BENCHMARK(BM_ServerLatency)
    ->UseRealTime()
    ->Name("ServerLoad/latency");
BENCHMARK(BM_ServerDegraded)
    ->Arg(4)
    ->UseRealTime()
    ->Name("ServerLoad/degraded/conns");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
