// Shared setup for the benchmark harness: the Facebook schema/catalog of
// §7.2, pregenerated query pools, and synthetic wide schemas for the
// relation-count ablation (footnote 3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cq/query.h"
#include "cq/schema.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"
#include "workload/query_generator.h"

namespace fdc::bench {

/// The §7.2 environment: schema + 37-view catalog, built once.
struct FacebookEnv {
  cq::Schema schema;
  std::unique_ptr<label::ViewCatalog> catalog;

  FacebookEnv() {
    schema = fb::BuildFacebookSchema();
    catalog = std::make_unique<label::ViewCatalog>(&schema);
    auto added = fb::RegisterFacebookViews(catalog.get());
    if (!added.ok()) std::abort();
  }

  static const FacebookEnv& Get() {
    static const FacebookEnv env;
    return env;
  }
};

/// Pregenerates `count` workload queries with `subqueries` stress factor.
inline std::vector<cq::ConjunctiveQuery> MakeQueryPool(int subqueries,
                                                       int count,
                                                       uint64_t seed) {
  workload::GeneratorOptions options;
  options.subqueries = subqueries;
  workload::QueryGenerator generator(&FacebookEnv::Get().schema, options,
                                     seed);
  std::vector<cq::ConjunctiveQuery> pool;
  pool.reserve(count);
  for (int i = 0; i < count; ++i) pool.push_back(generator.Next());
  return pool;
}

/// A synthetic schema with `num_relations` Album-like relations (footnote 3:
/// "we tried increasing the total number of relations to 1,000 while keeping
/// the number of security views per relation constant").
struct SyntheticEnv {
  cq::Schema schema;
  std::unique_ptr<label::ViewCatalog> catalog;

  explicit SyntheticEnv(int num_relations) {
    for (int r = 0; r < num_relations; ++r) {
      auto id = schema.AddRelation(
          "T" + std::to_string(r),
          {"uid", "viewer_rel", "c1", "c2", "c3", "c4"});
      if (!id.ok()) std::abort();
    }
    catalog = std::make_unique<label::ViewCatalog>(&schema);
    for (int r = 0; r < num_relations; ++r) {
      const std::vector<std::string> payload = {"c1", "c2", "c3", "c4"};
      const std::vector<std::string> pub = {"uid", "viewer_rel"};
      auto a = catalog->AddView(
          "pub" + std::to_string(r),
          fb::MakeProjectionView(schema, r, pub, ""));
      auto b = catalog->AddView(
          "own" + std::to_string(r),
          fb::MakeProjectionView(schema, r, payload, fb::kSelf));
      auto c = catalog->AddView(
          "frd" + std::to_string(r),
          fb::MakeProjectionView(schema, r, payload, fb::kFriendRel));
      if (!a.ok() || !b.ok() || !c.ok()) std::abort();
    }
  }
};

/// Converts benchmark items/sec into the paper's y-axis unit.
inline double SecondsPerMillion(double items_per_second) {
  return 1e6 / items_per_second;
}

}  // namespace fdc::bench
