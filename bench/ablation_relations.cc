// Ablation A3: schema width (footnote 3 of §7.2).
//
// "In preliminary tests on synthetic data, we tried increasing the total
// number of relations to 1,000 while keeping the number of security views
// per relation constant; the total number of relations did not have any
// appreciable impact on the hash-based disclosure labelers' throughput."
//
// The sweep labels identical single-relation queries against catalogs of 8,
// 64, 256 and 1000 relations (3 views each). The hashed labeler should stay
// flat; the baseline's linear view scan degrades with catalog size.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

namespace fdc::bench {
namespace {

struct Env {
  std::unique_ptr<SyntheticEnv> synthetic;
  std::vector<cq::ConjunctiveQuery> pool;
};

Env* EnvFor(int num_relations) {
  static int current = -1;
  static Env env;
  if (current == num_relations) return &env;
  env.synthetic = std::make_unique<SyntheticEnv>(num_relations);
  workload::GeneratorOptions options;
  workload::QueryGenerator generator(&env.synthetic->schema, options,
                                     0xab1a'0003 + num_relations);
  env.pool.clear();
  for (int i = 0; i < 1024; ++i) env.pool.push_back(generator.Next());
  current = num_relations;
  return &env;
}

void BM_BaselineByRelations(benchmark::State& state) {
  Env* env = EnvFor(static_cast<int>(state.range(0)));
  label::LabelerPipeline pipeline(env->synthetic->catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelBaseline(env->pool[i]));
    i = (i + 1) % env->pool.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HashedByRelations(benchmark::State& state) {
  Env* env = EnvFor(static_cast<int>(state.range(0)));
  label::LabelerPipeline pipeline(env->synthetic->catalog.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.LabelHashed(env->pool[i]));
    i = (i + 1) % env->pool.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void RelationAxis(benchmark::internal::Benchmark* bench) {
  for (int n : {8, 64, 256, 1000}) bench->Arg(n);
}

BENCHMARK(BM_BaselineByRelations)->Apply(RelationAxis)
    ->Name("AblationRelations/baseline/relations");
BENCHMARK(BM_HashedByRelations)->Apply(RelationAxis)
    ->Name("AblationRelations/hashed/relations");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
