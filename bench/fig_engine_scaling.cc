// Engine scaling sweep: aggregate enforcement throughput of one shared
// DisclosureEngine as serving threads grow 1 → N on the distinct-principal
// workload (each thread drives its own principals, so per-principal shard
// locks never contend across threads; labeling contends only on the shared
// frozen/overlay tiers, which are read-mostly after warmup).
//
// Series (real-time rates, counters summed across threads):
//   * EngineScaling/submit_batch/threads/N — SubmitBatch of 256-query
//     batches, the production serving shape;
//   * EngineScaling/submit/threads/N — per-query Submit, the worst case
//     for lock overhead (one shard acquisition per query).
// bench/run_benchmarks.sh folds these into BENCH_hotpath.json and computes
// engine_scaling_efficiency = rate(N) / (N × rate(1)) per series. Note the
// efficiency ceiling is min(cores, N) / N — on a single-core container the
// sweep degenerates to ≈ 1/N and only measures synchronization overhead.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.h"
#include "common/epoch.h"
#include "engine/disclosure_engine.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr int kPoolSize = 2048;
constexpr int kBatchSize = 256;
constexpr int kSubqueries = 2;  // 6-atom bucket: mid-size workload queries
constexpr int kPrincipalsPerThread = 16;

const std::vector<cq::ConjunctiveQuery>& Pool() {
  static const std::vector<cq::ConjunctiveQuery> pool =
      MakeQueryPool(kSubqueries, kPoolSize, 0xe4'611eULL);
  return pool;
}

const policy::SecurityPolicy& Policy() {
  static const policy::SecurityPolicy policy = [] {
    workload::PolicyOptions options;
    options.max_partitions = 5;
    options.max_elements_per_partition = 15;
    workload::PolicyGenerator generator(FacebookEnv::Get().catalog.get(),
                                        options, 0x5107'e002);
    return generator.Next();
  }();
  return policy;
}

// One engine shared by every thread of a benchmark run, pre-warmed so the
// sweep measures steady-state serving, not first-touch labeling.
engine::DisclosureEngine& SharedEngine() {
  static engine::DisclosureEngine* engine = [] {
    const auto& pool = Pool();
    auto* e = new engine::DisclosureEngine(
        /*db=*/nullptr, FacebookEnv::Get().catalog.get(), Policy(), {},
        std::span(pool.data(), pool.size()));
    return e;
  }();
  return *engine;
}

void ReportRate(benchmark::State& state, int queries_per_iteration) {
  state.SetItemsProcessed(state.iterations() * queries_per_iteration);
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * queries_per_iteration,
      benchmark::Counter::kIsRate);
}

void BM_EngineSubmitBatch(benchmark::State& state) {
  engine::DisclosureEngine& engine = SharedEngine();
  const auto& pool = Pool();
  const int thread = state.thread_index();
  size_t i = static_cast<size_t>(thread) * 37 % kPoolSize;
  int principal_serial = 0;
  for (auto _ : state) {
    if (i + kBatchSize > pool.size()) i = 0;
    // Distinct principals per thread, rotated so monitor state keeps
    // narrowing without growing the shard map unboundedly.
    const std::string principal =
        "t" + std::to_string(thread) + "-p" +
        std::to_string(principal_serial++ % kPrincipalsPerThread);
    std::span<const cq::ConjunctiveQuery> batch(pool.data() + i, kBatchSize);
    benchmark::DoNotOptimize(engine.SubmitBatch(principal, batch));
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
}

void BM_EngineSubmit(benchmark::State& state) {
  engine::DisclosureEngine& engine = SharedEngine();
  const auto& pool = Pool();
  const int thread = state.thread_index();
  size_t i = static_cast<size_t>(thread) * 37 % kPoolSize;
  int principal_serial = 0;
  for (auto _ : state) {
    if (i + kBatchSize > pool.size()) i = 0;
    const std::string principal =
        "t" + std::to_string(thread) + "-p" +
        std::to_string(principal_serial++ % kPrincipalsPerThread);
    for (int j = 0; j < kBatchSize; ++j) {
      benchmark::DoNotOptimize(engine.Submit(principal, pool[i + j]));
    }
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
}

BENCHMARK(BM_EngineSubmitBatch)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("EngineScaling/submit_batch/threads");
BENCHMARK(BM_EngineSubmit)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("EngineScaling/submit/threads");

// Reclaim ablation (PR 10): the EBR wait-free read path vs the locked
// oracle on the identical per-query Submit shape. Unlike the scaling
// series above, these engines take NO frozen warmup — every label goes
// through the dynamic overlay, so the measured tier is exactly the one the
// refactor rewrote (epoch-pinned snapshot load + lock-free overlay chunk
// vs shared_ptr-under-rwlock + reader-locked overlay). A manual Explain
// warm pass (overlay_min_publish=1 publishes per novel label) makes the
// steady state all warm hits. run_benchmarks.sh computes
// engine_ebr_vs_locked ratios with a 0.95x single-thread floor and lifts
// the overlay_reader_locks / epoch_retires counters into
// BENCH_hotpath.json — EBR must report zero reader locks.
engine::DisclosureEngine* MakeReclaimEngine(epoch::ReclaimChoice choice) {
  const auto& pool = Pool();
  engine::EngineOptions options;
  options.reclaim = choice;
  options.labeler.overlay_min_publish = 1;
  auto* e = new engine::DisclosureEngine(
      /*db=*/nullptr, FacebookEnv::Get().catalog.get(), Policy(), options);
  for (const auto& query : pool) (void)e->Explain(query);
  return e;
}

engine::DisclosureEngine& EbrEngine() {
  static engine::DisclosureEngine* e =
      MakeReclaimEngine(epoch::ReclaimChoice::kEbr);
  return *e;
}

engine::DisclosureEngine& LockedEngine() {
  static engine::DisclosureEngine* e =
      MakeReclaimEngine(epoch::ReclaimChoice::kLocked);
  return *e;
}

void RunReclaimSeries(benchmark::State& state,
                      engine::DisclosureEngine& engine) {
  const auto& pool = Pool();
  const int thread = state.thread_index();
  size_t i = static_cast<size_t>(thread) * 37 % kPoolSize;
  int principal_serial = 0;
  for (auto _ : state) {
    if (i + kBatchSize > pool.size()) i = 0;
    const std::string principal =
        "t" + std::to_string(thread) + "-p" +
        std::to_string(principal_serial++ % kPrincipalsPerThread);
    for (int j = 0; j < kBatchSize; ++j) {
      benchmark::DoNotOptimize(engine.Submit(principal, pool[i + j]));
    }
    i += kBatchSize;
  }
  ReportRate(state, kBatchSize);
  if (thread == 0) {
    const auto stats = engine.Stats();
    state.counters["overlay_reader_locks"] =
        static_cast<double>(stats.labeler.overlay_reader_locks);
    state.counters["epoch_retires"] = static_cast<double>(stats.ebr.retired);
  }
}

void BM_EngineReclaimEbr(benchmark::State& state) {
  RunReclaimSeries(state, EbrEngine());
}

void BM_EngineReclaimLocked(benchmark::State& state) {
  RunReclaimSeries(state, LockedEngine());
}

BENCHMARK(BM_EngineReclaimEbr)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("EngineReclaim/ebr/threads");
BENCHMARK(BM_EngineReclaimLocked)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Name("EngineReclaim/locked/threads");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
