// Figure 6: policy checker performance.
//
// Reproduces the paper's six series: {1-way, 5-way partitions} × {1K, 50K,
// 1M principals}, sweeping the maximum number of single-atom views per
// partition (x-axis 5..50). Each measured operation is one §6.2 stateful
// Submit of a pre-labeled 1–3 atom query against its principal's policy;
// `sec_per_1M_labels` mirrors the paper's "time to analyze a million
// queries" axis.
//
// Policies are randomly generated per principal (seeded) and stored in the
// flat PolicyStore; the label stream is generated once and shared.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "policy/policy_store.h"
#include "workload/label_stream.h"
#include "workload/policy_generator.h"

namespace fdc::bench {
namespace {

constexpr uint32_t kMaxPrincipals = 1'000'000;
constexpr int kStreamSize = 1 << 17;  // labels in the shared stream

const std::vector<workload::LabeledQuery>& Stream() {
  static const std::vector<workload::LabeledQuery> stream = [] {
    label::LabelerPipeline pipeline(FacebookEnv::Get().catalog.get());
    return workload::GenerateLabelStream(pipeline, kStreamSize,
                                         kMaxPrincipals, 0xf16'6eedULL);
  }();
  return stream;
}

struct StoreKey {
  uint32_t principals;
  int partitions;
  int elements;
  bool operator==(const StoreKey& o) const {
    return principals == o.principals && partitions == o.partitions &&
           elements == o.elements;
  }
};

// One store lives at a time: the 1M-principal configurations are ~160 MB
// each, so caching all of them would waste memory for no measurement gain.
policy::PolicyStore* StoreFor(const StoreKey& key) {
  static StoreKey current{0, 0, 0};
  static std::unique_ptr<policy::PolicyStore> store;
  if (store != nullptr && current == key) return store.get();

  const FacebookEnv& env = FacebookEnv::Get();
  workload::PolicyOptions options;
  options.max_partitions = key.partitions;
  options.max_elements_per_partition = key.elements;
  workload::PolicyGenerator generator(
      env.catalog.get(), options,
      0x9'0110'5eedULL ^ key.principals ^ (key.partitions * 131) ^
          (key.elements * 17));
  store = std::make_unique<policy::PolicyStore>(env.schema.NumRelations());
  store->Reserve(key.principals, key.partitions);
  for (uint32_t p = 0; p < key.principals; ++p) {
    if (!store->AddPrincipal(generator.Next()).ok()) std::abort();
  }
  current = key;
  return store.get();
}

void BM_PolicyChecker(benchmark::State& state) {
  const StoreKey key{static_cast<uint32_t>(state.range(0)),
                     static_cast<int>(state.range(1)),
                     static_cast<int>(state.range(2))};
  policy::PolicyStore* store = StoreFor(key);
  store->ResetStates();
  const auto& stream = Stream();

  size_t i = 0;
  int64_t accepted = 0;
  for (auto _ : state) {
    const workload::LabeledQuery& lq = stream[i];
    accepted += store->Submit(lq.principal % key.principals, lq.label) ? 1 : 0;
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sec_per_1M_labels"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["accept_rate"] =
      static_cast<double>(accepted) / static_cast<double>(state.iterations());
}

void Fig6Axes(benchmark::internal::Benchmark* bench) {
  for (int partitions : {1, 5}) {
    for (uint32_t principals : {1'000u, 50'000u, 1'000'000u}) {
      for (int elements : {5, 15, 30, 50}) {
        bench->Args({static_cast<int64_t>(principals), partitions, elements});
      }
    }
  }
}

BENCHMARK(BM_PolicyChecker)
    ->Apply(Fig6Axes)
    ->Name("Fig6/principals_partitions_maxelems");

}  // namespace
}  // namespace fdc::bench

BENCHMARK_MAIN();
