// End-to-end disclosure-controlled database (Figure 2): untrusted apps issue
// SQL against a guarded in-memory database; every query is labeled, checked
// against the principal's policy partitions, and either evaluated or
// refused — including cumulative (Chinese-Wall) tracking across queries.
//
//   $ ./examples/end_to_end_monitor
#include <cstdio>
#include <string>
#include <vector>

#include "storage/guarded_database.h"

using namespace fdc;

int main() {
  // Alice's dataset from Figure 1(a).
  cq::Schema schema;
  (void)schema.AddRelation("Meetings", {"time", "person"});
  (void)schema.AddRelation("Contacts", {"person", "email", "position"});

  storage::Database db(&schema);
  (void)db.Insert("Meetings", {"9", "Jim"});
  (void)db.Insert("Meetings", {"10", "Cathy"});
  (void)db.Insert("Meetings", {"12", "Bob"});
  (void)db.Insert("Contacts", {"Jim", "jim@e.com", "Manager"});
  (void)db.Insert("Contacts", {"Cathy", "cathy@e.com", "Intern"});
  (void)db.Insert("Contacts", {"Bob", "bob@e.com", "Consultant"});

  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("meeting_times", "V(x) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");

  // Alice's policy: an app may see her meetings or her contacts, not both
  // (§2.2's motivating policy).
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"meetings_side", {catalog.FindByName("meetings_full")->id}},
                {"contacts_side", {catalog.FindByName("contacts_full")->id}}});
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  storage::GuardedDatabase guarded(&db, &catalog, &*policy);

  struct Step {
    const char* principal;
    const char* sql;
  };
  const std::vector<Step> session = {
      {"scheduler", "SELECT time FROM Meetings"},
      {"scheduler", "SELECT time FROM Meetings WHERE person = 'Cathy'"},
      {"scheduler", "SELECT email FROM Contacts"},  // wall: refused
      {"crm", "SELECT person, email FROM Contacts WHERE position = 'Intern'"},
      {"crm", "SELECT time FROM Meetings"},         // wall: refused
      {"crm",
       "SELECT c.email FROM Contacts c JOIN Meetings m "
       "ON c.person = m.person"},                   // needs both: refused
  };

  for (const Step& step : session) {
    std::printf("[%-9s] %s\n", step.principal, step.sql);
    auto rows = guarded.QuerySql(step.principal, step.sql);
    if (!rows.ok()) {
      std::printf("            -> %s\n", rows.status().ToString().c_str());
      continue;
    }
    std::printf("            -> %zu row(s):", rows->size());
    for (const storage::Tuple& row : *rows) {
      std::printf(" (");
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", row[i].c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
  }

  std::printf(
      "\nscheduler stayed on the meetings side of the wall, crm on the\n"
      "contacts side; the cross join was refused for both reasons at once.\n");
  return 0;
}
