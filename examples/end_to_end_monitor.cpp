// End-to-end disclosure-controlled database (Figure 2), served by the
// shard-aware DisclosureEngine: untrusted apps issue SQL against a guarded
// in-memory database; every query is labeled, checked against the
// principal's policy partitions, and either evaluated or refused —
// including cumulative (Chinese-Wall) tracking across queries. The same
// engine instance could serve these requests from any number of threads;
// at the end we print its aggregated per-tier statistics, and then swap the
// policy to a new epoch to show cumulative state restarting atomically.
//
//   $ ./examples/end_to_end_monitor
#include <cstdio>
#include <string>
#include <vector>

#include "cq/sql_parser.h"
#include "engine/disclosure_engine.h"
#include "engine/stats_json.h"

using namespace fdc;

int main() {
  // Alice's dataset from Figure 1(a).
  cq::Schema schema;
  (void)schema.AddRelation("Meetings", {"time", "person"});
  (void)schema.AddRelation("Contacts", {"person", "email", "position"});

  storage::Database db(&schema);
  (void)db.Insert("Meetings", {"9", "Jim"});
  (void)db.Insert("Meetings", {"10", "Cathy"});
  (void)db.Insert("Meetings", {"12", "Bob"});
  (void)db.Insert("Contacts", {"Jim", "jim@e.com", "Manager"});
  (void)db.Insert("Contacts", {"Cathy", "cathy@e.com", "Intern"});
  (void)db.Insert("Contacts", {"Bob", "bob@e.com", "Consultant"});

  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("meetings_full", "V(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("meeting_times", "V(x) :- Meetings(x, y)");
  (void)catalog.AddViewText("contacts_full",
                            "V(x, y, z) :- Contacts(x, y, z)");

  // Alice's policy: an app may see her meetings or her contacts, not both
  // (§2.2's motivating policy).
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"meetings_side", {catalog.FindByName("meetings_full")->id}},
                {"contacts_side", {catalog.FindByName("contacts_full")->id}}});
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  // A bounded principal lifecycle: live monitor state is capped and idle
  // principals are swept after 8 idle ticks — evicted principals keep a
  // compact residual so a returning app resumes its narrowed state.
  engine::EngineOptions options;
  options.principals.max_principals = 1024;
  options.principals.idle_ttl_ticks = 8;
  engine::DisclosureEngine engine(&db, &catalog, *policy, options);

  struct Step {
    const char* principal;
    const char* sql;
  };
  const std::vector<Step> session = {
      {"scheduler", "SELECT time FROM Meetings"},
      {"scheduler", "SELECT time FROM Meetings WHERE person = 'Cathy'"},
      {"scheduler", "SELECT email FROM Contacts"},  // wall: refused
      {"crm", "SELECT person, email FROM Contacts WHERE position = 'Intern'"},
      {"crm", "SELECT time FROM Meetings"},         // wall: refused
      {"crm",
       "SELECT c.email FROM Contacts c JOIN Meetings m "
       "ON c.person = m.person"},                   // needs both: refused
  };

  auto run = [&engine](const Step& step) {
    std::printf("[%-9s] %s\n", step.principal, step.sql);
    auto rows = engine.QuerySql(step.principal, step.sql);
    if (!rows.ok()) {
      std::printf("            -> %s\n", rows.status().ToString().c_str());
      return;
    }
    std::printf("            -> %zu row(s):", rows->size());
    for (const storage::Tuple& row : *rows) {
      std::printf(" (");
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", row[i].c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
  };
  for (const Step& step : session) run(step);

  std::printf(
      "\nscheduler stayed on the meetings side of the wall, crm on the\n"
      "contacts side; the cross join was refused for both reasons at once.\n");

  // A policy update publishes a new epoch atomically: cumulative state
  // restarts, so crm can now pick the meetings side.
  auto meetings_only = policy::SecurityPolicy::Compile(
      catalog, {{"meetings_side", {catalog.FindByName("meetings_full")->id}}});
  if (meetings_only.ok()) {
    std::printf("\n-- policy swap: meetings side only (epoch %llu) --\n",
                static_cast<unsigned long long>(
                    engine.UpdatePolicy(*meetings_only)));
    run({"crm", "SELECT time FROM Meetings"});
  }

  // A burst of decisions for one principal goes through SubmitBatch: the
  // labeler buckets every dissected atom by relation and runs the batch
  // mask kernel once per bucket (SIMD-dispatched for wide relations),
  // which is what the batch/SIMD stats lines below count.
  {
    std::vector<cq::ConjunctiveQuery> burst;
    for (const char* sql :
         {"SELECT time FROM Meetings", "SELECT person FROM Meetings",
          "SELECT time FROM Meetings WHERE person = 'Bob'"}) {
      auto parsed = cq::ParseSql(sql, schema);
      if (parsed.ok()) burst.push_back(*std::move(parsed));
    }
    const std::vector<bool> decisions = engine.SubmitBatch("crm", burst);
    uint64_t ok = 0;
    for (const bool d : decisions) ok += d ? 1 : 0;
    std::printf("\n-- batched submit: %zu decisions (%llu accepted) --\n",
                decisions.size(), static_cast<unsigned long long>(ok));
  }

  // One maintenance sweep (normally driven by principal_sweep_interval).
  (void)engine.SweepPrincipals();

  // The engine's per-tier counters, in the one JSON schema shared with the
  // serving front end's /stats frame (engine/stats_json.h): what this
  // prints is byte-identical to what `DisclosureServer` answers on the
  // wire, so the same tooling parses both.
  std::printf("\nengine stats:\n%s\n",
              engine::StatsToJson(engine.Stats()).c_str());
  return 0;
}
