// disclosure_serverd: the engine as a standalone network daemon.
//
// Hosts the §7.2 Facebook environment (37-view catalog) behind
// server::DisclosureServer and serves the binary wire protocol until
// SIGINT/SIGTERM. The CI integration job and bench/fig_server's
// FDC_SERVER_CONNECT mode talk to this process.
//
//   $ ./examples/disclosure_serverd --port=7421 --workers=2
//   listening on 127.0.0.1:7421
//
//   $ ./examples/disclosure_serverd --smoke
//     # serve on an ephemeral port, run a self-check client session
//     # (hello, template, submits, /stats, ping), print the results and
//     # exit 0 iff every response matched expectations.
//
//   $ ./examples/disclosure_serverd --smoke-drain
//     # graceful-drain self-check: pipeline submits from several clients,
//     # Shutdown() mid-load, and exit 0 iff every in-flight submit was
//     # answered, every client observed kGoingAway, and nothing needed a
//     # forced close.
//
// SIGINT/SIGTERM trigger the same graceful drain: stop accepting, announce
// kGoingAway, answer everything already accepted, then exit.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cq/printer.h"
#include "engine/disclosure_engine.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/view_catalog.h"
#include "server/client.h"
#include "server/disclosure_server.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

using namespace fdc;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

int RunSmoke(server::DisclosureServer& srv, const std::string& datalog) {
  server::BlockingClient client;
  Status s = client.Connect("127.0.0.1", srv.port(), "smoke-app");
  if (!s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("hello ack: epoch=%llu\n",
              static_cast<unsigned long long>(client.epoch()));
  std::printf("template: %s\n", datalog.c_str());

  s = client.RegisterTemplate(0, datalog);
  if (!s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }
  int allowed = 0;
  for (int i = 0; i < 8; ++i) {
    server::ClientResponse resp;
    s = client.Submit(0, &resp, /*explain=*/i == 0);
    if (!s.ok() || resp.type != server::FrameType::kDecision) {
      std::fprintf(stderr, "submit %d failed: %s\n", i, s.ToString().c_str());
      return 1;
    }
    allowed += resp.allow ? 1 : 0;
    if (i == 0) {
      std::printf("decision: %s (epoch %llu)\n%s\n",
                  resp.allow ? "allow" : "refuse",
                  static_cast<unsigned long long>(resp.epoch),
                  resp.text.c_str());
    }
  }
  std::printf("8 submits, %d allowed\n", allowed);

  std::string stats_json;
  s = client.StatsJson(&stats_json);
  if (!s.ok() || stats_json.empty() || stats_json.front() != '{') {
    std::fprintf(stderr, "stats: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("stats: %s\n", stats_json.c_str());

  uint64_t epoch = 0;
  s = client.Ping(&epoch);
  if (!s.ok()) {
    std::fprintf(stderr, "ping: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pong: epoch=%llu\n", static_cast<unsigned long long>(epoch));

  const auto server_stats = srv.stats();
  if (server_stats.decisions != 8 || server_stats.protocol_errors != 0) {
    std::fprintf(stderr, "unexpected server stats: decisions=%llu errors=%llu\n",
                 static_cast<unsigned long long>(server_stats.decisions),
                 static_cast<unsigned long long>(server_stats.protocol_errors));
    return 1;
  }
  std::printf("smoke ok\n");
  return 0;
}

int RunSmokeDrain(server::DisclosureServer& srv, const std::string& datalog) {
  constexpr int kClients = 4;
  constexpr int kPipelined = 64;
  std::vector<server::BlockingClient> clients(kClients);
  for (int i = 0; i < kClients; ++i) {
    const std::string principal = "drain-app-" + std::to_string(i);
    Status s = clients[i].Connect("127.0.0.1", srv.port(), principal);
    if (!s.ok()) {
      std::fprintf(stderr, "connect %d: %s\n", i, s.ToString().c_str());
      return 1;
    }
    s = clients[i].RegisterTemplate(0, datalog);
    if (!s.ok()) {
      std::fprintf(stderr, "register %d: %s\n", i, s.ToString().c_str());
      return 1;
    }
    for (int q = 0; q < kPipelined; ++q) clients[i].QueueSubmit(0);
    s = clients[i].Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "flush %d: %s\n", i, s.ToString().c_str());
      return 1;
    }
  }

  // Shut down while every client's submits are in flight. The drain
  // contract: each submit still gets its decision, each client sees
  // kGoingAway, and once the peers hang up the server exits on its own.
  std::thread shutdown_thread([&srv] { srv.Shutdown(); });
  int answered = 0;
  bool all_goaway = true;
  int rc = 0;
  for (int i = 0; i < kClients; ++i) {
    for (int q = 0; q < kPipelined && rc == 0;) {
      server::ClientResponse resp;
      Status s = clients[i].ReadResponse(&resp);
      if (!s.ok()) {
        std::fprintf(stderr, "client %d response %d: %s\n", i, q,
                     s.ToString().c_str());
        rc = 1;
        break;
      }
      if (resp.type == server::FrameType::kGoingAway) continue;
      if (resp.type != server::FrameType::kDecision) {
        std::fprintf(stderr, "client %d: unexpected frame type %u\n", i,
                     static_cast<unsigned>(resp.type));
        rc = 1;
        break;
      }
      ++q;
      ++answered;
    }
    // The announcement may trail the final decision; it is staged for
    // every live connection, so one more read must produce it.
    if (rc == 0 && !clients[i].saw_going_away()) {
      server::ClientResponse resp;
      Status s = clients[i].ReadResponse(&resp);
      if (!s.ok() || resp.type != server::FrameType::kGoingAway) {
        std::fprintf(stderr, "client %d never saw kGoingAway\n", i);
        rc = 1;
      }
    }
    all_goaway = all_goaway && clients[i].saw_going_away();
    clients[i].Close();  // our side of the drain handshake
  }
  shutdown_thread.join();

  const auto st = srv.stats();
  std::printf(
      "drain: answered=%d goaway_sent=%llu drained=%llu forced=%llu\n",
      answered, static_cast<unsigned long long>(st.goaway_sent),
      static_cast<unsigned long long>(st.drained_connections),
      static_cast<unsigned long long>(st.drain_forced_closes));
  if (rc != 0) return rc;
  if (answered != kClients * kPipelined || !all_goaway ||
      st.goaway_sent < kClients || st.drain_forced_closes != 0) {
    std::fprintf(stderr, "drain contract violated\n");
    return 1;
  }
  std::printf("drain smoke ok\n");
  return 0;
}

/// Checked flag parsing, same rules as the FDC_FAILPOINTS parser
/// (server/failpoints.h): digits only, no sign, no trailing garbage, no
/// overflow past `max`. The std::stoi it replaces threw on garbage and
/// let "--port=-1" wrap through the uint16_t cast.
bool ParseUintFlag(const std::string& text, uint64_t max, uint64_t* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0' || v > max) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  bool smoke = false;
  bool smoke_drain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t value = 0;
    if (arg.rfind("--port=", 0) == 0 &&
        ParseUintFlag(arg.substr(7), 65535, &value)) {
      options.port = static_cast<uint16_t>(value);
    } else if (arg.rfind("--workers=", 0) == 0 &&
               ParseUintFlag(arg.substr(10), 1024, &value) && value >= 1) {
      options.workers = static_cast<int>(value);
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0 &&
               ParseUintFlag(arg.substr(18), 86'400'000, &value)) {
      options.idle_timeout_ms = static_cast<int>(value);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--smoke-drain") {
      smoke_drain = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--workers=N] "
                   "[--idle-timeout-ms=N] [--smoke] [--smoke-drain]\n",
                   argv[0]);
      return 2;
    }
  }

  // The served universe: §7.2 Facebook schema + catalog, a generated
  // multi-partition policy, no backing database (decision serving only).
  cq::Schema schema = fb::BuildFacebookSchema();
  label::ViewCatalog catalog(&schema);
  if (auto added = fb::RegisterFacebookViews(&catalog); !added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  workload::PolicyOptions policy_options;
  policy_options.max_partitions = 5;
  policy_options.max_elements_per_partition = 15;
  workload::PolicyGenerator generator(&catalog, policy_options, 0x5107'e002);
  // Pre-label the workload template pool into the frozen tier (same
  // generator seed bench/fig_server.cc draws its templates from), so
  // registered templates resolve lock-free instead of through the guarded
  // overlay — the daemon analogue of warming an app ecosystem's known
  // query templates at startup.
  workload::GeneratorOptions warmup_options;
  warmup_options.subqueries = 2;
  workload::QueryGenerator warmup_gen(&schema, warmup_options, 0x5e43ULL);
  std::vector<cq::ConjunctiveQuery> warmup;
  warmup.reserve(512);
  for (int i = 0; i < 512; ++i) warmup.push_back(warmup_gen.Next());
  engine::DisclosureEngine engine(/*db=*/nullptr, &catalog, generator.Next(),
                                  {}, std::span(warmup.data(), warmup.size()));

  server::DisclosureServer srv(&engine, options);
  if (Status s = srv.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", options.host.c_str(), srv.port());
  std::fflush(stdout);

  if (smoke || smoke_drain) {
    workload::QueryGenerator query_gen(&schema, {}, 0xfdc'5e1f);
    const std::string datalog = cq::ToDatalog(query_gen.Next(), schema);
    const int rc =
        smoke ? RunSmoke(srv, datalog) : RunSmokeDrain(srv, datalog);
    srv.Stop();
    return rc;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down\n");
  std::fflush(stdout);
  srv.Shutdown();  // graceful: announce, answer in-flight, then exit
  const auto st = srv.stats();
  std::printf("served %llu decisions over %llu connections\n",
              static_cast<unsigned long long>(st.decisions),
              static_cast<unsigned long long>(st.connections_accepted));
  std::printf("drained %llu connections (%llu forced, %llu goaway)\n",
              static_cast<unsigned long long>(st.drained_connections),
              static_cast<unsigned long long>(st.drain_forced_closes),
              static_cast<unsigned long long>(st.goaway_sent));
  return 0;
}
