// disclosure_shell — an interactive reference-monitor console.
//
// Loads a disclosure configuration (schema + security views + policies; see
// src/config/config.h for the format, a built-in demo config is used when no
// file is given), then reads commands from stdin:
//
//   sql <SELECT ...>        label & submit a SQL query as the current app
//   dl <Q(x) :- ...>        label & submit a Datalog query
//   app <name>              switch principal (fresh state per name)
//   policy <name>           switch the active policy (resets all principals)
//   explain                 re-explain the last decision in full
//   status                  cumulative disclosure of the current app
//   quit
//
// Example session:
//   $ printf 'sql SELECT time FROM Meetings\nsql SELECT email FROM Contacts\n' \
//       | ./examples/disclosure_shell
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "config/config.h"
#include "cq/datalog_parser.h"
#include "cq/printer.h"
#include "cq/sql_parser.h"
#include "label/pipeline.h"
#include "policy/cumulative.h"
#include "policy/explain.h"
#include "policy/reference_monitor.h"

using namespace fdc;

namespace {

constexpr const char* kDemoConfig = R"(
relation Meetings(time, person)
relation Contacts(person, email, position)

view meetings_full: V(x, y) :- Meetings(x, y)
view meeting_times: V(x) :- Meetings(x, y)
view contacts_full: V(x, y, z) :- Contacts(x, y, z)

policy chinese_wall {
  partition meetings_side: meetings_full, meeting_times
  partition contacts_side: contacts_full
}

policy times_only {
  partition times: meeting_times
}
)";

struct AppSession {
  policy::PrincipalState state;
  policy::CumulativeTracker tracker;
};

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemoConfig;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  auto config = config::ParseConfig(text);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  config::DisclosureConfig& c = **config;
  label::LabelerPipeline pipeline(c.catalog.get());

  const policy::SecurityPolicy* active = c.policies.front().second.num_partitions()
                                             ? &c.policies.front().second
                                             : nullptr;
  std::string active_name = c.policies.front().first;
  std::string current_app = "default";
  std::map<std::string, AppSession> sessions;
  auto session = [&]() -> AppSession& {
    auto [it, inserted] = sessions.try_emplace(current_app);
    if (inserted) {
      it->second.state = policy::ReferenceMonitor(active).InitialState();
    }
    return it->second;
  };

  std::printf("disclosure_shell — policy '%s', app '%s'. Type 'quit' to exit.\n",
              active_name.c_str(), current_app.c_str());
  policy::Explanation last_explanation;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) continue;
    std::string rest;
    std::getline(iss, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "app") {
      current_app = rest.empty() ? "default" : rest;
      std::printf("now acting as app '%s'\n", current_app.c_str());
      continue;
    }
    if (cmd == "policy") {
      const policy::SecurityPolicy* next = c.FindPolicy(rest);
      if (next == nullptr) {
        std::printf("unknown policy '%s' (available:", rest.c_str());
        for (const auto& [name, unused] : c.policies) {
          std::printf(" %s", name.c_str());
        }
        std::printf(")\n");
        continue;
      }
      active = next;
      active_name = rest;
      sessions.clear();
      std::printf("policy '%s' active; all app states reset\n", rest.c_str());
      continue;
    }
    if (cmd == "explain") {
      std::printf("%s", last_explanation.ToString().c_str());
      continue;
    }
    if (cmd == "status") {
      AppSession& s = session();
      std::printf("app '%s': %d answered quer%s; knows:\n",
                  current_app.c_str(), s.tracker.answered_queries(),
                  s.tracker.answered_queries() == 1 ? "y" : "ies");
      auto atoms = s.tracker.DescribeAtoms(*c.catalog);
      for (const auto& names : atoms) {
        std::printf("  - information bounded by:");
        for (const auto& n : names) std::printf(" %s", n.c_str());
        std::printf("\n");
      }
      if (atoms.empty()) std::printf("  (nothing yet)\n");
      continue;
    }

    if (cmd == "sql" || cmd == "dl") {
      Result<cq::ConjunctiveQuery> parsed =
          cmd == "sql" ? cq::ParseSql(rest, *c.schema)
                       : cq::ParseDatalog(rest, *c.schema);
      if (!parsed.ok()) {
        std::printf("  %s\n", parsed.status().ToString().c_str());
        continue;
      }
      AppSession& s = session();
      label::DisclosureLabel label = pipeline.LabelPacked(*parsed);
      last_explanation =
          policy::ExplainDecision(*active, *c.catalog, label,
                                  s.state.consistent);
      policy::ReferenceMonitor monitor(active);
      const bool ok = monitor.Submit(&s.state, label);
      if (ok) s.tracker.RecordAnswered(label);
      std::printf("  %s  [%s]\n", ok ? "ANSWERED" : "REFUSED",
                  cq::ToTaggedBody(*parsed, *c.schema).c_str());
      if (!ok) std::printf("%s", last_explanation.ToString().c_str());
      continue;
    }

    std::printf("unknown command '%s' (sql / dl / app / policy / explain / "
                "status / quit)\n",
                cmd.c_str());
  }
  return 0;
}
