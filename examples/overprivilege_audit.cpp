// Detecting overprivileged apps (§2.2): "Labeling also makes it possible to
// detect overprivileged applications that request access to more
// permissions than they need due to developer error."
//
// A horoscope app requests four permissions but its observed query log only
// ever reads birthdays and public names. The analyzer labels the log,
// reports which requested views are unused, and proposes a minimal grant.
//
//   $ ./examples/overprivilege_audit
#include <cstdio>
#include <vector>

#include "cq/sql_parser.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/view_catalog.h"
#include "policy/overprivilege.h"

using namespace fdc;

int main() {
  cq::Schema schema = fb::BuildFacebookSchema();
  label::ViewCatalog catalog(&schema);
  if (auto added = fb::RegisterFacebookViews(&catalog); !added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }

  // The app's manifest asks for far more than it uses.
  const std::vector<const char*> requested_names = {
      "user_birthday", "friends_birthday", "user_likes",
      "friends_location"};
  std::vector<int> requested;
  std::printf("App manifest requests:");
  for (const char* name : requested_names) {
    requested.push_back(catalog.FindByName(name)->id);
    std::printf(" %s", name);
  }
  std::printf("\n\n");

  // Observed query log (e.g. collected by the platform's reference
  // monitor).
  const std::vector<const char*> log = {
      "SELECT birthday FROM User WHERE uid = 'me' AND viewer_rel = 'self'",
      "SELECT uid, birthday FROM User WHERE viewer_rel = 'friend'",
      "SELECT name FROM User WHERE viewer_rel = 'other'",
  };
  std::vector<cq::ConjunctiveQuery> workload;
  std::printf("Observed queries:\n");
  for (const char* sql : log) {
    auto q = cq::ParseSql(sql, schema);
    if (!q.ok()) {
      std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
      return 1;
    }
    workload.push_back(*q);
    std::printf("  %s\n", sql);
  }

  policy::OverprivilegeReport report =
      policy::AnalyzeOverprivilege(catalog, requested, workload);

  std::printf("\nAnalysis:\n");
  std::printf("  overprivileged: %s\n", report.overprivileged() ? "YES" : "no");
  std::printf("  unused permissions:");
  for (int id : report.unused_views) {
    std::printf(" %s", catalog.view(id).name.c_str());
  }
  std::printf("\n  minimal sufficient grant:");
  for (int id : report.minimal_sufficient) {
    std::printf(" %s", catalog.view(id).name.c_str());
  }
  std::printf("\n  query atoms outside the requested grant: %d\n",
              report.unanswerable_atoms);
  std::printf(
      "\n(The minimal grant is just the two birthday views. The public\n"
      "'name' query is counted as outside the grant: it is answerable via\n"
      "public_profile, which the app never needed to request.)\n");
  return report.overprivileged() ? 0 : 1;
}
