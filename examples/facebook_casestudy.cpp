// The §7.1 Facebook case study as a runnable walkthrough.
//
// Registers the §7.2 schema and 37-view catalog, runs the documentation
// audit that regenerates Table 2, and then demonstrates the paper's remedy:
// machine-computing labels for FQL-style queries instead of maintaining
// permission tables by hand.
//
//   $ ./examples/facebook_casestudy
#include <cstdio>
#include <string>

#include "cq/printer.h"
#include "cq/sql_parser.h"
#include "fb/fb_audit.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/pipeline.h"

using namespace fdc;

int main() {
  cq::Schema schema = fb::BuildFacebookSchema();
  label::ViewCatalog catalog(&schema);
  auto added = fb::RegisterFacebookViews(&catalog);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  std::printf("Registered %d security views over %d relations "
              "(User carries %d attributes).\n\n",
              *added, schema.NumRelations(), schema.Find(fb::kUser)->arity());

  // ---- Part 1: the documentation audit --------------------------------
  fb::AuditResult audit = fb::RunFacebookAudit(catalog);
  std::printf("%s\n", fb::RenderTable2(audit).c_str());

  // ---- Part 2: machine labeling of FQL-style queries -------------------
  std::printf("Machine-computed labels for FQL-style queries:\n");
  label::LabelerPipeline pipeline(&catalog);
  const char* queries[] = {
      "SELECT birthday FROM User WHERE uid = 'me' AND viewer_rel = 'self'",
      "SELECT quotes FROM User WHERE uid = 'me' AND viewer_rel = 'self'",
      "SELECT uid, birthday FROM User WHERE viewer_rel = 'friend'",
      "SELECT name, pic FROM User WHERE viewer_rel = 'other'",
      "SELECT u.uid, u.music FROM Friend f JOIN User u ON f.uid2 = u.uid "
      "WHERE f.uid1 = 'me' AND u.viewer_rel = 'friend'",
      // timezone is visible only to the user's own session (Table 2, row 2)
      // — for a friend audience no view bounds it, so it is not grantable.
      "SELECT uid, timezone FROM User WHERE viewer_rel = 'friend'",
  };
  for (const char* sql : queries) {
    auto q = cq::ParseSql(sql, schema);
    if (!q.ok()) {
      std::fprintf(stderr, "  parse error: %s\n",
                   q.status().ToString().c_str());
      continue;
    }
    label::SetLabel label = pipeline.LabelHashed(*q);
    std::printf("  %s\n    -> requires: ", sql);
    if (label.top) {
      std::printf("NOT GRANTABLE (no registered view bounds this query)");
    } else {
      bool first = true;
      for (const auto& per_atom : label.per_atom) {
        // Report the minimal option set per atom.
        std::printf("%s(", first ? "" : " AND ");
        bool inner_first = true;
        for (int id : per_atom) {
          std::printf("%s%s", inner_first ? "" : " | ",
                      catalog.view(id).name.c_str());
          inner_first = false;
        }
        std::printf(")");
        first = false;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nEach label was derived from the view definitions alone — no\n"
      "hand-maintained permission table, hence nothing to drift (§7.1).\n");
  return audit.inconsistencies.size() == 6 &&
                 audit.labeler_mismatches.empty()
             ? 0
             : 1;
}
