// Quickstart: the paper's running example (Figures 1 and 3) end to end.
//
// Builds Alice's Meetings/Contacts schema, defines the security views of
// Figure 1(b), labels the queries of Figure 1(c), materializes the Figure 3
// disclosure lattice, and shows a policy decision.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "cq/datalog_parser.h"
#include "cq/printer.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"
#include "order/disclosure_lattice.h"
#include "order/rewriting_order.h"
#include "order/universe.h"
#include "policy/reference_monitor.h"

using namespace fdc;

namespace {

cq::ConjunctiveQuery Parse(const std::string& text, const cq::Schema& schema) {
  auto q = cq::ParseDatalog(text, schema);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  return *q;
}

void PrintLabel(const std::string& name, const label::SetLabel& label,
                const label::ViewCatalog& catalog) {
  std::printf("  label(%s) = {", name.c_str());
  bool first = true;
  for (const auto& per_atom : label.per_atom) {
    for (int id : per_atom) {
      std::printf("%s%s", first ? "" : ", ", catalog.view(id).name.c_str());
      first = false;
    }
  }
  std::printf("}%s\n", label.top ? " (plus information no view bounds: ⊤)"
                                 : "");
}

}  // namespace

int main() {
  // ---- Figure 1(a): schema --------------------------------------------
  cq::Schema schema;
  (void)schema.AddRelation("Meetings", {"time", "person"});
  (void)schema.AddRelation("Contacts", {"person", "email", "position"});

  // ---- Figure 1(b): security views ------------------------------------
  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("V1", "V1(x, y) :- Meetings(x, y)");
  (void)catalog.AddViewText("V2", "V2(x) :- Meetings(x, y)");
  (void)catalog.AddViewText("V3", "V3(x, y, z) :- Contacts(x, y, z)");

  // ---- Figure 1(c): labeling the example queries ----------------------
  label::LabelerPipeline pipeline(&catalog);
  std::printf("Labeling the queries of Figure 1(c):\n");
  auto q1 = Parse("Q1(x) :- Meetings(x, 'Cathy')", schema);
  PrintLabel("Q1", pipeline.LabelHashed(q1), catalog);
  auto q2 = Parse("Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')", schema);
  PrintLabel("Q2", pipeline.LabelHashed(q2), catalog);
  std::printf("  (Q1 needs V1 — V2's time column cannot filter by person;\n"
              "   Q2 additionally reveals Contacts data, so V3 joins in.)\n\n");

  // ---- Figure 3: the disclosure lattice --------------------------------
  order::Universe universe;
  auto add_view = [&](const char* text) {
    auto q = Parse(text, schema);
    return universe.Add(*cq::AtomPattern::FromQuery(q));
  };
  const int v1 = add_view("V1(x, y) :- Meetings(x, y)");
  const int v2 = add_view("V2(x) :- Meetings(x, y)");
  const int v4 = add_view("V4(y) :- Meetings(x, y)");
  const int v5 = add_view("V5() :- Meetings(x, y)");
  const char* names[] = {"V1", "V2", "V4", "V5"};

  order::RewritingOrder order(&universe);
  auto lattice = order::DisclosureLattice::Build(order, universe.size());
  if (!lattice.ok()) {
    std::fprintf(stderr, "%s\n", lattice.status().ToString().c_str());
    return 1;
  }
  std::printf("The Figure 3 disclosure lattice (%d elements):\n",
              lattice->NumElements());
  for (int e = 0; e < lattice->NumElements(); ++e) {
    std::string desc = "  ";
    desc += (e == lattice->Bottom()) ? "⊥ = " : (e == lattice->Top() ? "⊤ = "
                                                                     : "    ");
    desc += "⇓{";
    bool first = true;
    for (int v : order::BitsToViewSet(lattice->ElementBits(e))) {
      desc += std::string(first ? "" : ",") + names[v];
      first = false;
    }
    desc += "}  covers:";
    for (int c : lattice->LowerCovers(e)) {
      desc += " " + std::to_string(c);
    }
    std::printf("%s  (element %d)\n", desc.c_str(), e);
  }
  const int glb = lattice->Glb(lattice->IndexOfDownSet({v2}),
                               lattice->IndexOfDownSet({v4}));
  const int lub = lattice->Lub(lattice->IndexOfDownSet({v2}),
                               lattice->IndexOfDownSet({v4}));
  std::printf(
      "  GLB(⇓{V2}, ⇓{V4}) = element %d (= ⇓{V5}: both projections reveal\n"
      "  whether Meetings is nonempty); LUB = element %d, properly below\n"
      "  ⊤ = element %d — the projections cannot reconstitute the table.\n\n",
      glb, lub, lattice->Top());
  (void)v1;
  (void)v5;

  // ---- A policy decision (§3.4) -----------------------------------------
  // Alice permits queries answerable from V2 alone.
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"times_only", {catalog.FindByName("V2")->id}}});
  policy::ReferenceMonitor monitor(&*policy);
  policy::PrincipalState app = monitor.InitialState();
  auto times = Parse("Q(x) :- Meetings(x, y)", schema);
  std::printf("Policy 'times_only' = {V2}:\n");
  std::printf("  Q(x) :- Meetings(x, y)        -> %s\n",
              monitor.Submit(&app, pipeline.LabelPacked(times)) ? "answered"
                                                                : "refused");
  std::printf("  Q1(x) :- Meetings(x, 'Cathy') -> %s\n",
              monitor.Submit(&app, pipeline.LabelPacked(q1)) ? "answered"
                                                             : "refused");
  std::printf("  Q2 (join with Contacts)       -> %s\n",
              monitor.Submit(&app, pipeline.LabelPacked(q2)) ? "answered"
                                                             : "refused");
  std::printf("(Both Q1 and Q2 are rejected under the V2 policy, as in §1.1.)\n");
  return 0;
}
