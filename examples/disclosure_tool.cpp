// disclosure_tool: operator CLI for binary policy artifacts.
//
// Wraps src/artifact/ for the staged-rollout loop: compile a policy blob,
// inspect it, validate it against the live (§7.2 Facebook) catalog, diff
// two candidates, and explain a concrete decision — all offline, without
// touching a serving process.
//
//   disclosure_tool compile --out=policy.blob [--seed=N] [--name=S]
//                           [--max-partitions=N] [--max-elements=N]
//       Generate a policy over the Facebook catalog (the same seeded
//       generator the daemon and benches use — identical seed, identical
//       bytes) and write it as a version-1 blob.
//
//   disclosure_tool dump policy.blob [--json]
//       Human-readable (or JSON) listing: header, meta, layout, and every
//       partition with its view names.
//
//   disclosure_tool validate policy.blob [--skip-catalog]
//       Full structural validation (magic/version/checksums/bounds/layout
//       self-consistency — everything LoadPolicyBlob enforces), then the
//       frozen layout against the live catalog unless --skip-catalog.
//
//   disclosure_tool diff a.blob b.blob
//       Per-partition view-membership deltas plus meta/layout notes.
//
//   disclosure_tool explain policy.blob --query='ans() :- ...'
//                           [--principal=NAME] [--repeat=N] [--check-engine]
//       Decision + per-partition blocking-atom diagnosis for a Datalog
//       query under the blob's policy (policy::ExplainDecision, exactly
//       the live engine's diagnosis path). --repeat submits the query N
//       times to show stateful narrowing; --check-engine cross-checks
//       every step against a live DisclosureEngine built from the blob and
//       fails on any disagreement.
//
// Exit codes: 0 success (diff: identical; explain: engine agrees);
// 1 semantic failure (validation failed, blobs differ, engine mismatch);
// 2 usage or I/O error.
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "artifact/policy_blob.h"
#include "cq/datalog_parser.h"
#include "engine/disclosure_engine.h"
#include "engine/stats_json.h"
#include "fb/fb_schema.h"
#include "fb/fb_views.h"
#include "label/view_catalog.h"
#include "policy/explain.h"
#include "workload/policy_generator.h"

using namespace fdc;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitSemantic = 1;
constexpr int kExitUsage = 2;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [args]\n"
      "  compile  --out=FILE [--seed=N] [--name=S] [--max-partitions=N]\n"
      "           [--max-elements=N]\n"
      "  dump     FILE [--json]\n"
      "  validate FILE [--skip-catalog]\n"
      "  diff     FILE_A FILE_B\n"
      "  explain  FILE --query=DATALOG [--principal=NAME] [--repeat=N]\n"
      "           [--check-engine]\n",
      argv0);
  return kExitUsage;
}

/// Checked unsigned flag parsing: digits only (no sign, no trailing
/// garbage), overflow rejected — the same rules the failpoint env parser
/// enforces (server/failpoints.h).
bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

/// The §7.2 Facebook environment every subcommand interprets blobs in.
struct Environment {
  cq::Schema schema;
  label::ViewCatalog catalog;
  Environment() : schema(fb::BuildFacebookSchema()), catalog(&schema) {}
};

Environment* BuildEnvironment() {
  static Environment env;
  static bool registered = false;
  if (!registered) {
    auto added = fb::RegisterFacebookViews(&env.catalog);
    if (!added.ok()) {
      std::fprintf(stderr, "catalog: %s\n", added.status().ToString().c_str());
      return nullptr;
    }
    registered = true;
  }
  return &env;
}

int CmdCompile(const std::vector<std::string>& args) {
  std::string out_path;
  std::string name = "fb-policy";
  uint64_t seed = 0x5107'e002;  // the daemon's policy, byte for byte
  uint64_t max_partitions = 5;
  uint64_t max_elements = 15;
  for (const std::string& arg : args) {
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--name=", 0) == 0) {
      name = arg.substr(7);
    } else if (arg.rfind("--seed=", 0) == 0 &&
               ParseU64(arg.substr(7), &seed)) {
    } else if (arg.rfind("--max-partitions=", 0) == 0 &&
               ParseU64(arg.substr(17), &max_partitions) &&
               max_partitions >= 1 && max_partitions <= 64) {
    } else if (arg.rfind("--max-elements=", 0) == 0 &&
               ParseU64(arg.substr(15), &max_elements) && max_elements >= 1) {
    } else {
      std::fprintf(stderr, "compile: bad argument '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "compile: --out=FILE is required\n");
    return kExitUsage;
  }
  Environment* env = BuildEnvironment();
  if (env == nullptr) return kExitUsage;
  workload::PolicyOptions options;
  options.max_partitions = static_cast<int>(max_partitions);
  options.max_elements_per_partition = static_cast<int>(max_elements);
  workload::PolicyGenerator generator(&env->catalog, options, seed);
  artifact::PolicyBlobMeta meta;
  meta.name = name;
  Result<std::vector<uint8_t>> bytes =
      artifact::CompilePolicyBlob(env->catalog, generator.Next(), meta);
  if (!bytes.ok()) {
    std::fprintf(stderr, "compile: %s\n", bytes.status().ToString().c_str());
    return kExitSemantic;
  }
  if (Status s = artifact::WritePolicyBlobFile(out_path, *bytes); !s.ok()) {
    std::fprintf(stderr, "compile: %s\n", s.ToString().c_str());
    return kExitUsage;
  }
  std::printf("wrote %zu bytes to %s (policy '%s', seed %" PRIu64 ")\n",
              bytes->size(), out_path.c_str(), name.c_str(), seed);
  return kExitOk;
}

void DumpHuman(const artifact::LoadedPolicyBlob& blob) {
  std::printf("policy blob version %u, %zu bytes, checksum %016" PRIx64 "\n",
              blob.version(), blob.byte_size(), blob.checksum());
  std::printf("name: %s\nsource epoch: %" PRIu64 "\n",
              blob.meta().name.c_str(), blob.meta().source_epoch);
  std::printf("%u relations, %u views, %u partitions, %" PRIu64
              " mask words per row\n",
              blob.num_relations(), blob.num_views(), blob.num_partitions(),
              blob.total_words());
  std::printf("layout:\n");
  for (uint32_t r = 0; r < blob.num_relations(); ++r) {
    std::printf("  [%2u] %-24s words [%u, %u)\n", r,
                blob.relation_names()[r].c_str(), blob.word_begin()[r],
                blob.word_begin()[r + 1]);
  }
  for (uint32_t p = 0; p < blob.num_partitions(); ++p) {
    std::printf("partition %u '%s': %zu views\n", p,
                blob.partition_names()[p].c_str(),
                blob.partition_views()[p].size());
    for (uint32_t id : blob.partition_views()[p]) {
      const artifact::BlobView& view = blob.views()[id];
      std::printf("  view %3u %-32s (%s, bit %u)\n", id, view.name.c_str(),
                  blob.relation_names()[view.relation].c_str(), view.bit);
    }
  }
}

void DumpJson(const artifact::LoadedPolicyBlob& blob) {
  // Every operator-chosen string (names) goes through engine::JsonEscape.
  std::string out = "{";
  auto str = [](const std::string& s) {
    return "\"" + engine::JsonEscape(s) + "\"";
  };
  out += "\"version\":" + std::to_string(blob.version());
  out += ",\"bytes\":" + std::to_string(blob.byte_size());
  out += ",\"checksum\":" + std::to_string(blob.checksum());
  out += ",\"name\":" + str(blob.meta().name);
  out += ",\"source_epoch\":" + std::to_string(blob.meta().source_epoch);
  out += ",\"relations\":[";
  for (uint32_t r = 0; r < blob.num_relations(); ++r) {
    if (r != 0) out += ",";
    out += "{\"name\":" + str(blob.relation_names()[r]) +
           ",\"word_begin\":" + std::to_string(blob.word_begin()[r]) +
           ",\"word_end\":" + std::to_string(blob.word_begin()[r + 1]) + "}";
  }
  out += "],\"views\":[";
  for (uint32_t id = 0; id < blob.num_views(); ++id) {
    const artifact::BlobView& view = blob.views()[id];
    if (id != 0) out += ",";
    out += "{\"name\":" + str(view.name) +
           ",\"relation\":" + std::to_string(view.relation) +
           ",\"bit\":" + std::to_string(view.bit) + "}";
  }
  out += "],\"partitions\":[";
  for (uint32_t p = 0; p < blob.num_partitions(); ++p) {
    if (p != 0) out += ",";
    out += "{\"name\":" + str(blob.partition_names()[p]) + ",\"views\":[";
    bool first = true;
    for (uint32_t id : blob.partition_views()[p]) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(id);
    }
    out += "]}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
}

int CmdDump(const std::vector<std::string>& args) {
  std::string path;
  bool json = false;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "dump: bad argument '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (path.empty()) return kExitUsage;
  Result<artifact::LoadedPolicyBlob> blob =
      artifact::LoadPolicyBlobFromFile(path);
  if (!blob.ok()) {
    std::fprintf(stderr, "dump: %s\n", blob.status().ToString().c_str());
    return kExitSemantic;
  }
  if (json) {
    DumpJson(*blob);
  } else {
    DumpHuman(*blob);
  }
  return kExitOk;
}

int CmdValidate(const std::vector<std::string>& args) {
  std::string path;
  bool skip_catalog = false;
  for (const std::string& arg : args) {
    if (arg == "--skip-catalog") {
      skip_catalog = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "validate: bad argument '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (path.empty()) return kExitUsage;
  Result<artifact::LoadedPolicyBlob> blob =
      artifact::LoadPolicyBlobFromFile(path);
  if (!blob.ok()) {
    std::fprintf(stderr, "invalid: %s\n", blob.status().ToString().c_str());
    return kExitSemantic;
  }
  if (!skip_catalog) {
    Environment* env = BuildEnvironment();
    if (env == nullptr) return kExitUsage;
    if (Status s = artifact::ValidateAgainstCatalog(*blob, env->catalog);
        !s.ok()) {
      std::fprintf(stderr, "invalid: %s\n", s.ToString().c_str());
      return kExitSemantic;
    }
  }
  // The loader already proved the policy reconstructs; do it anyway so
  // "valid" means "UpdatePolicy would take this".
  if (Result<policy::SecurityPolicy> p = artifact::PolicyFromBlob(*blob);
      !p.ok()) {
    std::fprintf(stderr, "invalid: %s\n", p.status().ToString().c_str());
    return kExitSemantic;
  }
  std::printf("valid: '%s', %u partitions over %u views%s\n",
              blob->meta().name.c_str(), blob->num_partitions(),
              blob->num_views(),
              skip_catalog ? "" : ", layout matches the live catalog");
  return kExitOk;
}

int CmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::fprintf(stderr, "diff: takes exactly two blob paths\n");
    return kExitUsage;
  }
  Result<artifact::LoadedPolicyBlob> a =
      artifact::LoadPolicyBlobFromFile(args[0]);
  Result<artifact::LoadedPolicyBlob> b =
      artifact::LoadPolicyBlobFromFile(args[1]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "diff: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return kExitSemantic;
  }
  const artifact::BlobDiff diff = artifact::DiffPolicyBlobs(*a, *b);
  for (const std::string& note : diff.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const artifact::PartitionDelta& delta : diff.partitions) {
    if (delta.name_a != delta.name_b) {
      std::printf("partition %d renamed: '%s' -> '%s'\n", delta.index,
                  delta.name_a.c_str(), delta.name_b.c_str());
    } else {
      std::printf("partition %d '%s':\n", delta.index, delta.name_a.c_str());
    }
    for (const std::string& name : delta.only_in_a) {
      std::printf("  - %s\n", name.c_str());
    }
    for (const std::string& name : delta.only_in_b) {
      std::printf("  + %s\n", name.c_str());
    }
  }
  if (diff.identical) {
    std::printf("identical\n");
    return kExitOk;
  }
  return kExitSemantic;
}

int CmdExplain(const std::vector<std::string>& args) {
  std::string path, query_text, principal = "operator";
  uint64_t repeat = 1;
  bool check_engine = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--query=", 0) == 0) {
      query_text = arg.substr(8);
    } else if (arg.rfind("--principal=", 0) == 0) {
      principal = arg.substr(12);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      if (!ParseU64(arg.substr(9), &repeat) || repeat == 0 ||
          repeat > 100000) {
        std::fprintf(stderr, "explain: bad --repeat\n");
        return kExitUsage;
      }
    } else if (arg == "--check-engine") {
      check_engine = true;
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "explain: bad argument '%s'\n", arg.c_str());
      return kExitUsage;
    }
  }
  if (path.empty() || query_text.empty()) {
    std::fprintf(stderr, "explain: FILE and --query=DATALOG are required\n");
    return kExitUsage;
  }
  Environment* env = BuildEnvironment();
  if (env == nullptr) return kExitUsage;
  Result<artifact::LoadedPolicyBlob> blob =
      artifact::LoadPolicyBlobFromFile(path);
  if (!blob.ok()) {
    std::fprintf(stderr, "explain: %s\n", blob.status().ToString().c_str());
    return kExitSemantic;
  }
  if (Status s = artifact::ValidateAgainstCatalog(*blob, env->catalog);
      !s.ok()) {
    std::fprintf(stderr, "explain: %s\n", s.ToString().c_str());
    return kExitSemantic;
  }
  Result<cq::ConjunctiveQuery> query =
      cq::ParseDatalog(query_text, env->schema);
  if (!query.ok()) {
    std::fprintf(stderr, "explain: %s\n", query.status().ToString().c_str());
    return kExitUsage;
  }
  Result<policy::SecurityPolicy> policy = artifact::PolicyFromBlob(*blob);
  if (!policy.ok()) {
    std::fprintf(stderr, "explain: %s\n", policy.status().ToString().c_str());
    return kExitSemantic;
  }

  // The blob-side engine IS the live path: same labeler, same monitor,
  // same ExplainDecision. --check-engine runs a second, independent engine
  // and requires every stateful decision to match the explanation.
  engine::DisclosureEngine explain_engine(/*db=*/nullptr, &env->catalog,
                                          *policy, {});
  engine::DisclosureEngine check_engine_instance(/*db=*/nullptr, &env->catalog,
                                                 *std::move(policy), {});
  for (uint64_t i = 0; i < repeat; ++i) {
    const policy::Explanation explanation =
        explain_engine.ExplainQuery(principal, *query);
    std::printf("submit %" PRIu64 ": %s\n", i + 1, explanation.ToString().c_str());
    // Narrow the explaining engine's state exactly like a live submit.
    const bool decided = explain_engine.Submit(principal, *query);
    if (decided != explanation.accepted) {
      std::fprintf(stderr,
                   "explain/monitor disagreement at submit %" PRIu64 "\n",
                   i + 1);
      return kExitSemantic;
    }
    if (check_engine) {
      const bool live = check_engine_instance.Submit(principal, *query);
      if (live != explanation.accepted) {
        std::fprintf(stderr,
                     "engine mismatch at submit %" PRIu64
                     ": explain=%s live=%s\n",
                     i + 1, explanation.accepted ? "accept" : "refuse",
                     live ? "accept" : "refuse");
        return kExitSemantic;
      }
    }
  }
  if (check_engine) std::printf("live engine agrees\n");
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "compile") return CmdCompile(args);
  if (command == "dump") return CmdDump(args);
  if (command == "validate") return CmdValidate(args);
  if (command == "diff") return CmdDiff(args);
  if (command == "explain") return CmdExplain(args);
  return Usage(argv[0]);
}
