// Chinese Wall policies for a corporate BYOD deployment (§1, §3.4, §6.2).
//
// A consulting firm's device database holds engagement data for two client
// banks plus the consultant's own calendar. Conflict-of-interest rules
// (Brewer–Nash) say an app may see either bank's data, never both. The
// policy is three partitions; the monitor's consistency bit vector narrows
// as apps commit to a side — Example 6.2/6.3 at enterprise scale.
//
//   $ ./examples/corporate_chinese_wall
#include <cstdio>
#include <string>
#include <vector>

#include "cq/datalog_parser.h"
#include "label/pipeline.h"
#include "label/view_catalog.h"
#include "policy/policy_analysis.h"
#include "policy/reference_monitor.h"

using namespace fdc;

namespace {

cq::ConjunctiveQuery Parse(const std::string& text, const cq::Schema& schema) {
  auto q = cq::ParseDatalog(text, schema);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  return *q;
}

std::string Bits(uint32_t mask, int n) {
  std::string out = "<";
  for (int i = 0; i < n; ++i) {
    out += ((mask >> i) & 1) ? '1' : '0';
    if (i + 1 < n) out += ',';
  }
  return out + ">";
}

}  // namespace

int main() {
  cq::Schema schema;
  (void)schema.AddRelation("BankA", {"deal_id", "client", "amount"});
  (void)schema.AddRelation("BankB", {"deal_id", "client", "amount"});
  (void)schema.AddRelation("Calendar", {"time", "subject"});

  label::ViewCatalog catalog(&schema);
  (void)catalog.AddViewText("bank_a_deals", "V(d, c, a) :- BankA(d, c, a)");
  (void)catalog.AddViewText("bank_b_deals", "V(d, c, a) :- BankB(d, c, a)");
  (void)catalog.AddViewText("calendar", "V(t, s) :- Calendar(t, s)");
  (void)catalog.AddViewText("calendar_times", "V(t) :- Calendar(t, s)");

  // Conflict-of-interest classes: each partition allows one bank plus the
  // consultant's calendar. A third partition allows the calendar only
  // (strictly weaker — the analyzer flags it as redundant).
  const int bank_a = catalog.FindByName("bank_a_deals")->id;
  const int bank_b = catalog.FindByName("bank_b_deals")->id;
  const int cal = catalog.FindByName("calendar")->id;
  auto policy = policy::SecurityPolicy::Compile(
      catalog, {{"wall_bank_a", {bank_a, cal}},
                {"wall_bank_b", {bank_b, cal}},
                {"calendar_only", {cal}}});
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  std::vector<int> redundant = policy::FindRedundantPartitions(*policy);
  std::printf("Policy audit: %zu redundant partition(s)", redundant.size());
  for (int p : redundant) {
    std::printf(" ['%s' is dominated]",
                policy->partitions()[p].name.c_str());
  }
  std::printf("\n\n");

  label::LabelerPipeline pipeline(&catalog);
  policy::ReferenceMonitor monitor(&*policy);
  const int k = policy->num_partitions();

  struct Step {
    const char* app;
    const char* text;
  };
  const std::vector<Step> session = {
      {"analytics", "Q(t) :- Calendar(t, s)"},
      {"analytics", "Q(d, a) :- BankA(d, c, a)"},
      {"analytics", "Q(d) :- BankB(d, c, a)"},          // wall: refused
      {"analytics", "Q(c) :- BankA(d, c, a)"},          // same side: fine
      {"audit_tool", "Q(d) :- BankB(d, c, a)"},         // other principal
      {"audit_tool", "Q(a) :- BankA(d, c, a)"},         // wall: refused
  };

  policy::PrincipalState analytics = monitor.InitialState();
  policy::PrincipalState audit_tool = monitor.InitialState();
  std::printf("Submitting queries (consistency bits shown per decision):\n");
  for (const Step& step : session) {
    policy::PrincipalState* state =
        std::string(step.app) == "analytics" ? &analytics : &audit_tool;
    const bool ok =
        monitor.Submit(state, pipeline.LabelPacked(Parse(step.text, schema)));
    std::printf("  [%-10s] %-34s -> %-8s state=%s\n", step.app, step.text,
                ok ? "answered" : "REFUSED",
                Bits(state->consistent, k).c_str());
  }

  std::printf(
      "\nThe wall held: once an app touched Bank A data, every Bank B query\n"
      "was refused (and vice versa), while calendar access stayed open.\n");
  return 0;
}
