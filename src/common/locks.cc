#include "common/locks.h"

namespace fdc::locks {
namespace {

thread_local uint64_t t_reader_lock_acquisitions = 0;

}  // namespace

uint64_t ReaderLockAcquisitions() { return t_reader_lock_acquisitions; }

void CountReaderLockAcquisition() { ++t_reader_lock_acquisitions; }

}  // namespace fdc::locks
