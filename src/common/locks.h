// Reader-side lock instrumentation for the wait-free read path proof.
//
// The ISSUE-10 acceptance criterion is hardware-independent: warm-path
// Submit/SubmitBatch/SubmitCoalesced must perform ZERO reader-side mutex or
// shared_mutex acquisitions under FDC_EPOCH=ebr. We prove it by counting:
// every shared (reader) acquisition on a read-path lock bumps a thread-local
// counter, and the concurrency tests assert the delta across a warm submit
// is exactly zero in EBR mode (and nonzero in locked mode, as a sanity check
// that the counter itself works).
//
// Exclusive (writer) acquisitions are deliberately NOT counted: writers may
// lock freely in either mode. Principal-map shard locks are also uncounted —
// they are writer-side by role (per-principal state mutation), not part of
// the shared read path this PR removes.

#ifndef FDC_COMMON_LOCKS_H_
#define FDC_COMMON_LOCKS_H_

#include <cstdint>
#include <shared_mutex>

namespace fdc::locks {

// Count of reader-side lock acquisitions made by the calling thread since
// thread start. Tests snapshot it around a warm-path call and assert delta.
uint64_t ReaderLockAcquisitions();

// Bumps the calling thread's reader-lock counter. Used by call sites that
// take a plain std::mutex in a reader role (e.g. the locked-mode containment
// cache probe) where a wrapper type would be overkill.
void CountReaderLockAcquisition();

// Drop-in replacement for std::shared_mutex that counts shared acquisitions.
// Satisfies SharedMutex requirements, so std::shared_lock / std::unique_lock
// work unchanged. Exclusive locking is pass-through and uncounted.
class CountedSharedMutex {
 public:
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    CountReaderLockAcquisition();
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    CountReaderLockAcquisition();
    return mu_.try_lock_shared();
  }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

}  // namespace fdc::locks

#endif  // FDC_COMMON_LOCKS_H_
