// Epoch-based reclamation (EBR) for the wait-free read path.
//
// Readers pin the current global epoch with an epoch::Guard before touching
// any epoch-protected pointer; writers publish a replacement pointer and pass
// the old object to Retire(). A retired object is freed only once every
// participant has announced an epoch at least two ahead of the retire epoch,
// which guarantees no pinned reader can still hold a reference.
//
// Protocol (classic three-epoch EBR):
//   pin:     e = global_epoch.load(acquire); slot.store(e<<1 | 1);
//            atomic_thread_fence(seq_cst);
//   writer:  store new pointer; Retire(old) stamps old with the current
//            global epoch; Collect() advances global_epoch E -> E+1 only when
//            every pinned slot announces E, and frees garbage whose retire
//            epoch is <= E-1 (i.e. global >= retire+2).
//
// The seq_cst fence on pin pairs with the seq_cst scan in Collect()
// (Dekker-style): either the collector observes the reader's pin, or the
// reader observes the newly published pointer. Stale announcements only delay
// epoch advancement (liveness), never safety.
//
// Guards nest: only the outermost Guard per thread pays the fence; inner
// guards just bump a thread-local depth counter.
//
// Mode selection: the FDC_EPOCH env var ("locked" | "ebr" | "auto") picks the
// process-wide default; options structs carry a ReclaimChoice so tests can
// force either path explicitly. The locked paths are kept as the
// property-test oracle for the EBR paths.

#ifndef FDC_COMMON_EPOCH_H_
#define FDC_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace fdc::epoch {

// Resolved reclamation mode used by a component instance.
enum class ReclaimMode : uint8_t { kLocked, kEbr };

// Option-level choice: kAuto defers to FDC_EPOCH (default: ebr).
enum class ReclaimChoice : uint8_t { kAuto, kLocked, kEbr };

// Process-wide default parsed once from FDC_EPOCH. Unset/"auto"/"ebr" -> kEbr,
// "locked" -> kLocked; unrecognized values fall back to kEbr.
ReclaimMode DefaultReclaimMode();

inline ReclaimMode Resolve(ReclaimChoice choice) {
  switch (choice) {
    case ReclaimChoice::kLocked:
      return ReclaimMode::kLocked;
    case ReclaimChoice::kEbr:
      return ReclaimMode::kEbr;
    case ReclaimChoice::kAuto:
    default:
      return DefaultReclaimMode();
  }
}

struct DomainStats {
  uint64_t epoch = 0;    // current global epoch
  uint64_t retired = 0;  // objects ever passed to Retire()
  uint64_t freed = 0;    // objects whose deleter has run
  uint64_t pending = 0;  // retired - freed
  uint64_t advances = 0; // successful epoch advancements
};

// A single process-wide reclamation domain. All epoch-protected structures in
// the engine share it; cross-structure sharing is safe because the free rule
// only depends on reader announcements, not on which structure was read.
class Domain {
 public:
  static Domain& Instance();

  // Registers the current thread if needed and pins the current epoch.
  // Returns the participant slot index (passed back to Unpin). Nested pins
  // are handled by Guard, not here.
  void Pin();
  void Unpin();

  // Defers destruction of `ptr` until all current readers have unpinned.
  // `deleter` runs on some later Retire/Collect call (possibly from another
  // thread). Never runs inline while the caller could still hold a Guard on
  // the retiring epoch.
  void Retire(void* ptr, void (*deleter)(void*));

  template <typename T>
  void RetireDelete(T* ptr) {
    if (ptr == nullptr) return;
    Retire(const_cast<void*>(static_cast<const void*>(ptr)),
           [](void* p) { delete static_cast<T*>(const_cast<void*>(
               static_cast<const void*>(p))); });
  }

  // Attempts one epoch advancement and frees any safe garbage. Called
  // opportunistically by Retire(); exposed for tests and quiescent teardown.
  void Collect();

  // Runs Collect() until nothing is pending or no progress is possible.
  // Only meaningful when callers know readers are quiescent (tests).
  void DrainForTesting();

  DomainStats Stats() const;

  // Called from the per-thread participation record's destructor at thread
  // exit. Not part of the public protocol.
  void ReleaseSlot(size_t idx);

 private:
  Domain();
  ~Domain() = delete;  // process-lifetime singleton

  struct Slot {
    // 0 = quiescent; otherwise (epoch << 1) | 1.
    std::atomic<uint64_t> announce{0};
    std::atomic<bool> in_use{false};
    char pad[48];  // keep slots on separate cache lines
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
    Retired* next;
  };

  static constexpr size_t kMaxSlots = 512;

  size_t AcquireSlot();
  bool TryAdvance(uint64_t expected);
  void FreeUpTo(uint64_t max_epoch);

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxSlots];
  std::atomic<size_t> slot_high_water_{0};

  // Retire list: writers are rare (policy swaps, chunk rebuilds), so a mutex
  // here costs nothing on the read path.
  std::atomic<Retired*> retired_head_{nullptr};
  std::atomic<uint64_t> retired_count_{0};
  std::atomic<uint64_t> freed_count_{0};
  std::atomic<uint64_t> advance_count_{0};
  std::atomic<bool> collecting_{false};
};

// RAII pin on the shared Domain. Cheap to nest; the outermost guard per
// thread performs one seq_cst fence on entry and a release store on exit.
class Guard {
 public:
  Guard() { Domain::Instance().Pin(); }
  ~Guard() { Domain::Instance().Unpin(); }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
};

}  // namespace fdc::epoch

#endif  // FDC_COMMON_EPOCH_H_
