// Deterministic random number generation for workloads and property tests.
//
// All experiment inputs in this repository are generated from explicit 64-bit
// seeds so that every benchmark table and every property test is exactly
// reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace fdc {

/// SplitMix64: used to expand a user seed into xoshiro state.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Fast, high quality, and trivially seedable; we avoid
/// std::mt19937 so that streams are stable across standard library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(&sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return ToUnit(Next()) < p;
  }

  /// Uniform double in [0, 1).
  double NextUnit() { return ToUnit(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double ToUnit(uint64_t x) {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  uint64_t state_[4];
};

}  // namespace fdc
