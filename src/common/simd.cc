#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fdc::simd {

namespace {

Isa ProbeHardware() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kScalar;
#elif defined(__aarch64__) || defined(__ARM_NEON)
  // NEON is architecturally mandatory on AArch64 and implied by __ARM_NEON
  // on 32-bit ARM builds that define it — no runtime probe needed.
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

Isa ClampToAvailable(Isa isa) {
  return IsaAvailable(isa) ? isa : Isa::kScalar;
}

/// FDC_SIMD parse result: the requested ISA, or detection when unset/"auto"
/// (unrecognized values fall back to detection rather than silently
/// disabling the vector path).
Isa EnvIsa() {
  const char* env = std::getenv("FDC_SIMD");
  if (env == nullptr || *env == '\0') return DetectIsa();
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "0") == 0) {
    return Isa::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) return ClampToAvailable(Isa::kAvx2);
  if (std::strcmp(env, "neon") == 0) return ClampToAvailable(Isa::kNeon);
  return DetectIsa();
}

// -1 = no ForceIsa() pin; otherwise the pinned Isa value.
std::atomic<int> g_forced{-1};

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

Isa DetectIsa() {
  static const Isa detected = ProbeHardware();
  return detected;
}

bool IsaAvailable(Isa isa) {
  return isa == Isa::kScalar || isa == DetectIsa();
}

Isa ActiveIsa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa from_env = EnvIsa();
  return from_env;
}

void ForceIsa(Isa isa) {
  g_forced.store(static_cast<int>(ClampToAvailable(isa)),
                 std::memory_order_relaxed);
}

void ClearForcedIsa() { g_forced.store(-1, std::memory_order_relaxed); }

}  // namespace fdc::simd
