// String helpers used by the parsers and pretty printers.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace fdc {

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

inline std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

inline std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Case-insensitive comparison for SQL keywords.
inline bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Joins items with a separator; items must be string-convertible.
inline std::string JoinStrings(const std::vector<std::string>& items,
                               std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace fdc
