#include "common/epoch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fdc::epoch {
namespace {

ReclaimMode ParseEnv() {
  const char* env = std::getenv("FDC_EPOCH");
  if (env == nullptr) return ReclaimMode::kEbr;
  if (std::strcmp(env, "locked") == 0) return ReclaimMode::kLocked;
  // "ebr", "auto", and anything unrecognized all resolve to the default.
  return ReclaimMode::kEbr;
}

}  // namespace

ReclaimMode DefaultReclaimMode() {
  static const ReclaimMode mode = ParseEnv();
  return mode;
}

Domain::Domain() = default;

Domain& Domain::Instance() {
  // Intentionally leaked: participants may unpin during process teardown
  // after static destructors would have run.
  static Domain* domain = new Domain();
  return *domain;
}

namespace {

// Per-thread participation record. Lives in the thread, not the domain, so
// thread exit releases the slot automatically.
struct ThreadRecord {
  size_t slot = static_cast<size_t>(-1);
  uint32_t depth = 0;

  ~ThreadRecord();
};

thread_local ThreadRecord t_record;

}  // namespace

size_t Domain::AcquireSlot() {
  for (size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      size_t hw = slot_high_water_.load(std::memory_order_relaxed);
      while (i + 1 > hw && !slot_high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  std::fprintf(stderr, "fdc::epoch::Domain: participant slots exhausted\n");
  std::abort();
}

void Domain::ReleaseSlot(size_t idx) {
  slots_[idx].announce.store(0, std::memory_order_release);
  slots_[idx].in_use.store(false, std::memory_order_release);
}

ThreadRecord::~ThreadRecord() {
  if (slot != static_cast<size_t>(-1)) {
    Domain::Instance().ReleaseSlot(slot);
    slot = static_cast<size_t>(-1);
  }
}

void Domain::Pin() {
  ThreadRecord& tr = t_record;
  if (tr.depth++ > 0) return;  // nested guard: outermost pin already holds
  if (tr.slot == static_cast<size_t>(-1)) tr.slot = AcquireSlot();
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  slots_[tr.slot].announce.store((e << 1) | 1, std::memory_order_relaxed);
  // Pairs with the seq_cst scan in TryAdvance (Dekker): either the collector
  // sees this announcement, or this thread sees every pointer published
  // before the collector's scan.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void Domain::Unpin() {
  ThreadRecord& tr = t_record;
  if (--tr.depth > 0) return;
  slots_[tr.slot].announce.store(0, std::memory_order_release);
}

void Domain::Retire(void* ptr, void (*deleter)(void*)) {
  auto* node = new Retired;
  node->ptr = ptr;
  node->deleter = deleter;
  node->epoch = global_epoch_.load(std::memory_order_seq_cst);
  Retired* head = retired_head_.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!retired_head_.compare_exchange_weak(head, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  retired_count_.fetch_add(1, std::memory_order_relaxed);
  Collect();
}

bool Domain::TryAdvance(uint64_t expected) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const size_t hw = slot_high_water_.load(std::memory_order_acquire);
  for (size_t i = 0; i < hw; ++i) {
    uint64_t a = slots_[i].announce.load(std::memory_order_seq_cst);
    if (a == 0) continue;  // quiescent
    if ((a >> 1) != expected) return false;  // lagging reader blocks advance
  }
  uint64_t e = expected;
  if (global_epoch_.compare_exchange_strong(e, expected + 1,
                                            std::memory_order_seq_cst)) {
    advance_count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Domain::FreeUpTo(uint64_t max_epoch) {
  // Detach the whole list, free eligible nodes, re-push the rest. Concurrent
  // Retire() pushes land on the (momentarily empty) shared head and are
  // re-examined by the next Collect().
  Retired* list = retired_head_.exchange(nullptr, std::memory_order_acquire);
  Retired* keep_head = nullptr;
  Retired* keep_tail = nullptr;
  uint64_t freed = 0;
  while (list != nullptr) {
    Retired* next = list->next;
    if (list->epoch <= max_epoch) {
      list->deleter(list->ptr);
      delete list;
      ++freed;
    } else {
      list->next = keep_head;
      keep_head = list;
      if (keep_tail == nullptr) keep_tail = list;
    }
    list = next;
  }
  if (freed != 0) freed_count_.fetch_add(freed, std::memory_order_relaxed);
  if (keep_head != nullptr) {
    Retired* head = retired_head_.load(std::memory_order_relaxed);
    do {
      keep_tail->next = head;
    } while (!retired_head_.compare_exchange_weak(head, keep_head,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed));
  }
}

void Domain::Collect() {
  // Single collector at a time; contenders just skip (their garbage is picked
  // up by the active collector or the next Retire()).
  bool expected = false;
  if (!collecting_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
    return;
  }
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  TryAdvance(e);
  uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
  if (now >= 2) FreeUpTo(now - 2);
  collecting_.store(false, std::memory_order_release);
}

void Domain::DrainForTesting() {
  for (int i = 0; i < 8; ++i) {
    if (retired_head_.load(std::memory_order_acquire) == nullptr) return;
    Collect();
  }
}

DomainStats Domain::Stats() const {
  DomainStats s;
  s.epoch = global_epoch_.load(std::memory_order_relaxed);
  s.retired = retired_count_.load(std::memory_order_relaxed);
  s.freed = freed_count_.load(std::memory_order_relaxed);
  s.pending = s.retired - s.freed;
  s.advances = advance_count_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fdc::epoch
