// Lightweight Status/Result error handling, in the style used by database
// engines (no exceptions on hot paths; callers must inspect returned status).
#pragma once

#include <cassert>
#include <string>
#include <utility>

namespace fdc {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kParseError,
  kPolicyViolation,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kPolicyViolation: return "PolicyViolation";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation on the success path).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PolicyViolation(std::string msg) {
    return Status(StatusCode::kPolicyViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Full "Code: message" rendering for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fdc
