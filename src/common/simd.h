// Runtime SIMD dispatch for the batch mask kernels.
//
// The batch-structured matcher kernel (CompiledCatalogMatcher::MatchMaskBatch)
// accumulates C1–C5 as row-major word ANDs across a batch of patterns; the
// inner AND loops have AVX2 (x86-64) and NEON (aarch64) specializations. This
// header owns the *selection* of those specializations:
//
//   * DetectIsa() probes the hardware once — cpuid via
//     __builtin_cpu_supports("avx2") on x86, NEON as the aarch64 baseline —
//     and never consults overrides;
//   * ActiveIsa() is what kernels dispatch on: the detected ISA, unless the
//     FDC_SIMD environment variable ("scalar"/"off", "avx2", "neon", "auto")
//     or a programmatic ForceIsa() narrows it. An override can only select an
//     ISA the hardware supports — requesting an unavailable one clamps to
//     scalar, never to an illegal instruction;
//   * the scalar fallback is always compiled and always selectable, so the
//     ablation/benchmark story (scalar-batch vs SIMD-batch) and the
//     scalar-forced CI leg cost nothing extra to keep honest.
//
// ForceIsa/ClearForcedIsa exist for tests and benches that must pin a variant
// regardless of environment (the differential suite runs the batch kernel
// under every available ISA against the per-atom oracle). The forced value is
// process-global and atomic; production code never calls it.
#pragma once

namespace fdc::simd {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lowercase name ("scalar", "avx2", "neon") for stats/bench metadata.
const char* IsaName(Isa isa);

/// The best ISA this hardware supports, ignoring every override. Probed once
/// (cpuid / baseline target checks) and cached.
Isa DetectIsa();

/// True iff the hardware can execute `isa` (kScalar is always available).
bool IsaAvailable(Isa isa);

/// The ISA the kernels dispatch on right now: ForceIsa() override if set,
/// else the FDC_SIMD environment override (read once), else DetectIsa().
/// Unavailable requests clamp to kScalar.
Isa ActiveIsa();

/// Pins ActiveIsa() to `isa` (clamped to availability) until
/// ClearForcedIsa(). Test/bench hook only.
void ForceIsa(Isa isa);

/// Drops the ForceIsa() pin; ActiveIsa() falls back to env/detection.
void ClearForcedIsa();

}  // namespace fdc::simd
