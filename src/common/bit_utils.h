// Small bit-manipulation helpers shared by the compressed-label code (§6.1)
// and the policy checker's partition bit vectors (§6.2).
#pragma once

#include <bit>
#include <cstdint>

namespace fdc {

/// Number of set bits.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// True iff `sub` is a subset of `super` when both are viewed as bit sets.
inline bool IsBitSubset(uint64_t sub, uint64_t super) {
  return (sub & ~super) == 0;
}

/// Index of the lowest set bit; undefined for x == 0.
inline int LowestBit(uint64_t x) { return std::countr_zero(x); }

/// Iterates over set bits, invoking fn(bit_index) for each.
template <typename Fn>
inline void ForEachBit(uint64_t mask, Fn&& fn) {
  while (mask != 0) {
    const int bit = std::countr_zero(mask);
    fn(bit);
    mask &= mask - 1;
  }
}

/// Mask with the low `n` bits set (n in [0, 64]).
inline uint64_t LowMask(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

}  // namespace fdc
