// Result<T>: a value or a Status, in the spirit of arrow::Result /
// absl::StatusOr. Used by parsers and constructors that validate input.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fdc {

/// Holds either a successfully computed T or the Status explaining why the
/// computation failed. Accessing the value of a failed Result aborts in
/// debug builds; call ok() first.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror StatusOr ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise the provided default.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value.
};

}  // namespace fdc
