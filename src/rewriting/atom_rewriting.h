// The equivalent-view-rewriting test for single-atom views (§3.1, §5.1).
//
// AtomRewritable(v, w) decides whether the view with pattern `v` has an
// equivalent rewriting in terms of the view with pattern `w` — i.e. whether
// {V} ⪯ {W} in the equivalent-view-rewriting disclosure order. Both views
// are single-atom conjunctive views over the same base relation (views over
// different relations are never comparable in this fragment).
//
// The decision procedure is a position-class analysis. Writing vt(p)/wt(p)
// for the pattern terms at position p, {V} ⪯ {W} holds iff all of:
//
//   (C1) wherever W selects a constant, V selects the same constant
//        (otherwise W's answer misses tuples V needs, or vice versa);
//   (C2) every equality W imposes between positions is implied by V
//        (same V-class, or equal constants in V);
//   (C3) wherever V selects a constant, W either selects it too or exposes
//        the column (distinguished), so the rewriting can filter;
//   (C4) every column V outputs is output by W;
//   (C5) every equality V imposes is either imposed by W or checkable from
//        W's output (both positions distinguished in W).
//
// When the test succeeds, BuildRewriting() produces the witness: a one-atom
// conjunctive query over W whose unfolding is equivalent to V. Soundness
// (the witness really is equivalent) and completeness relative to one-atom
// rewritings are exercised in tests against the brute-force oracle below;
// multi-atom rewritings add no power for this fragment because a multi-atom
// unfolding equivalent to a single atom folds onto one atom (see
// tests/atom_rewriting_test.cc for the empirical cross-check).
#pragma once

#include <optional>

#include "cq/pattern.h"
#include "cq/query.h"
#include "cq/schema.h"

namespace fdc::rewriting {

/// True iff the view with pattern `v` can be equivalently rewritten in terms
/// of the view with pattern `w` ({v} ⪯ {w}).
bool AtomRewritable(const cq::AtomPattern& v, const cq::AtomPattern& w);

/// A rewriting witness: a query whose single body atom ranges over W's
/// output columns (one per distinguished class of `w`, in class order).
/// Returned terms are those to plug into the W-atom; the unfolding replaces
/// them back into W's body. Empty optional iff !AtomRewritable(v, w).
std::optional<cq::ConjunctiveQuery> BuildRewriting(const cq::AtomPattern& v,
                                                   const cq::AtomPattern& w);

/// Expands a rewriting produced by BuildRewriting back over the base
/// relation: substitutes the rewriting's W-atom arguments into W's body.
/// The result is a single-atom query over the base relation which should be
/// equivalent to `v` — this is what the oracle checks.
cq::ConjunctiveQuery UnfoldRewriting(const cq::ConjunctiveQuery& rewriting,
                                     const cq::AtomPattern& w);

/// Brute-force oracle: enumerates all candidate one-atom rewritings of `v`
/// over `w` (every assignment of W-output columns to {v-class variables,
/// constants of v and w, fresh existential variables}) and tests unfolding
/// equivalence via two-way containment. Exponential; for tests only.
bool AtomRewritableOracle(const cq::AtomPattern& v, const cq::AtomPattern& w);

}  // namespace fdc::rewriting
