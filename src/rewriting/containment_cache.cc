#include "rewriting/containment_cache.h"

#include <bit>

#include "rewriting/atom_rewriting.h"
#include "rewriting/containment.h"
#include "rewriting/homomorphism.h"

namespace fdc::rewriting {

ContainmentCache::ContainmentCache(size_t capacity, size_t shards) {
  if (shards < 1) shards = 1;
  num_shards_ = std::bit_ceil(shards);
  if (capacity < 2 * num_shards_) capacity = 2 * num_shards_;
  slots_per_shard_ = std::bit_ceil(capacity) / num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].entries.resize(slots_per_shard_);
  }
}

uint64_t ContainmentCache::HashFor(Kind kind, uint64_t key) {
  // splitmix64-style finalizer over the key and kind; the full key is still
  // compared on lookup, so this only affects distribution, not correctness.
  // High bits pick the shard, low bits the slot within it.
  uint64_t h = key + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(kind) + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::optional<bool> ContainmentCache::Lookup(Kind kind, int a, int b) {
  const uint64_t key = MakeKey(a, b);
  const uint64_t hash = HashFor(kind, key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  const Entry& entry = shard.entries[SlotFor(hash)];
  if (entry.kind == static_cast<uint32_t>(kind) && entry.key == key) {
    ++shard.stats.hits;
    return entry.value != 0;
  }
  ++shard.stats.misses;
  return std::nullopt;
}

void ContainmentCache::Insert(Kind kind, int a, int b, bool value) {
  const uint64_t key = MakeKey(a, b);
  const uint64_t hash = HashFor(kind, key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = shard.entries[SlotFor(hash)];
  if (entry.kind != 0 &&
      (entry.kind != static_cast<uint32_t>(kind) || entry.key != key)) {
    ++shard.stats.evictions;
  }
  entry.key = key;
  entry.kind = static_cast<uint32_t>(kind);
  entry.value = value ? 1 : 0;
  ++shard.stats.insertions;
}

bool ContainmentCache::Contained(const cq::InternedQuery& a,
                                 const cq::InternedQuery& b) {
  if (auto cached = Lookup(Kind::kQueryContainment, a.id(), b.id())) {
    return *cached;
  }
  // Computed outside any shard lock: a racing thread may duplicate the work,
  // but both store the same pure-function result.
  bool result;
  const cq::QueryDigest& da = a.digest();
  const cq::QueryDigest& db = b.digest();
  if (da.head_arity != db.head_arity) {
    result = false;  // incomparable, as in IsContainedIn
  } else if (!cq::MayHaveHomomorphismInto(db, da)) {
    // a ⊆ b needs a homomorphism b → a; some relation of b is absent from a.
    result = false;
  } else {
    // One scratch arena per thread (Contained runs outside shard locks, so
    // concurrent callers each need their own): after the first search on a
    // thread, containment compute makes zero heap allocations.
    static thread_local HomScratch scratch;
    if (scratch.uses > 0) {
      hom_scratch_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    result = IsContainedIn(a.query(), b.query(), &scratch);
  }
  Insert(Kind::kQueryContainment, a.id(), b.id(), result);
  return result;
}

bool ContainmentCache::RewritableCached(const cq::QueryInterner& interner,
                                        int pattern_id, int view_id,
                                        const cq::AtomPattern& v,
                                        const cq::AtomPattern& w) {
  uint64_t bound = 0;
  // Bind to the first interner's uid; losers of the race observe the
  // winner's uid in `bound`.
  if (!pattern_id_space_uid_.compare_exchange_strong(
          bound, interner.uid(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    if (bound != interner.uid()) {
      // Foreign interner: its pattern ids would alias the bound id space.
      return AtomRewritable(v, w);
    }
  }
  if (auto cached = Lookup(Kind::kCatalogRewritable, pattern_id, view_id)) {
    return *cached;
  }
  const bool result = AtomRewritable(v, w);
  Insert(Kind::kCatalogRewritable, pattern_id, view_id, result);
  return result;
}

ContainmentCache::Stats ContainmentCache::stats() const {
  Stats total;
  for (size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.insertions += shard.stats.insertions;
    total.evictions += shard.stats.evictions;
  }
  total.hom_scratch_reuses =
      hom_scratch_reuses_.load(std::memory_order_relaxed);
  return total;
}

void ContainmentCache::Clear() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Entry& entry : shard.entries) entry = Entry{};
    shard.stats = Stats{};
  }
  pattern_id_space_uid_.store(0, std::memory_order_release);
  hom_scratch_reuses_.store(0, std::memory_order_relaxed);
}

}  // namespace fdc::rewriting
