#include "rewriting/containment_cache.h"

#include <bit>

#include "rewriting/atom_rewriting.h"
#include "rewriting/containment.h"

namespace fdc::rewriting {

ContainmentCache::ContainmentCache(size_t capacity) {
  if (capacity < 2) capacity = 2;
  entries_.resize(std::bit_ceil(capacity));
  mask_ = entries_.size() - 1;
}

size_t ContainmentCache::SlotFor(Kind kind, uint64_t key) const {
  // splitmix64-style finalizer over the key and kind; the full key is still
  // compared on lookup, so this only affects distribution, not correctness.
  uint64_t h = key + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(kind) + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(h ^ (h >> 31)) & mask_;
}

std::optional<bool> ContainmentCache::Lookup(Kind kind, int a, int b) {
  const uint64_t key = MakeKey(a, b);
  const Entry& entry = entries_[SlotFor(kind, key)];
  if (entry.kind == static_cast<uint32_t>(kind) && entry.key == key) {
    ++stats_.hits;
    return entry.value != 0;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ContainmentCache::Insert(Kind kind, int a, int b, bool value) {
  const uint64_t key = MakeKey(a, b);
  Entry& entry = entries_[SlotFor(kind, key)];
  if (entry.kind != 0 &&
      (entry.kind != static_cast<uint32_t>(kind) || entry.key != key)) {
    ++stats_.evictions;
  }
  entry.key = key;
  entry.kind = static_cast<uint32_t>(kind);
  entry.value = value ? 1 : 0;
  ++stats_.insertions;
}

bool ContainmentCache::Contained(const cq::InternedQuery& a,
                                 const cq::InternedQuery& b) {
  if (auto cached = Lookup(Kind::kQueryContainment, a.id(), b.id())) {
    return *cached;
  }
  bool result;
  const cq::QueryDigest& da = a.digest();
  const cq::QueryDigest& db = b.digest();
  if (da.head_arity != db.head_arity) {
    result = false;  // incomparable, as in IsContainedIn
  } else if (!cq::MayHaveHomomorphismInto(db, da)) {
    // a ⊆ b needs a homomorphism b → a; some relation of b is absent from a.
    result = false;
  } else {
    result = IsContainedIn(a.query(), b.query());
  }
  Insert(Kind::kQueryContainment, a.id(), b.id(), result);
  return result;
}

bool ContainmentCache::RewritableCached(const cq::QueryInterner& interner,
                                        int pattern_id, int view_id,
                                        const cq::AtomPattern& v,
                                        const cq::AtomPattern& w) {
  if (pattern_id_space_uid_ == 0) pattern_id_space_uid_ = interner.uid();
  if (pattern_id_space_uid_ != interner.uid()) {
    // Foreign interner: its pattern ids would alias the bound id space.
    return AtomRewritable(v, w);
  }
  if (auto cached = Lookup(Kind::kCatalogRewritable, pattern_id, view_id)) {
    return *cached;
  }
  const bool result = AtomRewritable(v, w);
  Insert(Kind::kCatalogRewritable, pattern_id, view_id, result);
  return result;
}

void ContainmentCache::Clear() {
  for (Entry& entry : entries_) entry = Entry{};
  pattern_id_space_uid_ = 0;
  stats_ = Stats{};
}

}  // namespace fdc::rewriting
