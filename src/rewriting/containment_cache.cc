#include "rewriting/containment_cache.h"

#include <bit>

#include "common/locks.h"
#include "rewriting/atom_rewriting.h"
#include "rewriting/containment.h"
#include "rewriting/homomorphism.h"

namespace fdc::rewriting {

ContainmentCache::ContainmentCache(size_t capacity, size_t shards,
                                   epoch::ReclaimChoice reclaim)
    : mode_(epoch::Resolve(reclaim)) {
  if (shards < 1) shards = 1;
  num_shards_ = std::bit_ceil(shards);
  if (capacity < 2 * num_shards_) capacity = 2 * num_shards_;
  slots_per_shard_ = std::bit_ceil(capacity) / num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].entries = std::make_unique<Entry[]>(slots_per_shard_);
  }
}

uint64_t ContainmentCache::HashFor(Kind kind, uint64_t key) {
  // splitmix64-style finalizer over the key and kind; the full key is still
  // compared on lookup, so this only affects distribution, not correctness.
  // High bits pick the shard, low bits the slot within it.
  uint64_t h = key + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(kind) + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::optional<bool> ContainmentCache::Lookup(Kind kind, int a, int b) {
  const uint64_t key = MakeKey(a, b);
  const uint64_t hash = HashFor(kind, key);
  Shard& shard = ShardFor(hash);
  const Entry& entry = shard.entries[SlotFor(hash)];
  if (mode_ == epoch::ReclaimMode::kEbr) {
    // Seqlock-validated probe: no lock. If a writer was mid-store anywhere
    // in this shard we report a miss and let the caller recompute the pure
    // function — a benign duplicate, never a wrong answer.
    const uint64_t v1 = shard.version.load(std::memory_order_acquire);
    if ((v1 & 1) == 0) {
      const uint64_t k = entry.key.load(std::memory_order_relaxed);
      const uint32_t kd = entry.kind.load(std::memory_order_relaxed);
      const uint8_t val = entry.value.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t v2 = shard.version.load(std::memory_order_relaxed);
      if (v1 == v2) {
        if (kd == static_cast<uint32_t>(kind) && k == key) {
          shard.hits.fetch_add(1, std::memory_order_relaxed);
          return val != 0;
        }
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Locked oracle path: exactly the pre-EBR probe. Counts as a reader-side
  // lock acquisition for the wait-free-path proof.
  locks::CountReaderLockAcquisition();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (entry.kind.load(std::memory_order_relaxed) ==
          static_cast<uint32_t>(kind) &&
      entry.key.load(std::memory_order_relaxed) == key) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    return entry.value.load(std::memory_order_relaxed) != 0;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ContainmentCache::Insert(Kind kind, int a, int b, bool value) {
  const uint64_t key = MakeKey(a, b);
  const uint64_t hash = HashFor(kind, key);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = shard.entries[SlotFor(hash)];
  const uint32_t old_kind = entry.kind.load(std::memory_order_relaxed);
  const uint64_t old_key = entry.key.load(std::memory_order_relaxed);
  if (old_kind != 0 &&
      (old_kind != static_cast<uint32_t>(kind) || old_key != key)) {
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  // Seqlock write side (version odd while the slot is inconsistent). The
  // release fence orders the odd store before the field stores; the final
  // release store publishes the fields to validated readers.
  const uint64_t v = shard.version.load(std::memory_order_relaxed);
  shard.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  entry.key.store(key, std::memory_order_relaxed);
  entry.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  entry.value.store(value ? 1 : 0, std::memory_order_relaxed);
  shard.version.store(v + 2, std::memory_order_release);
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
}

bool ContainmentCache::Contained(const cq::InternedQuery& a,
                                 const cq::InternedQuery& b) {
  if (auto cached = Lookup(Kind::kQueryContainment, a.id(), b.id())) {
    return *cached;
  }
  // Computed outside any shard lock: a racing thread may duplicate the work,
  // but both store the same pure-function result.
  bool result;
  const cq::QueryDigest& da = a.digest();
  const cq::QueryDigest& db = b.digest();
  if (da.head_arity != db.head_arity) {
    result = false;  // incomparable, as in IsContainedIn
  } else if (!cq::MayHaveHomomorphismInto(db, da)) {
    // a ⊆ b needs a homomorphism b → a; some relation of b is absent from a.
    result = false;
  } else {
    // One scratch arena per thread (Contained runs outside shard locks, so
    // concurrent callers each need their own): after the first search on a
    // thread, containment compute makes zero heap allocations.
    static thread_local HomScratch scratch;
    if (scratch.uses > 0) {
      hom_scratch_reuses_.fetch_add(1, std::memory_order_relaxed);
    }
    result = IsContainedIn(a.query(), b.query(), &scratch);
  }
  Insert(Kind::kQueryContainment, a.id(), b.id(), result);
  return result;
}

bool ContainmentCache::RewritableCached(const cq::QueryInterner& interner,
                                        int pattern_id, int view_id,
                                        const cq::AtomPattern& v,
                                        const cq::AtomPattern& w) {
  uint64_t bound = 0;
  // Bind to the first interner's uid; losers of the race observe the
  // winner's uid in `bound`.
  if (!pattern_id_space_uid_.compare_exchange_strong(
          bound, interner.uid(), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    if (bound != interner.uid()) {
      // Foreign interner: its pattern ids would alias the bound id space.
      return AtomRewritable(v, w);
    }
  }
  if (auto cached = Lookup(Kind::kCatalogRewritable, pattern_id, view_id)) {
    return *cached;
  }
  const bool result = AtomRewritable(v, w);
  Insert(Kind::kCatalogRewritable, pattern_id, view_id, result);
  return result;
}

ContainmentCache::Stats ContainmentCache::stats() const {
  Stats total;
  for (size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    total.hits += shard.hits.load(std::memory_order_relaxed);
    total.misses += shard.misses.load(std::memory_order_relaxed);
    total.insertions += shard.insertions.load(std::memory_order_relaxed);
    total.evictions += shard.evictions.load(std::memory_order_relaxed);
  }
  total.hom_scratch_reuses =
      hom_scratch_reuses_.load(std::memory_order_relaxed);
  return total;
}

void ContainmentCache::Clear() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t v = shard.version.load(std::memory_order_relaxed);
    shard.version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < slots_per_shard_; ++i) {
      shard.entries[i].key.store(0, std::memory_order_relaxed);
      shard.entries[i].kind.store(0, std::memory_order_relaxed);
      shard.entries[i].value.store(0, std::memory_order_relaxed);
    }
    shard.version.store(v + 2, std::memory_order_release);
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.insertions.store(0, std::memory_order_relaxed);
    shard.evictions.store(0, std::memory_order_relaxed);
  }
  pattern_id_space_uid_.store(0, std::memory_order_release);
  hom_scratch_reuses_.store(0, std::memory_order_relaxed);
}

}  // namespace fdc::rewriting
