#include "rewriting/homomorphism.h"

#include <algorithm>

namespace fdc::rewriting {

namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;

class HomSearch {
 public:
  HomSearch(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
            const HomOptions& options, const std::vector<bool>& to_allowed)
      : from_(from), to_(to), options_(options), to_allowed_(to_allowed) {
    mapping_.assign(static_cast<size_t>(from.MaxVarId() + 1), std::nullopt);
  }

  std::optional<VarMapping> Run() {
    // Seed: fixed distinguished variables and explicit seeds.
    if (options_.fix_distinguished) {
      for (int v : from_.DistinguishedVars()) {
        if (!Assign(v, Term::Var(v))) return std::nullopt;
      }
    }
    for (const auto& [v, t] : options_.seed) {
      if (!Assign(v, t)) return std::nullopt;
    }
    // Order atoms most-constrained-first: more constants/mapped vars first.
    atom_order_.resize(from_.atoms().size());
    for (size_t i = 0; i < atom_order_.size(); ++i) {
      atom_order_[i] = static_cast<int>(i);
    }
    std::stable_sort(atom_order_.begin(), atom_order_.end(),
                     [&](int a, int b) {
                       return Constrainedness(a) > Constrainedness(b);
                     });
    if (Backtrack(0)) return mapping_;
    return std::nullopt;
  }

 private:
  int Constrainedness(int atom_idx) const {
    int score = 0;
    for (const Term& t : from_.atoms()[atom_idx].terms) {
      if (t.is_const()) {
        score += 2;
      } else if (mapping_[t.var()].has_value()) {
        score += 1;
      }
    }
    return score;
  }

  bool Assign(int var, const Term& image) {
    if (var >= static_cast<int>(mapping_.size())) {
      mapping_.resize(var + 1, std::nullopt);
    }
    if (mapping_[var].has_value()) return *mapping_[var] == image;
    mapping_[var] = image;
    trail_.push_back(var);
    return true;
  }

  // Attempts to map source atom `a` onto target atom `b`; records new
  // assignments on the trail. Returns false (after rolling back nothing —
  // caller rolls back via trail mark) on mismatch.
  bool MatchAtom(const Atom& a, const Atom& b) {
    if (a.relation != b.relation || a.arity() != b.arity()) return false;
    for (int i = 0; i < a.arity(); ++i) {
      const Term& s = a.terms[i];
      const Term& t = b.terms[i];
      if (s.is_const()) {
        if (!t.is_const() || s.value() != t.value()) return false;
      } else {
        if (!Assign(s.var(), t)) return false;
      }
    }
    return true;
  }

  bool Backtrack(size_t depth) {
    if (depth == atom_order_.size()) return true;
    const Atom& a = from_.atoms()[atom_order_[depth]];
    for (size_t bi = 0; bi < to_.atoms().size(); ++bi) {
      if (!to_allowed_.empty() && !to_allowed_[bi]) continue;
      const size_t mark = trail_.size();
      if (MatchAtom(a, to_.atoms()[bi]) && Backtrack(depth + 1)) return true;
      while (trail_.size() > mark) {
        mapping_[trail_.back()] = std::nullopt;
        trail_.pop_back();
      }
    }
    return false;
  }

  const ConjunctiveQuery& from_;
  const ConjunctiveQuery& to_;
  const HomOptions& options_;
  const std::vector<bool>& to_allowed_;
  VarMapping mapping_;
  std::vector<int> trail_;
  std::vector<int> atom_order_;
};

}  // namespace

std::optional<VarMapping> FindHomomorphism(
    const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
    const HomOptions& options, const std::vector<bool>& to_atom_allowed) {
  return HomSearch(from, to, options, to_atom_allowed).Run();
}

}  // namespace fdc::rewriting
