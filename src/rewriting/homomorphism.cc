#include "rewriting/homomorphism.h"

#include <algorithm>

namespace fdc::rewriting {

namespace {

using cq::Atom;
using cq::AtomSignature;
using cq::ConjunctiveQuery;
using cq::Term;

// Stable, allocation-free ordering for the atom schedule. std::stable_sort
// grabs a temporary buffer from the heap on every call, which is the one
// allocation the warm-scratch path would otherwise keep paying; queries
// have a handful of atoms, where insertion sort also wins outright.
template <typename Less>
void StableInsertionSort(std::vector<int>& v, Less less) {
  for (size_t i = 1; i < v.size(); ++i) {
    const int x = v[i];
    size_t j = i;
    while (j > 0 && less(x, v[j - 1])) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = x;
  }
}

// The backtracking search, operating entirely inside a HomScratch: a
// caller-provided warm arena makes a whole search allocation-free (small-
// buffer-optimized constant strings aside); a cold local one behaves like
// the seed (buffers grow once, then the search runs).
class HomSearch {
 public:
  HomSearch(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
            const HomOptions& options, const std::vector<bool>& to_allowed,
            const std::vector<AtomSignature>* from_signatures,
            const std::vector<AtomSignature>* to_signatures, HomScratch& s)
      : from_(from),
        to_(to),
        options_(options),
        to_allowed_(to_allowed),
        from_signatures_(from_signatures),
        to_signatures_(to_signatures),
        s_(s) {
    s_.mapping.assign(static_cast<size_t>(from.MaxVarId() + 1), std::nullopt);
    s_.trail.clear();
  }

  // Existence decision; on success the witness is left in scratch.mapping.
  bool RunExists() {
    const bool found = Search();
    FlushStats();
    ++s_.uses;
    return found;
  }

 private:
  bool Search() {
    // Seed: fixed distinguished variables and explicit seeds.
    if (options_.fix_distinguished) {
      for (int v : from_.DistinguishedVars()) {
        if (!Assign(v, Term::Var(v))) return false;
      }
    }
    for (const auto& [v, t] : options_.seed) {
      if (!Assign(v, t)) return false;
    }

    const size_t n = from_.atoms().size();
    s_.atom_order.resize(n);
    for (size_t i = 0; i < n; ++i) s_.atom_order[i] = static_cast<int>(i);

    if (options_.engine == HomEngine::kIndexed) {
      // Build the per-predicate index (inside the scratch's backing
      // buffers) and materialize each source atom's static candidate list,
      // flattened into candidate_data with one [begin, end) span per atom.
      // An empty list is a proof of non-existence — reject before any
      // backtracking.
      TargetAtomIndex index(to_, to_allowed_, to_signatures_, &s_.index);
      s_.candidate_data.clear();
      s_.candidate_spans.assign(n, {0, 0});
      for (size_t i = 0; i < n; ++i) {
        const Atom& atom = from_.atoms()[i];
        const AtomSignature sig = from_signatures_ != nullptr
                                      ? (*from_signatures_)[i]
                                      : cq::ComputeAtomSignature(atom);
        const int begin = static_cast<int>(s_.candidate_data.size());
        index.CandidatesFor(atom, sig, &s_.candidate_data);
        const int end = static_cast<int>(s_.candidate_data.size());
        if (begin == end) return false;
        s_.candidate_spans[i] = {begin, end};
      }
      // Most-constrained-first: fewest candidate images first, breaking
      // ties toward atoms with more constants/pre-mapped variables.
      StableInsertionSort(s_.atom_order, [&](int a, int b) {
        const int ca = SpanSize(a);
        const int cb = SpanSize(b);
        if (ca != cb) return ca < cb;
        return Constrainedness(a) > Constrainedness(b);
      });
    } else {
      // Seed ordering: more constants/mapped vars first.
      StableInsertionSort(s_.atom_order, [&](int a, int b) {
        return Constrainedness(a) > Constrainedness(b);
      });
    }

    return Backtrack(0);
  }

  void FlushStats() {
    if (options_.stats != nullptr) {
      options_.stats->steps = steps_;
      options_.stats->budget_exhausted = budget_exhausted_;
    }
  }

  int SpanSize(int atom_idx) const {
    const auto& [begin, end] = s_.candidate_spans[atom_idx];
    return end - begin;
  }

  int Constrainedness(int atom_idx) const {
    int score = 0;
    for (const Term& t : from_.atoms()[atom_idx].terms) {
      if (t.is_const()) {
        score += 2;
      } else if (s_.mapping[t.var()].has_value()) {
        score += 1;
      }
    }
    return score;
  }

  bool Assign(int var, const Term& image) {
    if (var >= static_cast<int>(s_.mapping.size())) {
      s_.mapping.resize(var + 1, std::nullopt);
    }
    if (s_.mapping[var].has_value()) return *s_.mapping[var] == image;
    s_.mapping[var] = image;
    s_.trail.push_back(var);
    return true;
  }

  // Attempts to map source atom `a` onto target atom `b`; records new
  // assignments on the trail. Returns false (after rolling back nothing —
  // caller rolls back via trail mark) on mismatch.
  bool MatchAtom(const Atom& a, const Atom& b) {
    if (a.relation != b.relation || a.arity() != b.arity()) return false;
    for (int i = 0; i < a.arity(); ++i) {
      const Term& s = a.terms[i];
      const Term& t = b.terms[i];
      if (s.is_const()) {
        if (!t.is_const() || s.value() != t.value()) return false;
      } else {
        if (!Assign(s.var(), t)) return false;
      }
    }
    return true;
  }

  bool TryImage(const Atom& a, size_t bi, size_t depth) {
    ++steps_;
    const size_t mark = s_.trail.size();
    if (MatchAtom(a, to_.atoms()[bi]) && Backtrack(depth + 1)) return true;
    while (s_.trail.size() > mark) {
      s_.mapping[s_.trail.back()] = std::nullopt;
      s_.trail.pop_back();
    }
    return false;
  }

  bool BudgetExceeded() {
    if (options_.max_steps != 0 && steps_ >= options_.max_steps) {
      budget_exhausted_ = true;
      return true;
    }
    return false;
  }

  bool Backtrack(size_t depth) {
    if (depth == s_.atom_order.size()) return true;
    const int atom_idx = s_.atom_order[depth];
    const Atom& a = from_.atoms()[atom_idx];
    if (options_.engine == HomEngine::kIndexed) {
      const auto [begin, end] = s_.candidate_spans[atom_idx];
      for (int c = begin; c < end; ++c) {
        if (BudgetExceeded()) return false;
        if (TryImage(a, static_cast<size_t>(s_.candidate_data[c]), depth)) {
          return true;
        }
      }
    } else {
      for (size_t bi = 0; bi < to_.atoms().size(); ++bi) {
        if (!to_allowed_.empty() && !to_allowed_[bi]) continue;
        if (BudgetExceeded()) return false;
        if (TryImage(a, bi, depth)) return true;
      }
    }
    return false;
  }

  const ConjunctiveQuery& from_;
  const ConjunctiveQuery& to_;
  const HomOptions& options_;
  const std::vector<bool>& to_allowed_;
  const std::vector<AtomSignature>* from_signatures_;
  const std::vector<AtomSignature>* to_signatures_;
  HomScratch& s_;
  uint64_t steps_ = 0;
  bool budget_exhausted_ = false;
};

bool RunSearch(const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
               const HomOptions& options,
               const std::vector<bool>& to_atom_allowed,
               const std::vector<AtomSignature>* from_signatures,
               const std::vector<AtomSignature>* to_signatures,
               HomScratch& local) {
  HomScratch& s = options.scratch != nullptr ? *options.scratch : local;
  return HomSearch(from, to, options, to_atom_allowed, from_signatures,
                   to_signatures, s)
      .RunExists();
}

}  // namespace

std::optional<VarMapping> FindHomomorphism(
    const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
    const HomOptions& options, const std::vector<bool>& to_atom_allowed) {
  HomScratch local;
  if (!RunSearch(from, to, options, to_atom_allowed, nullptr, nullptr,
                 local)) {
    return std::nullopt;
  }
  // Copy the witness out of whichever scratch ran the search.
  return options.scratch != nullptr ? options.scratch->mapping
                                    : local.mapping;
}

bool ExistsHomomorphism(const cq::ConjunctiveQuery& from,
                        const cq::ConjunctiveQuery& to,
                        const HomOptions& options,
                        const std::vector<bool>& to_atom_allowed) {
  HomScratch local;
  return RunSearch(from, to, options, to_atom_allowed, nullptr, nullptr,
                   local);
}

std::optional<VarMapping> FindHomomorphismInterned(
    const cq::InternedQuery& from, const cq::InternedQuery& to,
    const HomOptions& options, const std::vector<bool>& to_atom_allowed) {
  // Digest reject: sound even under a to_atom_allowed restriction, since a
  // relation absent from the full target is absent from any subset of it.
  if (options.engine == HomEngine::kIndexed &&
      !cq::MayHaveHomomorphismInto(from.digest(), to.digest())) {
    if (options.stats != nullptr) *options.stats = HomStats{};
    return std::nullopt;
  }
  HomScratch local;
  if (!RunSearch(from.query(), to.query(), options, to_atom_allowed,
                 &from.atom_signatures(), &to.atom_signatures(), local)) {
    return std::nullopt;
  }
  return options.scratch != nullptr ? options.scratch->mapping
                                    : local.mapping;
}

}  // namespace fdc::rewriting
