#include "rewriting/homomorphism.h"

#include <algorithm>

#include "rewriting/atom_index.h"

namespace fdc::rewriting {

namespace {

using cq::Atom;
using cq::AtomSignature;
using cq::ConjunctiveQuery;
using cq::Term;

class HomSearch {
 public:
  HomSearch(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
            const HomOptions& options, const std::vector<bool>& to_allowed,
            const std::vector<AtomSignature>* from_signatures,
            const std::vector<AtomSignature>* to_signatures)
      : from_(from),
        to_(to),
        options_(options),
        to_allowed_(to_allowed),
        from_signatures_(from_signatures),
        to_signatures_(to_signatures) {
    mapping_.assign(static_cast<size_t>(from.MaxVarId() + 1), std::nullopt);
  }

  std::optional<VarMapping> Run() {
    // Seed: fixed distinguished variables and explicit seeds.
    if (options_.fix_distinguished) {
      for (int v : from_.DistinguishedVars()) {
        if (!Assign(v, Term::Var(v))) return Fail();
      }
    }
    for (const auto& [v, t] : options_.seed) {
      if (!Assign(v, t)) return Fail();
    }

    const size_t n = from_.atoms().size();
    atom_order_.resize(n);
    for (size_t i = 0; i < n; ++i) atom_order_[i] = static_cast<int>(i);

    if (options_.engine == HomEngine::kIndexed) {
      // Build the per-predicate index and materialize each source atom's
      // static candidate list. An empty list is a proof of non-existence —
      // reject before any backtracking.
      TargetAtomIndex index(to_, to_allowed_, to_signatures_);
      candidates_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const Atom& atom = from_.atoms()[i];
        const AtomSignature sig = from_signatures_ != nullptr
                                      ? (*from_signatures_)[i]
                                      : cq::ComputeAtomSignature(atom);
        index.CandidatesFor(atom, sig, &candidates_[i]);
        if (candidates_[i].empty()) return Fail();
      }
      // Most-constrained-first: fewest candidate images first, breaking
      // ties toward atoms with more constants/pre-mapped variables.
      std::stable_sort(atom_order_.begin(), atom_order_.end(),
                       [&](int a, int b) {
                         const size_t ca = candidates_[a].size();
                         const size_t cb = candidates_[b].size();
                         if (ca != cb) return ca < cb;
                         return Constrainedness(a) > Constrainedness(b);
                       });
    } else {
      // Seed ordering: more constants/mapped vars first.
      std::stable_sort(atom_order_.begin(), atom_order_.end(),
                       [&](int a, int b) {
                         return Constrainedness(a) > Constrainedness(b);
                       });
    }

    if (Backtrack(0)) {
      FlushStats();
      return mapping_;
    }
    return Fail();
  }

 private:
  std::optional<VarMapping> Fail() {
    FlushStats();
    return std::nullopt;
  }

  void FlushStats() {
    if (options_.stats != nullptr) {
      options_.stats->steps = steps_;
      options_.stats->budget_exhausted = budget_exhausted_;
    }
  }

  int Constrainedness(int atom_idx) const {
    int score = 0;
    for (const Term& t : from_.atoms()[atom_idx].terms) {
      if (t.is_const()) {
        score += 2;
      } else if (mapping_[t.var()].has_value()) {
        score += 1;
      }
    }
    return score;
  }

  bool Assign(int var, const Term& image) {
    if (var >= static_cast<int>(mapping_.size())) {
      mapping_.resize(var + 1, std::nullopt);
    }
    if (mapping_[var].has_value()) return *mapping_[var] == image;
    mapping_[var] = image;
    trail_.push_back(var);
    return true;
  }

  // Attempts to map source atom `a` onto target atom `b`; records new
  // assignments on the trail. Returns false (after rolling back nothing —
  // caller rolls back via trail mark) on mismatch.
  bool MatchAtom(const Atom& a, const Atom& b) {
    if (a.relation != b.relation || a.arity() != b.arity()) return false;
    for (int i = 0; i < a.arity(); ++i) {
      const Term& s = a.terms[i];
      const Term& t = b.terms[i];
      if (s.is_const()) {
        if (!t.is_const() || s.value() != t.value()) return false;
      } else {
        if (!Assign(s.var(), t)) return false;
      }
    }
    return true;
  }

  bool TryImage(const Atom& a, size_t bi, size_t depth) {
    ++steps_;
    const size_t mark = trail_.size();
    if (MatchAtom(a, to_.atoms()[bi]) && Backtrack(depth + 1)) return true;
    while (trail_.size() > mark) {
      mapping_[trail_.back()] = std::nullopt;
      trail_.pop_back();
    }
    return false;
  }

  bool BudgetExceeded() {
    if (options_.max_steps != 0 && steps_ >= options_.max_steps) {
      budget_exhausted_ = true;
      return true;
    }
    return false;
  }

  bool Backtrack(size_t depth) {
    if (depth == atom_order_.size()) return true;
    const int atom_idx = atom_order_[depth];
    const Atom& a = from_.atoms()[atom_idx];
    if (options_.engine == HomEngine::kIndexed) {
      for (int bi : candidates_[atom_idx]) {
        if (BudgetExceeded()) return false;
        if (TryImage(a, static_cast<size_t>(bi), depth)) return true;
      }
    } else {
      for (size_t bi = 0; bi < to_.atoms().size(); ++bi) {
        if (!to_allowed_.empty() && !to_allowed_[bi]) continue;
        if (BudgetExceeded()) return false;
        if (TryImage(a, bi, depth)) return true;
      }
    }
    return false;
  }

  const ConjunctiveQuery& from_;
  const ConjunctiveQuery& to_;
  const HomOptions& options_;
  const std::vector<bool>& to_allowed_;
  const std::vector<AtomSignature>* from_signatures_;
  const std::vector<AtomSignature>* to_signatures_;
  VarMapping mapping_;
  std::vector<int> trail_;
  std::vector<int> atom_order_;
  std::vector<std::vector<int>> candidates_;  // per source atom (kIndexed)
  uint64_t steps_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

std::optional<VarMapping> FindHomomorphism(
    const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
    const HomOptions& options, const std::vector<bool>& to_atom_allowed) {
  return HomSearch(from, to, options, to_atom_allowed, nullptr, nullptr)
      .Run();
}

std::optional<VarMapping> FindHomomorphismInterned(
    const cq::InternedQuery& from, const cq::InternedQuery& to,
    const HomOptions& options, const std::vector<bool>& to_atom_allowed) {
  // Digest reject: sound even under a to_atom_allowed restriction, since a
  // relation absent from the full target is absent from any subset of it.
  if (options.engine == HomEngine::kIndexed &&
      !cq::MayHaveHomomorphismInto(from.digest(), to.digest())) {
    if (options.stats != nullptr) *options.stats = HomStats{};
    return std::nullopt;
  }
  return HomSearch(from.query(), to.query(), options, to_atom_allowed,
                   &from.atom_signatures(), &to.atom_signatures())
      .Run();
}

}  // namespace fdc::rewriting
