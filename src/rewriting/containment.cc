#include "rewriting/containment.h"

#include "rewriting/homomorphism.h"

namespace fdc::rewriting {

bool IsContainedIn(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2) {
  if (q1.head().size() != q2.head().size()) return false;
  // Hom from q2 to q1 aligning heads: h(q2.head[i]) = q1.head[i].
  HomOptions options;
  options.seed.reserve(q2.head().size());
  for (size_t i = 0; i < q2.head().size(); ++i) {
    const cq::Term& src = q2.head()[i];
    const cq::Term& dst = q1.head()[i];
    if (src.is_const()) {
      // Head constants are rejected by Validate; treat defensively.
      if (!dst.is_const() || src.value() != dst.value()) return false;
      continue;
    }
    options.seed.emplace_back(src.var(), dst);
  }
  return FindHomomorphism(q2, q1, options).has_value();
}

bool AreEquivalent(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

}  // namespace fdc::rewriting
