#include "rewriting/containment.h"

#include "rewriting/homomorphism.h"

namespace fdc::rewriting {

bool IsContainedIn(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2, HomScratch* scratch) {
  if (q1.head().size() != q2.head().size()) return false;
  // Hom from q2 to q1 aligning heads: h(q2.head[i]) = q1.head[i].
  HomOptions options;
  if (scratch != nullptr) {
    // Borrow the scratch's seed buffer (capacity persists across calls)
    // and run the search itself inside the scratch too.
    options.seed = std::move(scratch->seed_storage);
    options.seed.clear();
    options.scratch = scratch;
  } else {
    options.seed.reserve(q2.head().size());
  }
  bool result = true;
  for (size_t i = 0; i < q2.head().size(); ++i) {
    const cq::Term& src = q2.head()[i];
    const cq::Term& dst = q1.head()[i];
    if (src.is_const()) {
      // Head constants are rejected by Validate; treat defensively.
      if (!dst.is_const() || src.value() != dst.value()) {
        result = false;
        break;
      }
      continue;
    }
    options.seed.emplace_back(src.var(), dst);
  }
  if (result) result = ExistsHomomorphism(q2, q1, options);
  if (scratch != nullptr) {
    scratch->seed_storage = std::move(options.seed);  // return the buffer
  }
  return result;
}

bool AreEquivalent(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

}  // namespace fdc::rewriting
