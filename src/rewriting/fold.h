// Folding (query minimization / core computation), used by Dissect (§5.2).
//
// The folding of Q is the minimal equivalent subquery — the "core": atoms
// removable via a head-fixing endomorphism are dropped. Query folding is
// NP-hard; like the paper's implementation we use a brute-force search that
// is exponential in the number of atoms but instantaneous for API-sized
// queries (§6.1).
#pragma once

#include "cq/query.h"

namespace fdc::rewriting {

/// Returns the core of `query`: an equivalent query whose body is a minimal
/// subset of the original atoms. Deterministic: among equal-size cores the
/// first found in atom order is returned. Variables are left unrenamed.
cq::ConjunctiveQuery Fold(const cq::ConjunctiveQuery& query);

/// True iff no proper subset of atoms supports a head-fixing retraction,
/// i.e. Fold(query) would keep every atom.
bool IsFolded(const cq::ConjunctiveQuery& query);

/// Process-wide count of atom-drop homomorphism searches served by an
/// already-warm thread-local scratch arena (i.e. folding steps on the
/// multi-atom labeling path that made zero heap allocations). Monotone,
/// relaxed, shared by every consumer in the process — an observability
/// counter, not a per-instance metric.
uint64_t FoldScratchReuses();

}  // namespace fdc::rewriting
