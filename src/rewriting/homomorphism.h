// Homomorphisms between conjunctive queries (Chandra–Merlin machinery).
//
// A homomorphism h from query A to query B maps each variable of A to a term
// of B (constants map to themselves) such that the image of every body atom
// of A is a body atom of B. Containment and folding both reduce to
// homomorphism existence; the problem is NP-complete, so the search is
// backtracking over atom images — but the production engine (kIndexed)
// never scans the target linearly: candidate images come from a
// per-predicate atom index with constant-position filters (atom_index.h),
// and cheap necessary-condition rejects (relation-set containment via the
// 64-bit digest Bloom set, per-atom empty candidate lists) run before any
// backtracking starts. The seed linear-scan engine (kLinear) is kept both
// as the ablation baseline and as the oracle for the agreement property
// tests.
//
// Every buffer the search touches (mapping, trail, order, candidates, the
// target index) can live in a caller-owned HomScratch, so steady-state
// callers that only need existence (folding, memoized containment) pay
// zero heap allocations per search — see ExistsHomomorphism.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "cq/interned.h"
#include "cq/query.h"
#include "rewriting/atom_index.h"

namespace fdc::rewriting {

/// A variable mapping: index = variable id in the source query, value = image
/// term in the target query. Unmapped ids hold std::nullopt.
using VarMapping = std::vector<std::optional<cq::Term>>;

/// Caller-owned scratch arena for the backtracking search: the mapping, the
/// assignment trail, the atom ordering, the per-atom candidate lists
/// (flattened into one array + spans), and the target index's backing
/// buffers all live here, so a warm scratch makes repeated searches
/// allocation-free (constants small enough for SSO aside). Not
/// thread-safe: one scratch per thread (ContainmentCache and Fold keep
/// thread_local ones); a scratch must not be shared by nested searches.
struct HomScratch {
  VarMapping mapping;
  std::vector<int> trail;       // assignment order, for backtrack undo
  std::vector<int> atom_order;  // most-constrained-first schedule
  std::vector<int> candidate_data;  // flattened per-atom candidate lists
  std::vector<std::pair<int, int>> candidate_spans;  // [begin, end) per atom
  std::vector<std::pair<int, cq::Term>> seed_storage;  // IsContainedIn seeds
  TargetAtomIndex::Storage index;
  /// Searches completed with this scratch; > 0 means buffers are warm.
  uint64_t uses = 0;
};

/// Which search engine to use. Both return identical answers (existence and
/// validity; the particular witness mapping may differ) when no budget is
/// set; the agreement is enforced by tests/hom_index_property_test.cc.
enum class HomEngine {
  kIndexed,  // predicate-indexed candidates + digest rejects (production)
  kLinear,   // seed linear scan over target atoms (baseline/oracle)
};

/// Out-params describing how a search ended (optional).
struct HomStats {
  /// Candidate-image attempts made by the backtracking search.
  uint64_t steps = 0;
  /// True iff the search gave up because `max_steps` was exhausted; the
  /// nullopt result is then inconclusive, not a proof of non-existence.
  bool budget_exhausted = false;
};

struct HomOptions {
  /// Require h(v) = v for every distinguished variable of the source. Used
  /// for folding (retractions must fix the head).
  bool fix_distinguished = false;

  /// Pre-seeded assignments (e.g. head alignment for containment checks).
  /// Entries are (source var, required image).
  std::vector<std::pair<int, cq::Term>> seed;

  /// Engine selection; kIndexed unless ablating.
  HomEngine engine = HomEngine::kIndexed;

  /// Iteration budget for pathological inputs: maximum candidate-image
  /// attempts before the search gives up (0 = unlimited, the default).
  /// When exhausted, the result is nullopt and stats->budget_exhausted is
  /// set — callers opting into a budget accept possible false negatives.
  uint64_t max_steps = 0;

  /// When non-null, filled with search statistics.
  HomStats* stats = nullptr;

  /// When non-null, the search runs entirely inside this caller-owned
  /// arena; a warm scratch makes steady-state searches allocation-free
  /// (pair it with ExistsHomomorphism — returning a witness mapping still
  /// copies it out).
  HomScratch* scratch = nullptr;
};

/// Searches for a homomorphism from `from` to `to`. Returns the mapping if
/// one exists. `to_atom_allowed`, when non-empty, restricts which atoms of
/// `to` may serve as images (indexed by atom position; used by folding to
/// exclude the atom being dropped).
std::optional<VarMapping> FindHomomorphism(
    const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
    const HomOptions& options = {},
    const std::vector<bool>& to_atom_allowed = {});

/// Existence-only variant: identical decision to FindHomomorphism but never
/// copies a witness mapping out of the search. With a warm
/// HomOptions::scratch this makes zero heap allocations — the hot shape for
/// folding and memoized containment, where only the answer matters.
bool ExistsHomomorphism(const cq::ConjunctiveQuery& from,
                        const cq::ConjunctiveQuery& to,
                        const HomOptions& options = {},
                        const std::vector<bool>& to_atom_allowed = {});

/// Interned fast path: same semantics as FindHomomorphism(from.query(),
/// to.query(), ...) but reuses both queries' precomputed digests and atom
/// signatures — the digest reject costs two loads and an AND.
std::optional<VarMapping> FindHomomorphismInterned(
    const cq::InternedQuery& from, const cq::InternedQuery& to,
    const HomOptions& options = {},
    const std::vector<bool>& to_atom_allowed = {});

}  // namespace fdc::rewriting
