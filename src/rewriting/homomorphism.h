// Homomorphisms between conjunctive queries (Chandra–Merlin machinery).
//
// A homomorphism h from query A to query B maps each variable of A to a term
// of B (constants map to themselves) such that the image of every body atom
// of A is a body atom of B. Containment and folding both reduce to
// homomorphism existence; the search is backtracking over atom images, which
// is exponential in the worst case (the problem is NP-complete) but fast on
// the small queries apps issue — the paper's own implementation makes the
// same tradeoff (§6.1 complexity analysis).
#pragma once

#include <optional>
#include <vector>

#include "cq/query.h"

namespace fdc::rewriting {

/// A variable mapping: index = variable id in the source query, value = image
/// term in the target query. Unmapped ids hold std::nullopt.
using VarMapping = std::vector<std::optional<cq::Term>>;

struct HomOptions {
  /// Require h(v) = v for every distinguished variable of the source. Used
  /// for folding (retractions must fix the head).
  bool fix_distinguished = false;

  /// Pre-seeded assignments (e.g. head alignment for containment checks).
  /// Entries are (source var, required image).
  std::vector<std::pair<int, cq::Term>> seed;
};

/// Searches for a homomorphism from `from` to `to`. Returns the mapping if
/// one exists. `to_atom_allowed`, when non-empty, restricts which atoms of
/// `to` may serve as images (indexed by atom position; used by folding to
/// exclude the atom being dropped).
std::optional<VarMapping> FindHomomorphism(
    const cq::ConjunctiveQuery& from, const cq::ConjunctiveQuery& to,
    const HomOptions& options = {},
    const std::vector<bool>& to_atom_allowed = {});

}  // namespace fdc::rewriting
