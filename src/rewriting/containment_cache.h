// A sized, shared memoization table for pairwise query decisions.
//
// The seed memoized {v} ⪯ {w} results in an ad-hoc unordered_map private to
// RewritingOrder, so GlbLabeler, DisclosureLattice, and the overprivilege
// analysis each re-derived the same pairs when they held different order
// objects, and the map grew without bound. ContainmentCache replaces it
// with a transposition-table design shared across all consumers:
//
//   * fixed capacity (power of two), zero allocation after construction;
//   * direct-mapped: a colliding insert evicts the previous occupant, so
//     memory stays bounded under adversarial workloads while the repeated-
//     structure common case (§7.2) stays ~100% hit;
//   * exact keys: the full (kind, a, b) triple is stored and compared, so
//     distinct pairs never alias — including negative or INT_MAX ids (the
//     seed's LeqPair key had no such guard; see containment_cache_test.cc);
//   * per-kind namespaces so different id spaces (universe view ids,
//     catalog view ids, interned query/pattern ids) share one table without
//     cross-talk.
//
// Decisions cached here must be pure functions of the id pair; callers pick
// the Kind matching their id space. Not thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cq/interned.h"

namespace fdc::rewriting {

class ContainmentCache {
 public:
  /// Id-space namespaces. One cache instance may serve several kinds, but a
  /// kind must only ever be used with one id space (e.g. one universe).
  enum class Kind : uint32_t {
    kUniverseRewritable = 1,  // (universe view id, universe view id)
    kCatalogRewritable = 2,   // (interned pattern id, catalog view id)
    kQueryContainment = 3,    // (interned query id, interned query id)
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` is rounded up to a power of two; default fits ~64K pair
  /// decisions in ~1.5 MB.
  explicit ContainmentCache(size_t capacity = 1 << 16);

  /// Cached decision for (kind, a, b), or nullopt on miss.
  std::optional<bool> Lookup(Kind kind, int a, int b);

  /// Records a decision, evicting any colliding entry.
  void Insert(Kind kind, int a, int b, bool value);

  /// Memoized a ⊆ b (IsContainedIn) on interned queries, with digest-level
  /// fast rejects before the homomorphism search.
  bool Contained(const cq::InternedQuery& a, const cq::InternedQuery& b);

  /// Memoized AtomRewritable(v, w) under kCatalogRewritable, keyed by
  /// (interned pattern id, catalog view id). The single shared entry point
  /// for the labeling pipeline and the overprivilege audit, so the key
  /// scheme cannot drift between them. The cache binds to the uid of the
  /// first `interner` it sees (uids are process-unique and never reused,
  /// unlike addresses): pattern ids from a *different* interner would
  /// alias, so calls with another interner compute without touching the
  /// cache (correct, just uncached) — misuse cannot poison label
  /// decisions. Clear() drops the binding along with the entries.
  bool RewritableCached(const cq::QueryInterner& interner, int pattern_id,
                        int view_id, const cq::AtomPattern& v,
                        const cq::AtomPattern& w);

  const Stats& stats() const { return stats_; }
  size_t capacity() const { return entries_.size(); }
  void Clear();

 private:
  struct Entry {
    uint64_t key = 0;     // (a << 32) | b, both cast through uint32_t
    uint32_t kind = 0;    // 0 = empty slot
    uint8_t value = 0;    // decision
  };

  // Injective over all (int, int) pairs: int -> uint32_t is a bijection.
  static uint64_t MakeKey(int a, int b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }
  size_t SlotFor(Kind kind, uint64_t key) const;

  std::vector<Entry> entries_;
  size_t mask_;
  // uid of the interner whose pattern ids populate kCatalogRewritable
  // entries (bound on first RewritableCached call; 0 = unbound).
  uint64_t pattern_id_space_uid_ = 0;
  Stats stats_;
};

}  // namespace fdc::rewriting
