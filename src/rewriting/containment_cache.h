// A sized, sharded, thread-safe memoization table for pairwise query
// decisions.
//
// The seed memoized {v} ⪯ {w} results in an ad-hoc unordered_map private to
// RewritingOrder, so GlbLabeler, DisclosureLattice, and the overprivilege
// analysis each re-derived the same pairs when they held different order
// objects, and the map grew without bound. ContainmentCache replaces it
// with a transposition-table design shared across all consumers:
//
//   * fixed capacity (power of two), zero allocation after construction;
//   * direct-mapped: a colliding insert evicts the previous occupant, so
//     memory stays bounded under adversarial workloads while the repeated-
//     structure common case (§7.2) stays ~100% hit;
//   * exact keys: the full (kind, a, b) triple is stored and compared, so
//     distinct pairs never alias — including negative or INT_MAX ids (the
//     seed's LeqPair key had no such guard; see containment_cache_test.cc);
//   * per-kind namespaces so different id spaces (universe view ids,
//     catalog view ids, interned query/pattern ids) share one table without
//     cross-talk.
//
// Sharing contract (the engine tier-2 design): the table is split into
// mutex-striped shards selected by key hash, so one instance is safe for
// any number of concurrent callers. Writers (Insert, and the insert half of
// Contained/RewritableCached misses) hold exactly one shard mutex for the
// table store and never while computing a decision (a racing pair may both
// compute the same value; both inserts store the identical decision, so the
// race is benign). Readers depend on the reclaim mode:
//
//   * kEbr (default, FDC_EPOCH=ebr|auto): Lookup takes NO lock. Each shard
//     carries a seqlock version (odd while a writer is mid-store); a probe
//     reads the version, the slot's atomic fields, then re-reads the
//     version, and treats any mismatch as a miss. A false miss just
//     recomputes a pure function — correctness never depends on the probe.
//   * kLocked (FDC_EPOCH=locked): Lookup takes the shard mutex, exactly the
//     pre-EBR behavior; it is kept as the property-test oracle and counts
//     as a reader-side lock acquisition for the wait-free-path proof.
//
// stats() sums the per-shard counters (relaxed atomics) and may interleave
// with updates, so it is a consistent-enough snapshot for observability,
// not an exact linearizable count. Clear() is the one exception to the
// concurrency contract: it requires quiescence (no in-flight
// Lookup/Insert/Contained/RewritableCached) — it locks shards one at a time
// and resets the interner-uid binding, so a concurrent RewritableCached
// caller that passed the uid check pre-clear could insert a stale
// pattern-id entry that survives into a rebinding to a different interner.
// Decisions cached here must be pure functions of the id pair; callers pick
// the Kind matching their id space.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/epoch.h"
#include "cq/interned.h"

namespace fdc::rewriting {

class ContainmentCache {
 public:
  /// Id-space namespaces. One cache instance may serve several kinds, but a
  /// kind must only ever be used with one id space (e.g. one universe).
  enum class Kind : uint32_t {
    kUniverseRewritable = 1,  // (universe view id, universe view id)
    kCatalogRewritable = 2,   // (interned pattern id, catalog view id)
    kQueryContainment = 3,    // (interned query id, interned query id)
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /// Homomorphism searches (Contained misses) served by an already-warm
    /// thread-local HomScratch — i.e. containment decisions computed with
    /// zero steady-state heap allocation.
    uint64_t hom_scratch_reuses = 0;
  };

  /// `capacity` (total, across shards) is rounded up to a power of two;
  /// default fits ~64K pair decisions in ~1.5 MB. `shards` is rounded to a
  /// power of two too; the default is plenty of stripes for any realistic
  /// serving-thread count. `reclaim` picks the read-probe mode (kAuto
  /// defers to FDC_EPOCH; see the header comment).
  explicit ContainmentCache(
      size_t capacity = 1 << 16, size_t shards = 64,
      epoch::ReclaimChoice reclaim = epoch::ReclaimChoice::kAuto);

  /// Cached decision for (kind, a, b), or nullopt on miss.
  std::optional<bool> Lookup(Kind kind, int a, int b);

  /// Records a decision, evicting any colliding entry.
  void Insert(Kind kind, int a, int b, bool value);

  /// Memoized a ⊆ b (IsContainedIn) on interned queries, with digest-level
  /// fast rejects before the homomorphism search. Misses that do reach the
  /// search run it inside a thread-local HomScratch, so steady-state
  /// containment compute allocates nothing.
  bool Contained(const cq::InternedQuery& a, const cq::InternedQuery& b);

  /// Memoized AtomRewritable(v, w) under kCatalogRewritable, keyed by
  /// (interned pattern id, catalog view id). The single shared entry point
  /// for the labeling pipeline and the overprivilege audit, so the key
  /// scheme cannot drift between them. The cache binds to the uid of the
  /// first `interner` it sees (uids are process-unique and never reused,
  /// unlike addresses): pattern ids from a *different* interner would
  /// alias, so calls with another interner compute without touching the
  /// cache (correct, just uncached) — misuse cannot poison label
  /// decisions. Clear() drops the binding along with the entries.
  bool RewritableCached(const cq::QueryInterner& interner, int pattern_id,
                        int view_id, const cq::AtomPattern& v,
                        const cq::AtomPattern& w);

  /// Per-shard counters summed; see the header comment for the (weak)
  /// consistency of this snapshot under concurrency.
  Stats stats() const;

  size_t capacity() const { return num_shards_ * slots_per_shard_; }
  size_t num_shards() const { return num_shards_; }
  epoch::ReclaimMode reclaim_mode() const { return mode_; }
  void Clear();

 private:
  // Slot fields are individually atomic so lock-free probes never race a
  // writer at the byte level (TSan-clean); the shard seqlock version is what
  // guarantees the three fields are read as a mutually consistent triple.
  struct Entry {
    std::atomic<uint64_t> key{0};   // (a << 32) | b, both cast via uint32_t
    std::atomic<uint32_t> kind{0};  // 0 = empty slot
    std::atomic<uint8_t> value{0};  // decision
  };

  struct Shard {
    mutable std::mutex mu;          // writers only (and locked-mode readers)
    std::atomic<uint64_t> version{0};  // seqlock: odd while a write is open
    std::unique_ptr<Entry[]> entries;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
  };

  // Injective over all (int, int) pairs: int -> uint32_t is a bijection.
  static uint64_t MakeKey(int a, int b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }
  static uint64_t HashFor(Kind kind, uint64_t key);
  Shard& ShardFor(uint64_t hash) {
    return shards_[(hash >> 32) & (num_shards_ - 1)];
  }
  size_t SlotFor(uint64_t hash) const {
    return static_cast<size_t>(hash) & (slots_per_shard_ - 1);
  }

  size_t num_shards_;
  size_t slots_per_shard_;
  epoch::ReclaimMode mode_;
  std::unique_ptr<Shard[]> shards_;
  // uid of the interner whose pattern ids populate kCatalogRewritable
  // entries (bound by the first RewritableCached call; 0 = unbound).
  std::atomic<uint64_t> pattern_id_space_uid_{0};
  std::atomic<uint64_t> hom_scratch_reuses_{0};
};

}  // namespace fdc::rewriting
