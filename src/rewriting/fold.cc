#include "rewriting/fold.h"

#include <atomic>
#include <numeric>

#include "rewriting/homomorphism.h"

namespace fdc::rewriting {

namespace {

std::atomic<uint64_t> g_fold_scratch_reuses{0};

// Tries to drop atom `drop_idx` from `query`: succeeds iff there is an
// endomorphism of `query` into the remaining atoms that fixes every
// distinguished variable (so the result stays equivalent).
//
// Folding sits on the multi-atom labeling hot path (every Dissect runs it),
// so the retraction searches share one warm arena per thread: the scratch
// and the drop mask live in thread_local buffers, making the steady-state
// atom-drop test allocation-free.
bool CanDropAtom(const cq::ConjunctiveQuery& query, size_t drop_idx) {
  static thread_local std::vector<bool> allowed;
  static thread_local HomScratch scratch;
  if (scratch.uses > 0) {
    g_fold_scratch_reuses.fetch_add(1, std::memory_order_relaxed);
  }
  allowed.assign(query.atoms().size(), true);
  allowed[drop_idx] = false;
  HomOptions options;
  options.fix_distinguished = true;
  options.scratch = &scratch;
  return ExistsHomomorphism(query, query, options, allowed);
}

// Fast path: a retraction maps each atom onto an atom over the same
// relation, so a query in which no relation occurs twice is already folded.
// This skips the homomorphism search for the overwhelmingly common 1–3 atom
// API queries (§7.2) on the labeling hot path.
bool NoRepeatedRelation(const cq::ConjunctiveQuery& query) {
  const auto& atoms = query.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i].relation == atoms[j].relation) return false;
    }
  }
  return true;
}

}  // namespace

cq::ConjunctiveQuery Fold(const cq::ConjunctiveQuery& query) {
  if (NoRepeatedRelation(query)) return query;
  cq::ConjunctiveQuery current = query;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (size_t i = 0; i < static_cast<size_t>(current.size()); ++i) {
      if (CanDropAtom(current, i)) {
        std::vector<int> keep;
        keep.reserve(current.size() - 1);
        for (int j = 0; j < current.size(); ++j) {
          if (static_cast<size_t>(j) != i) keep.push_back(j);
        }
        current = current.WithAtomSubset(keep);
        changed = true;
        break;
      }
    }
  }
  return current;
}

uint64_t FoldScratchReuses() {
  return g_fold_scratch_reuses.load(std::memory_order_relaxed);
}

bool IsFolded(const cq::ConjunctiveQuery& query) {
  if (NoRepeatedRelation(query)) return true;
  for (size_t i = 0; i < static_cast<size_t>(query.size()); ++i) {
    if (CanDropAtom(query, i)) return false;
  }
  return true;
}

}  // namespace fdc::rewriting
