#include "rewriting/atom_rewriting.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "rewriting/containment.h"

namespace fdc::rewriting {

namespace {

using cq::AtomPattern;
using cq::ConjunctiveQuery;
using cq::PatTerm;
using cq::Term;

// Positions belonging to each class of a pattern.
std::vector<std::vector<int>> ClassPositions(const AtomPattern& p) {
  std::vector<std::vector<int>> out(p.NumClasses());
  for (int pos = 0; pos < p.arity(); ++pos) {
    const PatTerm& pt = p.terms[pos];
    if (!pt.is_const) out[pt.cls].push_back(pos);
  }
  return out;
}

// Distinguished class ids of a pattern, in class order.
std::vector<int> DistinguishedClasses(const AtomPattern& p) {
  std::vector<int> out;
  std::vector<bool> seen(p.NumClasses(), false);
  for (const PatTerm& pt : p.terms) {
    if (!pt.is_const && pt.distinguished && !seen[pt.cls]) {
      seen[pt.cls] = true;
      out.push_back(pt.cls);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool AtomRewritable(const AtomPattern& v, const AtomPattern& w) {
  if (v.relation != w.relation || v.arity() != w.arity()) return false;
  const int n = v.arity();

  // Allocation-free single pass; this test runs once per (query atom,
  // security view) pair on the labeling hot path (§7.2 measures millions of
  // queries per second through it). Class counts are bounded by arity;
  // kMaxInlineArity covers every real schema (User has 34 columns) and the
  // slow path below handles pathological arities.
  constexpr int kMaxInlineArity = 64;
  // First position at which each class was seen (-1 = not yet). Heap
  // fallback only for pathological arities.
  int inline_first[2 * kMaxInlineArity];
  std::vector<int> heap_first;
  int* v_first;
  int* w_first;
  if (n <= kMaxInlineArity) {
    v_first = inline_first;
    w_first = inline_first + n;
  } else {
    heap_first.assign(static_cast<size_t>(2 * n), -1);
    v_first = heap_first.data();
    w_first = heap_first.data() + n;
  }
  for (int c = 0; c < n; ++c) {
    v_first[c] = -1;
    w_first[c] = -1;
  }

  for (int p = 0; p < n; ++p) {
    const PatTerm& vt = v.terms[p];
    const PatTerm& wt = w.terms[p];

    // (C1) W's constant selections must be V's (same value); conversely a
    // V constant needs a matching W constant or an exposed column (C3).
    // (C4) V's outputs must be exposed by W.
    if (wt.is_const) {
      if (!vt.is_const || vt.value != wt.value) return false;  // C1
    }
    if (vt.is_const) {
      if (wt.is_const) {
        if (wt.value != vt.value) return false;  // C1, symmetric
      } else if (!wt.distinguished) {
        return false;  // C3: cannot filter on a hidden column
      }
    } else if (vt.distinguished) {
      if (wt.is_const || !wt.distinguished) return false;  // C4
    }

    // (C2) equalities W imposes must be implied by V. Checking each
    // position against its class's first occurrence covers all pairs by
    // transitivity through the representative.
    if (!wt.is_const) {
      const int q = w_first[wt.cls];
      if (q < 0) {
        w_first[wt.cls] = p;
      } else {
        const PatTerm& va = v.terms[q];
        const bool implied =
            (va.is_const && vt.is_const && va.value == vt.value) ||
            (!va.is_const && !vt.is_const && va.cls == vt.cls);
        if (!implied) return false;
      }
    }

    // (C5) equalities V imposes must be imposed by W or checkable from W's
    // output (both positions distinguished). Representative pairing is
    // again sufficient: "both distinguished" and "same W class" propagate
    // through the shared first occurrence (see header notes).
    if (!vt.is_const) {
      const int q = v_first[vt.cls];
      if (q < 0) {
        v_first[vt.cls] = p;
      } else {
        const PatTerm& wa = w.terms[q];
        if (wa.is_const || wt.is_const) return false;  // excluded by C1
        const bool imposed = wa.cls == wt.cls;
        const bool checkable = wa.distinguished && wt.distinguished;
        if (!imposed && !checkable) return false;
      }
    }
  }
  return true;
}

std::optional<ConjunctiveQuery> BuildRewriting(const AtomPattern& v,
                                               const AtomPattern& w) {
  if (!AtomRewritable(v, w)) return std::nullopt;

  // One output column of W per distinguished class of w, in class order.
  const std::vector<int> w_out = DistinguishedClasses(w);
  const std::vector<std::vector<int>> w_positions = ClassPositions(w);

  std::vector<Term> atom_terms;
  atom_terms.reserve(w_out.size());
  for (int wc : w_out) {
    // All of the class's positions agree in V (guaranteed by C2).
    const int pos = w_positions[wc].front();
    const PatTerm& vt = v.terms[pos];
    atom_terms.push_back(vt.is_const ? Term::Const(vt.value)
                                     : Term::Var(vt.cls));
  }

  std::vector<Term> head;
  for (int vc : DistinguishedClasses(v)) head.push_back(Term::Var(vc));

  // The atom nominally ranges over the *view* W (not the base relation);
  // we tag it with w.relation for provenance. UnfoldRewriting interprets it.
  cq::Atom atom(w.relation, std::move(atom_terms));
  return ConjunctiveQuery("rw", std::move(head), {std::move(atom)});
}

ConjunctiveQuery UnfoldRewriting(const ConjunctiveQuery& rewriting,
                                 const AtomPattern& w) {
  const std::vector<int> w_out = DistinguishedClasses(w);
  // Map each W output class to the term plugged in by the rewriting.
  std::vector<Term> class_term(w.NumClasses(), Term::Var(-1));
  const cq::Atom& ratom = rewriting.atoms().front();
  for (size_t j = 0; j < w_out.size(); ++j) {
    class_term[w_out[j]] = ratom.terms[j];
  }
  // Fresh variables for W's existential classes.
  int next_fresh = std::max(rewriting.MaxVarId(), -1) + 1;
  std::vector<int> fresh(w.NumClasses(), -1);

  std::vector<Term> terms;
  terms.reserve(w.arity());
  for (const PatTerm& wt : w.terms) {
    if (wt.is_const) {
      terms.push_back(Term::Const(wt.value));
    } else if (wt.distinguished) {
      terms.push_back(class_term[wt.cls]);
    } else {
      if (fresh[wt.cls] < 0) fresh[wt.cls] = next_fresh++;
      terms.push_back(Term::Var(fresh[wt.cls]));
    }
  }
  cq::Atom atom(w.relation, std::move(terms));
  return ConjunctiveQuery(rewriting.name(), rewriting.head(),
                          {std::move(atom)});
}

bool AtomRewritableOracle(const AtomPattern& v, const AtomPattern& w) {
  if (v.relation != w.relation || v.arity() != w.arity()) return false;
  const ConjunctiveQuery vq = v.ToQuery("V");
  const std::vector<int> w_out = DistinguishedClasses(w);
  const int m = static_cast<int>(w_out.size());

  // Candidate term pool: V's class variables, all constants mentioned by
  // either view, and m fresh existential variables (repetition allowed so a
  // rewriting can equate two W columns without exposing them).
  std::vector<Term> pool;
  for (int c = 0; c < v.NumClasses(); ++c) pool.push_back(Term::Var(c));
  std::set<std::string> consts;
  for (const PatTerm& pt : v.terms) {
    if (pt.is_const) consts.insert(pt.value);
  }
  for (const PatTerm& pt : w.terms) {
    if (pt.is_const) consts.insert(pt.value);
  }
  for (const std::string& value : consts) pool.push_back(Term::Const(value));
  const int fresh_base = v.NumClasses() + 1000;
  for (int j = 0; j < m; ++j) pool.push_back(Term::Var(fresh_base + j));

  std::vector<Term> head;
  for (int vc : DistinguishedClasses(v)) head.push_back(Term::Var(vc));

  // Enumerate pool^m assignments of terms to W's output columns.
  std::vector<int> choice(m, 0);
  for (;;) {
    std::vector<Term> atom_terms;
    atom_terms.reserve(m);
    for (int j = 0; j < m; ++j) atom_terms.push_back(pool[choice[j]]);
    // Safety: every head variable must appear in the atom.
    bool safe = true;
    for (const Term& h : head) {
      if (std::find(atom_terms.begin(), atom_terms.end(), h) ==
          atom_terms.end()) {
        safe = false;
        break;
      }
    }
    if (safe) {
      ConjunctiveQuery rewriting("rw", head, {cq::Atom(w.relation, atom_terms)});
      ConjunctiveQuery unfolded = UnfoldRewriting(rewriting, w);
      if (AreEquivalent(unfolded, vq)) return true;
    }
    // Next assignment (odometer); also handles m == 0 (single iteration).
    int j = 0;
    for (; j < m; ++j) {
      if (++choice[j] < static_cast<int>(pool.size())) break;
      choice[j] = 0;
    }
    if (j == m) break;
  }
  return false;
}

}  // namespace fdc::rewriting
