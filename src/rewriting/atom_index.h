// Per-predicate atom index over a homomorphism target query.
//
// The seed HomSearch::Backtrack tried every target atom as the image of
// every source atom — O(|from|·|to|) candidate pairs before any pruning.
// A TargetAtomIndex buckets target atoms by relation id and precomputes
// their constant signatures (cq::AtomSignature), so candidate generation is
// one bucket lookup plus a cheap signature filter per bucket entry: wrong
// relation, wrong arity, and constant-position/value mismatches never reach
// the backtracking search at all.
//
// Built in one pass over the target (a counting sort into a flat
// entries/offsets layout — no per-bucket vectors). Construction normally
// writes into a caller-owned Storage so a steady-state caller (HomScratch)
// reuses the same capacity across searches and allocates nothing; without
// one, the index owns its storage.
#pragma once

#include <vector>

#include "cq/interned.h"
#include "cq/query.h"

namespace fdc::rewriting {

class TargetAtomIndex {
 public:
  struct Entry {
    int position;  // atom index in the target query
    cq::AtomSignature signature;
  };

  /// Reusable backing buffers; contents are rebuilt by each construction,
  /// capacity persists. One Storage must back at most one live index.
  struct Storage {
    std::vector<Entry> entries;   // grouped by relation id
    std::vector<int> bucket_begin;  // per relation: offset of its group
    std::vector<int> cursor;      // scratch for the counting sort
  };

  /// Indexes `target`'s atoms. When `allowed` is non-empty, positions with
  /// allowed[i] == false are excluded (folding's dropped-atom restriction).
  /// `target` must outlive the index. `signatures`, when non-null, supplies
  /// precomputed per-atom signatures (from an interned query). `storage`,
  /// when non-null, must outlive the index and is overwritten.
  TargetAtomIndex(const cq::ConjunctiveQuery& target,
                  const std::vector<bool>& allowed,
                  const std::vector<cq::AtomSignature>* signatures = nullptr,
                  Storage* storage = nullptr);

  /// Appends to `out` the target atom positions source atom `atom` (with
  /// signature `sig`) could map onto: same relation and arity, and every
  /// constant of `atom` matched by the identical constant in the target.
  /// Exact w.r.t. atom-level compatibility; only variable-binding conflicts
  /// remain for the backtracking search.
  void CandidatesFor(const cq::Atom& atom, const cq::AtomSignature& sig,
                     std::vector<int>* out) const;

 private:
  Storage owned_;  // used only when no caller storage was provided
  Storage* s_;
  const cq::ConjunctiveQuery* target_;
};

}  // namespace fdc::rewriting
