#include "rewriting/atom_index.h"

#include <algorithm>
#include <bit>

namespace fdc::rewriting {

TargetAtomIndex::TargetAtomIndex(
    const cq::ConjunctiveQuery& target, const std::vector<bool>& allowed,
    const std::vector<cq::AtomSignature>* signatures, Storage* storage)
    : s_(storage != nullptr ? storage : &owned_), target_(&target) {
  int max_relation = -1;
  for (const cq::Atom& atom : target.atoms()) {
    max_relation = std::max(max_relation, atom.relation);
  }
  // Counting sort by relation id into one flat entries array:
  // bucket_begin[r] .. bucket_begin[r + 1] is relation r's group.
  s_->bucket_begin.assign(static_cast<size_t>(max_relation + 2), 0);
  size_t kept = 0;
  for (size_t i = 0; i < target.atoms().size(); ++i) {
    if (!allowed.empty() && !allowed[i]) continue;
    const int relation = target.atoms()[i].relation;
    if (relation < 0) continue;
    ++s_->bucket_begin[static_cast<size_t>(relation) + 1];
    ++kept;
  }
  for (size_t r = 1; r < s_->bucket_begin.size(); ++r) {
    s_->bucket_begin[r] += s_->bucket_begin[r - 1];
  }
  s_->cursor.assign(s_->bucket_begin.begin(), s_->bucket_begin.end());
  s_->entries.resize(kept);
  for (size_t i = 0; i < target.atoms().size(); ++i) {
    if (!allowed.empty() && !allowed[i]) continue;
    const cq::Atom& atom = target.atoms()[i];
    if (atom.relation < 0) continue;
    Entry& entry = s_->entries[static_cast<size_t>(
        s_->cursor[static_cast<size_t>(atom.relation)]++)];
    entry.position = static_cast<int>(i);
    entry.signature = signatures != nullptr
                          ? (*signatures)[i]
                          : cq::ComputeAtomSignature(atom);
  }
}

void TargetAtomIndex::CandidatesFor(const cq::Atom& atom,
                                    const cq::AtomSignature& sig,
                                    std::vector<int>* out) const {
  if (atom.relation < 0 ||
      static_cast<size_t>(atom.relation) + 1 >= s_->bucket_begin.size()) {
    return;
  }
  const int begin = s_->bucket_begin[static_cast<size_t>(atom.relation)];
  const int end = s_->bucket_begin[static_cast<size_t>(atom.relation) + 1];
  for (int e = begin; e < end; ++e) {
    const Entry& entry = s_->entries[static_cast<size_t>(e)];
    // Signature filter: arity, then "all source constant positions are also
    // constant in the target" (constants map to themselves).
    if (!sig.CompatibleWith(entry.signature)) continue;
    // Exact constant-value check, only at the source's constant positions.
    const cq::Atom& candidate = target_->atoms()[entry.position];
    bool ok = true;
    uint64_t const_positions = sig.const_positions;
    // Positions ≥ 64 are not covered by the mask; fall back to a full scan
    // of constant positions for pathological arities.
    if (atom.arity() > 64) {
      for (int p = 0; p < atom.arity() && ok; ++p) {
        if (atom.terms[p].is_const()) {
          ok = candidate.terms[p].is_const() &&
               candidate.terms[p].value() == atom.terms[p].value();
        }
      }
    } else {
      while (const_positions != 0 && ok) {
        const int p = std::countr_zero(const_positions);
        const_positions &= const_positions - 1;
        ok = candidate.terms[p].is_const() &&
             candidate.terms[p].value() == atom.terms[p].value();
      }
    }
    if (ok) out->push_back(entry.position);
  }
}

}  // namespace fdc::rewriting
