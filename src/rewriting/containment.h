// Query containment and equivalence (Chandra–Merlin [9]).
//
// Q1 is contained in Q2 (written Q1 ⊆ Q2) iff Q1's answer is a subset of
// Q2's answer on every database — equivalently, iff there is a homomorphism
// from Q2 to Q1 mapping Q2's head onto Q1's head position-by-position.
#pragma once

#include "cq/query.h"

namespace fdc::rewriting {

/// True iff q1 ⊆ q2 (q1's answers always a subset of q2's). Requires equal
/// head arity; returns false otherwise (incomparable).
bool IsContainedIn(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2);

/// True iff q1 and q2 return the same answer on every database (§2.3).
bool AreEquivalent(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2);

}  // namespace fdc::rewriting
