// Query containment and equivalence (Chandra–Merlin [9]).
//
// Q1 is contained in Q2 (written Q1 ⊆ Q2) iff Q1's answer is a subset of
// Q2's answer on every database — equivalently, iff there is a homomorphism
// from Q2 to Q1 mapping Q2's head onto Q1's head position-by-position.
#pragma once

#include "cq/query.h"

namespace fdc::rewriting {

struct HomScratch;

/// True iff q1 ⊆ q2 (q1's answers always a subset of q2's). Requires equal
/// head arity; returns false otherwise (incomparable). `scratch`, when
/// non-null, hosts the head-alignment seeds and the whole search — a warm
/// scratch makes the steady-state check allocation-free
/// (ContainmentCache::Contained passes a thread-local one).
bool IsContainedIn(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2,
                   HomScratch* scratch = nullptr);

/// True iff q1 and q2 return the same answer on every database (§2.3).
bool AreEquivalent(const cq::ConjunctiveQuery& q1,
                   const cq::ConjunctiveQuery& q2);

}  // namespace fdc::rewriting
