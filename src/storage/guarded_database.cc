#include "storage/guarded_database.h"

namespace fdc::storage {

Result<std::vector<Tuple>> GuardedDatabase::Query(
    const std::string& principal, const cq::ConjunctiveQuery& query) {
  auto [it, inserted] = states_.try_emplace(principal, monitor_.InitialState());
  const label::DisclosureLabel label = pipeline_.Label(query);
  if (!monitor_.Submit(&it->second, label)) {
    return Status::PolicyViolation(
        "query refused: cumulative disclosure would exceed every policy "
        "partition for principal '" +
        principal + "'");
  }
  return Evaluate(*db_, query);
}

Result<std::vector<Tuple>> GuardedDatabase::QuerySql(
    const std::string& principal, const std::string& sql) {
  Result<cq::ConjunctiveQuery> parsed = cq::ParseSql(sql, db_->schema());
  if (!parsed.ok()) return parsed.status();
  return Query(principal, *parsed);
}

uint64_t GuardedDatabase::ConsistentPartitions(
    const std::string& principal) const {
  auto it = states_.find(principal);
  if (it == states_.end()) return monitor_.InitialState().consistent;
  return it->second.consistent;
}

}  // namespace fdc::storage
