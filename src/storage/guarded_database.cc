#include "storage/guarded_database.h"

namespace fdc::storage {

GuardedDatabase::GuardedDatabase(const Database* db,
                                 const label::ViewCatalog* catalog,
                                 const policy::SecurityPolicy* policy,
                                 GuardedOptions options)
    : db_(db) {
  if (options.use_engine) {
    engine_ = std::make_unique<engine::DisclosureEngine>(
        db, catalog, *policy, options.engine);
  } else {
    seed_ = std::make_unique<SeedState>(catalog, policy);
  }
}

Result<std::vector<Tuple>> GuardedDatabase::Query(
    const std::string& principal, const cq::ConjunctiveQuery& query) {
  if (engine_) return engine_->Query(principal, query);
  auto [it, inserted] =
      seed_->states.try_emplace(principal, seed_->monitor.InitialState());
  const label::DisclosureLabel label = seed_->pipeline.Label(query);
  if (!seed_->monitor.Submit(&it->second, label)) {
    return Status::PolicyViolation(
        "query refused: cumulative disclosure would exceed every policy "
        "partition for principal '" +
        principal + "'");
  }
  return Evaluate(*db_, query);
}

Result<std::vector<Tuple>> GuardedDatabase::QuerySql(
    const std::string& principal, const std::string& sql) {
  Result<cq::ConjunctiveQuery> parsed = cq::ParseSql(sql, db_->schema());
  if (!parsed.ok()) return parsed.status();
  return Query(principal, *parsed);
}

uint64_t GuardedDatabase::ConsistentPartitions(
    const std::string& principal) const {
  if (engine_) return engine_->ConsistentPartitions(principal);
  auto it = seed_->states.find(principal);
  if (it == seed_->states.end()) {
    return seed_->monitor.InitialState().consistent;
  }
  return it->second.consistent;
}

}  // namespace fdc::storage
