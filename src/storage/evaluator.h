// Conjunctive-query evaluation with set semantics.
//
// Backtracking join: atoms are processed most-constrained-first, variables
// bind to tuple values, and head projections are deduplicated. This is the
// execution engine behind the guarded database (Figure 2's "DBMS" box) and
// the semantic ground truth used by tests to validate the rewriting order
// ("if {V} ⪯ {W}, then V's answer must be computable from W's answer" is
// spot-checked on random databases).
#pragma once

#include <vector>

#include "common/result.h"
#include "cq/query.h"
#include "storage/database.h"

namespace fdc::storage {

/// Evaluates `query` against `db`. Boolean queries return zero or one empty
/// tuple (empty = false, one = true). Output tuples are deduplicated and
/// sorted for deterministic comparison.
Result<std::vector<Tuple>> Evaluate(const Database& db,
                                    const cq::ConjunctiveQuery& query);

}  // namespace fdc::storage
