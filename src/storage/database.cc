#include "storage/database.h"

namespace fdc::storage {

Database::Database(const cq::Schema* schema) : schema_(schema) {
  relations_.reserve(schema->NumRelations());
  for (const cq::RelationDef& def : schema->relations()) {
    relations_.push_back(std::make_unique<Relation>(def.arity()));
  }
}

Status Database::Insert(const std::string& relation_name, Tuple tuple) {
  const cq::RelationDef* def = schema_->Find(relation_name);
  if (def == nullptr) {
    return Status::NotFound("unknown relation '" + relation_name + "'");
  }
  return relations_[def->id]->Insert(std::move(tuple));
}

Status Database::InsertById(int relation_id, Tuple tuple) {
  if (relation_id < 0 || relation_id >= static_cast<int>(relations_.size())) {
    return Status::NotFound("unknown relation id " +
                            std::to_string(relation_id));
  }
  return relations_[relation_id]->Insert(std::move(tuple));
}

const Relation* Database::relation(int relation_id) const {
  if (relation_id < 0 || relation_id >= static_cast<int>(relations_.size())) {
    return nullptr;
  }
  return relations_[relation_id].get();
}

}  // namespace fdc::storage
