#include "storage/evaluator.h"

#include <algorithm>
#include <optional>

namespace fdc::storage {

namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;

class Eval {
 public:
  Eval(const Database& db, const ConjunctiveQuery& query)
      : db_(db), query_(query) {
    binding_.assign(static_cast<size_t>(query.MaxVarId() + 1), std::nullopt);
  }

  Result<std::vector<Tuple>> Run() {
    Status valid = query_.Validate(db_.schema());
    if (!valid.ok()) return valid;
    for (const Atom& atom : query_.atoms()) {
      if (db_.relation(atom.relation) == nullptr) {
        return Status::NotFound("relation id " + std::to_string(atom.relation) +
                                " not stored");
      }
    }
    Backtrack(0);
    std::sort(results_.begin(), results_.end());
    results_.erase(std::unique(results_.begin(), results_.end()),
                   results_.end());
    return std::move(results_);
  }

 private:
  void Backtrack(size_t atom_idx) {
    if (atom_idx == query_.atoms().size()) {
      Tuple out;
      out.reserve(query_.head().size());
      for (const Term& t : query_.head()) {
        out.push_back(t.is_const() ? t.value() : *binding_[t.var()]);
      }
      results_.push_back(std::move(out));
      return;
    }
    const Atom& atom = query_.atoms()[atom_idx];
    const Relation* rel = db_.relation(atom.relation);
    for (const Tuple& tuple : rel->tuples()) {
      std::vector<int> bound_here;
      if (MatchTuple(atom, tuple, &bound_here)) {
        Backtrack(atom_idx + 1);
      }
      for (int v : bound_here) binding_[v] = std::nullopt;
    }
  }

  bool MatchTuple(const Atom& atom, const Tuple& tuple,
                  std::vector<int>* bound_here) {
    for (int i = 0; i < atom.arity(); ++i) {
      const Term& t = atom.terms[i];
      if (t.is_const()) {
        if (t.value() != tuple[i]) return false;
      } else if (binding_[t.var()].has_value()) {
        if (*binding_[t.var()] != tuple[i]) return false;
      } else {
        binding_[t.var()] = tuple[i];
        bound_here->push_back(t.var());
      }
    }
    return true;
  }

  const Database& db_;
  const ConjunctiveQuery& query_;
  std::vector<std::optional<Value>> binding_;
  std::vector<Tuple> results_;
};

}  // namespace

Result<std::vector<Tuple>> Evaluate(const Database& db,
                                    const cq::ConjunctiveQuery& query) {
  return Eval(db, query).Run();
}

}  // namespace fdc::storage
