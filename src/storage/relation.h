// A stored relation: set semantics, append-with-dedup.
#pragma once

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/tuple.h"

namespace fdc::storage {

class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Inserts with set semantics; wrong-arity tuples are rejected.
  Status Insert(Tuple tuple);

  bool Contains(const Tuple& tuple) const {
    return index_.contains(tuple);
  }

 private:
  int arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> index_;
};

}  // namespace fdc::storage
