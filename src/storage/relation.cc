#include "storage/relation.h"

namespace fdc::storage {

Status Relation::Insert(Tuple tuple) {
  if (static_cast<int>(tuple.size()) != arity_) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != relation arity " +
        std::to_string(arity_));
  }
  if (index_.insert(tuple).second) {
    tuples_.push_back(std::move(tuple));
  }
  return Status::OK();
}

}  // namespace fdc::storage
