// The end-to-end disclosure-controlled database of Figure 2: untrusted apps
// submit queries; the reference monitor labels each one, consults the
// principal's policy and cumulative state, and either evaluates the query
// or refuses with a PolicyViolation status.
#pragma once

#include <string>
#include <unordered_map>

#include "common/result.h"
#include "cq/query.h"
#include "cq/sql_parser.h"
#include "label/pipeline.h"
#include "policy/explain.h"
#include "policy/reference_monitor.h"
#include "storage/database.h"
#include "storage/evaluator.h"

namespace fdc::storage {

class GuardedDatabase {
 public:
  /// All referenced objects must outlive the guarded database.
  ///
  /// Not thread-safe, including the const Explain*/ConsistentPartitions
  /// surface: diagnostics warm the labeling pipeline's interner and memo
  /// caches (logically const, physically mutating), so concurrent calls on
  /// a shared instance race. One GuardedDatabase per serving thread.
  GuardedDatabase(const Database* db, const label::ViewCatalog* catalog,
                  const policy::SecurityPolicy* policy)
      : db_(db), pipeline_(catalog), monitor_(policy) {}

  /// Submits a conjunctive query on behalf of `principal`. Answers iff the
  /// cumulative disclosure stays below some policy partition; otherwise
  /// returns PolicyViolation and leaves the principal's state unchanged.
  Result<std::vector<Tuple>> Query(const std::string& principal,
                                   const cq::ConjunctiveQuery& query);

  /// SQL convenience wrapper.
  Result<std::vector<Tuple>> QuerySql(const std::string& principal,
                                      const std::string& sql);

  /// The label the monitor would use for `query` (for explanations/UIs).
  label::DisclosureLabel Explain(const cq::ConjunctiveQuery& query) const {
    return pipeline_.Label(query);
  }

  /// Full per-partition diagnosis of the decision the monitor *would* make
  /// for `principal` right now — without mutating any state. Useful for
  /// developer tooling ("which permission is my app missing?").
  policy::Explanation ExplainQuery(const std::string& principal,
                                   const cq::ConjunctiveQuery& query) const {
    return policy::ExplainDecision(monitor_.policy(), pipeline_.catalog(),
                                   pipeline_.Label(query),
                                   ConsistentPartitions(principal));
  }

  /// Remaining consistent partitions for a principal (all partitions if the
  /// principal has not queried yet).
  uint64_t ConsistentPartitions(const std::string& principal) const;

 private:
  const Database* db_;
  // The interned+memoized labeling front end; mutable because its caches
  // warm up inside logically-const explanation calls.
  mutable label::LabelingPipeline pipeline_;
  policy::ReferenceMonitor monitor_;
  std::unordered_map<std::string, policy::PrincipalState> states_;
};

}  // namespace fdc::storage
