// The end-to-end disclosure-controlled database of Figure 2: untrusted apps
// submit queries; the reference monitor labels each one, consults the
// principal's policy and cumulative state, and either evaluates the query
// or refuses with a PolicyViolation status.
//
// Two selectable backends with identical decisions (property-tested):
//   * engine mode (default) — delegates to engine::DisclosureEngine, the
//     shard-aware thread-safe core: one GuardedDatabase may be shared by
//     any number of threads, including the const Explain*/
//     ConsistentPartitions surface.
//   * seed mode (use_engine=false) — the original single-threaded
//     LabelingPipeline + ReferenceMonitor path, kept as the ablation/oracle
//     baseline. Not thread-safe, including the const diagnostics surface:
//     they warm the pipeline's interner and memo caches (logically const,
//     physically mutating), so a seed-mode instance must stay on one
//     thread.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "cq/query.h"
#include "cq/sql_parser.h"
#include "engine/disclosure_engine.h"
#include "label/pipeline.h"
#include "policy/explain.h"
#include "policy/reference_monitor.h"
#include "storage/database.h"
#include "storage/evaluator.h"

namespace fdc::storage {

struct GuardedOptions {
  /// Route through the shared thread-safe DisclosureEngine (default), or
  /// keep the seed single-threaded path (ablation/oracle baseline).
  bool use_engine = true;
  /// Engine tuning; ignored in seed mode.
  engine::EngineOptions engine;
};

class GuardedDatabase {
 public:
  /// All referenced objects must outlive the guarded database.
  GuardedDatabase(const Database* db, const label::ViewCatalog* catalog,
                  const policy::SecurityPolicy* policy,
                  GuardedOptions options = {});

  /// Submits a conjunctive query on behalf of `principal`. Answers iff the
  /// cumulative disclosure stays below some policy partition; otherwise
  /// returns PolicyViolation and leaves the principal's state unchanged.
  Result<std::vector<Tuple>> Query(const std::string& principal,
                                   const cq::ConjunctiveQuery& query);

  /// SQL convenience wrapper.
  Result<std::vector<Tuple>> QuerySql(const std::string& principal,
                                      const std::string& sql);

  /// The label the monitor would use for `query` (for explanations/UIs).
  label::DisclosureLabel Explain(const cq::ConjunctiveQuery& query) const {
    if (engine_) return engine_->Explain(query);
    return seed_->pipeline.Label(query);
  }

  /// Full per-partition diagnosis of the decision the monitor *would* make
  /// for `principal` right now — without mutating any state. Useful for
  /// developer tooling ("which permission is my app missing?").
  policy::Explanation ExplainQuery(const std::string& principal,
                                   const cq::ConjunctiveQuery& query) const {
    if (engine_) return engine_->ExplainQuery(principal, query);
    return policy::ExplainDecision(seed_->monitor.policy(),
                                   seed_->pipeline.catalog(),
                                   seed_->pipeline.Label(query),
                                   ConsistentPartitions(principal));
  }

  /// Remaining consistent partitions for a principal (all partitions if the
  /// principal has not queried yet).
  uint64_t ConsistentPartitions(const std::string& principal) const;

  /// The engine backing this database, or null in seed mode.
  engine::DisclosureEngine* mutable_engine() const { return engine_.get(); }

 private:
  // The seed single-threaded path, allocated only in seed mode so engine
  // mode does not carry a dead interner/cache. The pipeline is mutable
  // because its caches warm up inside logically-const explanation calls.
  struct SeedState {
    SeedState(const label::ViewCatalog* catalog,
              const policy::SecurityPolicy* policy)
        : pipeline(catalog), monitor(policy) {}
    mutable label::LabelingPipeline pipeline;
    policy::ReferenceMonitor monitor;
    std::unordered_map<std::string, policy::PrincipalState> states;
  };

  const Database* db_;
  // Exactly one of these is non-null. The engine pointee is deliberately
  // non-const behind const methods — it is internally synchronized and its
  // "mutations" are cache warmups.
  std::unique_ptr<engine::DisclosureEngine> engine_;
  std::unique_ptr<SeedState> seed_;
};

}  // namespace fdc::storage
