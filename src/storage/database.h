// An in-memory database: one Relation per schema relation.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "cq/schema.h"
#include "storage/relation.h"

namespace fdc::storage {

class Database {
 public:
  explicit Database(const cq::Schema* schema);

  const cq::Schema& schema() const { return *schema_; }

  /// Insert by relation name.
  Status Insert(const std::string& relation_name, Tuple tuple);

  /// Insert by relation id.
  Status InsertById(int relation_id, Tuple tuple);

  const Relation* relation(int relation_id) const;

 private:
  const cq::Schema* schema_;
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace fdc::storage
