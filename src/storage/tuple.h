// Tuples and values for the in-memory relational engine.
//
// Values are strings: the conjunctive fragment only ever compares for
// equality, and the disclosure machinery treats constants textually, so a
// uniform representation keeps the evaluator simple and exactly consistent
// with the labeler's constant semantics.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace fdc::storage {

using Value = std::string;
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 1469598103934665603ULL;
    for (const Value& v : t) {
      h = (h ^ std::hash<Value>()(v)) * 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace fdc::storage
