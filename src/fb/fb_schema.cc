#include "fb/fb_schema.h"

#include <cassert>

namespace fdc::fb {

cq::Schema BuildFacebookSchema() {
  cq::Schema schema;
  // 34 attributes, mirroring FQL's user table circa 2013.
  auto user = schema.AddRelation(
      kUser,
      {"uid", "viewer_rel", "name", "first_name", "last_name", "sex", "pic",
       "pic_square", "profile_url", "about_me", "website", "likes",
       "languages", "quotes", "activities", "interests", "books", "movies",
       "music", "tv", "birthday", "relationship_status",
       "significant_other_id", "religion", "political", "work_history",
       "education_history", "current_location", "hometown_location",
       "timezone", "email", "devices", "online_presence", "status"});
  assert(user.ok() && schema.Find(kUser)->arity() == 34);
  (void)user;

  auto add = [&schema](const char* name, std::vector<std::string> attrs) {
    auto result = schema.AddRelation(name, std::move(attrs));
    assert(result.ok());
    (void)result;
  };
  add(kFriend, {"uid1", "uid2", "viewer_rel"});
  add(kAlbum,
      {"aid", "owner_uid", "viewer_rel", "name", "location", "created"});
  add(kPhoto,
      {"pid", "owner_uid", "viewer_rel", "aid", "caption", "created"});
  add(kEvent, {"eid", "host_uid", "viewer_rel", "name", "location",
               "start_time", "end_time", "rsvp_status"});
  add(kGroup, {"gid", "creator_uid", "viewer_rel", "name", "description"});
  add(kCheckin, {"checkin_id", "author_uid", "viewer_rel", "page_id",
                 "timestamp", "message", "latitude", "longitude"});
  add(kStatusUpdate,
      {"status_id", "uid", "viewer_rel", "message", "time"});
  return schema;
}

int OwnerUidIndex(const cq::Schema& schema, int relation_id) {
  const cq::RelationDef* rel = schema.FindById(relation_id);
  if (rel == nullptr) return -1;
  for (const char* candidate :
       {"uid", "uid1", "owner_uid", "host_uid", "creator_uid", "author_uid"}) {
    const int idx = rel->AttributeIndex(candidate);
    if (idx >= 0) return idx;
  }
  return -1;
}

int ViewerRelIndex(const cq::Schema& schema, int relation_id) {
  const cq::RelationDef* rel = schema.FindById(relation_id);
  return rel == nullptr ? -1 : rel->AttributeIndex("viewer_rel");
}

}  // namespace fdc::fb
