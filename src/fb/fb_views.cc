#include "fb/fb_views.h"

#include <cassert>

#include "fb/fb_schema.h"

namespace fdc::fb {

const std::vector<PermissionGroup>& UserPermissionGroups() {
  // The likes group deliberately bundles `languages` and `quotes` with
  // `likes`: §1 calls out that the real user_likes permission "confusingly
  // gives apps access to both a user's Liked pages and the languages the
  // user speaks", and Table 2 establishes that quotes correctly required
  // user_likes. Media/interest attributes ride along as in FQL.
  static const std::vector<PermissionGroup> kGroups = {
      {"about_me", {"about_me", "website"}},
      {"likes",
       {"likes", "languages", "quotes", "activities", "interests", "books",
        "movies", "music", "tv"}},
      {"birthday", {"birthday"}},
      {"relationships", {"relationship_status", "significant_other_id"}},
      {"religion_politics", {"religion", "political"}},
      {"work_education", {"work_history", "education_history"}},
      {"location", {"current_location", "hometown_location"}},
  };
  return kGroups;
}

const std::vector<std::string>& PublicProfileAttributes() {
  // viewer_rel is included because the viewer's friend list — and hence the
  // relationship flag — is available to any app running on the viewer's
  // behalf (the paper's justification for the denormalization).
  static const std::vector<std::string> kPublic = {
      "viewer_rel", "name", "first_name", "last_name",
      "sex",        "pic",  "pic_square"};
  return kPublic;
}

const std::vector<std::string>& SelfProfileAttributes() {
  static const std::vector<std::string> kSelf = {
      "timezone", "email", "devices", "online_presence", "status"};
  return kSelf;
}

cq::ConjunctiveQuery MakeProjectionView(const cq::Schema& schema,
                                        int relation_id,
                                        const std::vector<std::string>& attrs,
                                        const std::string& audience) {
  const cq::RelationDef* rel = schema.FindById(relation_id);
  assert(rel != nullptr);
  const int uid_idx = OwnerUidIndex(schema, relation_id);
  const int rel_idx = ViewerRelIndex(schema, relation_id);

  std::vector<bool> keep(static_cast<size_t>(rel->arity()), false);
  if (uid_idx >= 0) keep[uid_idx] = true;
  for (const std::string& attr : attrs) {
    const int idx = rel->AttributeIndex(attr);
    assert(idx >= 0 && "unknown attribute in view definition");
    keep[idx] = true;
  }

  std::vector<cq::Term> terms;
  std::vector<cq::Term> head;
  terms.reserve(rel->arity());
  for (int i = 0; i < rel->arity(); ++i) {
    if (i == rel_idx && !audience.empty()) {
      terms.push_back(cq::Term::Const(audience));
      continue;
    }
    terms.push_back(cq::Term::Var(i));
    if (keep[i]) head.push_back(cq::Term::Var(i));
  }
  return cq::ConjunctiveQuery("V", std::move(head),
                              {cq::Atom(relation_id, std::move(terms))});
}

Result<int> RegisterFacebookViews(label::ViewCatalog* catalog) {
  const cq::Schema& schema = catalog->schema();
  const int user = schema.Find(kUser)->id;
  int added = 0;
  auto add = [&](const std::string& name,
                 const cq::ConjunctiveQuery& def) -> Status {
    Result<int> id = catalog->AddView(name, def);
    if (!id.ok()) return id.status();
    ++added;
    return Status::OK();
  };

  // --- User: 16 views -------------------------------------------------
  Status st = add("public_profile",
                  MakeProjectionView(schema, user, PublicProfileAttributes(),
                                     /*audience=*/""));
  if (!st.ok()) return st;
  st = add("self_profile",
           MakeProjectionView(schema, user, SelfProfileAttributes(), kSelf));
  if (!st.ok()) return st;
  for (const PermissionGroup& group : UserPermissionGroups()) {
    st = add("user_" + group.name,
             MakeProjectionView(schema, user, group.attributes, kSelf));
    if (!st.ok()) return st;
    st = add("friends_" + group.name,
             MakeProjectionView(schema, user, group.attributes, kFriendRel));
    if (!st.ok()) return st;
  }

  // --- Remaining relations: 3 views each -------------------------------
  struct RelationViews {
    const char* relation;
    const char* permission;              // permission stem, e.g. "photos"
    std::vector<std::string> public_attrs;
    std::vector<std::string> private_attrs;
  };
  const std::vector<RelationViews> rest = {
      {kFriend, "friend_list", {"uid2", "viewer_rel"}, {"uid2"}},
      {kAlbum,
       "albums",
       {"aid", "viewer_rel"},
       {"name", "location", "created", "aid"}},
      {kPhoto,
       "photos",
       {"pid", "viewer_rel"},
       {"aid", "caption", "created", "pid"}},
      {kEvent,
       "events",
       {"eid", "viewer_rel"},
       {"name", "location", "start_time", "end_time", "rsvp_status", "eid"}},
      {kGroup, "groups", {"gid", "viewer_rel"}, {"name", "description",
                                                 "gid"}},
      {kCheckin,
       "checkins",
       {"checkin_id", "viewer_rel"},
       {"page_id", "timestamp", "message", "latitude", "longitude",
        "checkin_id"}},
      {kStatusUpdate,
       "statuses",
       {"status_id", "viewer_rel"},
       {"message", "time", "status_id"}},
  };
  for (const RelationViews& rv : rest) {
    const int rel_id = schema.Find(rv.relation)->id;
    st = add(std::string(rv.permission) + "_public",
             MakeProjectionView(schema, rel_id, rv.public_attrs, ""));
    if (!st.ok()) return st;
    st = add("user_" + std::string(rv.permission),
             MakeProjectionView(schema, rel_id, rv.private_attrs, kSelf));
    if (!st.ok()) return st;
    st = add("friends_" + std::string(rv.permission),
             MakeProjectionView(schema, rel_id, rv.private_attrs, kFriendRel));
    if (!st.ok()) return st;
  }
  return added;
}

}  // namespace fdc::fb
