#include "fb/fb_audit.h"

#include <algorithm>
#include <cassert>

#include "fb/fb_schema.h"
#include "label/pipeline.h"

namespace fdc::fb {

cq::ConjunctiveQuery MakeAttributeQuery(const cq::Schema& schema,
                                        const std::string& attribute,
                                        const std::string& audience) {
  const cq::RelationDef* user = schema.Find(kUser);
  assert(user != nullptr);
  const int attr_idx = user->AttributeIndex(attribute);
  assert(attr_idx >= 0);
  const int uid_idx = user->AttributeIndex("uid");
  const int rel_idx = user->AttributeIndex("viewer_rel");

  std::vector<cq::Term> terms;
  std::vector<cq::Term> head;
  for (int i = 0; i < user->arity(); ++i) {
    if (i == uid_idx && audience == kSelf) {
      // The app asks about the current user: uid is fixed.
      terms.push_back(cq::Term::Const("me"));
      continue;
    }
    if (i == rel_idx) {
      terms.push_back(cq::Term::Const(audience));
      continue;
    }
    terms.push_back(cq::Term::Var(i));
    if (i == attr_idx) head.push_back(cq::Term::Var(i));
    if (i == uid_idx) head.push_back(cq::Term::Var(i));  // whose attribute
  }
  return cq::ConjunctiveQuery("Q", std::move(head),
                              {cq::Atom(user->id, std::move(terms))});
}

AuditResult RunFacebookAudit(const label::ViewCatalog& catalog) {
  AuditResult result;
  label::LabelerPipeline pipeline(&catalog);

  for (const DocumentedView& doc : DocumentedUserViews()) {
    ++result.total_views;
    if (doc.fql == doc.graph) {
      ++result.consistent;
    } else {
      AuditRow row{doc.attribute, doc.audience, doc.fql, doc.graph, doc.actual,
                   "neither"};
      if (doc.actual == doc.fql) {
        row.correct_api = "FQL";
      } else if (doc.actual == doc.graph) {
        row.correct_api = "Graph API";
      }
      result.inconsistencies.push_back(std::move(row));
    }

    // Machine cross-check for permission-guarded attributes: the label of
    // the attribute query must name exactly the documented-actual
    // permissions.
    if (doc.actual.kind != ReqKind::kPerms) continue;
    const cq::ConjunctiveQuery query =
        MakeAttributeQuery(catalog.schema(), doc.attribute, doc.audience);
    const label::SetLabel label = pipeline.LabelHashed(query);
    std::vector<std::string> computed;
    for (const std::set<int>& per_atom : label.per_atom) {
      for (int view_id : per_atom) {
        computed.push_back(catalog.view(view_id).name);
      }
    }
    std::sort(computed.begin(), computed.end());
    computed.erase(std::unique(computed.begin(), computed.end()),
                   computed.end());
    std::vector<std::string> expected = doc.actual.permissions;
    std::sort(expected.begin(), expected.end());
    if (computed != expected) {
      result.labeler_mismatches.push_back(doc.attribute + "/" + doc.audience);
    }
  }
  return result;
}

std::string RenderTable2(const AuditResult& result) {
  std::string out;
  out += "Table 2: Inconsistencies between the FQL and Graph API permissions "
         "labeling of User attributes\n";
  out += "('any' = any nonempty permission set; 'none' = no permissions "
         "required)\n\n";
  auto pad = [](std::string s, size_t width) {
    if (s.size() < width) s.append(width - s.size(), ' ');
    return s;
  };
  out += pad("Attribute", 22) + pad("FQL Permissions", 24) +
         pad("Graph API Permissions", 26) + "Correct Labeling\n";
  out += std::string(88, '-') + "\n";
  for (const AuditRow& row : result.inconsistencies) {
    out += pad(row.attribute, 22) + pad(row.fql.ToString(), 24) +
           pad(row.graph.ToString(), 26) + row.correct_api + "\n";
  }
  out += std::string(88, '-') + "\n";
  out += std::to_string(result.inconsistencies.size()) + " of " +
         std::to_string(result.total_views) +
         " corresponding views are labeled inconsistently; labeler "
         "cross-check mismatches: " +
         std::to_string(result.labeler_mismatches.size()) + "\n";
  return out;
}

}  // namespace fdc::fb
