// Security views for the Facebook schema (§7.2): "the most complex relation,
// the User relation, required us to define a generating set Fgen with 16
// distinct security views; most of the other relations we considered could
// be modeled using just three views."
//
// User's 16 views: public_profile, self_profile, and seven permission
// groups × {user_, friends_} audiences, where friends_* views select
// viewer_rel = 'friend' (the paper's denormalization of the Friend join).
//
// Every other relation gets three views: a public structural view, an
// owner ('self') view, and a friends view.
#pragma once

#include <string>
#include <vector>

#include "cq/query.h"
#include "cq/schema.h"
#include "label/view_catalog.h"

namespace fdc::fb {

/// User permission groups (names match the classic Graph API permissions).
struct PermissionGroup {
  std::string name;                     // e.g. "likes"
  std::vector<std::string> attributes;  // User attributes it guards
};

/// The seven grouped permissions (birthday, likes, relationships, ...).
const std::vector<PermissionGroup>& UserPermissionGroups();

/// User attributes visible with no permission at all (public profile).
const std::vector<std::string>& PublicProfileAttributes();

/// User attributes visible only to the user's own session (self profile).
const std::vector<std::string>& SelfProfileAttributes();

/// Populates `catalog` with the full §7.2 view set (16 User views + 3 per
/// remaining relation = 37 views). Returns the number of views added.
Result<int> RegisterFacebookViews(label::ViewCatalog* catalog);

/// Builds the single-atom view "project `attributes` (plus uid) from
/// `relation`, restricted to viewer_rel = `audience`" — the workhorse view
/// shape. Empty `audience` means no viewer_rel selection.
cq::ConjunctiveQuery MakeProjectionView(const cq::Schema& schema,
                                        int relation_id,
                                        const std::vector<std::string>& attrs,
                                        const std::string& audience);

}  // namespace fdc::fb
