// The Facebook-like test schema of §7.2: eight relations capturing core
// Facebook API functionality. The largest is User with 34 attributes; the
// others have between 3 and 10.
//
// Following the paper's workaround for join views ("we dealt with this issue
// by adding an extra column to each relation that indicated whether the
// owner of a given tuple was friends with the principal executing the
// query"), every relation carries a `viewer_rel` attribute with values
// 'self' / 'friend' / 'fof' / 'other'. Since a user's friend list is
// available to any app running on the user's behalf, this denormalization
// does not change what information queries disclose.
#pragma once

#include <string>
#include <vector>

#include "cq/schema.h"

namespace fdc::fb {

/// Relation names, stable across the module.
inline constexpr const char* kUser = "User";
inline constexpr const char* kFriend = "Friend";
inline constexpr const char* kAlbum = "Album";
inline constexpr const char* kPhoto = "Photo";
inline constexpr const char* kEvent = "Event";
inline constexpr const char* kGroup = "Grp";
inline constexpr const char* kCheckin = "Checkin";
inline constexpr const char* kStatusUpdate = "StatusUpdate";

/// The viewer_rel domain.
inline constexpr const char* kSelf = "self";
inline constexpr const char* kFriendRel = "friend";
inline constexpr const char* kFof = "fof";
inline constexpr const char* kOther = "other";

/// Builds the eight-relation schema. User has exactly 34 attributes.
cq::Schema BuildFacebookSchema();

/// Index of the uid-like owner attribute for each relation (the join column
/// used by the §7.2 workload generator).
int OwnerUidIndex(const cq::Schema& schema, int relation_id);

/// Index of the viewer_rel attribute for a relation, or -1 if absent.
int ViewerRelIndex(const cq::Schema& schema, int relation_id);

}  // namespace fdc::fb
