// Encodings of Facebook's developer documentation for the 42 User views
// accessible through both FQL and the Graph API (§7.1).
//
// Facebook's documentation is a hand-generated disclosure labeling: for each
// API query it lists the permissions an app must hold. §7.1 compared the
// FQL and Graph API documentation for 42 corresponding User views and found
// the six inconsistencies of Table 2. The real 2013 documentation is gone;
// we encode the 42 rows here — the six Table 2 rows verbatim from the paper,
// the remaining 36 consistent rows reconstructed from the permission-group
// structure — so the audit can regenerate the table.
//
// Requirement values mirror the paper's vocabulary: "none" (no permissions
// required), "any" (any nonempty permission set), a concrete permission
// set, or forbidden (not available for this audience at all).
#pragma once

#include <string>
#include <vector>

namespace fdc::fb {

enum class ReqKind {
  kNone,       // no permission needed
  kAny,        // any nonempty set of permissions
  kPerms,      // the listed permissions (any one of them suffices)
  kForbidden,  // not accessible for this audience
};

struct Requirement {
  ReqKind kind = ReqKind::kNone;
  std::vector<std::string> permissions;  // for kPerms

  static Requirement None() { return {ReqKind::kNone, {}}; }
  static Requirement Any() { return {ReqKind::kAny, {}}; }
  static Requirement Forbidden() { return {ReqKind::kForbidden, {}}; }
  static Requirement Perms(std::vector<std::string> names) {
    return {ReqKind::kPerms, std::move(names)};
  }

  bool operator==(const Requirement& other) const {
    return kind == other.kind && permissions == other.permissions;
  }

  std::string ToString() const;
};

/// One documented view: a User attribute requested for an audience.
struct DocumentedView {
  std::string attribute;
  std::string audience;  // "self" / "friend" / "other"
  Requirement fql;       // FQL documentation
  Requirement graph;     // Graph API documentation
  Requirement actual;    // behaviour observed by issuing both queries (§7.1)
};

/// The full 42-view comparison set. Exactly six rows have fql != graph.
const std::vector<DocumentedView>& DocumentedUserViews();

}  // namespace fdc::fb
