#include "fb/fb_documentation.h"

#include "common/string_utils.h"

namespace fdc::fb {

std::string Requirement::ToString() const {
  switch (kind) {
    case ReqKind::kNone: return "none";
    case ReqKind::kAny: return "any";
    case ReqKind::kForbidden: return "forbidden";
    case ReqKind::kPerms: return JoinStrings(permissions, " or ");
  }
  return "?";
}

namespace {

std::vector<DocumentedView> BuildDocumentedViews() {
  std::vector<DocumentedView> rows;

  // ---- The six Table 2 inconsistencies, verbatim from the paper. -------
  // pic ("picture" in the Graph API): FQL none; Graph "any for pages with
  // whitelisting/targeting restrictions, otherwise none". Correct: FQL.
  rows.push_back({"pic", "self", Requirement::None(), Requirement::Any(),
                  Requirement::None()});
  // timezone: FQL any; Graph "available only for the current user".
  // Correct: Graph API.
  rows.push_back({"timezone", "self", Requirement::Any(), Requirement::None(),
                  Requirement::None()});
  // devices: FQL any (for any user); Graph "any; only available for friends
  // of the current user". Correct: Graph API — a non-friend gets nothing.
  rows.push_back({"devices", "other", Requirement::Any(),
                  Requirement::Forbidden(), Requirement::Forbidden()});
  // relationship_status: FQL any; Graph user_relationships or
  // friends_relationships. Correct: Graph API.
  rows.push_back({"relationship_status", "self", Requirement::Any(),
                  Requirement::Perms({"user_relationships"}),
                  Requirement::Perms({"user_relationships"})});
  // quotes: FQL user_likes or friends_likes; Graph user_about_me or
  // friends_about_me. Correct: FQL.
  rows.push_back({"quotes", "self", Requirement::Perms({"user_likes"}),
                  Requirement::Perms({"user_about_me"}),
                  Requirement::Perms({"user_likes"})});
  // profile_url ("link" in the Graph API): FQL any; Graph none.
  // Correct: FQL.
  rows.push_back({"profile_url", "self", Requirement::Any(),
                  Requirement::None(), Requirement::Any()});

  // ---- The 36 rows where both APIs agreed. -----------------------------
  struct Group {
    const char* permission;  // group stem
    std::vector<const char*> attributes;
  };
  const std::vector<Group> groups = {
      // likes group minus quotes (its row is above).
      {"likes",
       {"likes", "languages", "activities", "interests", "books", "movies",
        "music", "tv"}},
      {"about_me", {"about_me", "website"}},
      {"birthday", {"birthday"}},
      // relationships group minus relationship_status (row above).
      {"relationships", {"significant_other_id"}},
      {"religion_politics", {"religion", "political"}},
      {"work_education", {"work_history", "education_history"}},
      {"location", {"current_location", "hometown_location"}},
  };
  for (const Group& group : groups) {
    for (const char* attr : group.attributes) {
      const Requirement self_req =
          Requirement::Perms({"user_" + std::string(group.permission)});
      rows.push_back({attr, "self", self_req, self_req, self_req});
      const Requirement friend_req =
          Requirement::Perms({"friends_" + std::string(group.permission)});
      rows.push_back({attr, "friend", friend_req, friend_req, friend_req});
    }
  }
  return rows;
}

}  // namespace

const std::vector<DocumentedView>& DocumentedUserViews() {
  static const std::vector<DocumentedView> kRows = BuildDocumentedViews();
  return kRows;
}

}  // namespace fdc::fb
