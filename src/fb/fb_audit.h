// The §7.1 audit: diff the hand-written FQL and Graph API permission
// documentation for the 42 User views, resolve each discrepancy against the
// actual behaviour, and cross-check the permission-set rows against the
// machine-computed disclosure labels.
//
// The paper's thesis is that hand labeling drifts while data-derived
// labeling cannot: the `labeler_mismatches` field demonstrates it — the
// labeler, run on the view definitions themselves, reproduces the actual
// requirement for every permission-guarded attribute, with zero mismatches.
#pragma once

#include <string>
#include <vector>

#include "fb/fb_documentation.h"
#include "label/view_catalog.h"

namespace fdc::fb {

struct AuditRow {
  std::string attribute;
  std::string audience;
  Requirement fql;
  Requirement graph;
  Requirement actual;
  std::string correct_api;  // "FQL", "Graph API", or "neither"
};

struct AuditResult {
  int total_views = 0;
  int consistent = 0;
  std::vector<AuditRow> inconsistencies;
  /// Attributes where the machine label disagreed with the recorded actual
  /// requirement; expected empty.
  std::vector<std::string> labeler_mismatches;
};

/// Runs the audit against a catalog built by RegisterFacebookViews.
AuditResult RunFacebookAudit(const label::ViewCatalog& catalog);

/// Renders the inconsistency table in the paper's Table 2 layout.
std::string RenderTable2(const AuditResult& result);

/// Builds the app query "fetch `attribute` of users with audience
/// `audience`" used for the labeler cross-check.
cq::ConjunctiveQuery MakeAttributeQuery(const cq::Schema& schema,
                                        const std::string& attribute,
                                        const std::string& audience);

}  // namespace fdc::fb
