#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fdc::server {

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    epoch_ = other.epoch_;
    send_buf_ = std::move(other.send_buf_);
    recv_buf_ = std::move(other.recv_buf_);
  }
  return *this;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buf_.Clear();
  recv_buf_.Clear();
}

Status BlockingClient::Connect(const std::string& host, uint16_t port,
                               std::string_view principal) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;

  std::string hello;
  AppendHello(&hello, principal);
  Status s = SendAll(hello);
  if (!s.ok()) {
    Close();
    return s;
  }
  ClientResponse resp;
  s = ReadResponse(&resp);
  if (!s.ok()) {
    Close();
    return s;
  }
  if (resp.type == FrameType::kError) {
    Close();
    return Status::InvalidArgument("server rejected hello: " + resp.text);
  }
  if (resp.type != FrameType::kHelloAck) {
    Close();
    return Status::Internal("unexpected frame in place of kHelloAck");
  }
  epoch_ = resp.epoch;
  return Status::OK();
}

Status BlockingClient::SendAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status BlockingClient::Flush() {
  if (send_buf_.empty()) return Status::OK();
  Status s = SendAll(std::string_view(
      reinterpret_cast<const char*>(send_buf_.data()), send_buf_.size()));
  if (s.ok()) send_buf_.Clear();
  return s;
}

Status BlockingClient::ReadResponse(ClientResponse* out) {
  for (;;) {
    FrameView frame;
    DecodeResult r = DecodeFrame(recv_buf_.data(), recv_buf_.size(), &frame);
    if (r.status == DecodeStatus::kError) {
      return Status::Internal(std::string("bad server frame: ") +
                              ErrorCodeName(r.error));
    }
    if (r.status == DecodeStatus::kFrame) {
      out->type = frame.type;
      out->text.clear();
      switch (frame.type) {
        case FrameType::kHelloAck: {
          if (frame.payload.size() < 12) {
            return Status::Internal("short kHelloAck");
          }
          out->epoch = GetU64(frame.payload.data());
          break;
        }
        case FrameType::kTemplateAck: {
          if (frame.payload.size() != 4) {
            return Status::Internal("short kTemplateAck");
          }
          out->template_id = GetU32(frame.payload.data());
          break;
        }
        case FrameType::kDecision: {
          DecisionPayload d;
          if (!ParseDecision(frame.payload, &d)) {
            return Status::Internal("malformed kDecision");
          }
          out->allow = d.allow;
          out->epoch = d.epoch;
          out->text.assign(d.explanation);
          break;
        }
        case FrameType::kStatsJson: {
          out->text.assign(reinterpret_cast<const char*>(
                               frame.payload.data()),
                           frame.payload.size());
          break;
        }
        case FrameType::kPong: {
          if (frame.payload.size() != 8) {
            return Status::Internal("short kPong");
          }
          out->epoch = GetU64(frame.payload.data());
          break;
        }
        case FrameType::kError: {
          ErrorPayload e;
          if (!ParseError(frame.payload, &e)) {
            return Status::Internal("malformed kError");
          }
          out->error = e.code;
          out->error_detail = e.detail;
          out->text.assign(e.message);
          break;
        }
        default:
          return Status::Internal("client-to-server frame from the server");
      }
      recv_buf_.Consume(r.consumed);
      return Status::OK();
    }
    // kNeedMore: block for bytes.
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Internal("server closed the connection");
    if (errno == EINTR) continue;
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
}

Status BlockingClient::RegisterTemplate(uint32_t id,
                                        std::string_view datalog) {
  std::string frame;
  AppendRegisterTemplate(&frame, id, datalog);
  Status s = SendAll(frame);
  if (!s.ok()) return s;
  ClientResponse resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.type == FrameType::kError) {
    return Status::ParseError(std::string(ErrorCodeName(resp.error)) + ": " +
                              resp.text);
  }
  if (resp.type != FrameType::kTemplateAck || resp.template_id != id) {
    return Status::Internal("unexpected frame in place of kTemplateAck");
  }
  return Status::OK();
}

Status BlockingClient::Submit(uint32_t id, ClientResponse* out, bool explain) {
  std::string frame;
  AppendSubmit(&frame, id, explain);
  Status s = SendAll(frame);
  if (!s.ok()) return s;
  return ReadResponse(out);
}

Status BlockingClient::SubmitText(std::string_view datalog,
                                  ClientResponse* out, bool explain) {
  std::string frame;
  AppendSubmitText(&frame, datalog, explain);
  Status s = SendAll(frame);
  if (!s.ok()) return s;
  return ReadResponse(out);
}

Status BlockingClient::StatsJson(std::string* out) {
  std::string frame;
  AppendStatsRequest(&frame);
  Status s = SendAll(frame);
  if (!s.ok()) return s;
  ClientResponse resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.type != FrameType::kStatsJson) {
    return Status::Internal("unexpected frame in place of kStatsJson");
  }
  *out = std::move(resp.text);
  return Status::OK();
}

Status BlockingClient::Ping(uint64_t* epoch) {
  std::string frame;
  AppendPing(&frame);
  Status s = SendAll(frame);
  if (!s.ok()) return s;
  ClientResponse resp;
  s = ReadResponse(&resp);
  if (!s.ok()) return s;
  if (resp.type != FrameType::kPong) {
    return Status::Internal("unexpected frame in place of kPong");
  }
  *epoch = resp.epoch;
  return Status::OK();
}

}  // namespace fdc::server
