#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace fdc::server {

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    epoch_ = other.epoch_;
    send_buf_ = std::move(other.send_buf_);
    recv_buf_ = std::move(other.recv_buf_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    principal_ = std::move(other.principal_);
    registered_templates_ = std::move(other.registered_templates_);
    call_deadline_ms_ = other.call_deadline_ms_;
    retry_enabled_ = other.retry_enabled_;
    retry_ = other.retry_;
    rng_state_ = other.rng_state_;
    io_failed_ = other.io_failed_;
    saw_going_away_ = other.saw_going_away_;
    reconnects_ = other.reconnects_;
  }
  return *this;
}

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_buf_.Clear();
  recv_buf_.Clear();
}

Status BlockingClient::Connect(const std::string& host, uint16_t port,
                               std::string_view principal) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  host_ = host;
  port_ = port;
  principal_.assign(principal);
  saw_going_away_ = false;
  if (call_deadline_ms_ > 0) {
    Status ds = SetCallDeadline(call_deadline_ms_);
    if (!ds.ok()) {
      Close();
      return ds;
    }
  }

  std::string hello;
  AppendHello(&hello, principal);
  Status s = SendAll(hello);
  if (!s.ok()) {
    Close();
    return s;
  }
  ClientResponse resp;
  s = ReadCallResponse(&resp);
  if (!s.ok()) {
    Close();
    return s;
  }
  if (resp.type == FrameType::kError) {
    Close();
    return Status::InvalidArgument("server rejected hello: " + resp.text);
  }
  if (resp.type != FrameType::kHelloAck) {
    Close();
    return Status::Internal("unexpected frame in place of kHelloAck");
  }
  epoch_ = resp.epoch;
  return Status::OK();
}

Status BlockingClient::SetCallDeadline(int deadline_ms) {
  call_deadline_ms_ = deadline_ms < 0 ? 0 : deadline_ms;
  if (fd_ < 0) return Status::OK();
  timeval tv{};
  tv.tv_sec = call_deadline_ms_ / 1000;
  tv.tv_usec = static_cast<suseconds_t>(call_deadline_ms_ % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Internal(std::string("setsockopt timeout: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status BlockingClient::SendAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    io_failed_ = true;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Internal("send: call deadline exceeded");
    }
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status BlockingClient::Flush() {
  if (send_buf_.empty()) return Status::OK();
  Status s = SendAll(std::string_view(
      reinterpret_cast<const char*>(send_buf_.data()), send_buf_.size()));
  if (s.ok()) send_buf_.Clear();
  return s;
}

Status BlockingClient::ReadResponse(ClientResponse* out) {
  // Every non-OK return here poisons the connection (io_failed_): either
  // the socket failed or the stream is desynchronized; both mean the next
  // frame boundary is unknowable and only a reconnect recovers.
  auto fail = [this](std::string msg) {
    io_failed_ = true;
    return Status::Internal(std::move(msg));
  };
  for (;;) {
    FrameView frame;
    DecodeResult r = DecodeFrame(recv_buf_.data(), recv_buf_.size(), &frame);
    if (r.status == DecodeStatus::kError) {
      return fail(std::string("bad server frame: ") +
                  ErrorCodeName(r.error));
    }
    if (r.status == DecodeStatus::kFrame) {
      out->type = frame.type;
      out->text.clear();
      switch (frame.type) {
        case FrameType::kHelloAck: {
          if (frame.payload.size() < 12) {
            return fail("short kHelloAck");
          }
          out->epoch = GetU64(frame.payload.data());
          break;
        }
        case FrameType::kTemplateAck: {
          if (frame.payload.size() != 4) {
            return fail("short kTemplateAck");
          }
          out->template_id = GetU32(frame.payload.data());
          break;
        }
        case FrameType::kDecision: {
          DecisionPayload d;
          if (!ParseDecision(frame.payload, &d)) {
            return fail("malformed kDecision");
          }
          out->allow = d.allow;
          out->epoch = d.epoch;
          out->text.assign(d.explanation);
          break;
        }
        case FrameType::kStatsJson: {
          out->text.assign(reinterpret_cast<const char*>(
                               frame.payload.data()),
                           frame.payload.size());
          break;
        }
        case FrameType::kPong: {
          if (frame.payload.size() != 8) {
            return fail("short kPong");
          }
          out->epoch = GetU64(frame.payload.data());
          break;
        }
        case FrameType::kError: {
          ErrorPayload e;
          if (!ParseError(frame.payload, &e)) {
            return fail("malformed kError");
          }
          out->error = e.code;
          out->error_detail = e.detail;
          out->text.assign(e.message);
          break;
        }
        case FrameType::kGoingAway: {
          GoingAwayPayload g;
          if (!ParseGoingAway(frame.payload, &g)) {
            return fail("malformed kGoingAway");
          }
          out->epoch = g.epoch;
          out->text.assign(g.reason);
          saw_going_away_ = true;
          break;
        }
        default:
          return fail("client-to-server frame from the server");
      }
      recv_buf_.Consume(r.consumed);
      return Status::OK();
    }
    // kNeedMore: block for bytes.
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return fail("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return fail("recv: call deadline exceeded");
    }
    return fail(std::string("recv: ") + std::strerror(errno));
  }
}

Status BlockingClient::ReadCallResponse(ClientResponse* out) {
  // In call/response mode a drain announcement can land between a request
  // and its answer; the draining server still answers everything it
  // received, so skip past it (saw_going_away() records that it happened).
  for (;;) {
    Status s = ReadResponse(out);
    if (!s.ok() || out->type != FrameType::kGoingAway) return s;
  }
}

void BlockingClient::BackoffBeforeAttempt(int attempt) {
  if (rng_state_ == 0) rng_state_ = retry_.seed | 1;
  int64_t cap = retry_.base_backoff_ms > 0 ? retry_.base_backoff_ms : 1;
  for (int i = 1; i < attempt && cap < retry_.max_backoff_ms; ++i) cap *= 2;
  if (cap > retry_.max_backoff_ms) cap = retry_.max_backoff_ms;
  // Half deterministic, half jitter, so a fleet of clients kicked off the
  // same server decorrelates instead of reconnect-storming in lockstep.
  const uint64_t j = SplitMix64Next(&rng_state_);
  const int64_t sleep_ms =
      cap / 2 + static_cast<int64_t>(j % static_cast<uint64_t>(cap / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Status BlockingClient::Reconnect() {
  ++reconnects_;
  Status s = Connect(host_, port_, principal_);
  if (!s.ok()) return s;
  // Idempotent session replay: templates are per-connection server state,
  // so every one this client ever registered must exist again before the
  // retried call can reference it. Ids can't collide — the connection is
  // brand new.
  for (const auto& [id, datalog] : registered_templates_) {
    std::string frame;
    AppendRegisterTemplate(&frame, id, datalog);
    s = SendAll(frame);
    if (!s.ok()) return s;
    ClientResponse resp;
    s = ReadCallResponse(&resp);
    if (!s.ok()) return s;
    if (resp.type != FrameType::kTemplateAck || resp.template_id != id) {
      io_failed_ = true;
      return Status::Internal("template re-registration failed on reconnect");
    }
  }
  return Status::OK();
}

template <typename Op>
Status BlockingClient::RunWithRetry(Op&& op) {
  io_failed_ = false;
  Status s = op();
  if (s.ok() || !retry_enabled_) return s;
  for (int attempt = 1; attempt < retry_.max_attempts && io_failed_;
       ++attempt) {
    BackoffBeforeAttempt(attempt);
    io_failed_ = false;
    Status rs = Reconnect();
    if (!rs.ok()) {
      // A refused/failed reconnect is itself a transport failure: keep
      // backing off until the attempts run out.
      io_failed_ = true;
      s = std::move(rs);
      continue;
    }
    s = op();
    if (s.ok()) return s;
  }
  return s;
}

Status BlockingClient::RegisterTemplate(uint32_t id,
                                        std::string_view datalog) {
  Status s = RunWithRetry([&] {
    std::string frame;
    AppendRegisterTemplate(&frame, id, datalog);
    Status r = SendAll(frame);
    if (!r.ok()) return r;
    ClientResponse resp;
    r = ReadCallResponse(&resp);
    if (!r.ok()) return r;
    if (resp.type == FrameType::kError) {
      return Status::ParseError(std::string(ErrorCodeName(resp.error)) +
                                ": " + resp.text);
    }
    if (resp.type != FrameType::kTemplateAck || resp.template_id != id) {
      io_failed_ = true;
      return Status::Internal("unexpected frame in place of kTemplateAck");
    }
    return Status::OK();
  });
  // Recorded only on success, so a reconnect replay never races the
  // in-flight registration it is retrying.
  if (s.ok()) registered_templates_[id] = std::string(datalog);
  return s;
}

Status BlockingClient::Submit(uint32_t id, ClientResponse* out, bool explain) {
  return RunWithRetry([&] {
    std::string frame;
    AppendSubmit(&frame, id, explain);
    Status r = SendAll(frame);
    if (!r.ok()) return r;
    return ReadCallResponse(out);
  });
}

Status BlockingClient::SubmitText(std::string_view datalog,
                                  ClientResponse* out, bool explain) {
  return RunWithRetry([&] {
    std::string frame;
    AppendSubmitText(&frame, datalog, explain);
    Status r = SendAll(frame);
    if (!r.ok()) return r;
    return ReadCallResponse(out);
  });
}

Status BlockingClient::StatsJson(std::string* out) {
  return RunWithRetry([&] {
    std::string frame;
    AppendStatsRequest(&frame);
    Status r = SendAll(frame);
    if (!r.ok()) return r;
    ClientResponse resp;
    r = ReadCallResponse(&resp);
    if (!r.ok()) return r;
    if (resp.type != FrameType::kStatsJson) {
      io_failed_ = true;
      return Status::Internal("unexpected frame in place of kStatsJson");
    }
    *out = std::move(resp.text);
    return Status::OK();
  });
}

Status BlockingClient::Ping(uint64_t* epoch) {
  return RunWithRetry([&] {
    std::string frame;
    AppendPing(&frame);
    Status r = SendAll(frame);
    if (!r.ok()) return r;
    ClientResponse resp;
    r = ReadCallResponse(&resp);
    if (!r.ok()) return r;
    if (resp.type != FrameType::kPong) {
      io_failed_ = true;
      return Status::Internal("unexpected frame in place of kPong");
    }
    *epoch = resp.epoch;
    return Status::OK();
  });
}

}  // namespace fdc::server
