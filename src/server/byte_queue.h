// Per-connection byte queues for the serving front end.
//
// A ByteQueue is a FIFO of raw bytes with a contiguous readable view —
// the property the frame decoder and partial-write resumption both need.
// It is implemented as a flat string with a head offset and amortized
// compaction rather than a true circular buffer: frames must be parsed
// from (and written from) contiguous memory anyway, so a wrapping layout
// would just force a copy at every wrap; compacting at most doubles the
// byte traffic and keeps the common case (queue fully drained every event
// -loop wake) zero-copy and allocation-free once warm.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace fdc::server {

class ByteQueue {
 public:
  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return head_ == buf_.size(); }

  /// Contiguous view of every unconsumed byte.
  const uint8_t* data() const {
    return reinterpret_cast<const uint8_t*>(buf_.data()) + head_;
  }

  void Append(const void* bytes, size_t n) {
    buf_.append(static_cast<const char*>(bytes), n);
  }

  /// Appending through the protocol encoders: they take a std::string*.
  /// Appending to the tail never invalidates head-side bookkeeping.
  std::string* tail() { return &buf_; }

  /// Drops `n` bytes from the head (n <= size()).
  void Consume(size_t n) {
    head_ += n;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= kCompactAt && head_ >= buf_.size() / 2) {
      buf_.erase(0, head_);
      head_ = 0;
    }
  }

  void Clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  // Don't memmove for tiny heads: compaction is amortized O(1) because it
  // runs only once the dead prefix dominates the buffer.
  static constexpr size_t kCompactAt = 4096;
  std::string buf_;
  size_t head_ = 0;
};

}  // namespace fdc::server
