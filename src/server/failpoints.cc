#include "server/failpoints.h"

#ifndef FDC_NO_FAILPOINTS

#include <errno.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"

namespace fdc::server::failpoints {
namespace {

// Config is published as individual atomics rather than a heap-allocated
// snapshot: the LSan-enabled CI jobs would report a never-freed snapshot
// as a leak, and per-field relaxed loads are all the wrappers need (a torn
// view across Enable() at worst mis-rates one call).
std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_seed{1};
std::atomic<double> g_rate{0.0};
std::atomic<double> g_lethal{0.0};
std::atomic<double> g_short{0.5};
std::atomic<uint32_t> g_ops{kAllOps};

// One global call index keeps the schedule deterministic for a
// single-threaded server and merely interleaving-dependent otherwise.
std::atomic<uint64_t> g_counter{0};

struct AtomicStats {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> faults{0};
  std::atomic<uint64_t> eintr{0};
  std::atomic<uint64_t> eagain{0};
  std::atomic<uint64_t> short_reads{0};
  std::atomic<uint64_t> short_writes{0};
  std::atomic<uint64_t> econnreset{0};
  std::atomic<uint64_t> epipe{0};
  std::atomic<uint64_t> enomem{0};
  std::atomic<uint64_t> emfile{0};
};
AtomicStats g_stats;

inline void Bump(std::atomic<uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

// What (if anything) to inject for one intercepted call.
enum class Roll { kNone, kBenign, kLethal };

struct Decision {
  Roll roll = Roll::kNone;
  // Three independent uniform draws the per-op code uses to pick the
  // concrete fault (errno choice, short-IO split, truncation length).
  double u0 = 0.0;
  double u1 = 0.0;
  uint64_t raw = 0;
};

inline double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Decision RollFor(Op op) {
  Decision d;
  if (!g_enabled.load(std::memory_order_relaxed)) return d;
  if (!(g_ops.load(std::memory_order_relaxed) & op)) return d;
  Bump(g_stats.calls);
  const uint64_t idx = g_counter.fetch_add(1, std::memory_order_relaxed);
  // Hash (seed, call index, op) through SplitMix64 for the three draws.
  uint64_t h = g_seed.load(std::memory_order_relaxed) ^
               (idx * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(op) << 56);
  const uint64_t r0 = SplitMix64Next(&h);
  const uint64_t r1 = SplitMix64Next(&h);
  const uint64_t r2 = SplitMix64Next(&h);
  const double p = ToUnit(r0);
  if (p < g_lethal.load(std::memory_order_relaxed)) {
    d.roll = Roll::kLethal;
  } else if (p < g_lethal.load(std::memory_order_relaxed) +
                     g_rate.load(std::memory_order_relaxed)) {
    d.roll = Roll::kBenign;
  } else {
    return d;
  }
  Bump(g_stats.faults);
  d.u0 = ToUnit(r1);
  d.u1 = ToUnit(r2);
  d.raw = r2;
  return d;
}

}  // namespace

void Enable(const Config& config) {
  g_seed.store(config.seed, std::memory_order_relaxed);
  g_rate.store(config.rate, std::memory_order_relaxed);
  g_lethal.store(config.lethal_rate, std::memory_order_relaxed);
  g_short.store(config.short_io, std::memory_order_relaxed);
  g_ops.store(config.ops, std::memory_order_relaxed);
  g_counter.store(0, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void Disable() { g_enabled.store(false, std::memory_order_release); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

Stats Current() {
  Stats s;
  s.calls = g_stats.calls.load(std::memory_order_relaxed);
  s.faults = g_stats.faults.load(std::memory_order_relaxed);
  s.eintr = g_stats.eintr.load(std::memory_order_relaxed);
  s.eagain = g_stats.eagain.load(std::memory_order_relaxed);
  s.short_reads = g_stats.short_reads.load(std::memory_order_relaxed);
  s.short_writes = g_stats.short_writes.load(std::memory_order_relaxed);
  s.econnreset = g_stats.econnreset.load(std::memory_order_relaxed);
  s.epipe = g_stats.epipe.load(std::memory_order_relaxed);
  s.enomem = g_stats.enomem.load(std::memory_order_relaxed);
  s.emfile = g_stats.emfile.load(std::memory_order_relaxed);
  return s;
}

void ResetStats() {
  g_stats.calls.store(0, std::memory_order_relaxed);
  g_stats.faults.store(0, std::memory_order_relaxed);
  g_stats.eintr.store(0, std::memory_order_relaxed);
  g_stats.eagain.store(0, std::memory_order_relaxed);
  g_stats.short_reads.store(0, std::memory_order_relaxed);
  g_stats.short_writes.store(0, std::memory_order_relaxed);
  g_stats.econnreset.store(0, std::memory_order_relaxed);
  g_stats.epipe.store(0, std::memory_order_relaxed);
  g_stats.enomem.store(0, std::memory_order_relaxed);
  g_stats.emfile.store(0, std::memory_order_relaxed);
}

bool EnableFromEnv(const char* env_value) {
  const char* raw = env_value ? env_value : std::getenv("FDC_FAILPOINTS");
  if (raw == nullptr || raw[0] == '\0') return false;
  Config cfg;
  cfg.rate = 0.0;  // env form starts from "inject nothing" and adds keys
  cfg.lethal_rate = 0.0;
  std::string spec(raw);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string kv = spec.substr(pos, end - pos);
    pos = end + 1;
    if (kv.empty()) continue;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (val.empty()) return false;
    // Checked numeric parsing. Rates reject non-finite values explicitly:
    // "rate=nan" makes both range comparisons false, so `< 0.0 || > 1.0`
    // alone would accept it (and every comparison downstream of a NaN
    // rate would silently never fire). Seeds reject a leading sign and
    // ERANGE: strtoull "successfully" wraps "-1" and clamps overflow to
    // ULLONG_MAX, both of which would configure a seed the operator never
    // wrote.
    char* parse_end = nullptr;
    auto parse_rate = [&](double* out) {
      errno = 0;
      *out = std::strtod(val.c_str(), &parse_end);
      return parse_end != val.c_str() && *parse_end == '\0' &&
             errno != ERANGE && std::isfinite(*out) && *out >= 0.0 &&
             *out <= 1.0;
    };
    if (key == "seed") {
      // Digits only: strtoull itself skips whitespace and accepts a sign.
      if (val[0] < '0' || val[0] > '9') return false;
      errno = 0;
      cfg.seed = std::strtoull(val.c_str(), &parse_end, 10);
      if (parse_end == val.c_str() || *parse_end != '\0' || errno == ERANGE)
        return false;
    } else if (key == "rate") {
      if (!parse_rate(&cfg.rate)) return false;
    } else if (key == "lethal") {
      if (!parse_rate(&cfg.lethal_rate)) return false;
    } else if (key == "short") {
      if (!parse_rate(&cfg.short_io)) return false;
    } else if (key == "ops") {
      uint32_t ops = 0;
      size_t op_pos = 0;
      while (op_pos < val.size()) {
        size_t op_end = val.find('|', op_pos);
        if (op_end == std::string::npos) op_end = val.size();
        const std::string name = val.substr(op_pos, op_end - op_pos);
        op_pos = op_end + 1;
        if (name == "accept") {
          ops |= kAccept;
        } else if (name == "recv") {
          ops |= kRecv;
        } else if (name == "send") {
          ops |= kSend;
        } else if (name == "close") {
          ops |= kClose;
        } else if (name == "epoll") {
          ops |= kEpollWait;
        } else {
          return false;
        }
      }
      if (ops == 0) return false;
      cfg.ops = ops;
    } else {
      return false;
    }
  }
  Enable(cfg);
  return true;
}

int Accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags) {
  const Decision d = RollFor(kAccept);
  if (d.roll == Roll::kLethal) {
    // Resource exhaustion: the listener stays readable (level-triggered),
    // so a caller that just retries hot-spins. ENFILE and ECONNABORTED
    // ride along as the other accept-time failures worth distinguishing.
    Bump(g_stats.emfile);
    errno = d.u0 < 0.70 ? EMFILE : (d.u0 < 0.85 ? ENFILE : ECONNABORTED);
    return -1;
  }
  if (d.roll == Roll::kBenign) {
    if (d.u0 < 0.5) {
      Bump(g_stats.eintr);
      errno = EINTR;
    } else {
      Bump(g_stats.eagain);
      errno = EAGAIN;
    }
    return -1;
  }
  return ::accept4(fd, addr, addrlen, flags);
}

ssize_t Recv(int fd, void* buf, size_t len, int flags) {
  const Decision d = RollFor(kRecv);
  if (d.roll == Roll::kLethal) {
    if (d.u0 < 0.8) {
      Bump(g_stats.econnreset);
      errno = ECONNRESET;
    } else {
      Bump(g_stats.enomem);
      errno = ENOMEM;
    }
    return -1;
  }
  if (d.roll == Roll::kBenign) {
    if (d.u0 < g_short.load(std::memory_order_relaxed) && len > 1) {
      // Short read: really receive a truncated prefix. The bytes that do
      // arrive are genuine; the rest stay queued in the socket, exactly
      // like a partial delivery from a slow peer.
      Bump(g_stats.short_reads);
      const size_t clamped = 1 + static_cast<size_t>(d.raw % (len - 1));
      return ::recv(fd, buf, clamped, flags);
    }
    if (d.u1 < 0.5) {
      Bump(g_stats.eintr);
      errno = EINTR;
    } else {
      Bump(g_stats.eagain);
      errno = EAGAIN;
    }
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t Send(int fd, const void* buf, size_t len, int flags) {
  const Decision d = RollFor(kSend);
  if (d.roll == Roll::kLethal) {
    if (d.u0 < 0.8) {
      Bump(g_stats.econnreset);
      errno = ECONNRESET;
    } else {
      Bump(g_stats.epipe);
      errno = EPIPE;
    }
    return -1;
  }
  if (d.roll == Roll::kBenign) {
    if (d.u0 < g_short.load(std::memory_order_relaxed) && len > 1) {
      // Short write: really transmit a truncated prefix; the caller's
      // partial-write resumption path owns the remainder.
      Bump(g_stats.short_writes);
      const size_t clamped = 1 + static_cast<size_t>(d.raw % (len - 1));
      return ::send(fd, buf, clamped, flags);
    }
    if (d.u1 < 0.5) {
      Bump(g_stats.eintr);
      errno = EINTR;
    } else {
      Bump(g_stats.eagain);
      errno = EAGAIN;
    }
    return -1;
  }
  return ::send(fd, buf, len, flags);
}

int Close(int fd) {
  const Decision d = RollFor(kClose);
  // ALWAYS execute the real close: on Linux the fd is released even when
  // close reports EINTR, and skipping it here would turn every injected
  // close fault into a manufactured fd leak no caller could prevent.
  const int rc = ::close(fd);
  if (rc == 0 && d.roll != Roll::kNone) {
    Bump(g_stats.eintr);
    errno = EINTR;
    return -1;
  }
  return rc;
}

int EpollWait(int epfd, epoll_event* events, int maxevents, int timeout_ms) {
  const Decision d = RollFor(kEpollWait);
  if (d.roll != Roll::kNone) {
    Bump(g_stats.eintr);
    errno = EINTR;
    return -1;
  }
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

}  // namespace fdc::server::failpoints

#endif  // FDC_NO_FAILPOINTS
