// Blocking client for the disclosure server's wire protocol.
//
// This is the reference peer implementation: tests, the load generator
// and the daemon's smoke mode all speak through it. Two usage shapes:
//
//   - Call/response: Hello (inside Connect), RegisterTemplate, Submit,
//     SubmitText, StatsJson, Ping — each sends one frame and blocks for
//     its one response.
//   - Pipelined: QueueSubmit(...) xN, Flush(), then ReadResponse() xN —
//     the shape the coalescing server is optimized for (many frames per
//     epoll wake).
//
// Plain blocking sockets (the server is the nonblocking side); all sends
// and reads retry EINTR and resume partial transfers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/byte_queue.h"
#include "server/protocol.h"

namespace fdc::server {

/// One decoded server frame, normalized across response types.
struct ClientResponse {
  FrameType type = FrameType::kError;
  bool allow = false;       // kDecision
  uint64_t epoch = 0;       // kDecision / kHelloAck / kPong
  uint32_t template_id = 0;  // kTemplateAck
  std::string text;         // explanation / stats JSON / error message
  ErrorCode error = ErrorCode::kMalformedFrame;  // kError
  uint32_t error_detail = 0;                     // kError
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(BlockingClient&& other) noexcept { *this = std::move(other); }
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to host:port, sends kHello for `principal` and waits for the
  /// kHelloAck. On success epoch() holds the server's policy epoch.
  Status Connect(const std::string& host, uint16_t port,
                 std::string_view principal);

  void Close();
  bool connected() const { return fd_ >= 0; }
  uint64_t epoch() const { return epoch_; }

  /// Registers `datalog` under `id`; fails with the server's kError
  /// message on parse/duplicate errors.
  Status RegisterTemplate(uint32_t id, std::string_view datalog);

  /// Submits one registered template and blocks for the decision.
  Status Submit(uint32_t id, ClientResponse* out, bool explain = false);

  /// Submits Datalog text (the per-request parse path).
  Status SubmitText(std::string_view datalog, ClientResponse* out,
                    bool explain = false);

  /// Fetches engine::StatsToJson output from the server.
  Status StatsJson(std::string* out);

  /// Health probe; fills *epoch with the server's current policy epoch.
  Status Ping(uint64_t* epoch);

  // --- pipelined mode ----------------------------------------------------

  /// Stages frames locally without writing to the socket.
  void QueueSubmit(uint32_t id, bool explain = false) {
    AppendSubmit(send_buf_.tail(), id, explain);
  }
  void QueueSubmitText(std::string_view datalog, bool explain = false) {
    AppendSubmitText(send_buf_.tail(), datalog, explain);
  }
  void QueuePing() { AppendPing(send_buf_.tail()); }

  /// Writes every staged frame to the socket.
  Status Flush();

  /// Blocks until one complete server frame arrives and decodes it.
  Status ReadResponse(ClientResponse* out);

 private:
  Status SendAll(std::string_view bytes);

  int fd_ = -1;
  uint64_t epoch_ = 0;
  ByteQueue send_buf_;
  ByteQueue recv_buf_;
};

}  // namespace fdc::server
