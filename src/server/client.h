// Blocking client for the disclosure server's wire protocol.
//
// This is the reference peer implementation: tests, the load generator
// and the daemon's smoke mode all speak through it. Two usage shapes:
//
//   - Call/response: Hello (inside Connect), RegisterTemplate, Submit,
//     SubmitText, StatsJson, Ping — each sends one frame and blocks for
//     its one response.
//   - Pipelined: QueueSubmit(...) xN, Flush(), then ReadResponse() xN —
//     the shape the coalescing server is optimized for (many frames per
//     epoll wake).
//
// Plain blocking sockets (the server is the nonblocking side); all sends
// and reads retry EINTR and resume partial transfers.
//
// Fault tolerance (opt-in, call/response mode only):
//
//   - SetCallDeadline(ms) bounds every blocking send/recv via socket
//     timeouts; an expired call fails the operation and poisons the
//     connection (a late response would desynchronize the stream).
//   - EnableRetry(opts) makes the call/response helpers transparently
//     reconnect after transport failures — jittered exponential backoff,
//     then a fresh Connect under the original principal, then idempotent
//     re-registration of every template this client ever registered, then
//     one re-issue of the failed call. Retrying a submit whose response
//     was lost re-applies the same query to the same principal state,
//     which is decision- and state-stable (refusals never narrow; an
//     accepted query stays accepted against the state it narrowed), so
//     at-least-once delivery is safe. Server-level refusals (kError
//     responses) are never retried — only transport failures are.
//   - A kGoingAway frame (server draining) is surfaced from ReadResponse
//     with type kGoingAway and remembered in saw_going_away(); the
//     call/response helpers skip over it and keep reading, since the
//     draining server still answers everything it accepted.
//
// Pipelined mode is deliberately outside the retry machinery: after a
// mid-pipeline transport failure the client cannot know which staged
// submits the server applied, and blind replay of the unanswered suffix
// could re-apply a *prefix* of it from a narrowed state. Pipelined users
// get the error and own the recovery policy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "server/byte_queue.h"
#include "server/protocol.h"

namespace fdc::server {

/// Reconnect policy for BlockingClient::EnableRetry.
struct RetryOptions {
  /// Total attempts per call (the initial try plus reconnect retries).
  int max_attempts = 8;
  /// Backoff before reconnect attempt k is roughly
  /// min(base << (k-1), max) halved and jittered.
  int base_backoff_ms = 5;
  int max_backoff_ms = 200;
  /// Jitter seed (deterministic, like every RNG in this repo).
  uint64_t seed = 0x5eedc11e;
};

/// One decoded server frame, normalized across response types.
struct ClientResponse {
  FrameType type = FrameType::kError;
  bool allow = false;       // kDecision
  uint64_t epoch = 0;       // kDecision / kHelloAck / kPong
  uint32_t template_id = 0;  // kTemplateAck
  std::string text;         // explanation / stats JSON / error message
  ErrorCode error = ErrorCode::kMalformedFrame;  // kError
  uint32_t error_detail = 0;                     // kError
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient() { Close(); }

  BlockingClient(BlockingClient&& other) noexcept { *this = std::move(other); }
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects to host:port, sends kHello for `principal` and waits for the
  /// kHelloAck. On success epoch() holds the server's policy epoch.
  Status Connect(const std::string& host, uint16_t port,
                 std::string_view principal);

  void Close();
  bool connected() const { return fd_ >= 0; }
  uint64_t epoch() const { return epoch_; }

  /// Bounds every blocking send/recv on this connection (SO_SNDTIMEO /
  /// SO_RCVTIMEO); re-applied automatically after a retry reconnect.
  /// 0 restores fully blocking calls. Takes effect immediately when
  /// connected, otherwise at the next Connect.
  Status SetCallDeadline(int deadline_ms);

  /// Arms transparent reconnect-and-retry for the call/response helpers
  /// (see the file comment for the exact semantics and why it is safe).
  void EnableRetry(const RetryOptions& options = {}) {
    retry_ = options;
    retry_enabled_ = true;
  }

  /// True once any kGoingAway frame has been read on this connection
  /// (cleared by Connect).
  bool saw_going_away() const { return saw_going_away_; }

  /// Transport-level reconnects performed by the retry machinery.
  uint64_t reconnects() const { return reconnects_; }

  /// Registers `datalog` under `id`; fails with the server's kError
  /// message on parse/duplicate errors.
  Status RegisterTemplate(uint32_t id, std::string_view datalog);

  /// Submits one registered template and blocks for the decision.
  Status Submit(uint32_t id, ClientResponse* out, bool explain = false);

  /// Submits Datalog text (the per-request parse path).
  Status SubmitText(std::string_view datalog, ClientResponse* out,
                    bool explain = false);

  /// Fetches engine::StatsToJson output from the server.
  Status StatsJson(std::string* out);

  /// Health probe; fills *epoch with the server's current policy epoch.
  Status Ping(uint64_t* epoch);

  // --- pipelined mode ----------------------------------------------------

  /// Stages frames locally without writing to the socket.
  void QueueSubmit(uint32_t id, bool explain = false) {
    AppendSubmit(send_buf_.tail(), id, explain);
  }
  void QueueSubmitText(std::string_view datalog, bool explain = false) {
    AppendSubmitText(send_buf_.tail(), datalog, explain);
  }
  void QueuePing() { AppendPing(send_buf_.tail()); }

  /// Writes every staged frame to the socket.
  Status Flush();

  /// Blocks until one complete server frame arrives and decodes it.
  /// kGoingAway frames are returned like any other (type kGoingAway,
  /// epoch + reason filled in) with saw_going_away() latched.
  Status ReadResponse(ClientResponse* out);

 private:
  Status SendAll(std::string_view bytes);
  /// One reconnect: fresh socket + hello + call deadline + template
  /// replay. Bypasses the public helpers so it never recurses into retry.
  Status Reconnect();
  /// Sleeps the jittered exponential backoff for reconnect attempt k.
  void BackoffBeforeAttempt(int attempt);
  /// Runs `op`; on a transport failure (io_failed_) with retry enabled,
  /// backs off, reconnects and re-runs until attempts run out.
  template <typename Op>
  Status RunWithRetry(Op&& op);
  /// ReadResponse, skipping any interleaved kGoingAway frames — the
  /// call/response shape where "the next frame" must be the answer.
  Status ReadCallResponse(ClientResponse* out);

  int fd_ = -1;
  uint64_t epoch_ = 0;
  ByteQueue send_buf_;
  ByteQueue recv_buf_;

  // Saved endpoint + session state for reconnect.
  std::string host_;
  uint16_t port_ = 0;
  std::string principal_;
  std::unordered_map<uint32_t, std::string> registered_templates_;
  int call_deadline_ms_ = 0;
  bool retry_enabled_ = false;
  RetryOptions retry_;
  uint64_t rng_state_ = 0;  // lazy-seeded jitter stream
  bool io_failed_ = false;  // last failure was transport-level
  bool saw_going_away_ = false;
  uint64_t reconnects_ = 0;
};

}  // namespace fdc::server
