#include "server/disclosure_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cq/canonical.h"
#include "cq/datalog_parser.h"
#include "engine/stats_json.h"
#include "policy/explain.h"
#include "server/byte_queue.h"
#include "server/failpoints.h"
#include "server/protocol.h"

namespace fdc::server {

namespace {

/// Per-connection cap on bytes read in one wake: fairness across
/// connections on a worker. Level-triggered epoll re-signals the rest.
constexpr size_t kReadBudget = 256 * 1024;

/// Coarse monotone clock for the deadline machinery; read once per wake.
int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Connection {
  int fd = -1;
  bool got_hello = false;
  bool want_close = false;  // flush staged output, then close
  bool paused = false;      // EPOLLIN dropped (write-queue backpressure)
  bool epollout = false;    // EPOLLOUT armed (partial write pending)
  bool touched = false;     // has output staged this wake
  bool dead = false;        // fd closed; object destroyed at wake end
  uint32_t pending_submits = 0;  // submits awaiting this wake's batch
  int64_t created_ms = 0;   // accept time: the handshake deadline base
  int64_t last_ms = 0;      // last read/write progress (idle + linger base)
  std::string principal;
  // Registered templates, dense by client-chosen id. unique_ptr for
  // pointer stability: pending submit requests hold raw pointers into
  // this table across the wake.
  std::vector<std::unique_ptr<cq::ConjunctiveQuery>> templates;
  ByteQueue in;
  ByteQueue out;
};

/// Creates a bound+listening nonblocking IPv4 socket. Returns the fd, -1
/// on hard failure (*error set), or -2 when only the SO_REUSEPORT
/// setsockopt failed (caller may retry in shared-accept mode).
int CreateListenSocket(const std::string& host, uint16_t port,
                       bool reuseport, uint16_t* bound_port,
                       std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    *error = std::string("SO_REUSEPORT: ") + std::strerror(errno);
    return -2;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = "not an IPv4 address: " + host;
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 1024) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

struct DisclosureServer::Worker {
  DisclosureServer* server = nullptr;
  const ServerOptions* opts = nullptr;
  engine::DisclosureEngine* engine = nullptr;
  int epoll_fd = -1;
  int listen_fd = -1;
  bool owns_listen = false;
  int wake_fd = -1;
  std::thread thread;

  // Reserved fd for EMFILE recovery (held on /dev/null): closing it frees
  // exactly one descriptor slot, so the pending connection can be accepted
  // and refused with a real kServerBusy instead of sitting in the backlog
  // re-signaling the level-triggered listener forever.
  int spare_fd = -1;
  uint32_t listen_events = EPOLLIN;  // to re-arm after an accept pause
  bool accept_paused = false;
  int64_t accept_resume_ms = 0;
  bool drain_announced = false;
  bool force_closing = false;        // inside the drain-deadline sweep
  int64_t drain_deadline_abs = 0;
  int64_t now_ms = 0;                // steady-clock ms, refreshed per wake

  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  // Closed mid-wake: the object outlives the fd until the wake epilogue so
  // staged pointers stay valid even if accept() reuses the fd number.
  std::vector<std::unique_ptr<Connection>> graveyard;

  // --- per-wake coalescing state -----------------------------------------
  // Responses are resolved strictly in arrival order per connection: a
  // non-submit response is staged immediately only while its connection
  // has no submit awaiting the batch; otherwise it rides the op queue so
  // it lands after the decisions that precede it.
  struct PendingOp {
    Connection* conn = nullptr;
    int64_t submit_index = -1;  // index into `requests`, or -1
    uint8_t flags = 0;
    std::string immediate;      // pre-encoded response iff submit_index < 0
  };
  std::vector<PendingOp> ops;
  std::vector<engine::DisclosureEngine::SubmitRequest> requests;
  std::deque<cq::ConjunctiveQuery> text_queries;  // kSubmitText bodies
  std::vector<Connection*> touched;
  std::vector<bool> decisions;
  std::vector<uint64_t> epochs;

  // Counters. Atomics only because stats() reads them from other threads;
  // each is written by this worker's thread alone (relaxed everywhere).
  std::atomic<uint64_t> c_accepted{0};
  std::atomic<uint64_t> c_rejected{0};
  std::atomic<uint64_t> c_closed{0};
  std::atomic<uint64_t> c_protocol_errors{0};
  std::atomic<uint64_t> c_frames{0};
  std::atomic<uint64_t> c_decisions{0};
  std::atomic<uint64_t> c_batches{0};
  std::atomic<uint64_t> c_max_batch{0};
  std::atomic<uint64_t> c_backpressure{0};
  std::atomic<uint64_t> c_bytes_in{0};
  std::atomic<uint64_t> c_bytes_out{0};
  std::atomic<uint64_t> c_handshake_reaps{0};
  std::atomic<uint64_t> c_idle_reaps{0};
  std::atomic<uint64_t> c_accept_overloads{0};
  std::atomic<uint64_t> c_accept_pauses{0};
  std::atomic<uint64_t> c_goaway{0};
  std::atomic<uint64_t> c_drained{0};
  std::atomic<uint64_t> c_drain_forced{0};

  void Bump(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }

  void Run() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    now_ms = NowMs();
    while (server->running_.load(std::memory_order_acquire)) {
      int n = failpoints::EpollWait(epoll_fd, events, kMaxEvents,
                                    EpollTimeoutMs());
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      now_ms = NowMs();
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const uint32_t evs = events[i].events;
        if (fd == wake_fd) {
          uint64_t v;
          while (::read(wake_fd, &v, sizeof(v)) > 0) {
          }
          continue;
        }
        if (fd == listen_fd) {
          Accept();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        Connection* c = it->second.get();
        if (evs & (EPOLLERR | EPOLLHUP)) {
          CloseConn(c);
          continue;
        }
        if (evs & EPOLLOUT) {
          WriteConn(c);
          if (c->dead) continue;
        }
        if (evs & EPOLLIN) HandleReadable(c);
      }
      // Wake epilogue: one engine pass over everything decoded above,
      // then the deadline machinery, then one write flush per touched
      // connection. BeginDrain sits after the flush so the kGoingAway
      // frame lands behind every response staged this wake.
      FlushCoalesced();
      if (server->draining_.load(std::memory_order_acquire) &&
          !drain_announced) {
        BeginDrain();
      }
      ReapTimeouts();
      MaybeResumeAccept();
      for (Connection* c : touched) {
        c->touched = false;
        if (!c->dead) WriteConn(c);
      }
      touched.clear();
      graveyard.clear();
      if (drain_announced && DrainFinished()) break;
    }
  }

  /// Block indefinitely only while no timed work exists; otherwise wake
  /// at the coarse tick so every deadline fires within one tick of expiry.
  int EpollTimeoutMs() {
    if (drain_announced || accept_paused ||
        server->draining_.load(std::memory_order_relaxed)) {
      return opts->tick_interval_ms;
    }
    if (!conns.empty() &&
        (opts->handshake_timeout_ms > 0 || opts->idle_timeout_ms > 0 ||
         opts->close_linger_ms > 0)) {
      return opts->tick_interval_ms;
    }
    return -1;
  }

  void Accept() {
    while (!accept_paused) {
      int fd = failpoints::Accept4(listen_fd, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE) {
          HandleFdExhaustion();
          continue;
        }
        return;  // EAGAIN (drained) or a transient error; epoll re-signals
      }
      if (server->live_connections_.load(std::memory_order_relaxed) >=
          opts->max_connections) {
        ShedConnection(fd, "connection limit reached");
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        (void)failpoints::Close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->created_ms = now_ms;
      conn->last_ms = now_ms;
      conns.emplace(fd, std::move(conn));
      Bump(c_accepted);
      server->live_connections_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// accept() hit EMFILE/ENFILE: every descriptor slot is taken, and the
  /// pending peer will keep the level-triggered listener signaling until
  /// someone accepts it. Free the reserved slot, accept exactly one peer
  /// into it, refuse it with a real kServerBusy, re-reserve — and if even
  /// that cannot make progress, park the listener for accept_pause_ms
  /// instead of hot-spinning.
  void HandleFdExhaustion() {
    Bump(c_accept_overloads);
    if (spare_fd >= 0) {
      ::close(spare_fd);
      spare_fd = -1;
      int fd = failpoints::Accept4(listen_fd, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
      const bool still_exhausted =
          fd < 0 && (errno == EMFILE || errno == ENFILE);
      if (fd >= 0) ShedConnection(fd, "file descriptors exhausted");
      spare_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (spare_fd >= 0 && !still_exhausted) return;
    }
    PauseAccept();
  }

  /// Refuses `fd` with a kServerBusy whose flush is bounded best-effort:
  /// poll for writability up to shed_flush_ms so a normally-draining peer
  /// actually receives the frame (the old nonblocking send racing the
  /// close usually lost it), while a wedged peer cannot hold the accept
  /// loop hostage for more than the budget.
  void ShedConnection(int fd, std::string_view message) {
    // Count before the close: the peer observes the rejection as EOF, and
    // anyone who saw that EOF must also see the counter (on one core the
    // close can wake the peer and deschedule this worker mid-function).
    Bump(c_rejected);
    std::string frame;
    AppendError(&frame, ErrorCode::kServerBusy, 0, message);
    size_t off = 0;
    const int64_t deadline = NowMs() + opts->shed_flush_ms;
    while (off < frame.size()) {
      ssize_t n = failpoints::Send(fd, frame.data() + off,
                                   frame.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        Bump(c_bytes_out, static_cast<uint64_t>(n));
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const int64_t left = deadline - NowMs();
        if (left <= 0) break;
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, static_cast<int>(left));
        continue;
      }
      break;  // peer already gone
    }
    (void)failpoints::Close(fd);
  }

  void PauseAccept() {
    if (accept_paused) return;
    accept_paused = true;
    accept_resume_ms = now_ms + opts->accept_pause_ms;
    Bump(c_accept_pauses);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
  }

  void MaybeResumeAccept() {
    if (!accept_paused || drain_announced) return;
    if (now_ms < accept_resume_ms) return;
    accept_paused = false;
    epoll_event ev{};
    ev.events = listen_events;
    ev.data.fd = listen_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
  }

  /// Drain step 1 (runs once, from the wake epilogue so every response
  /// staged this wake precedes the announcement): stop accepting and
  /// stage kGoingAway on every live connection. The loop keeps answering
  /// whatever the peers already sent — or race in before they see the
  /// frame — and each connection closes when its peer does.
  void BeginDrain() {
    drain_announced = true;
    drain_deadline_abs = now_ms + opts->drain_deadline_ms;
    if (!accept_paused) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
    }
    accept_paused = true;  // permanent: MaybeResumeAccept checks the drain
    const uint64_t epoch = engine->Snapshot()->epoch();
    for (auto& [fd, c] : conns) {
      if (c->dead || c->want_close) continue;
      AppendGoingAway(c->out.tail(), epoch, "server draining");
      Bump(c_goaway);
      Touch(c.get());
    }
  }

  /// Drain step 2 (every tick): done when the last connection closes, or
  /// the budget runs out and the stragglers are hard-closed.
  bool DrainFinished() {
    if (conns.empty()) return true;
    if (now_ms < drain_deadline_abs) return false;
    force_closing = true;
    std::vector<Connection*> rest;
    rest.reserve(conns.size());
    for (auto& [fd, c] : conns) rest.push_back(c.get());
    for (Connection* c : rest) {
      Bump(c_drain_forced);
      CloseConn(c);
    }
    force_closing = false;
    graveyard.clear();
    return true;
  }

  /// The per-tick deadline sweep. Three clocks per connection: handshake
  /// (accept → kHello), idle (last progress on a quiescent session), and
  /// linger (a closing connection whose final flush stopped progressing).
  void ReapTimeouts() {
    if (conns.empty()) return;
    const int hs = opts->handshake_timeout_ms;
    const int idle = opts->idle_timeout_ms;
    const int linger = opts->close_linger_ms;
    if (hs <= 0 && idle <= 0 && linger <= 0) return;
    std::vector<Connection*> stuck;  // CloseConn mutates conns: two-phase
    for (auto& [fd, c] : conns) {
      if (c->dead) continue;
      if (c->want_close) {
        if (linger > 0 && now_ms - c->last_ms >= linger) {
          stuck.push_back(c.get());
        }
        continue;
      }
      if (!c->got_hello) {
        if (hs > 0 && now_ms - c->created_ms >= hs) {
          Bump(c_handshake_reaps);
          Reap(c.get(), "handshake deadline exceeded");
        }
        continue;
      }
      if (idle > 0 && c->out.empty() && c->pending_submits == 0 &&
          now_ms - c->last_ms >= idle) {
        Bump(c_idle_reaps);
        Reap(c.get(), "idle timeout");
      }
    }
    for (Connection* c : stuck) CloseConn(c);
  }

  /// Reaping is an orderly refusal: stage kError(kDeadlineExceeded), then
  /// the normal flush-and-close path (itself bounded by close_linger_ms).
  void Reap(Connection* c, std::string_view why) {
    Bump(c_protocol_errors);
    AppendError(c->out.tail(), ErrorCode::kDeadlineExceeded, 0, why);
    c->want_close = true;
    c->last_ms = now_ms;  // the linger clock starts now
    Touch(c);
  }

  void HandleReadable(Connection* c) {
    char buf[64 * 1024];
    size_t read_this_wake = 0;
    bool eof = false;
    for (;;) {
      ssize_t r = failpoints::Recv(c->fd, buf, sizeof(buf), 0);
      if (r > 0) {
        Bump(c_bytes_in, static_cast<uint64_t>(r));
        c->last_ms = now_ms;
        c->in.Append(buf, static_cast<size_t>(r));
        read_this_wake += static_cast<size_t>(r);
        if (read_this_wake >= kReadBudget) break;
        continue;
      }
      if (r == 0) {  // orderly shutdown: answer what was buffered, then close
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    ParseFrames(c);
    if (c->dead) return;
    if (eof) {
      c->want_close = true;
      Touch(c);  // epilogue WriteConn flushes any responses, then closes
    }
  }

  void ParseFrames(Connection* c) {
    while (!c->dead && !c->want_close) {
      FrameView frame;
      DecodeResult r = DecodeFrame(c->in.data(), c->in.size(), &frame);
      if (r.status == DecodeStatus::kNeedMore) break;
      if (r.status == DecodeStatus::kError) {
        SendError(c, r.error, 0, "malformed frame envelope");
        c->in.Clear();  // fatal: never interpret bytes past the error
        break;
      }
      Bump(c_frames);
      HandleFrame(c, frame);
      c->in.Consume(r.consumed);
      if (c->want_close) {
        c->in.Clear();
        break;
      }
      if (requests.size() >= opts->max_coalesce) FlushCoalesced();
    }
  }

  void HandleFrame(Connection* c, const FrameView& f) {
    const uint8_t allowed_flags = (f.type == FrameType::kSubmit ||
                                   f.type == FrameType::kSubmitText)
                                      ? kFlagExplain
                                      : 0;
    if ((f.flags & ~allowed_flags) != 0) {
      SendError(c, ErrorCode::kMalformedFrame, f.flags,
                "undefined flag bits");
      return;
    }
    if (!c->got_hello && f.type != FrameType::kHello) {
      SendError(c, ErrorCode::kExpectedHello,
                static_cast<uint32_t>(f.type),
                "first frame must be kHello");
      return;
    }
    switch (f.type) {
      case FrameType::kHello: {
        if (c->got_hello) {
          SendError(c, ErrorCode::kDuplicateHello, 0, "second kHello");
          return;
        }
        HelloPayload hello;
        if (!ParseHello(f.payload, &hello)) {
          SendError(c, ErrorCode::kMalformedFrame, 0, "short kHello payload");
          return;
        }
        if (hello.magic != kMagic) {
          SendError(c, ErrorCode::kBadMagic, hello.magic, "bad magic");
          return;
        }
        if (hello.version != kProtocolVersion) {
          SendError(c, ErrorCode::kBadVersion, hello.version,
                    "unsupported protocol version");
          return;
        }
        if (hello.principal.empty() ||
            hello.principal.size() > kMaxPrincipalLen) {
          SendError(c, ErrorCode::kBadPrincipal,
                    static_cast<uint32_t>(hello.principal.size()),
                    "principal must be 1..256 bytes");
          return;
        }
        c->got_hello = true;
        c->principal.assign(hello.principal);
        std::string ack;
        AppendHelloAck(&ack, engine->Snapshot()->epoch(), kMaxPayload);
        Respond(c, std::move(ack));
        return;
      }
      case FrameType::kRegisterTemplate: {
        uint32_t id = 0;
        std::string_view text;
        if (!ParseTemplateId(f.payload, &id, &text)) {
          SendError(c, ErrorCode::kMalformedFrame, 0,
                    "short kRegisterTemplate payload");
          return;
        }
        if (id >= opts->max_templates) {
          SendError(c, ErrorCode::kBadTemplateId, id,
                    "template id over the per-connection cap");
          return;
        }
        if (id < c->templates.size() && c->templates[id] != nullptr) {
          SendError(c, ErrorCode::kDuplicateTemplate, id,
                    "template id already registered");
          return;
        }
        auto parsed =
            cq::ParseDatalog(text, engine->frozen().catalog().schema());
        if (!parsed.ok()) {
          SendError(c, ErrorCode::kParseError, id, parsed.status().message());
          return;  // non-fatal: the ack slot carries the error instead
        }
        if (id >= c->templates.size()) c->templates.resize(id + 1);
        // Canonicalize once at registration: the frozen label tier's
        // level-1 (raw-form) table indexes canonical forms, so every
        // subsequent submit of this template resolves with one structural
        // hash instead of a per-request canonicalization pass.
        c->templates[id] = std::make_unique<cq::ConjunctiveQuery>(
            cq::Canonicalize(std::move(parsed).value()));
        std::string ack;
        AppendTemplateAck(&ack, id);
        Respond(c, std::move(ack));
        return;
      }
      case FrameType::kSubmit: {
        uint32_t id = 0;
        if (f.payload.size() != 4 || !ParseTemplateId(f.payload, &id, nullptr)) {
          SendError(c, ErrorCode::kMalformedFrame, 0,
                    "kSubmit payload must be exactly a u32 id");
          return;
        }
        if (id >= c->templates.size() || c->templates[id] == nullptr) {
          SendError(c, ErrorCode::kUnknownTemplate, id,
                    "submit for an unregistered template");
          return;
        }
        EnqueueSubmit(c, c->templates[id].get(), f.flags);
        return;
      }
      case FrameType::kSubmitText: {
        std::string_view text(reinterpret_cast<const char*>(f.payload.data()),
                              f.payload.size());
        auto parsed =
            cq::ParseDatalog(text, engine->frozen().catalog().schema());
        if (!parsed.ok()) {
          SendError(c, ErrorCode::kParseError, 0, parsed.status().message());
          return;  // non-fatal: kError in place of the decision
        }
        text_queries.push_back(std::move(parsed).value());
        EnqueueSubmit(c, &text_queries.back(), f.flags);
        return;
      }
      case FrameType::kStatsRequest: {
        if (!f.payload.empty()) {
          SendError(c, ErrorCode::kMalformedFrame, 0,
                    "kStatsRequest carries no payload");
          return;
        }
        std::string resp;
        AppendStatsJson(&resp,
                        engine::StatsToJson(engine->Stats(), "server",
                                            server->StatsJsonFragment()));
        Respond(c, std::move(resp));
        return;
      }
      case FrameType::kPing: {
        if (!f.payload.empty()) {
          SendError(c, ErrorCode::kMalformedFrame, 0,
                    "kPing carries no payload");
          return;
        }
        std::string resp;
        AppendPong(&resp, engine->Snapshot()->epoch());
        Respond(c, std::move(resp));
        return;
      }
      default:
        SendError(c, ErrorCode::kUnknownType, static_cast<uint32_t>(f.type),
                  "server-to-client frame type from a client");
        return;
    }
  }

  void EnqueueSubmit(Connection* c, const cq::ConjunctiveQuery* query,
                     uint8_t flags) {
    requests.push_back({c->principal, query});
    PendingOp op;
    op.conn = c;
    op.submit_index = static_cast<int64_t>(requests.size()) - 1;
    op.flags = flags;
    ops.push_back(std::move(op));
    ++c->pending_submits;
  }

  /// Stages one response frame, preserving per-connection request order:
  /// immediate while no submit is pending, queued behind the batch
  /// otherwise.
  void Respond(Connection* c, std::string&& bytes) {
    if (c->pending_submits > 0) {
      PendingOp op;
      op.conn = c;
      op.immediate = std::move(bytes);
      ops.push_back(std::move(op));
      return;
    }
    c->out.tail()->append(bytes);
    Touch(c);
    CheckBackpressure(c);
  }

  void SendError(Connection* c, ErrorCode code, uint32_t detail,
                 std::string_view message) {
    Bump(c_protocol_errors);
    std::string frame;
    AppendError(&frame, code, detail, message);
    Respond(c, std::move(frame));
    if (IsFatal(code)) c->want_close = true;
  }

  void Touch(Connection* c) {
    if (!c->touched) {
      c->touched = true;
      touched.push_back(c);
    }
  }

  void CheckBackpressure(Connection* c) {
    if (c->dead || c->paused) return;
    if (c->out.size() > opts->write_queue_limit) {
      c->paused = true;
      Bump(c_backpressure);
      UpdateInterest(c);
    }
  }

  /// One engine pass over every submit decoded since the last flush, then
  /// resolve the op queue in arrival order into per-connection out queues.
  void FlushCoalesced() {
    if (ops.empty()) return;
    if (!requests.empty()) {
      engine->SubmitCoalesced(requests, &decisions, &epochs);
      Bump(c_batches);
      Bump(c_decisions, requests.size());
      if (requests.size() > c_max_batch.load(std::memory_order_relaxed)) {
        c_max_batch.store(requests.size(), std::memory_order_relaxed);
      }
    }
    for (PendingOp& op : ops) {
      Connection* c = op.conn;
      if (op.submit_index >= 0) {
        const size_t i = static_cast<size_t>(op.submit_index);
        if ((op.flags & kFlagExplain) != 0) {
          policy::Explanation ex =
              engine->ExplainQuery(c->principal, *requests[i].query);
          AppendDecision(c->out.tail(), decisions[i], epochs[i],
                         ex.ToString());
        } else {
          AppendDecision(c->out.tail(), decisions[i], epochs[i]);
        }
      } else {
        c->out.tail()->append(op.immediate);
      }
      Touch(c);
    }
    for (PendingOp& op : ops) {
      op.conn->pending_submits = 0;
      CheckBackpressure(op.conn);
    }
    ops.clear();
    requests.clear();
    text_queries.clear();
  }

  void WriteConn(Connection* c) {
    if (c->dead) return;
    while (!c->out.empty()) {
      ssize_t n = failpoints::Send(c->fd, c->out.data(), c->out.size(),
                                   MSG_NOSIGNAL);
      if (n >= 0) {
        Bump(c_bytes_out, static_cast<uint64_t>(n));
        if (n > 0) c->last_ms = now_ms;
        c->out.Consume(static_cast<size_t>(n));
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->epollout) {
          c->epollout = true;
          UpdateInterest(c);
        }
        MaybeResume(c);
        return;
      }
      CloseConn(c);  // EPIPE / ECONNRESET / ...
      return;
    }
    if (c->epollout) {
      c->epollout = false;
      UpdateInterest(c);
    }
    if (c->want_close) {
      CloseConn(c);
      return;
    }
    MaybeResume(c);
  }

  void MaybeResume(Connection* c) {
    if (c->paused && !c->want_close &&
        c->out.size() <= opts->write_queue_limit / 2) {
      c->paused = false;
      UpdateInterest(c);
    }
  }

  void UpdateInterest(Connection* c) {
    epoll_event ev{};
    ev.events = (c->paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                (c->epollout ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = c->fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void CloseConn(Connection* c) {
    if (c->dead) return;
    c->dead = true;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    (void)failpoints::Close(c->fd);
    Bump(c_closed);
    if (drain_announced && !force_closing) Bump(c_drained);
    server->live_connections_.fetch_sub(1, std::memory_order_relaxed);
    auto it = conns.find(c->fd);
    if (it != conns.end() && it->second.get() == c) {
      graveyard.push_back(std::move(it->second));
      conns.erase(it);
    }
    c->fd = -1;
  }
};

DisclosureServer::DisclosureServer(engine::DisclosureEngine* engine,
                                   ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

DisclosureServer::~DisclosureServer() { Stop(); }

Status DisclosureServer::Start() {
  if (started_) return Status::Internal("Start() called twice");
  started_ = true;
  // A peer closing mid-write must surface as EPIPE on that connection,
  // never kill the process. Sends also pass MSG_NOSIGNAL; this covers any
  // other code in the process writing to sockets.
  std::signal(SIGPIPE, SIG_IGN);
  // Fault injection for out-of-process runs (the CI stress jobs): a set
  // FDC_FAILPOINTS variable arms the harness; absent or malformed, the
  // zero-overhead disabled path stays in effect.
  failpoints::EnableFromEnv();

  const int nworkers = options_.workers < 1 ? 1 : options_.workers;
  bool reuseport = nworkers > 1;
  std::string error;
  uint16_t bound = 0;
  int first_fd = CreateListenSocket(options_.host, options_.port, reuseport,
                                    &bound, &error);
  if (first_fd == -2) {  // kernel without SO_REUSEPORT: shared accept
    reuseport = false;
    first_fd = CreateListenSocket(options_.host, options_.port, false, &bound,
                                  &error);
  }
  if (first_fd < 0) return Status::InvalidArgument(error);
  port_ = bound;

  auto fail = [&](std::string msg) {
    for (auto& w : workers_) {
      if (w->owns_listen && w->listen_fd >= 0) ::close(w->listen_fd);
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
      if (w->wake_fd >= 0) ::close(w->wake_fd);
      if (w->spare_fd >= 0) ::close(w->spare_fd);
    }
    workers_.clear();
    ::close(first_fd);
    return Status::Internal(std::move(msg));
  };

  for (int i = 0; i < nworkers; ++i) {
    auto w = std::make_unique<Worker>();
    w->server = this;
    w->opts = &options_;
    w->engine = engine_;
    if (i == 0) {
      w->listen_fd = first_fd;
      w->owns_listen = true;
    } else if (reuseport) {
      uint16_t p = 0;
      int fd = CreateListenSocket(options_.host, port_, true, &p, &error);
      if (fd < 0) {
        workers_.push_back(std::move(w));
        return fail("worker listen socket: " + error);
      }
      w->listen_fd = fd;
      w->owns_listen = true;
    } else {
      w->listen_fd = first_fd;  // shared accept socket
      w->owns_listen = false;
    }
    w->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epoll_fd < 0 || w->wake_fd < 0) {
      workers_.push_back(std::move(w));
      return fail(std::string("epoll/eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
    ev.events = EPOLLIN;
#ifdef EPOLLEXCLUSIVE
    // Shared accept socket: wake one worker per pending connection instead
    // of the whole herd.
    if (!reuseport && nworkers > 1) ev.events |= EPOLLEXCLUSIVE;
#endif
    ev.data.fd = w->listen_fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->listen_fd, &ev);
    w->listen_events = ev.events;
    // Best-effort: with no spare, fd exhaustion degrades to the timed
    // accept pause instead of the shed-with-busy path.
    w->spare_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->thread = std::thread([worker = w.get()] { worker->Run(); });
  }
  return Status::OK();
}

void DisclosureServer::Stop() {
  running_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    if (w->wake_fd >= 0) {
      uint64_t one = 1;
      ssize_t r;
      do {
        r = ::write(w->wake_fd, &one, sizeof(one));
      } while (r < 0 && errno == EINTR);
    }
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Worker objects survive Stop so stats() keeps answering; only the fds
  // and connection state are torn down.
  for (auto& w : workers_) {
    for (auto& [fd, c] : w->conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
    w->conns.clear();
    w->graveyard.clear();
    if (w->owns_listen && w->listen_fd >= 0) ::close(w->listen_fd);
    if (w->epoll_fd >= 0) ::close(w->epoll_fd);
    if (w->wake_fd >= 0) ::close(w->wake_fd);
    if (w->spare_fd >= 0) ::close(w->spare_fd);
    w->listen_fd = w->epoll_fd = w->wake_fd = w->spare_fd = -1;
  }
}

void DisclosureServer::Shutdown() {
  if (started_ && running_.load(std::memory_order_acquire)) {
    draining_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
      if (w->wake_fd >= 0) {
        uint64_t one = 1;
        ssize_t r;
        do {
          r = ::write(w->wake_fd, &one, sizeof(one));
        } while (r < 0 && errno == EINTR);
      }
    }
    // Workers exit Run() on their own once drained (or at the drain
    // deadline); Stop() below is then pure fd/teardown bookkeeping.
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }
  Stop();
}

DisclosureServer::Stats DisclosureServer::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.connections_accepted += w->c_accepted.load(std::memory_order_relaxed);
    s.connections_rejected += w->c_rejected.load(std::memory_order_relaxed);
    s.connections_closed += w->c_closed.load(std::memory_order_relaxed);
    s.protocol_errors +=
        w->c_protocol_errors.load(std::memory_order_relaxed);
    s.frames_received += w->c_frames.load(std::memory_order_relaxed);
    s.decisions += w->c_decisions.load(std::memory_order_relaxed);
    s.coalesced_batches += w->c_batches.load(std::memory_order_relaxed);
    const uint64_t mb = w->c_max_batch.load(std::memory_order_relaxed);
    if (mb > s.max_coalesced_batch) s.max_coalesced_batch = mb;
    s.backpressure_pauses +=
        w->c_backpressure.load(std::memory_order_relaxed);
    s.bytes_read += w->c_bytes_in.load(std::memory_order_relaxed);
    s.bytes_written += w->c_bytes_out.load(std::memory_order_relaxed);
    s.handshake_reaps += w->c_handshake_reaps.load(std::memory_order_relaxed);
    s.idle_reaps += w->c_idle_reaps.load(std::memory_order_relaxed);
    s.accept_overloads +=
        w->c_accept_overloads.load(std::memory_order_relaxed);
    s.accept_pauses += w->c_accept_pauses.load(std::memory_order_relaxed);
    s.goaway_sent += w->c_goaway.load(std::memory_order_relaxed);
    s.drained_connections += w->c_drained.load(std::memory_order_relaxed);
    s.drain_forced_closes +=
        w->c_drain_forced.load(std::memory_order_relaxed);
  }
  return s;
}

std::string DisclosureServer::StatsJsonFragment() const {
  const Stats s = stats();
  std::string out = "{";
  bool first = true;
  auto field = [&out, &first](const char* key, uint64_t v) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(key);
    out.append("\":");
    out.append(std::to_string(v));
  };
  field("connections_accepted", s.connections_accepted);
  field("connections_rejected", s.connections_rejected);
  field("connections_closed", s.connections_closed);
  field("protocol_errors", s.protocol_errors);
  field("frames_received", s.frames_received);
  field("decisions", s.decisions);
  field("coalesced_batches", s.coalesced_batches);
  field("max_coalesced_batch", s.max_coalesced_batch);
  field("backpressure_pauses", s.backpressure_pauses);
  field("bytes_read", s.bytes_read);
  field("bytes_written", s.bytes_written);
  field("handshake_reaps", s.handshake_reaps);
  field("idle_reaps", s.idle_reaps);
  field("accept_overloads", s.accept_overloads);
  field("accept_pauses", s.accept_pauses);
  field("goaway_sent", s.goaway_sent);
  field("drained_connections", s.drained_connections);
  field("drain_forced_closes", s.drain_forced_closes);
  out.push_back('}');
  return out;
}

}  // namespace fdc::server
