// DisclosureServer: the daemon front end over engine::DisclosureEngine.
//
// The engine is a thread-safe library; this is the piece that makes it a
// server. N worker threads each run a level-triggered epoll event loop
// over non-blocking TCP connections speaking the binary wire protocol of
// server/protocol.h. The perf-critical design point is the *coalescing
// layer*: every frame readable in one epoll wake — across all of a
// worker's connections — is decoded into one request batch and submitted
// through a single DisclosureEngine::SubmitCoalesced pass, so the batched
// labeling kernel (batch/SIMD mask evaluation, distinct-structure dedup)
// runs at the wire path's natural batch size instead of degrading to
// per-request Submit calls. Responses are staged per connection in
// request order and flushed once per wake.
//
// Flow control: each connection owns bounded read/write byte queues. When
// a connection's response queue exceeds ServerOptions::write_queue_limit
// the server stops reading it (EPOLLIN is dropped) until the peer drains
// half the queue — a slow or absent reader pipelining requests can never
// grow server memory without bound. Writes resume partial sends exactly
// where they stopped; reads and writes retry EINTR and yield on EAGAIN;
// SIGPIPE is ignored process-wide at Start() (sends also pass
// MSG_NOSIGNAL) so a vanished peer surfaces as EPIPE on the affected
// connection only.
//
// Listening: SO_REUSEADDR + port 0 (ephemeral) by default, so tests and
// CI never flake on a busy port — read the actual port back with port().
// With options.workers > 1 each worker binds its own SO_REUSEPORT socket
// to the shared port (kernel-level accept sharding); if SO_REUSEPORT is
// unavailable all workers fall back to a shared accept socket.
//
// The /stats request type answers engine::StatsToJson(engine->Stats()) —
// the same JSON schema examples/end_to_end_monitor.cpp prints — and kPing
// doubles as the health probe (answers the current policy epoch).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/disclosure_engine.h"

namespace fdc::server {

struct ServerOptions {
  /// IPv4 listen address. 0.0.0.0 serves every interface; the default
  /// stays loopback-only (the deployment story is a local sidecar).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Worker threads, each with its own epoll loop (and, when available,
  /// its own SO_REUSEPORT listening socket).
  int workers = 1;
  /// Accepted connections beyond this are refused with kServerBusy.
  size_t max_connections = 4096;
  /// Per-connection response-queue byte bound: above it the connection's
  /// EPOLLIN interest is dropped (backpressure), restored once the queue
  /// drains below half. Never a hard cap — the queue only grows while we
  /// keep reading, so pausing reads bounds it.
  size_t write_queue_limit = 1 << 20;
  /// Per-connection registered-template cap (ids are dense indexes).
  size_t max_templates = 1 << 16;
  /// Flush the coalesced batch to the engine when it reaches this many
  /// pending submits even mid-wake (bounds decision latency and batch
  /// scratch under extreme pipelining).
  size_t max_coalesce = 4096;

  // --- robustness knobs (all milliseconds; 0 disables the mechanism) ----
  /// A connection that has not completed the kHello handshake within this
  /// window is reaped (kError/kDeadlineExceeded, then close) — half-open
  /// peers cannot hold a connection slot.
  int handshake_timeout_ms = 10'000;
  /// A fully quiescent connection (handshake done, nothing buffered in
  /// either direction) older than this since its last byte is reaped.
  /// Off by default: the sidecar deployment keeps one long-lived
  /// connection per app and reaping it would only force reconnect churn.
  int idle_timeout_ms = 0;
  /// Granularity of the deadline machinery: while any timed work exists
  /// (connections, an accept pause, a drain) the event loop wakes at
  /// least this often; a fully idle worker still blocks indefinitely.
  int tick_interval_ms = 50;
  /// Shutdown() drain budget: connections still open this long after the
  /// drain began are force-closed.
  int drain_deadline_ms = 5'000;
  /// Budget for the bounded best-effort flush of a kServerBusy shed reply
  /// on a connection we are about to close unaccepted.
  int shed_flush_ms = 20;
  /// How long accepting stays paused after unrecoverable fd exhaustion
  /// (EMFILE with the spare fd also gone) before the listener is re-armed.
  int accept_pause_ms = 100;
  /// A closing connection (fatal error or reap) whose final flush makes no
  /// progress for this long is hard-closed — a peer that stops reading
  /// cannot pin a slot via its own error frame.
  int close_linger_ms = 2'000;
};

class DisclosureServer {
 public:
  /// Aggregated across workers; every counter is monotone.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  // kServerBusy refusals
    uint64_t connections_closed = 0;
    uint64_t protocol_errors = 0;       // fatal + non-fatal kError frames
    uint64_t frames_received = 0;
    uint64_t decisions = 0;             // submits answered
    uint64_t coalesced_batches = 0;     // SubmitCoalesced calls
    uint64_t max_coalesced_batch = 0;   // largest single batch
    uint64_t backpressure_pauses = 0;   // EPOLLIN drops
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t handshake_reaps = 0;       // closed before kHello in time
    uint64_t idle_reaps = 0;            // idle TTL expirations
    uint64_t accept_overloads = 0;      // accept() hit EMFILE/ENFILE
    uint64_t accept_pauses = 0;         // listener parked after exhaustion
    uint64_t goaway_sent = 0;           // kGoingAway frames staged
    uint64_t drained_connections = 0;   // closed cleanly during a drain
    uint64_t drain_forced_closes = 0;   // still open at the drain deadline
  };

  /// `engine` must outlive the server and be started/stopped by the
  /// caller (the server only submits decisions and reads stats).
  DisclosureServer(engine::DisclosureEngine* engine,
                   ServerOptions options = {});
  ~DisclosureServer();  // Stops if still running.

  DisclosureServer(const DisclosureServer&) = delete;
  DisclosureServer& operator=(const DisclosureServer&) = delete;

  /// Binds, listens and spawns the worker threads. Returns the first
  /// socket-layer failure as InvalidArgument/Internal; idempotence is not
  /// supported (one Start per instance).
  Status Start();

  /// Wakes every worker, joins the threads and closes every socket.
  /// In-flight responses already staged are not flushed. Safe to call
  /// twice and from any thread (but not concurrently with Start).
  void Stop();

  /// Graceful drain, then Stop(): workers stop accepting, stage a
  /// kGoingAway frame on every live connection, keep answering requests
  /// already received (and any a client races in before it sees the
  /// announcement), and exit once every peer has closed — or hard-close
  /// whatever remains after ServerOptions::drain_deadline_ms. Safe to
  /// call twice; callable from a signal-driven shutdown path's thread.
  void Shutdown();

  /// The bound listening port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  Stats stats() const;

  /// stats() as one JSON object — the fragment the kStatsRequest handler
  /// splices into engine::StatsToJson under the "server" key.
  std::string StatsJsonFragment() const;

 private:
  struct Worker;

  engine::DisclosureEngine* engine_;
  ServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  bool started_ = false;
  uint16_t port_ = 0;
  std::atomic<size_t> live_connections_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace fdc::server
