#include "server/protocol.h"

namespace fdc::server {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic: return "BadMagic";
    case ErrorCode::kBadVersion: return "BadVersion";
    case ErrorCode::kOversizedFrame: return "OversizedFrame";
    case ErrorCode::kMalformedFrame: return "MalformedFrame";
    case ErrorCode::kUnknownType: return "UnknownType";
    case ErrorCode::kExpectedHello: return "ExpectedHello";
    case ErrorCode::kDuplicateHello: return "DuplicateHello";
    case ErrorCode::kBadPrincipal: return "BadPrincipal";
    case ErrorCode::kBadTemplateId: return "BadTemplateId";
    case ErrorCode::kDuplicateTemplate: return "DuplicateTemplate";
    case ErrorCode::kUnknownTemplate: return "UnknownTemplate";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kServerBusy: return "ServerBusy";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "UnknownError";
}

DecodeResult DecodeFrame(const uint8_t* data, size_t size, FrameView* out) {
  DecodeResult result;
  if (size < kFrameHeaderSize) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const uint32_t payload_len = GetU32(data);
  const uint8_t raw_type = data[4];
  const uint8_t flags = data[5];
  const uint16_t reserved = GetU16(data + 6);
  // Envelope validation happens before waiting for the payload: an
  // attacker-supplied length must never make the server buffer (or spin
  // on) a frame it would reject anyway.
  if (payload_len > kMaxPayload) {
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kOversizedFrame;
    return result;
  }
  if (reserved != 0) {
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kMalformedFrame;
    return result;
  }
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kGoingAway)) {
    result.status = DecodeStatus::kError;
    result.error = ErrorCode::kUnknownType;
    return result;
  }
  if (size < kFrameHeaderSize + payload_len) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  out->type = static_cast<FrameType>(raw_type);
  out->flags = flags;
  out->payload = std::span<const uint8_t>(data + kFrameHeaderSize,
                                          payload_len);
  result.status = DecodeStatus::kFrame;
  result.consumed = kFrameHeaderSize + payload_len;
  return result;
}

namespace {

std::string_view TailView(std::span<const uint8_t> payload, size_t offset) {
  return std::string_view(reinterpret_cast<const char*>(payload.data()) +
                              offset,
                          payload.size() - offset);
}

}  // namespace

bool ParseHello(std::span<const uint8_t> payload, HelloPayload* out) {
  if (payload.size() < 8) return false;
  out->magic = GetU32(payload.data());
  out->version = GetU16(payload.data() + 4);
  if (GetU16(payload.data() + 6) != 0) return false;
  out->principal = TailView(payload, 8);
  return true;
}

bool ParseDecision(std::span<const uint8_t> payload, DecisionPayload* out) {
  if (payload.size() < 12) return false;
  if (payload[0] > 1 || payload[1] != 0 || payload[2] != 0 ||
      payload[3] != 0) {
    return false;
  }
  out->allow = payload[0] != 0;
  out->epoch = GetU64(payload.data() + 4);
  out->explanation = TailView(payload, 12);
  return true;
}

bool ParseError(std::span<const uint8_t> payload, ErrorPayload* out) {
  if (payload.size() < 8) return false;
  out->code = static_cast<ErrorCode>(GetU32(payload.data()));
  out->detail = GetU32(payload.data() + 4);
  out->message = TailView(payload, 8);
  return true;
}

bool ParseTemplateId(std::span<const uint8_t> payload, uint32_t* id,
                     std::string_view* text) {
  if (payload.size() < 4) return false;
  *id = GetU32(payload.data());
  if (text != nullptr) *text = TailView(payload, 4);
  return true;
}

bool ParseGoingAway(std::span<const uint8_t> payload, GoingAwayPayload* out) {
  if (payload.size() < 8) return false;
  out->epoch = GetU64(payload.data());
  out->reason = TailView(payload, 8);
  return true;
}

void AppendFrame(std::string* out, FrameType type, uint8_t flags,
                 std::string_view payload) {
  uint8_t header[kFrameHeaderSize];
  PutU32(header, static_cast<uint32_t>(payload.size()));
  header[4] = static_cast<uint8_t>(type);
  header[5] = flags;
  PutU16(header + 6, 0);
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  if (!payload.empty()) out->append(payload.data(), payload.size());
}

void AppendHello(std::string* out, std::string_view principal) {
  uint8_t fixed[8];
  PutU32(fixed, kMagic);
  PutU16(fixed + 4, kProtocolVersion);
  PutU16(fixed + 6, 0);
  std::string payload(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  if (!principal.empty()) payload.append(principal.data(), principal.size());
  AppendFrame(out, FrameType::kHello, 0, payload);
}

void AppendHelloAck(std::string* out, uint64_t epoch, uint32_t max_payload) {
  uint8_t payload[16];
  PutU64(payload, epoch);
  PutU32(payload + 8, max_payload);
  PutU32(payload + 12, 0);
  AppendFrame(out, FrameType::kHelloAck, 0,
              std::string_view(reinterpret_cast<const char*>(payload),
                               sizeof(payload)));
}

void AppendRegisterTemplate(std::string* out, uint32_t template_id,
                            std::string_view datalog) {
  uint8_t fixed[4];
  PutU32(fixed, template_id);
  std::string payload(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  if (!datalog.empty()) payload.append(datalog.data(), datalog.size());
  AppendFrame(out, FrameType::kRegisterTemplate, 0, payload);
}

void AppendTemplateAck(std::string* out, uint32_t template_id) {
  uint8_t payload[4];
  PutU32(payload, template_id);
  AppendFrame(out, FrameType::kTemplateAck, 0,
              std::string_view(reinterpret_cast<const char*>(payload),
                               sizeof(payload)));
}

void AppendSubmit(std::string* out, uint32_t template_id, bool want_explain) {
  uint8_t payload[4];
  PutU32(payload, template_id);
  AppendFrame(out, FrameType::kSubmit, want_explain ? kFlagExplain : 0,
              std::string_view(reinterpret_cast<const char*>(payload),
                               sizeof(payload)));
}

void AppendSubmitText(std::string* out, std::string_view datalog,
                      bool want_explain) {
  AppendFrame(out, FrameType::kSubmitText, want_explain ? kFlagExplain : 0,
              datalog);
}

void AppendDecision(std::string* out, bool allow, uint64_t epoch,
                    std::string_view explanation) {
  uint8_t fixed[12];
  fixed[0] = allow ? 1 : 0;
  fixed[1] = fixed[2] = fixed[3] = 0;
  PutU64(fixed + 4, epoch);
  // The hot path: one reserve, two appends, no intermediate payload string.
  uint8_t header[kFrameHeaderSize];
  PutU32(header, static_cast<uint32_t>(sizeof(fixed) + explanation.size()));
  header[4] = static_cast<uint8_t>(FrameType::kDecision);
  header[5] = 0;
  PutU16(header + 6, 0);
  out->reserve(out->size() + sizeof(header) + sizeof(fixed) +
               explanation.size());
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  if (!explanation.empty()) out->append(explanation.data(), explanation.size());
}

void AppendStatsRequest(std::string* out) {
  AppendFrame(out, FrameType::kStatsRequest, 0, {});
}

void AppendStatsJson(std::string* out, std::string_view json) {
  AppendFrame(out, FrameType::kStatsJson, 0, json);
}

void AppendPing(std::string* out) { AppendFrame(out, FrameType::kPing, 0, {}); }

void AppendPong(std::string* out, uint64_t epoch) {
  uint8_t payload[8];
  PutU64(payload, epoch);
  AppendFrame(out, FrameType::kPong, 0,
              std::string_view(reinterpret_cast<const char*>(payload),
                               sizeof(payload)));
}

void AppendError(std::string* out, ErrorCode code, uint32_t detail,
                 std::string_view message) {
  uint8_t fixed[8];
  PutU32(fixed, static_cast<uint32_t>(code));
  PutU32(fixed + 4, detail);
  std::string payload(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  if (!message.empty()) payload.append(message.data(), message.size());
  AppendFrame(out, FrameType::kError, 0, payload);
}

void AppendGoingAway(std::string* out, uint64_t epoch,
                     std::string_view reason) {
  uint8_t fixed[8];
  PutU64(fixed, epoch);
  std::string payload(reinterpret_cast<const char*>(fixed), sizeof(fixed));
  if (!reason.empty()) payload.append(reason.data(), reason.size());
  AppendFrame(out, FrameType::kGoingAway, 0, payload);
}

}  // namespace fdc::server
