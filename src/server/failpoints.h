// Deterministic syscall failpoints for the serving front end.
//
// Every socket-layer syscall the server's event loop issues goes through
// the thin wrappers below. When the harness is DISABLED (the default at
// runtime, and the only state in production) each wrapper is a direct
// passthrough behind one relaxed atomic load; configuring the build with
// -DFDC_FAILPOINTS=OFF (which defines FDC_NO_FAILPOINTS) compiles the
// harness out entirely and the wrappers become plain inline calls.
//
// When ENABLED, every intercepted call rolls against a seeded counter-
// indexed hash (SplitMix64 over (seed, global call index, op)), so a fault
// schedule is a pure function of the seed and the interleaving — a
// single-worker server replays the identical schedule run over run. Two
// independent fault classes per call:
//
//   * benign faults (Config::rate): EINTR, EAGAIN, and short reads/writes
//     (a short IO really transfers a truncated prefix — no bytes are ever
//     dropped or duplicated, exactly like a real partial transfer). Every
//     correct caller must absorb these transparently.
//   * lethal faults (Config::lethal_rate): ECONNRESET / EPIPE / ENOMEM on
//     recv/send and EMFILE / ENFILE on accept4 — the classes that kill a
//     connection or exhaust a resource. Correct callers degrade (close the
//     one connection, shed the one accept) without leaking or corrupting
//     anything else.
//
// close(2) never skips the real close — on Linux the fd is released even
// when close reports EINTR, and a shim that "failed" a close without
// closing would manufacture fd leaks the caller cannot fix. epoll_wait
// only ever gets EINTR (its sole transient failure in this server).
//
// Activation: programmatic (Enable/Disable, or ScopedFailpoints in tests)
// or the FDC_FAILPOINTS environment variable, parsed by EnableFromEnv —
// "seed=7,rate=0.2,lethal=0.01,ops=recv|send|accept|close|epoll,short=0.5"
// (any subset; unknown keys are rejected). DisclosureServer::Start calls
// EnableFromEnv, so a daemon run under fault injection needs no code.
#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace fdc::server::failpoints {

/// Bitmask of intercepted operations.
enum Op : uint32_t {
  kAccept = 1u << 0,
  kRecv = 1u << 1,
  kSend = 1u << 2,
  kClose = 1u << 3,
  kEpollWait = 1u << 4,
};
inline constexpr uint32_t kAllOps =
    kAccept | kRecv | kSend | kClose | kEpollWait;

struct Config {
  /// Seed for the deterministic per-call schedule.
  uint64_t seed = 1;
  /// Probability of a benign fault (EINTR / EAGAIN / short IO) per call.
  double rate = 0.1;
  /// Probability of a lethal fault (ECONNRESET / EPIPE / ENOMEM on IO,
  /// EMFILE / ENFILE on accept) per call. Rolled independently of `rate`;
  /// lethal wins when both hit.
  double lethal_rate = 0.0;
  /// Among benign recv/send faults, the fraction delivered as short
  /// transfers instead of errno injections.
  double short_io = 0.5;
  /// Which wrappers actively inject (others pass through).
  uint32_t ops = kAllOps;
};

/// Monotone process-wide counters (all writes relaxed; read with Current).
struct Stats {
  uint64_t calls = 0;         // intercepted calls while enabled
  uint64_t faults = 0;        // total injections (benign + lethal)
  uint64_t eintr = 0;
  uint64_t eagain = 0;
  uint64_t short_reads = 0;
  uint64_t short_writes = 0;
  uint64_t econnreset = 0;
  uint64_t epipe = 0;
  uint64_t enomem = 0;
  uint64_t emfile = 0;        // EMFILE + ENFILE + ECONNABORTED on accept
};

#ifndef FDC_NO_FAILPOINTS

/// Installs `config` and starts injecting. Safe to call while server
/// threads are running (fields are published individually; a torn view is
/// at worst one call injected under a mix of old/new rates).
void Enable(const Config& config);
void Disable();
bool Enabled();

/// Parses FDC_FAILPOINTS (or `env_value` when non-null, for tests) and
/// enables the harness iff the variable is present and well-formed.
/// Returns false (leaving the harness untouched) on absent or malformed
/// input.
///
/// Value validation rules (every violation rejects the whole spec):
///   * seed   — decimal digits only: no sign ("seed=-1" must not wrap to
///              2^64-1), no trailing garbage, and no silent ERANGE clamp
///              to ULLONG_MAX for values beyond 2^64-1.
///   * rate / lethal / short — a finite double in [0.0, 1.0]. Non-finite
///              spellings ("nan", "inf") are rejected explicitly: NaN
///              compares false against both range bounds, so it would
///              otherwise slip through and disable every probability
///              comparison downstream.
///   * ops    — '|'-separated subset of accept|recv|send|close|epoll;
///              empty or unknown names are rejected.
bool EnableFromEnv(const char* env_value = nullptr);

Stats Current();
void ResetStats();

/// RAII enable/disable for tests and benchmarks.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const Config& config) { Enable(config); }
  ~ScopedFailpoints() { Disable(); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
};

// The wrappers. Signatures match the syscalls; errno is set exactly as the
// real call would set it.
int Accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags);
ssize_t Recv(int fd, void* buf, size_t len, int flags);
ssize_t Send(int fd, const void* buf, size_t len, int flags);
int Close(int fd);
int EpollWait(int epfd, epoll_event* events, int maxevents, int timeout_ms);

#else  // FDC_NO_FAILPOINTS: the harness compiles out to direct calls.

inline void Enable(const Config&) {}
inline void Disable() {}
inline bool Enabled() { return false; }
inline bool EnableFromEnv(const char* = nullptr) { return false; }
inline Stats Current() { return {}; }
inline void ResetStats() {}

class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const Config&) {}
};

inline int Accept4(int fd, sockaddr* addr, socklen_t* addrlen, int flags) {
  return ::accept4(fd, addr, addrlen, flags);
}
inline ssize_t Recv(int fd, void* buf, size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}
inline ssize_t Send(int fd, const void* buf, size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}
inline int Close(int fd) { return ::close(fd); }
inline int EpollWait(int epfd, epoll_event* events, int maxevents,
                     int timeout_ms) {
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

#endif  // FDC_NO_FAILPOINTS

}  // namespace fdc::server::failpoints
