// The disclosure server's length-prefixed binary wire protocol.
//
// A connection is a byte stream of frames in both directions. Every frame
// is an 8-byte header followed by a bounded payload; all integers are
// little-endian; there is no padding beyond the fields listed.
//
//   Frame layout (all frames, both directions)
//   ┌────────┬──────┬──────────────────────────────────────────────────┐
//   │ offset │ size │ field                                            │
//   ├────────┼──────┼──────────────────────────────────────────────────┤
//   │ 0      │ 4    │ payload_len (u32; bytes after the header,        │
//   │        │      │   must be <= kMaxPayload)                        │
//   │ 4      │ 1    │ type (FrameType)                                 │
//   │ 5      │ 1    │ flags (per-type; undefined bits must be 0)       │
//   │ 6      │ 2    │ reserved (must be 0)                             │
//   │ 8      │ ...  │ payload                                          │
//   └────────┴──────┴──────────────────────────────────────────────────┘
//
//   Per-type payloads
//   ┌──────────────────────┬─────┬───────────────────────────────────────┐
//   │ type                 │ dir │ payload                               │
//   ├──────────────────────┼─────┼───────────────────────────────────────┤
//   │ kHello (1)           │ c→s │ u32 magic kMagic; u16 version; u16    │
//   │                      │     │ reserved(0); principal name (1..      │
//   │                      │     │ kMaxPrincipalLen bytes). Must be the  │
//   │                      │     │ connection's first frame.             │
//   │ kHelloAck (2)        │ s→c │ u64 epoch; u32 max_payload; u32 rsvd. │
//   │ kRegisterTemplate(3) │ c→s │ u32 template_id; Datalog text. Interns│
//   │                      │     │ the parsed query under the (per-      │
//   │                      │     │ connection) id for later kSubmit.     │
//   │ kTemplateAck (4)     │ s→c │ u32 template_id.                      │
//   │ kSubmit (5)          │ c→s │ u32 template_id. flags bit0           │
//   │                      │     │ (kFlagExplain): append a diagnosis to │
//   │                      │     │ the decision frame.                   │
//   │ kSubmitText (6)      │ c→s │ Datalog text, parsed per request (the │
//   │                      │     │ slow path). flags bit0 as kSubmit.    │
//   │ kDecision (7)        │ s→c │ u8 allow; u8[3] reserved(0); u64      │
//   │                      │     │ epoch the decision was made under;    │
//   │                      │     │ optional explanation text iff the     │
//   │                      │     │ request carried kFlagExplain.         │
//   │ kStatsRequest (8)    │ c→s │ empty. The /stats + health endpoint.  │
//   │ kStatsJson (9)       │ s→c │ engine::StatsToJson document.         │
//   │ kPing (10)           │ c→s │ empty (health probe).                 │
//   │ kPong (11)           │ s→c │ u64 current epoch.                    │
//   │ kError (12)          │ s→c │ u32 code (ErrorCode); u32 detail      │
//   │                      │     │ (e.g. offending template id); message │
//   │                      │     │ text. Fatal codes (IsFatal) are the   │
//   │                      │     │ connection's last frame — the server  │
//   │                      │     │ flushes it and closes.                │
//   │ kGoingAway (13)      │ s→c │ u64 epoch; reason text. Drain         │
//   │                      │     │ announcement: the server has stopped  │
//   │                      │     │ accepting and will answer every       │
//   │                      │     │ request already received on this      │
//   │                      │     │ connection, then close it. Clients    │
//   │                      │     │ should finish reading staged          │
//   │                      │     │ responses and reconnect elsewhere.    │
//   └──────────────────────┴─────┴───────────────────────────────────────┘
//
// Compatibility: unknown frame types are a fatal protocol error in BOTH
// directions — the receiver answers kError(kUnknownType) (server side) or
// closes (client side) rather than skipping the frame, because a length-
// prefixed stream with a misunderstood frame can smuggle bytes past the
// monitor. Consequence for evolution: new server→client types such as
// kGoingAway (added in protocol revision 13) may only be emitted at points
// where closing the connection is an acceptable outcome for an old client.
// kGoingAway satisfies this by construction — it is only sent when the
// connection is about to end anyway, so a version-1 client that treats it
// as unknown-and-fatal merely closes a connection the server was already
// draining; its staged responses have been flushed ahead of the frame.
//
// Request/response discipline: the server answers every kRegisterTemplate,
// kSubmit, kSubmitText, kStatsRequest and kPing with exactly one frame, in
// request order per connection (responses never reorder even though
// decisions are computed in coalesced cross-connection batches). A
// kSubmitText whose body fails to parse gets a non-fatal kError *in place
// of* its decision frame. Explanations reflect the monitor state after the
// decision was applied (for refusals that equals the pre-decision state —
// refused queries never narrow; for accepts the diagnosed partitions are
// those still consistent after the accept).
//
// Ordering/batching contract: decisions on one connection are applied to
// the principal's cumulative state in frame order; the coalescing layer
// preserves per-principal arrival order across connections, so the
// decision sequence a client observes is bit-identical to issuing the same
// queries directly against DisclosureEngine::Submit in the same order
// (property-tested in tests/server_protocol_test.cc).
//
// Malformed input (bad magic/version, nonzero reserved bits, payload_len
// over kMaxPayload, unknown type, frame before kHello, unregistered or
// re-registered template id, overlong principal) is answered with a fatal
// kError and the connection is closed; bytes after a fatal error are never
// interpreted. Truncated streams (peer died mid-frame) are simply closed.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace fdc::server {

inline constexpr uint32_t kMagic = 0x57434446;  // bytes "FDCW" on the wire
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderSize = 8;
/// Upper bound on payload_len; a frame never occupies more than
/// kMaxPayload + kFrameHeaderSize bytes of buffer.
inline constexpr uint32_t kMaxPayload = 1u << 20;
inline constexpr size_t kMaxPrincipalLen = 256;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kRegisterTemplate = 3,
  kTemplateAck = 4,
  kSubmit = 5,
  kSubmitText = 6,
  kDecision = 7,
  kStatsRequest = 8,
  kStatsJson = 9,
  kPing = 10,
  kPong = 11,
  kError = 12,
  kGoingAway = 13,
};

/// flags bit0 on kSubmit / kSubmitText: append a decision explanation.
inline constexpr uint8_t kFlagExplain = 0x01;

enum class ErrorCode : uint32_t {
  kBadMagic = 1,
  kBadVersion = 2,
  kOversizedFrame = 3,
  kMalformedFrame = 4,   // short/ill-formed payload, nonzero reserved bits
  kUnknownType = 5,      // unknown or direction-invalid frame type
  kExpectedHello = 6,    // first frame was not kHello
  kDuplicateHello = 7,
  kBadPrincipal = 8,     // empty or overlong principal name
  kBadTemplateId = 9,    // id >= the server's per-connection template cap
  kDuplicateTemplate = 10,
  kUnknownTemplate = 11,  // kSubmit for an id never registered
  kParseError = 12,       // template/text failed to parse (NON-fatal)
  kServerBusy = 13,       // connection limit reached
  kDeadlineExceeded = 14,  // handshake/idle deadline reaped the connection
};

/// Every protocol error closes the connection except kParseError, which is
/// scoped to the request that carried the unparseable text.
inline bool IsFatal(ErrorCode code) { return code != ErrorCode::kParseError; }

const char* ErrorCodeName(ErrorCode code);

// --- little-endian primitives -------------------------------------------

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

// --- frame decoding ------------------------------------------------------

/// A decoded frame header + payload view into the caller's buffer.
struct FrameView {
  FrameType type = FrameType::kError;
  uint8_t flags = 0;
  std::span<const uint8_t> payload;
};

enum class DecodeStatus {
  kFrame,     // *out holds one frame; consume `consumed` bytes
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kError,     // stream is unrecoverable; *error says why
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  size_t consumed = 0;
  ErrorCode error = ErrorCode::kMalformedFrame;
};

/// Decodes the frame at the head of [data, data+size). Validates the
/// header envelope only (length bound, reserved bytes, known type) —
/// per-type payload shape is the caller's job. Never reads past `size`.
DecodeResult DecodeFrame(const uint8_t* data, size_t size, FrameView* out);

/// Typed payload parsers; each returns false on a malformed payload.
struct HelloPayload {
  uint32_t magic = 0;
  uint16_t version = 0;
  std::string_view principal;
};
bool ParseHello(std::span<const uint8_t> payload, HelloPayload* out);

struct DecisionPayload {
  bool allow = false;
  uint64_t epoch = 0;
  std::string_view explanation;
};
bool ParseDecision(std::span<const uint8_t> payload, DecisionPayload* out);

struct ErrorPayload {
  ErrorCode code = ErrorCode::kMalformedFrame;
  uint32_t detail = 0;
  std::string_view message;
};
bool ParseError(std::span<const uint8_t> payload, ErrorPayload* out);

/// kRegisterTemplate: u32 id + text. kSubmit: u32 id alone.
bool ParseTemplateId(std::span<const uint8_t> payload, uint32_t* id,
                     std::string_view* text);

struct GoingAwayPayload {
  uint64_t epoch = 0;
  std::string_view reason;
};
bool ParseGoingAway(std::span<const uint8_t> payload, GoingAwayPayload* out);

// --- frame encoding ------------------------------------------------------
// All encoders append one complete frame to `*out` (a plain byte string —
// connection write queues and client send buffers are both backed by one).

void AppendFrame(std::string* out, FrameType type, uint8_t flags,
                 std::string_view payload);
void AppendHello(std::string* out, std::string_view principal);
void AppendHelloAck(std::string* out, uint64_t epoch, uint32_t max_payload);
void AppendRegisterTemplate(std::string* out, uint32_t template_id,
                            std::string_view datalog);
void AppendTemplateAck(std::string* out, uint32_t template_id);
void AppendSubmit(std::string* out, uint32_t template_id,
                  bool want_explain = false);
void AppendSubmitText(std::string* out, std::string_view datalog,
                      bool want_explain = false);
void AppendDecision(std::string* out, bool allow, uint64_t epoch,
                    std::string_view explanation = {});
void AppendStatsRequest(std::string* out);
void AppendStatsJson(std::string* out, std::string_view json);
void AppendPing(std::string* out);
void AppendPong(std::string* out, uint64_t epoch);
void AppendError(std::string* out, ErrorCode code, uint32_t detail,
                 std::string_view message);
void AppendGoingAway(std::string* out, uint64_t epoch,
                     std::string_view reason);

}  // namespace fdc::server
