// Versioned binary policy artifacts (the Xen-sHype "binary policy" shape).
//
// A SecurityPolicy exists in-process as compiled C++ state; rolling one out
// to a fleet needs a byte-exact, validatable, diffable unit an operator can
// stage, inspect, and hand to N server processes. CompilePolicyBlob freezes
// a compiled policy *plus the catalog layout it was compiled against* into
// one relocatable flat blob; LoadPolicyBlob re-validates every byte and
// PolicyFromBlob reconstructs the compiled SecurityPolicy with zero
// recompilation (no Datalog parsing, no catalog walk — the per-relation
// word layout and the partition mask rows load as-is).
//
// Format (version 1, all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----
//        0     8  magic "FDCPOLB\0"
//        8     4  u32 format version (kPolicyBlobVersion)
//       12     4  u32 header size (kHeaderSize = 64)
//       16     8  u64 total blob length in bytes
//       24     4  u32 section count
//       28     4  u32 flags (reserved, must be 0)
//       32     8  u64 whole-blob checksum (FNV-1a 64 over every byte with
//                     this field read as zero)
//       40    24  reserved, must be 0
//       64   32×N section table: {u32 kind, u32 reserved(0), u64 offset,
//                     u64 length, u64 checksum(FNV-1a 64 of the section)}
//
// Sections (each kind exactly once; offsets strictly inside the blob, no
// two sections overlap):
//
//   kMeta            policy name, source epoch, and the counts every other
//                    section is cross-checked against
//   kLayout          u32 word_begin[num_relations + 1] — the shared
//                    per-relation mask word layout (label::MaskWordsFor)
//   kPartitionWords  u64 rows[num_partitions][total_words] — the compiled
//                    partition masks, row-major
//   kPartitionNames  length-prefixed partition name table
//   kPartitionViews  per-partition catalog view id lists (the source form
//                    the mask rows are recomputed from at load time)
//   kViews           per-view {relation, bit, name} records, indexed by
//                    catalog view id
//   kRelationNames   length-prefixed relation name table
//
// The loader is strict: unknown magic/version/flags, truncation, section
// overlap, checksum mismatch, counts that disagree with section lengths,
// out-of-range ids, a non-monotone layout, or mask rows that differ from
// the rows recomputed from the view lists all return a clean Result error.
// It never aborts and is safe on arbitrary attacker-chosen bytes
// (fuzzed in tests/policy_blob_test.cc, under ASan+UBSan in CI), and a
// forged count can never buy allocation beyond what the blob itself
// carries bytes for: every up-front resize is pre-bounded against the
// owning section's length before it commits.
//
// A format change MUST bump kPolicyBlobVersion: the golden artifact test
// (tests/testdata/policy_v1.blob) pins version-1 bytes exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/snapshot.h"
#include "label/view_catalog.h"
#include "policy/policy.h"

namespace fdc::artifact {

inline constexpr uint32_t kPolicyBlobVersion = 1;
inline constexpr char kPolicyBlobMagic[8] = {'F', 'D', 'C', 'P',
                                             'O', 'L', 'B', '\0'};

/// Operator-facing metadata carried in the kMeta section. `name` is free
/// text chosen by whoever compiled the artifact (escaped wherever it is
/// re-emitted — it flows into JSON stats via shadow mode).
struct PolicyBlobMeta {
  std::string name;
  /// Engine epoch the policy was captured at; 0 when compiled outside an
  /// engine. Informational only.
  uint64_t source_epoch = 0;
};

/// One catalog view as frozen into the blob: the coordinate (relation, bit)
/// every mask bit is interpreted through, plus the operator-visible name.
struct BlobView {
  uint32_t relation = 0;
  uint32_t bit = 0;
  std::string name;
};

/// A fully validated, parsed policy artifact. Immutable after load.
class LoadedPolicyBlob {
 public:
  const PolicyBlobMeta& meta() const { return meta_; }
  uint32_t version() const { return version_; }
  uint64_t checksum() const { return checksum_; }
  size_t byte_size() const { return byte_size_; }

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partition_names_.size());
  }
  uint32_t num_relations() const {
    return static_cast<uint32_t>(relation_names_.size());
  }
  uint32_t num_views() const { return static_cast<uint32_t>(views_.size()); }
  uint64_t total_words() const { return word_begin_.back(); }

  /// Shared per-relation word layout: relation r's masks occupy words
  /// [word_begin()[r], word_begin()[r+1]) of every partition row.
  const std::vector<uint32_t>& word_begin() const { return word_begin_; }
  /// One flat row of total_words() mask words per partition.
  const std::vector<std::vector<uint64_t>>& partition_words() const {
    return partition_words_;
  }
  const std::vector<std::string>& partition_names() const {
    return partition_names_;
  }
  /// Catalog view ids per partition, ascending and deduplicated.
  const std::vector<std::vector<uint32_t>>& partition_views() const {
    return partition_views_;
  }
  /// View records indexed by catalog view id.
  const std::vector<BlobView>& views() const { return views_; }
  const std::vector<std::string>& relation_names() const {
    return relation_names_;
  }

 private:
  friend Result<LoadedPolicyBlob> LoadPolicyBlob(std::span<const uint8_t>);

  PolicyBlobMeta meta_;
  uint32_t version_ = 0;
  uint64_t checksum_ = 0;
  size_t byte_size_ = 0;
  std::vector<uint32_t> word_begin_;
  std::vector<std::vector<uint64_t>> partition_words_;
  std::vector<std::string> partition_names_;
  std::vector<std::vector<uint32_t>> partition_views_;
  std::vector<BlobView> views_;
  std::vector<std::string> relation_names_;
};

/// Serializes `policy` (compiled against `catalog`) into a version-1 blob.
/// Deterministic: identical inputs produce identical bytes (no timestamps),
/// which is what lets the golden-artifact test pin the format.
Result<std::vector<uint8_t>> CompilePolicyBlob(
    const label::ViewCatalog& catalog, const policy::SecurityPolicy& policy,
    const PolicyBlobMeta& meta = {});

/// Captures a live engine snapshot: its policy, its catalog layout, and its
/// epoch as `source_epoch`.
Result<std::vector<uint8_t>> CompilePolicyBlob(
    const engine::EngineSnapshot& snapshot, const std::string& name = "");

/// Parses and fully validates `bytes`. Every failure is a Result error with
/// a message naming the offending structure; arbitrary input never crashes,
/// reads out of bounds, or allocates unboundedly.
Result<LoadedPolicyBlob> LoadPolicyBlob(std::span<const uint8_t> bytes);

/// Reads the file, then LoadPolicyBlob. Rejects files larger than 1 GiB.
Result<LoadedPolicyBlob> LoadPolicyBlobFromFile(const std::string& path);
Status WritePolicyBlobFile(const std::string& path,
                           std::span<const uint8_t> bytes);

/// Checks the blob's frozen layout against a live catalog: relation count
/// and names, view count, every view's (relation, bit, name) coordinate,
/// and the per-relation word layout. A blob that passes produces a policy
/// whose mask bits mean exactly what the live engine's labels mean.
Status ValidateAgainstCatalog(const LoadedPolicyBlob& blob,
                              const label::ViewCatalog& catalog);

/// Reconstructs the compiled SecurityPolicy — partitions (names + view id
/// lists), word layout, and mask rows adopted verbatim via
/// SecurityPolicy::FromCompiled. No recompilation, no catalog required
/// (run ValidateAgainstCatalog first when the blob must match a live one).
Result<policy::SecurityPolicy> PolicyFromBlob(const LoadedPolicyBlob& blob);

/// One partition's membership delta between two blobs, in view names
/// (resolved through each blob's own view table, so two blobs whose bit
/// layouts differ still diff correctly).
struct PartitionDelta {
  int index = -1;
  std::string name_a;
  std::string name_b;
  std::vector<std::string> only_in_a;  // view names
  std::vector<std::string> only_in_b;
};

struct BlobDiff {
  /// True iff metadata, layout, partitions and masks are all identical.
  bool identical = true;
  /// True iff the two blobs froze the same catalog layout (relation/view
  /// tables and word layout) — when false the mask words are not directly
  /// comparable and the per-partition deltas below (computed by view name)
  /// are the meaningful comparison.
  bool layout_identical = true;
  /// Human-readable notes on meta/layout-level differences.
  std::vector<std::string> notes;
  /// Index-aligned partition deltas; only partitions that differ appear.
  std::vector<PartitionDelta> partitions;
};

BlobDiff DiffPolicyBlobs(const LoadedPolicyBlob& a, const LoadedPolicyBlob& b);

}  // namespace fdc::artifact
