#include "artifact/policy_blob.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>

namespace fdc::artifact {
namespace {

// ---------------------------------------------------------------------------
// Format constants.
// ---------------------------------------------------------------------------

constexpr uint32_t kHeaderSize = 64;
constexpr uint32_t kSectionEntrySize = 32;
constexpr size_t kChecksumOffset = 32;  // u64 whole-blob checksum in header

enum SectionKind : uint32_t {
  kMeta = 1,
  kLayout = 2,
  kPartitionWords = 3,
  kPartitionNames = 4,
  kPartitionViews = 5,
  kViews = 6,
  kRelationNames = 7,
};
constexpr uint32_t kNumSections = 7;

// Hostile-input allocation guards: a forged count may not commit the loader
// to unbounded work before the per-item bounds checks catch it.
constexpr uint64_t kMaxNameLength = 1 << 20;          // any single string
constexpr uint64_t kMaxTotalWords = uint64_t{1} << 40;  // mask words
constexpr size_t kMaxBlobFileBytes = size_t{1} << 30;   // 1 GiB

uint64_t Fnv1a64(const uint8_t* data, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

uint64_t SectionChecksum(std::span<const uint8_t> bytes) {
  return Fnv1a64(bytes.data(), bytes.size(), kFnvOffset);
}

/// Whole-blob checksum: every byte, with the header's checksum field read
/// as zero (it cannot cover itself).
uint64_t BlobChecksum(std::span<const uint8_t> bytes) {
  uint64_t h = Fnv1a64(bytes.data(), kChecksumOffset, kFnvOffset);
  const uint8_t zeros[8] = {0};
  h = Fnv1a64(zeros, sizeof(zeros), h);
  h = Fnv1a64(bytes.data() + kChecksumOffset + 8,
              bytes.size() - kChecksumOffset - 8, h);
  return h;
}

// ---------------------------------------------------------------------------
// Little-endian serialization helpers.
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(uint8_t(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(uint8_t(v >> (8 * i)));
  }
  void Bytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }
  void LengthPrefixed(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  size_t size() const { return out_.size(); }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

/// Bounds-checked cursor over one section. Every Read* returns false
/// instead of reading past the end; Done() enforces exact consumption so a
/// section cannot smuggle trailing bytes past validation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool U32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= uint32_t(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = r;
    return true;
  }
  bool U64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= uint64_t(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = r;
    return true;
  }
  bool String(std::string* out, uint64_t max_len = kMaxNameLength) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > max_len || bytes_.size() - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(bytes_.data()) + pos_, len);
    pos_ += len;
    return true;
  }
  bool Done() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("policy blob: " + what);
}

/// The view-name sets of one partition, resolved through the blob's own
/// view table (sorted for deterministic diff output).
std::vector<std::string> PartitionViewNames(const LoadedPolicyBlob& blob,
                                            size_t p) {
  std::vector<std::string> names;
  names.reserve(blob.partition_views()[p].size());
  for (uint32_t id : blob.partition_views()[p]) {
    names.push_back(blob.views()[id].name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation.
// ---------------------------------------------------------------------------

Result<std::vector<uint8_t>> CompilePolicyBlob(
    const label::ViewCatalog& catalog, const policy::SecurityPolicy& policy,
    const PolicyBlobMeta& meta) {
  const int num_relations = catalog.schema().NumRelations();
  if (policy.num_relations() != num_relations) {
    return Status::InvalidArgument(
        "policy was compiled against " +
        std::to_string(policy.num_relations()) +
        " relations; catalog schema has " + std::to_string(num_relations));
  }
  if (meta.name.size() > kMaxNameLength) {
    return Status::InvalidArgument("policy name exceeds the 1 MiB cap");
  }

  // Reconstruct the shared word layout from the policy's own accessors and
  // cross-check it against the catalog — a mismatched pair must fail at
  // compile time, not at some future load.
  std::vector<uint32_t> word_begin(static_cast<size_t>(num_relations) + 1, 0);
  for (int rel = 0; rel < num_relations; ++rel) {
    const int words = policy.WordsFor(static_cast<uint32_t>(rel));
    const int expect = label::MaskWordsFor(
        static_cast<int>(catalog.ViewsOfRelation(rel).size()));
    if (words != expect) {
      return Status::InvalidArgument(
          "relation " + std::to_string(rel) + " has " + std::to_string(words) +
          " policy mask words but the catalog layout needs " +
          std::to_string(expect));
    }
    word_begin[static_cast<size_t>(rel) + 1] =
        word_begin[static_cast<size_t>(rel)] + static_cast<uint32_t>(words);
  }
  const uint64_t total_words = word_begin.back();

  // Section payloads, in kind order.
  ByteWriter meta_w;
  meta_w.U32(static_cast<uint32_t>(policy.num_partitions()));
  meta_w.U32(static_cast<uint32_t>(num_relations));
  meta_w.U32(static_cast<uint32_t>(catalog.size()));
  meta_w.U32(static_cast<uint32_t>(meta.name.size()));
  meta_w.U64(total_words);
  meta_w.U64(meta.source_epoch);
  meta_w.Bytes(meta.name.data(), meta.name.size());

  ByteWriter layout_w;
  for (uint32_t w : word_begin) layout_w.U32(w);

  ByteWriter words_w;
  ByteWriter part_names_w;
  ByteWriter part_views_w;
  part_names_w.U32(static_cast<uint32_t>(policy.num_partitions()));
  part_views_w.U32(static_cast<uint32_t>(policy.num_partitions()));
  for (int p = 0; p < policy.num_partitions(); ++p) {
    for (int rel = 0; rel < num_relations; ++rel) {
      const uint64_t* row =
          policy.PartitionWords(p, static_cast<uint32_t>(rel));
      const int words = policy.WordsFor(static_cast<uint32_t>(rel));
      for (int w = 0; w < words; ++w) words_w.U64(row[w]);
    }
    const policy::Partition& part = policy.partitions()[p];
    if (part.name.size() > kMaxNameLength) {
      return Status::InvalidArgument("partition name exceeds the 1 MiB cap");
    }
    part_names_w.LengthPrefixed(part.name);
    std::vector<int> ids = part.view_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    part_views_w.U32(static_cast<uint32_t>(ids.size()));
    for (int id : ids) {
      if (id < 0 || id >= catalog.size()) {
        return Status::InvalidArgument(
            "partition '" + part.name + "' references unknown view id " +
            std::to_string(id));
      }
      part_views_w.U32(static_cast<uint32_t>(id));
    }
  }

  ByteWriter views_w;
  views_w.U32(static_cast<uint32_t>(catalog.size()));
  for (const label::SecurityView& view : catalog.views()) {
    views_w.U32(static_cast<uint32_t>(view.relation));
    views_w.U32(static_cast<uint32_t>(view.bit));
    views_w.LengthPrefixed(view.name);
  }

  ByteWriter rel_names_w;
  rel_names_w.U32(static_cast<uint32_t>(num_relations));
  for (const cq::RelationDef& rel : catalog.schema().relations()) {
    rel_names_w.LengthPrefixed(rel.name);
  }

  struct SectionPayload {
    uint32_t kind;
    std::vector<uint8_t> bytes;
  };
  SectionPayload sections[kNumSections] = {
      {kMeta, meta_w.Take()},           {kLayout, layout_w.Take()},
      {kPartitionWords, words_w.Take()}, {kPartitionNames, part_names_w.Take()},
      {kPartitionViews, part_views_w.Take()}, {kViews, views_w.Take()},
      {kRelationNames, rel_names_w.Take()},
  };

  // Assemble: header, section table, then payloads back to back.
  uint64_t offset = kHeaderSize + uint64_t{kNumSections} * kSectionEntrySize;
  uint64_t total = offset;
  for (const SectionPayload& s : sections) total += s.bytes.size();

  ByteWriter blob;
  blob.Bytes(kPolicyBlobMagic, sizeof(kPolicyBlobMagic));
  blob.U32(kPolicyBlobVersion);
  blob.U32(kHeaderSize);
  blob.U64(total);
  blob.U32(kNumSections);
  blob.U32(0);  // flags
  blob.U64(0);  // whole-blob checksum, patched below
  for (int i = 0; i < 24; ++i) blob.U8(0);

  for (const SectionPayload& s : sections) {
    blob.U32(s.kind);
    blob.U32(0);
    blob.U64(offset);
    blob.U64(s.bytes.size());
    blob.U64(SectionChecksum(s.bytes));
    offset += s.bytes.size();
  }
  for (const SectionPayload& s : sections) {
    blob.Bytes(s.bytes.data(), s.bytes.size());
  }

  std::vector<uint8_t> bytes = blob.Take();
  const uint64_t checksum = BlobChecksum(bytes);
  for (int i = 0; i < 8; ++i) {
    bytes[kChecksumOffset + i] = uint8_t(checksum >> (8 * i));
  }
  return bytes;
}

Result<std::vector<uint8_t>> CompilePolicyBlob(
    const engine::EngineSnapshot& snapshot, const std::string& name) {
  PolicyBlobMeta meta;
  meta.name = name;
  meta.source_epoch = snapshot.epoch();
  return CompilePolicyBlob(snapshot.frozen().catalog(), snapshot.policy(),
                           meta);
}

// ---------------------------------------------------------------------------
// Loading.
// ---------------------------------------------------------------------------

Result<LoadedPolicyBlob> LoadPolicyBlob(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) return Corrupt("shorter than the header");
  if (std::memcmp(bytes.data(), kPolicyBlobMagic, sizeof(kPolicyBlobMagic)) !=
      0) {
    return Corrupt("bad magic");
  }
  ByteReader header(bytes.subspan(8, kHeaderSize - 8));
  uint32_t version = 0, header_size = 0, section_count = 0, flags = 0;
  uint64_t total_length = 0, stored_checksum = 0;
  header.U32(&version);
  header.U32(&header_size);
  header.U64(&total_length);
  header.U32(&section_count);
  header.U32(&flags);
  header.U64(&stored_checksum);
  if (version != kPolicyBlobVersion) {
    return Corrupt("unsupported format version " + std::to_string(version) +
                   " (this build reads version " +
                   std::to_string(kPolicyBlobVersion) + ")");
  }
  if (header_size != kHeaderSize) return Corrupt("bad header size");
  if (total_length != bytes.size()) {
    return Corrupt("header says " + std::to_string(total_length) +
                   " bytes, buffer holds " + std::to_string(bytes.size()));
  }
  if (flags != 0) return Corrupt("reserved flags set");
  for (size_t i = kChecksumOffset + 8; i < kHeaderSize; ++i) {
    if (bytes[i] != 0) return Corrupt("reserved header bytes set");
  }
  if (section_count != kNumSections) {
    return Corrupt("expected " + std::to_string(kNumSections) +
                   " sections, header says " + std::to_string(section_count));
  }
  const uint64_t table_end =
      kHeaderSize + uint64_t{section_count} * kSectionEntrySize;
  if (table_end > bytes.size()) return Corrupt("section table truncated");
  if (BlobChecksum(bytes) != stored_checksum) {
    return Corrupt("whole-blob checksum mismatch");
  }

  struct SectionRef {
    uint64_t offset = 0;
    uint64_t length = 0;
    bool present = false;
  };
  SectionRef refs[kNumSections + 1];  // indexed by kind
  {
    ByteReader table(
        bytes.subspan(kHeaderSize, table_end - kHeaderSize));
    for (uint32_t i = 0; i < section_count; ++i) {
      uint32_t kind = 0, reserved = 0;
      uint64_t offset = 0, length = 0, checksum = 0;
      table.U32(&kind);
      table.U32(&reserved);
      table.U64(&offset);
      table.U64(&length);
      table.U64(&checksum);
      if (kind < kMeta || kind > kRelationNames) {
        return Corrupt("unknown section kind " + std::to_string(kind));
      }
      if (reserved != 0) return Corrupt("reserved section field set");
      if (refs[kind].present) {
        return Corrupt("duplicate section kind " + std::to_string(kind));
      }
      if (offset < table_end || length > bytes.size() ||
          offset > bytes.size() - length) {
        return Corrupt("section " + std::to_string(kind) +
                       " out of bounds");
      }
      if (SectionChecksum(bytes.subspan(offset, length)) != checksum) {
        return Corrupt("section " + std::to_string(kind) +
                       " checksum mismatch");
      }
      refs[kind] = {offset, length, true};
    }
  }
  for (uint32_t kind = kMeta; kind <= kRelationNames; ++kind) {
    if (!refs[kind].present) {
      return Corrupt("missing section kind " + std::to_string(kind));
    }
  }
  {
    // No two sections may overlap: a blob that aliases one byte range into
    // two sections could pass per-section checks while meaning two things.
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    for (uint32_t kind = kMeta; kind <= kRelationNames; ++kind) {
      spans.emplace_back(refs[kind].offset, refs[kind].length);
    }
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].first + spans[i - 1].second) {
        return Corrupt("overlapping sections");
      }
    }
  }
  auto section = [&](uint32_t kind) {
    return bytes.subspan(refs[kind].offset, refs[kind].length);
  };

  LoadedPolicyBlob blob;
  blob.version_ = version;
  blob.checksum_ = stored_checksum;
  blob.byte_size_ = bytes.size();

  // kMeta.
  uint32_t num_partitions = 0, num_relations = 0, num_views = 0;
  uint64_t total_words = 0;
  {
    ByteReader r(section(kMeta));
    uint32_t name_len = 0;
    if (!r.U32(&num_partitions) || !r.U32(&num_relations) ||
        !r.U32(&num_views) || !r.U32(&name_len) || !r.U64(&total_words) ||
        !r.U64(&blob.meta_.source_epoch)) {
      return Corrupt("meta section truncated");
    }
    if (name_len > kMaxNameLength || r.remaining() != name_len) {
      return Corrupt("meta name length disagrees with section length");
    }
    const std::span<const uint8_t> sec = section(kMeta);
    blob.meta_.name.assign(
        reinterpret_cast<const char*>(sec.data()) + (sec.size() - name_len),
        name_len);
    if (num_partitions == 0 ||
        num_partitions >
            static_cast<uint32_t>(policy::SecurityPolicy::kMaxPartitions)) {
      return Corrupt("partition count " + std::to_string(num_partitions) +
                     " outside [1, " +
                     std::to_string(policy::SecurityPolicy::kMaxPartitions) +
                     "]");
    }
    if (num_relations == 0) return Corrupt("no relations");
    if (total_words > kMaxTotalWords) return Corrupt("layout too large");
    // Allocation guard: every view record is at least 12 bytes (relation,
    // bit, name length) after the 4-byte count, so a forged num_views with
    // valid checksums cannot commit views_.resize() to more memory than
    // the section actually carries bytes for. kViews enforces the exact
    // count below; this only bounds the up-front allocation.
    if (uint64_t{4} + uint64_t{num_views} * 12 > section(kViews).size()) {
      return Corrupt("view count exceeds what the view section could hold");
    }
  }

  // kLayout.
  {
    std::span<const uint8_t> sec = section(kLayout);
    const uint64_t expect = (uint64_t{num_relations} + 1) * 4;
    if (sec.size() != expect) {
      return Corrupt("layout section length disagrees with relation count");
    }
    ByteReader r(sec);
    blob.word_begin_.resize(static_cast<size_t>(num_relations) + 1);
    for (uint32_t& w : blob.word_begin_) r.U32(&w);
    if (blob.word_begin_.front() != 0) {
      return Corrupt("word layout does not start at 0");
    }
    for (size_t i = 1; i < blob.word_begin_.size(); ++i) {
      if (blob.word_begin_[i] <= blob.word_begin_[i - 1]) {
        return Corrupt("word layout not strictly increasing at relation " +
                       std::to_string(i - 1));
      }
    }
    if (blob.word_begin_.back() != total_words) {
      return Corrupt("word layout total disagrees with meta total_words");
    }
  }

  // kPartitionWords.
  {
    std::span<const uint8_t> sec = section(kPartitionWords);
    const uint64_t expect = uint64_t{num_partitions} * total_words * 8;
    if (sec.size() != expect) {
      return Corrupt("partition mask section length disagrees with layout");
    }
    ByteReader r(sec);
    blob.partition_words_.resize(num_partitions);
    for (auto& row : blob.partition_words_) {
      row.resize(static_cast<size_t>(total_words));
      for (uint64_t& w : row) r.U64(&w);
    }
  }

  // kPartitionNames.
  {
    ByteReader r(section(kPartitionNames));
    uint32_t count = 0;
    if (!r.U32(&count) || count != num_partitions) {
      return Corrupt("partition name count disagrees with meta");
    }
    blob.partition_names_.resize(num_partitions);
    for (std::string& name : blob.partition_names_) {
      if (!r.String(&name)) return Corrupt("partition name table truncated");
    }
    if (!r.Done()) return Corrupt("trailing bytes in partition name table");
  }

  // kPartitionViews.
  {
    ByteReader r(section(kPartitionViews));
    uint32_t count = 0;
    if (!r.U32(&count) || count != num_partitions) {
      return Corrupt("partition view-list count disagrees with meta");
    }
    blob.partition_views_.resize(num_partitions);
    for (auto& ids : blob.partition_views_) {
      uint32_t n = 0;
      // n is bounded by the bytes actually left in the section (4 per id),
      // so resize() can never allocate more than the section's own size.
      if (!r.U32(&n) || n > num_views || uint64_t{n} * 4 > r.remaining()) {
        return Corrupt("partition view list truncated or oversized");
      }
      ids.resize(n);
      uint32_t prev = 0;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (!r.U32(&ids[i])) return Corrupt("partition view list truncated");
        if (ids[i] >= num_views) {
          return Corrupt("partition references view id " +
                         std::to_string(ids[i]) + " of " +
                         std::to_string(num_views));
        }
        if (i > 0 && ids[i] <= prev) {
          return Corrupt("partition view list not strictly ascending");
        }
        prev = ids[i];
      }
    }
    if (!r.Done()) return Corrupt("trailing bytes in partition view lists");
  }

  // kViews.
  {
    ByteReader r(section(kViews));
    uint32_t count = 0;
    if (!r.U32(&count) || count != num_views) {
      return Corrupt("view table count disagrees with meta");
    }
    blob.views_.resize(num_views);
    // One flat set, not a set per relation: num_relations is attacker-
    // sized (the kLayout section), and a container per relation would be
    // a ~12x allocation amplifier over the blob's own bytes.
    std::set<std::pair<uint32_t, uint32_t>> bits_taken;
    for (BlobView& view : blob.views_) {
      if (!r.U32(&view.relation) || !r.U32(&view.bit) ||
          !r.String(&view.name)) {
        return Corrupt("view table truncated");
      }
      if (view.relation >= num_relations) {
        return Corrupt("view over unknown relation " +
                       std::to_string(view.relation));
      }
      const uint64_t words = blob.word_begin_[view.relation + 1] -
                             blob.word_begin_[view.relation];
      if (view.bit / 64 >= words) {
        return Corrupt("view bit " + std::to_string(view.bit) +
                       " outside its relation's mask words");
      }
      if (!bits_taken.emplace(view.relation, view.bit).second) {
        return Corrupt("two views share relation " +
                       std::to_string(view.relation) + " bit " +
                       std::to_string(view.bit));
      }
    }
    if (!r.Done()) return Corrupt("trailing bytes in view table");
  }

  // kRelationNames.
  {
    ByteReader r(section(kRelationNames));
    uint32_t count = 0;
    if (!r.U32(&count) || count != num_relations) {
      return Corrupt("relation name count disagrees with meta");
    }
    blob.relation_names_.resize(num_relations);
    for (std::string& name : blob.relation_names_) {
      if (!r.String(&name)) return Corrupt("relation name table truncated");
    }
    if (!r.Done()) return Corrupt("trailing bytes in relation name table");
  }

  // Self-consistency: the mask rows must be exactly the OR of their view
  // lists' (relation, bit) coordinates. Checksums catch corruption; this
  // catches a *consistent* forgery where rows and view lists tell
  // different stories — the rows are what gets enforced, the lists are
  // what dump/diff show an operator, and they must never disagree.
  for (uint32_t p = 0; p < num_partitions; ++p) {
    std::vector<uint64_t> expect(static_cast<size_t>(total_words), 0);
    for (uint32_t id : blob.partition_views_[p]) {
      const BlobView& view = blob.views_[id];
      expect[blob.word_begin_[view.relation] + view.bit / 64] |=
          uint64_t{1} << (view.bit % 64);
    }
    if (expect != blob.partition_words_[p]) {
      return Corrupt("partition '" + blob.partition_names_[p] +
                     "' mask row disagrees with its view list");
    }
  }
  return blob;
}

Result<LoadedPolicyBlob> LoadPolicyBlobFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot stat '" + path + "'");
  if (static_cast<uint64_t>(size) > kMaxBlobFileBytes) {
    return Corrupt("'" + path + "' exceeds the 1 GiB artifact cap");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) return Status::Internal("short read from '" + path + "'");
  return LoadPolicyBlob(bytes);
}

Status WritePolicyBlobFile(const std::string& path,
                           std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Catalog validation, policy reconstruction, diff.
// ---------------------------------------------------------------------------

Status ValidateAgainstCatalog(const LoadedPolicyBlob& blob,
                              const label::ViewCatalog& catalog) {
  const cq::Schema& schema = catalog.schema();
  if (blob.num_relations() != static_cast<uint32_t>(schema.NumRelations())) {
    return Status::InvalidArgument(
        "blob froze " + std::to_string(blob.num_relations()) +
        " relations; live catalog has " +
        std::to_string(schema.NumRelations()));
  }
  if (blob.num_views() != static_cast<uint32_t>(catalog.size())) {
    return Status::InvalidArgument(
        "blob froze " + std::to_string(blob.num_views()) +
        " views; live catalog has " + std::to_string(catalog.size()));
  }
  for (uint32_t rel = 0; rel < blob.num_relations(); ++rel) {
    if (blob.relation_names()[rel] != schema.relations()[rel].name) {
      return Status::InvalidArgument(
          "relation " + std::to_string(rel) + " is '" +
          blob.relation_names()[rel] + "' in the blob but '" +
          schema.relations()[rel].name + "' in the live catalog");
    }
    const uint32_t words = blob.word_begin()[rel + 1] - blob.word_begin()[rel];
    const uint32_t expect = static_cast<uint32_t>(label::MaskWordsFor(
        static_cast<int>(catalog.ViewsOfRelation(rel).size())));
    if (words != expect) {
      return Status::InvalidArgument(
          "relation '" + blob.relation_names()[rel] + "' has " +
          std::to_string(words) + " mask words in the blob; live layout is " +
          std::to_string(expect));
    }
  }
  for (uint32_t id = 0; id < blob.num_views(); ++id) {
    const BlobView& bv = blob.views()[id];
    const label::SecurityView& live = catalog.view(static_cast<int>(id));
    if (bv.name != live.name ||
        bv.relation != static_cast<uint32_t>(live.relation) ||
        bv.bit != static_cast<uint32_t>(live.bit)) {
      return Status::InvalidArgument(
          "view " + std::to_string(id) + " is ('" + bv.name + "', rel " +
          std::to_string(bv.relation) + ", bit " + std::to_string(bv.bit) +
          ") in the blob but ('" + live.name + "', rel " +
          std::to_string(live.relation) + ", bit " +
          std::to_string(live.bit) + ") in the live catalog");
    }
  }
  return Status::OK();
}

Result<policy::SecurityPolicy> PolicyFromBlob(const LoadedPolicyBlob& blob) {
  std::vector<policy::Partition> partitions(blob.num_partitions());
  for (uint32_t p = 0; p < blob.num_partitions(); ++p) {
    partitions[p].name = blob.partition_names()[p];
    partitions[p].view_ids.reserve(blob.partition_views()[p].size());
    for (uint32_t id : blob.partition_views()[p]) {
      partitions[p].view_ids.push_back(static_cast<int>(id));
    }
  }
  return policy::SecurityPolicy::FromCompiled(
      std::move(partitions), blob.word_begin(), blob.partition_words());
}

BlobDiff DiffPolicyBlobs(const LoadedPolicyBlob& a, const LoadedPolicyBlob& b) {
  BlobDiff diff;
  auto note = [&](std::string text) {
    diff.identical = false;
    diff.notes.push_back(std::move(text));
  };
  if (a.meta().name != b.meta().name) {
    note("policy name: '" + a.meta().name + "' vs '" + b.meta().name + "'");
  }
  if (a.meta().source_epoch != b.meta().source_epoch) {
    note("source epoch: " + std::to_string(a.meta().source_epoch) + " vs " +
         std::to_string(b.meta().source_epoch));
  }
  if (a.relation_names() != b.relation_names() ||
      a.word_begin() != b.word_begin()) {
    diff.layout_identical = false;
    note("relation layout differs (relation set or mask word layout)");
  }
  bool views_differ = a.num_views() != b.num_views();
  if (!views_differ) {
    for (uint32_t id = 0; id < a.num_views(); ++id) {
      const BlobView& va = a.views()[id];
      const BlobView& vb = b.views()[id];
      if (va.name != vb.name || va.relation != vb.relation ||
          va.bit != vb.bit) {
        views_differ = true;
        break;
      }
    }
  }
  if (views_differ) {
    diff.layout_identical = false;
    note("view table differs (" + std::to_string(a.num_views()) + " vs " +
         std::to_string(b.num_views()) + " views)");
  }

  const uint32_t common =
      std::min(a.num_partitions(), b.num_partitions());
  if (a.num_partitions() != b.num_partitions()) {
    note("partition count: " + std::to_string(a.num_partitions()) + " vs " +
         std::to_string(b.num_partitions()));
  }
  for (uint32_t p = 0; p < common; ++p) {
    // Diff by view *name* through each blob's own view table, so the delta
    // stays meaningful even when the two blobs froze different bit layouts.
    const std::vector<std::string> names_a = PartitionViewNames(a, p);
    const std::vector<std::string> names_b = PartitionViewNames(b, p);
    PartitionDelta delta;
    delta.index = static_cast<int>(p);
    delta.name_a = a.partition_names()[p];
    delta.name_b = b.partition_names()[p];
    std::set_difference(names_a.begin(), names_a.end(), names_b.begin(),
                        names_b.end(), std::back_inserter(delta.only_in_a));
    std::set_difference(names_b.begin(), names_b.end(), names_a.begin(),
                        names_a.end(), std::back_inserter(delta.only_in_b));
    if (!delta.only_in_a.empty() || !delta.only_in_b.empty() ||
        delta.name_a != delta.name_b) {
      diff.identical = false;
      diff.partitions.push_back(std::move(delta));
    }
  }
  return diff;
}

}  // namespace fdc::artifact
