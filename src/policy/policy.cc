#include "policy/policy.h"

#include "common/bit_utils.h"

namespace fdc::policy {

Result<SecurityPolicy> SecurityPolicy::Compile(
    const label::ViewCatalog& catalog, std::vector<Partition> partitions) {
  if (partitions.empty()) {
    return Status::InvalidArgument("a policy needs at least one partition");
  }
  if (partitions.size() > static_cast<size_t>(kMaxPartitions)) {
    return Status::OutOfRange(
        "policy has " + std::to_string(partitions.size()) +
        " partitions, but the consistency bit vector is " +
        std::to_string(kMaxPartitions) +
        " bits wide; split the policy or raise kMaxPartitions");
  }
  SecurityPolicy policy;
  const int num_relations = catalog.schema().NumRelations();
  // Per-relation word layout from the catalog's view counts: one word per
  // 64 views (minimum one), the same width the wide label atoms use.
  policy.word_begin_.assign(static_cast<size_t>(num_relations) + 1, 0);
  for (int rel = 0; rel < num_relations; ++rel) {
    const int words = label::MaskWordsFor(
        static_cast<int>(catalog.ViewsOfRelation(rel).size()));
    policy.word_begin_[static_cast<size_t>(rel) + 1] =
        policy.word_begin_[static_cast<size_t>(rel)] +
        static_cast<uint32_t>(words);
  }
  const size_t total_words = policy.word_begin_.back();
  policy.partition_words_.resize(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    policy.partition_words_[p].assign(total_words, 0);
    for (int view_id : partitions[p].view_ids) {
      if (view_id < 0 || view_id >= catalog.size()) {
        return Status::InvalidArgument("partition '" + partitions[p].name +
                                       "' references unknown view id " +
                                       std::to_string(view_id));
      }
      const label::SecurityView& view = catalog.view(view_id);
      policy.partition_words_[p][policy.word_begin_[view.relation] +
                                 static_cast<size_t>(view.bit) / 64] |=
          uint64_t{1} << (view.bit % 64);
    }
  }
  policy.partitions_ = std::move(partitions);
  return policy;
}

Result<SecurityPolicy> SecurityPolicy::FromCompiled(
    std::vector<Partition> partitions, std::vector<uint32_t> word_begin,
    std::vector<std::vector<uint64_t>> partition_words) {
  if (partitions.empty()) {
    return Status::InvalidArgument("a policy needs at least one partition");
  }
  if (partitions.size() > static_cast<size_t>(kMaxPartitions)) {
    return Status::OutOfRange(
        "compiled policy has " + std::to_string(partitions.size()) +
        " partitions; the consistency bit vector is " +
        std::to_string(kMaxPartitions) + " bits wide");
  }
  if (partition_words.size() != partitions.size()) {
    return Status::InvalidArgument(
        "compiled policy carries " + std::to_string(partition_words.size()) +
        " mask rows for " + std::to_string(partitions.size()) + " partitions");
  }
  if (word_begin.empty() || word_begin.front() != 0) {
    return Status::InvalidArgument(
        "compiled word layout must start at offset 0");
  }
  // Strictly increasing: every compiled relation owns at least one word
  // (Compile's invariant; WordsFor and PartitionWords rely on it).
  for (size_t r = 1; r < word_begin.size(); ++r) {
    if (word_begin[r] <= word_begin[r - 1]) {
      return Status::InvalidArgument(
          "compiled word layout is not strictly increasing at relation " +
          std::to_string(r - 1));
    }
  }
  const size_t total_words = word_begin.back();
  for (size_t p = 0; p < partition_words.size(); ++p) {
    if (partition_words[p].size() != total_words) {
      return Status::InvalidArgument(
          "partition '" + partitions[p].name + "' mask row has " +
          std::to_string(partition_words[p].size()) + " words; layout needs " +
          std::to_string(total_words));
    }
  }
  SecurityPolicy policy;
  policy.partitions_ = std::move(partitions);
  policy.word_begin_ = std::move(word_begin);
  policy.partition_words_ = std::move(partition_words);
  return policy;
}

uint64_t SecurityPolicy::AllowedPartitions(const label::DisclosureLabel& label,
                                           uint64_t candidates) const {
  if (label.top()) return 0;
  uint64_t surviving = candidates & AllPartitionsMask();
  // Loop atoms outer, partitions inner: labels have 1–3 atoms (§7.2) and
  // each test is one load + AND (a short word scan for wide atoms).
  for (const label::PackedAtomLabel& atom : label.atoms()) {
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      if ((PartitionMask(p, atom.relation()) & atom.mask()) != 0) {
        next |= (1ULL << p);
      }
    });
    surviving = next;
    if (surviving == 0) break;
  }
  for (const label::WideAtomLabel& atom : label.wide_atoms()) {
    if (surviving == 0) break;
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      if (WideAtomAllowed(p, atom)) next |= (1ULL << p);
    });
    surviving = next;
  }
  return surviving;
}

}  // namespace fdc::policy
