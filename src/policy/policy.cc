#include "policy/policy.h"

#include "common/bit_utils.h"

namespace fdc::policy {

Result<SecurityPolicy> SecurityPolicy::Compile(
    const label::ViewCatalog& catalog, std::vector<Partition> partitions) {
  if (partitions.empty()) {
    return Status::InvalidArgument("a policy needs at least one partition");
  }
  if (partitions.size() > static_cast<size_t>(kMaxPartitions)) {
    return Status::OutOfRange(
        "policy has " + std::to_string(partitions.size()) +
        " partitions, but the consistency bit vector is " +
        std::to_string(kMaxPartitions) +
        " bits wide; split the policy or raise kMaxPartitions");
  }
  SecurityPolicy policy;
  policy.relation_masks_.resize(partitions.size());
  const int num_relations = catalog.schema().NumRelations();
  for (size_t p = 0; p < partitions.size(); ++p) {
    policy.relation_masks_[p].assign(static_cast<size_t>(num_relations), 0);
    for (int view_id : partitions[p].view_ids) {
      if (view_id < 0 || view_id >= catalog.size()) {
        return Status::InvalidArgument("partition '" + partitions[p].name +
                                       "' references unknown view id " +
                                       std::to_string(view_id));
      }
      const label::SecurityView& view = catalog.view(view_id);
      policy.relation_masks_[p][view.relation] |= (1u << view.bit);
    }
  }
  policy.partitions_ = std::move(partitions);
  return policy;
}

uint64_t SecurityPolicy::AllowedPartitions(const label::DisclosureLabel& label,
                                           uint64_t candidates) const {
  if (label.top()) return 0;
  uint64_t surviving = candidates & AllPartitionsMask();
  // Loop atoms outer, partitions inner: labels have 1–3 atoms (§7.2) and
  // each test is one load + AND.
  for (const label::PackedAtomLabel& atom : label.atoms()) {
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      if ((PartitionMask(p, atom.relation()) & atom.mask()) != 0) {
        next |= (1ULL << p);
      }
    });
    surviving = next;
    if (surviving == 0) break;
  }
  return surviving;
}

}  // namespace fdc::policy
