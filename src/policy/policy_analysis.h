// Policy analysis tooling — the "formal model pays off" benefits of §2.2:
// reasoning about overlap, redundancy and consistency of hand-written
// policies and view sets.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "label/view_catalog.h"
#include "order/disclosure_lattice.h"
#include "policy/policy.h"

namespace fdc::policy {

/// A pair of views where one subsumes the other under ⪯.
struct ViewRedundancy {
  int lower_view;   // catalog id; computable from upper_view
  int upper_view;
  bool equivalent;  // mutually rewritable (the sets reveal the same info)
};

/// Finds all ⪯-comparable view pairs in a catalog. Equivalent views are the
/// clearest smell: two permission names guarding identical information
/// (exactly the user_likes/languages confusion from §1).
std::vector<ViewRedundancy> FindViewRedundancies(
    const label::ViewCatalog& catalog);

/// Partition i is redundant if some other partition allows at least the
/// same views on every relation: any history consistent with Wi is then
/// consistent with Wj, so dropping Wi never changes monitor decisions.
std::vector<int> FindRedundantPartitions(const SecurityPolicy& policy);

/// Definition 3.9 side condition: an explicit lattice policy must be
/// downward closed (W ⪯ W' and ⇓W' ∈ P imply ⇓W ∈ P). `policy_elements`
/// are element indices of `lattice`.
Status CheckInternallyConsistent(const order::DisclosureLattice& lattice,
                                 const std::vector<int>& policy_elements);

/// Makes a policy internally consistent by adding every element below an
/// existing member (the downward closure).
std::vector<int> DownwardClosure(const order::DisclosureLattice& lattice,
                                 std::vector<int> policy_elements);

}  // namespace fdc::policy
