#include "policy/policy_analysis.h"

#include <algorithm>

#include "rewriting/atom_rewriting.h"

namespace fdc::policy {

std::vector<ViewRedundancy> FindViewRedundancies(
    const label::ViewCatalog& catalog) {
  std::vector<ViewRedundancy> out;
  const int n = catalog.size();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const bool ab = rewriting::AtomRewritable(catalog.view(a).pattern,
                                                catalog.view(b).pattern);
      const bool ba = rewriting::AtomRewritable(catalog.view(b).pattern,
                                                catalog.view(a).pattern);
      if (ab && ba) {
        out.push_back({a, b, /*equivalent=*/true});
      } else if (ab) {
        out.push_back({a, b, /*equivalent=*/false});
      } else if (ba) {
        out.push_back({b, a, /*equivalent=*/false});
      }
    }
  }
  return out;
}

std::vector<int> FindRedundantPartitions(const SecurityPolicy& policy) {
  std::vector<int> redundant;
  const int k = policy.num_partitions();
  const uint32_t num_relations =
      static_cast<uint32_t>(policy.num_relations());
  // Partition j dominates i iff j's view mask is a superset of i's on every
  // relation of the compiled schema — word-wise, so views beyond the packed
  // 32-view capacity participate in the dominance test too.
  auto dominates = [&](int j, int i) {
    for (uint32_t rel = 0; rel < num_relations; ++rel) {
      const uint64_t* wi = policy.PartitionWords(i, rel);
      const uint64_t* wj = policy.PartitionWords(j, rel);
      const int words = policy.WordsFor(rel);
      for (int w = 0; w < words; ++w) {
        if ((wi[w] & ~wj[w]) != 0) return false;
      }
    }
    return true;
  };
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      if (dominates(j, i) && !(dominates(i, j) && j > i)) {
        // Strictly dominated, or tied with a lower-indexed twin.
        redundant.push_back(i);
        break;
      }
    }
  }
  return redundant;
}

Status CheckInternallyConsistent(const order::DisclosureLattice& lattice,
                                 const std::vector<int>& policy_elements) {
  std::vector<bool> in_policy(lattice.NumElements(), false);
  for (int e : policy_elements) in_policy[e] = true;
  for (int e : policy_elements) {
    for (int below = 0; below < lattice.NumElements(); ++below) {
      if (lattice.Below(below, e) && !in_policy[below]) {
        return Status::InvalidArgument(
            "policy not internally consistent: element " +
            std::to_string(below) + " lies below permitted element " +
            std::to_string(e) + " but is not in the policy");
      }
    }
  }
  return Status::OK();
}

std::vector<int> DownwardClosure(const order::DisclosureLattice& lattice,
                                 std::vector<int> policy_elements) {
  std::vector<bool> in_policy(lattice.NumElements(), false);
  for (int e : policy_elements) in_policy[e] = true;
  for (int e = 0; e < lattice.NumElements(); ++e) {
    if (in_policy[e]) continue;
    for (int member : policy_elements) {
      if (lattice.Below(e, member)) {
        in_policy[e] = true;
        break;
      }
    }
  }
  std::vector<int> out;
  for (int e = 0; e < lattice.NumElements(); ++e) {
    if (in_policy[e]) out.push_back(e);
  }
  return out;
}

}  // namespace fdc::policy
