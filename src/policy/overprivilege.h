// Overprivilege detection (§2.2): apps that request more permissions than
// their query workload needs — "due to developer error" — are flagged by
// comparing the requested view set against the labels of observed queries.
#pragma once

#include <vector>

#include "cq/interned.h"
#include "cq/query.h"
#include "label/view_catalog.h"
#include "rewriting/containment_cache.h"

namespace fdc::policy {

struct OverprivilegeReport {
  /// Requested views that appear in no observed atom's ℓ+ set: revoking
  /// them cannot break any observed query.
  std::vector<int> unused_views;

  /// A minimal sufficient subset of the requested views (greedy set cover
  /// over atoms; minimal w.r.t. removal, not guaranteed minimum).
  std::vector<int> minimal_sufficient;

  /// Number of observed query atoms not answerable even with everything
  /// requested — the app is simultaneously over- and under-privileged.
  int unanswerable_atoms = 0;

  bool overprivileged() const { return !unused_views.empty(); }
};

/// Labels `workload` and analyzes it against `requested_views` (catalog
/// ids). Queries are dissected with folding enabled. When `interner` and
/// `cache` are given, per-(pattern, view) rewritability decisions are
/// shared with the labeling pipeline through the same ContainmentCache
/// (kCatalogRewritable kind — pass the pipeline's own interner/cache pair),
/// so audits over an already-served workload are nearly free.
OverprivilegeReport AnalyzeOverprivilege(
    const label::ViewCatalog& catalog, const std::vector<int>& requested_views,
    const std::vector<cq::ConjunctiveQuery>& workload,
    cq::QueryInterner* interner = nullptr,
    rewriting::ContainmentCache* cache = nullptr);

}  // namespace fdc::policy
