#include "policy/cumulative.h"

#include "common/bit_utils.h"

namespace fdc::policy {

std::vector<std::vector<std::string>> CumulativeTracker::DescribeAtoms(
    const label::ViewCatalog& catalog) const {
  std::vector<std::vector<std::string>> out;
  for (const label::PackedAtomLabel& atom : cumulative_.atoms()) {
    std::vector<std::string> names;
    for (int view_id : catalog.ViewsOfRelation(atom.relation())) {
      const label::SecurityView& view = catalog.view(view_id);
      if (view.bit < label::kPackedViewCapacity &&
          (atom.mask() & (1u << view.bit))) {
        names.push_back(view.name);
      }
    }
    out.push_back(std::move(names));
  }
  // Wide atoms (relations beyond the packed view capacity), after the
  // packed breakdown — same per-atom lattice-point semantics.
  for (const label::WideAtomLabel& atom : cumulative_.wide_atoms()) {
    std::vector<std::string> names;
    for (int view_id : catalog.ViewsOfRelation(atom.relation)) {
      const label::SecurityView& view = catalog.view(view_id);
      if (atom.Test(view.bit)) names.push_back(view.name);
    }
    out.push_back(std::move(names));
  }
  return out;
}

}  // namespace fdc::policy
