// Refusal diagnostics: *why* was a query refused?
//
// A reference monitor that only says "no" trains developers to request
// everything (the overprivilege spiral of §2.2). This module decomposes a
// policy decision per partition and per query atom: for each partition it
// reports whether the partition was already inconsistent with the
// principal's history, or which atom's ℓ+ set fails to intersect it — and
// which security views *would* cover that atom, which is exactly the
// permission-request hint an app developer needs.
#pragma once

#include <string>
#include <vector>

#include "label/compressed_label.h"
#include "label/view_catalog.h"
#include "policy/policy.h"

namespace fdc::policy {

/// Diagnosis of one partition's rejection (or acceptance) of a label.
struct PartitionDiagnosis {
  int partition = -1;
  std::string partition_name;
  bool allowed = false;
  /// True iff the partition had already been ruled out by earlier queries
  /// (its consistency bit was clear before this query).
  bool lost_earlier = false;
  /// Index of the first atom the partition cannot cover, numbered in
  /// *label order*: the sealed label's packed atoms (label.atoms() order)
  /// are #0 .. label.size()-1, wide atoms (label.wide_atoms() order)
  /// follow from #label.size(). This numbering is a stable property of the
  /// sealed label — NOT of the query text: Seal() sorts atoms, and whether
  /// an atom is packed or wide is a property of its relation's view count
  /// in the catalog. -1 when allowed or lost_earlier.
  int blocking_atom = -1;
  /// True iff blocking_atom refers to a wide atom, i.e. indexes
  /// label.wide_atoms()[blocking_atom - label.size()].
  bool blocking_atom_wide = false;
  /// Views that would cover the blocking atom (names), i.e. ℓ+ of the atom.
  std::vector<std::string> covering_views;
};

/// Full decision explanation.
struct Explanation {
  bool accepted = false;
  /// True iff the label itself is ⊤ (no security view bounds some atom —
  /// no policy could ever accept it).
  bool label_is_top = false;
  std::vector<PartitionDiagnosis> partitions;

  /// Human-readable multi-line rendering.
  std::string ToString() const;
};

/// Explains the decision the monitor would make for `label` given the
/// principal's current `consistent` bits. Does not mutate anything.
Explanation ExplainDecision(const SecurityPolicy& policy,
                            const label::ViewCatalog& catalog,
                            const label::DisclosureLabel& label,
                            uint64_t consistent);

}  // namespace fdc::policy
