// Security policies as partition collections (§6.2).
//
// A policy is {W1, ..., Wk}: each partition Wi is a set of security views.
// The enforced invariant is that the answered queries Q1..Qn satisfy
// {Q1..Qn} ⪯ Wi for at least one i. k = 1 is a stateless policy; k > 1
// expresses Chinese-Wall-style alternatives (Example 6.2). The consistency
// state is one uint64_t, so k ≤ kMaxPartitions (= 64); Compile reports a
// clear OutOfRange error beyond that.
//
// Compilation turns each partition into a dense per-relation view mask so a
// "query ⪯ partition" test is one AND per dissected atom (§6.1):
//     atom ⪯ Wi   iff   ℓ+(atom) ∩ Wi ≠ ∅.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::policy {

/// One partition: a named set of catalog view ids.
struct Partition {
  std::string name;
  std::vector<int> view_ids;
};

class SecurityPolicy {
 public:
  /// Partition-count capacity: the width of the consistency bit vector.
  static constexpr int kMaxPartitions = 64;

  /// Compiles partitions against a catalog. At most kMaxPartitions
  /// partitions (the consistency state is one uint64_t); views must exist
  /// in the catalog.
  static Result<SecurityPolicy> Compile(const label::ViewCatalog& catalog,
                                        std::vector<Partition> partitions);

  int num_partitions() const {
    return static_cast<int>(partitions_.size());
  }
  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Number of relations the policy was compiled against (mask stride).
  int num_relations() const {
    return relation_masks_.empty()
               ? 0
               : static_cast<int>(relation_masks_[0].size());
  }

  /// Mask with the low `partitions` bits set (the fully consistent state
  /// for a policy with that many partitions).
  static constexpr uint64_t FullPartitionMask(int partitions) {
    return partitions >= kMaxPartitions ? ~0ULL
                                        : ((1ULL << partitions) - 1);
  }

  /// Mask with one bit per partition, all set.
  uint64_t AllPartitionsMask() const {
    return FullPartitionMask(num_partitions());
  }

  /// ℓ+ mask of views partition `p` holds over `relation`.
  uint32_t PartitionMask(int p, uint32_t relation) const {
    const auto& masks = relation_masks_[p];
    return relation < masks.size() ? masks[relation] : 0;
  }

  /// Query-below-partition test: every atom's ℓ+ intersects the partition.
  bool LabelAllowed(int p, const label::DisclosureLabel& label) const {
    if (label.top()) return false;
    for (const label::PackedAtomLabel& atom : label.atoms()) {
      if ((PartitionMask(p, atom.relation()) & atom.mask()) == 0) return false;
    }
    return true;
  }

  /// Filters `candidates` (bit per partition) down to partitions that stay
  /// consistent if `label` is disclosed. The reference monitor's hot path.
  uint64_t AllowedPartitions(const label::DisclosureLabel& label,
                             uint64_t candidates) const;

 private:
  std::vector<Partition> partitions_;
  // relation_masks_[p][relation] = allowed-view bitmask.
  std::vector<std::vector<uint32_t>> relation_masks_;
};

}  // namespace fdc::policy
