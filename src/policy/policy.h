// Security policies as partition collections (§6.2).
//
// A policy is {W1, ..., Wk}: each partition Wi is a set of security views.
// The enforced invariant is that the answered queries Q1..Qn satisfy
// {Q1..Qn} ⪯ Wi for at least one i. k = 1 is a stateless policy; k > 1
// expresses Chinese-Wall-style alternatives (Example 6.2). The consistency
// state is one uint64_t, so k ≤ kMaxPartitions (= 64); Compile reports a
// clear OutOfRange error beyond that.
//
// Compilation turns each partition into a dense per-relation view mask so a
// "query ⪯ partition" test is one AND per dissected atom (§6.1):
//     atom ⪯ Wi   iff   ℓ+(atom) ∩ Wi ≠ ∅.
// Masks use the same per-relation word layout as the labels: one 64-bit
// word per 64 views of the relation (minimum one word), fixed at compile
// time against the catalog — so packed atoms test against the low 32 bits
// of the first word (identical to the pre-wide layout) and wide atoms test
// word-wise with no per-relation view cap.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::policy {

/// One partition: a named set of catalog view ids.
struct Partition {
  std::string name;
  std::vector<int> view_ids;
};

class SecurityPolicy {
 public:
  /// Partition-count capacity: the width of the consistency bit vector.
  static constexpr int kMaxPartitions = 64;

  /// Compiles partitions against a catalog. At most kMaxPartitions
  /// partitions (the consistency state is one uint64_t); views must exist
  /// in the catalog. The per-relation mask word layout is fixed here from
  /// the catalog's view counts.
  static Result<SecurityPolicy> Compile(const label::ViewCatalog& catalog,
                                        std::vector<Partition> partitions);

  /// Adopts an already-compiled representation — the binary policy
  /// artifact's zero-recompile load path (src/artifact/policy_blob.h).
  /// `word_begin` is the shared per-relation word layout (length
  /// num_relations + 1, starting at 0, strictly increasing) and
  /// `partition_words` one flat row of word_begin.back() mask words per
  /// partition. Validates every structural invariant Compile would have
  /// established (partition count/cap, layout monotonicity, row widths);
  /// it can NOT check the layout against a catalog — callers loading
  /// untrusted artifacts must run artifact::ValidateAgainstCatalog first.
  static Result<SecurityPolicy> FromCompiled(
      std::vector<Partition> partitions, std::vector<uint32_t> word_begin,
      std::vector<std::vector<uint64_t>> partition_words);

  int num_partitions() const {
    return static_cast<int>(partitions_.size());
  }
  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Number of relations the policy was compiled against.
  int num_relations() const {
    return word_begin_.empty() ? 0
                               : static_cast<int>(word_begin_.size()) - 1;
  }

  /// Mask with the low `partitions` bits set (the fully consistent state
  /// for a policy with that many partitions).
  static constexpr uint64_t FullPartitionMask(int partitions) {
    return partitions >= kMaxPartitions ? ~0ULL
                                        : ((1ULL << partitions) - 1);
  }

  /// Mask with one bit per partition, all set.
  uint64_t AllPartitionsMask() const {
    return FullPartitionMask(num_partitions());
  }

  /// True iff `p` names a compiled partition. Every public accessor below
  /// guards on this: a negative or too-large partition index from a public
  /// API must degrade to "allows nothing" (stricter-never-looser), not
  /// index out of bounds. The size_t cast folds the negative case into one
  /// comparison (a negative int wraps to a huge size_t).
  bool ValidPartition(int p) const {
    return static_cast<std::size_t>(p) < partition_words_.size();
  }

  /// Packed ℓ+ mask of views partition `p` holds over `relation`: the low
  /// 32 bits of the relation's first mask word — exactly the bits a packed
  /// label atom can carry. 0 for out-of-range `p` or `relation`.
  uint32_t PartitionMask(int p, uint32_t relation) const {
    // size_t arithmetic: `relation + 1` in uint32 would wrap at UINT32_MAX
    // and bypass the bounds check.
    if (!ValidPartition(p) ||
        static_cast<std::size_t>(relation) + 1 >= word_begin_.size()) {
      return 0;
    }
    return static_cast<uint32_t>(
        partition_words_[p][word_begin_[relation]]);
  }

  /// Mask words of `relation` per partition (shared layout across
  /// partitions; ≥ 1 for every compiled relation).
  int WordsFor(uint32_t relation) const {
    if (static_cast<std::size_t>(relation) + 1 >= word_begin_.size()) {
      return 0;
    }
    return static_cast<int>(word_begin_[relation + 1] -
                            word_begin_[relation]);
  }

  /// Pointer to partition `p`'s mask words for `relation` (WordsFor words),
  /// or nullptr for an out-of-range partition index or for relations
  /// outside the compiled schema.
  const uint64_t* PartitionWords(int p, uint32_t relation) const {
    if (!ValidPartition(p) ||
        static_cast<std::size_t>(relation) + 1 >= word_begin_.size()) {
      return nullptr;
    }
    return partition_words_[p].data() + word_begin_[relation];
  }

  /// Wide-atom-below-partition test: ℓ+(atom) ∩ Wi ≠ ∅, word-wise. False
  /// for an out-of-range partition index.
  bool WideAtomAllowed(int p, const label::WideAtomLabel& atom) const {
    if (atom.relation < 0) return false;
    const uint64_t* words =
        PartitionWords(p, static_cast<uint32_t>(atom.relation));
    if (words == nullptr) return false;
    const size_t n = std::min(
        atom.mask.size(),
        static_cast<size_t>(WordsFor(static_cast<uint32_t>(atom.relation))));
    for (size_t w = 0; w < n; ++w) {
      if ((words[w] & atom.mask[w]) != 0) return true;
    }
    return false;
  }

  /// Query-below-partition test: every atom's ℓ+ intersects the partition.
  /// False for an out-of-range partition index (guarded here too: the
  /// per-atom guards alone would let an *empty* label through).
  bool LabelAllowed(int p, const label::DisclosureLabel& label) const {
    if (!ValidPartition(p)) return false;
    if (label.top()) return false;
    for (const label::PackedAtomLabel& atom : label.atoms()) {
      if ((PartitionMask(p, atom.relation()) & atom.mask()) == 0) return false;
    }
    for (const label::WideAtomLabel& atom : label.wide_atoms()) {
      if (!WideAtomAllowed(p, atom)) return false;
    }
    return true;
  }

  /// Filters `candidates` (bit per partition) down to partitions that stay
  /// consistent if `label` is disclosed. The reference monitor's hot path.
  uint64_t AllowedPartitions(const label::DisclosureLabel& label,
                             uint64_t candidates) const;

 private:
  std::vector<Partition> partitions_;
  // Shared per-relation word layout: relation r's masks occupy words
  // [word_begin_[r], word_begin_[r + 1]) of each partition's row.
  std::vector<uint32_t> word_begin_;  // length num_relations + 1
  // partition_words_[p]: one flat row of word_begin_.back() mask words.
  std::vector<std::vector<uint64_t>> partition_words_;
};

}  // namespace fdc::policy
