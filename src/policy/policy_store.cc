#include "policy/policy_store.h"

#include "common/bit_utils.h"

namespace fdc::policy {

void PolicyStore::Reserve(size_t n, int avg_partitions) {
  meta_.reserve(n);
  states_.reserve(n);
  masks_.reserve(n * static_cast<size_t>(avg_partitions) * num_relations_);
}

uint32_t PolicyStore::AddPrincipal(const SecurityPolicy& policy) {
  Meta meta;
  meta.offset = static_cast<uint32_t>(masks_.size());
  meta.partitions = static_cast<uint8_t>(policy.num_partitions());
  for (int p = 0; p < policy.num_partitions(); ++p) {
    for (int rel = 0; rel < num_relations_; ++rel) {
      masks_.push_back(policy.PartitionMask(p, static_cast<uint32_t>(rel)));
    }
  }
  meta_.push_back(meta);
  states_.push_back(policy.AllPartitionsMask());
  return static_cast<uint32_t>(meta_.size() - 1);
}

uint64_t PolicyStore::SurvivingPartitions(const Meta& meta,
                                          const label::DisclosureLabel& label,
                                          uint64_t candidates) const {
  if (label.top()) return 0;
  uint64_t surviving = candidates;
  const uint32_t* base = masks_.data() + meta.offset;
  for (const label::PackedAtomLabel& atom : label.atoms()) {
    const uint32_t relation = atom.relation();
    const uint32_t mask = atom.mask();
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      if ((base[static_cast<size_t>(p) * num_relations_ + relation] & mask) !=
          0) {
        next |= (1ULL << p);
      }
    });
    surviving = next;
    if (surviving == 0) break;
  }
  return surviving;
}

bool PolicyStore::Submit(uint32_t principal,
                         const label::DisclosureLabel& label) {
  const Meta& meta = meta_[principal];
  const uint64_t surviving =
      SurvivingPartitions(meta, label, states_[principal]);
  if (surviving == 0) return false;
  states_[principal] = surviving;
  return true;
}

bool PolicyStore::CheckStateless(uint32_t principal,
                                 const label::DisclosureLabel& label) const {
  const Meta& meta = meta_[principal];
  const uint64_t all = SecurityPolicy::FullPartitionMask(meta.partitions);
  return SurvivingPartitions(meta, label, all) != 0;
}

void PolicyStore::ResetStates() {
  for (size_t i = 0; i < meta_.size(); ++i) {
    states_[i] = SecurityPolicy::FullPartitionMask(meta_[i].partitions);
  }
}

size_t PolicyStore::MemoryBytes() const {
  return masks_.capacity() * sizeof(uint32_t) + meta_.capacity() * sizeof(Meta) +
         states_.capacity() * sizeof(uint64_t);
}

}  // namespace fdc::policy
