#include "policy/policy_store.h"

#include <algorithm>

#include "common/bit_utils.h"

namespace fdc::policy {

void PolicyStore::Reserve(size_t n, int avg_partitions) {
  meta_.reserve(n);
  states_.reserve(n);
  const size_t words_per_partition =
      total_words_ != 0 ? total_words_ : static_cast<size_t>(num_relations_);
  words_.reserve(n * static_cast<size_t>(avg_partitions) *
                 words_per_partition);
}

Result<uint32_t> PolicyStore::AddPrincipal(const SecurityPolicy& policy) {
  // Precondition: one catalog per store — a different relation count or
  // per-relation word layout means the flat masks would be misinterpreted.
  if (policy.num_relations() != num_relations_) {
    return Status::InvalidArgument(
        "policy compiled against " + std::to_string(policy.num_relations()) +
        " relations, but this store holds " + std::to_string(num_relations_) +
        "-relation policies");
  }
  if (word_begin_.empty()) {
    // Capture the shared word layout from the first policy.
    word_begin_.assign(static_cast<size_t>(policy.num_relations()) + 1, 0);
    for (int rel = 0; rel < policy.num_relations(); ++rel) {
      word_begin_[static_cast<size_t>(rel) + 1] =
          word_begin_[static_cast<size_t>(rel)] +
          static_cast<uint32_t>(policy.WordsFor(static_cast<uint32_t>(rel)));
    }
    total_words_ = word_begin_.back();
  }
  for (int rel = 0; rel < num_relations_; ++rel) {
    if (static_cast<uint32_t>(policy.WordsFor(static_cast<uint32_t>(rel))) !=
        word_begin_[static_cast<size_t>(rel) + 1] -
            word_begin_[static_cast<size_t>(rel)]) {
      return Status::InvalidArgument(
          "policy mask-word layout differs at relation " +
          std::to_string(rel) +
          " — all policies in a store must be compiled against the same "
          "catalog");
    }
  }
  Meta meta;
  meta.offset = static_cast<uint32_t>(words_.size());
  meta.partitions = static_cast<uint8_t>(policy.num_partitions());
  for (int p = 0; p < policy.num_partitions(); ++p) {
    for (int rel = 0; rel < num_relations_; ++rel) {
      const uint64_t* row =
          policy.PartitionWords(p, static_cast<uint32_t>(rel));
      words_.insert(words_.end(), row,
                    row + policy.WordsFor(static_cast<uint32_t>(rel)));
    }
  }
  meta_.push_back(meta);
  states_.push_back(policy.AllPartitionsMask());
  return static_cast<uint32_t>(meta_.size() - 1);
}

uint64_t PolicyStore::SurvivingPartitions(const Meta& meta,
                                          const label::DisclosureLabel& label,
                                          uint64_t candidates) const {
  if (label.top()) return 0;
  uint64_t surviving = candidates;
  const uint64_t* base = words_.data() + meta.offset;
  for (const label::PackedAtomLabel& atom : label.atoms()) {
    const uint32_t relation = atom.relation();
    // size_t arithmetic: uint32 `relation + 1` would wrap at UINT32_MAX.
    if (static_cast<size_t>(relation) + 1 >= word_begin_.size()) return 0;
    const size_t word = word_begin_[relation];
    const uint64_t mask = atom.mask();
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      if ((base[static_cast<size_t>(p) * total_words_ + word] & mask) != 0) {
        next |= (1ULL << p);
      }
    });
    surviving = next;
    if (surviving == 0) break;
  }
  for (const label::WideAtomLabel& atom : label.wide_atoms()) {
    if (surviving == 0) break;
    if (atom.relation < 0 ||
        static_cast<size_t>(atom.relation) + 1 >= word_begin_.size()) {
      return 0;
    }
    const size_t begin = word_begin_[static_cast<size_t>(atom.relation)];
    const size_t words = word_begin_[static_cast<size_t>(atom.relation) + 1] -
                         begin;
    const size_t n = std::min(atom.mask.size(), words);
    uint64_t next = 0;
    ForEachBit(surviving, [&](int p) {
      const uint64_t* row = base + static_cast<size_t>(p) * total_words_ +
                            begin;
      for (size_t w = 0; w < n; ++w) {
        if ((row[w] & atom.mask[w]) != 0) {
          next |= (1ULL << p);
          return;
        }
      }
    });
    surviving = next;
  }
  return surviving;
}

bool PolicyStore::Submit(uint32_t principal,
                         const label::DisclosureLabel& label) {
  const Meta& meta = meta_[principal];
  const uint64_t surviving =
      SurvivingPartitions(meta, label, states_[principal]);
  if (surviving == 0) return false;
  states_[principal] = surviving;
  return true;
}

bool PolicyStore::CheckStateless(uint32_t principal,
                                 const label::DisclosureLabel& label) const {
  const Meta& meta = meta_[principal];
  const uint64_t all = SecurityPolicy::FullPartitionMask(meta.partitions);
  return SurvivingPartitions(meta, label, all) != 0;
}

void PolicyStore::ResetStates() {
  for (size_t i = 0; i < meta_.size(); ++i) {
    states_[i] = SecurityPolicy::FullPartitionMask(meta_[i].partitions);
  }
}

size_t PolicyStore::MemoryBytes() const {
  return words_.capacity() * sizeof(uint64_t) +
         meta_.capacity() * sizeof(Meta) +
         states_.capacity() * sizeof(uint64_t);
}

}  // namespace fdc::policy
