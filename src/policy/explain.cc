#include "policy/explain.h"

#include "common/bit_utils.h"

namespace fdc::policy {

Explanation ExplainDecision(const SecurityPolicy& policy,
                            const label::ViewCatalog& catalog,
                            const label::DisclosureLabel& label,
                            uint64_t consistent) {
  Explanation out;
  out.label_is_top = label.top();
  for (int p = 0; p < policy.num_partitions(); ++p) {
    PartitionDiagnosis diag;
    diag.partition = p;
    diag.partition_name = policy.partitions()[p].name;
    if ((consistent & (1ULL << p)) == 0) {
      diag.lost_earlier = true;
      out.partitions.push_back(std::move(diag));
      continue;
    }
    if (label.top()) {
      out.partitions.push_back(std::move(diag));
      continue;
    }
    diag.allowed = true;
    for (int a = 0; a < label.size(); ++a) {
      const label::PackedAtomLabel& atom = label.atoms()[a];
      if ((policy.PartitionMask(p, atom.relation()) & atom.mask()) != 0) {
        continue;
      }
      diag.allowed = false;
      diag.blocking_atom = a;
      // ℓ+ of the blocking atom, as view names: any of these added to the
      // partition would unblock it.
      for (int view_id : catalog.ViewsOfRelation(atom.relation())) {
        const label::SecurityView& view = catalog.view(view_id);
        if (view.bit < label::kPackedViewCapacity &&
            (atom.mask() & (1u << view.bit))) {
          diag.covering_views.push_back(view.name);
        }
      }
      break;
    }
    // Wide atoms (relations beyond the packed view capacity) follow the
    // packed ones in the label-order numbering (see PartitionDiagnosis).
    const auto& wide = label.wide_atoms();
    for (size_t a = 0; diag.allowed && a < wide.size(); ++a) {
      const label::WideAtomLabel& atom = wide[a];
      if (policy.WideAtomAllowed(p, atom)) continue;
      diag.allowed = false;
      diag.blocking_atom = label.size() + static_cast<int>(a);
      diag.blocking_atom_wide = true;
      for (int view_id : catalog.ViewsOfRelation(atom.relation)) {
        const label::SecurityView& view = catalog.view(view_id);
        if (atom.Test(view.bit)) diag.covering_views.push_back(view.name);
      }
    }
    out.accepted |= diag.allowed;
    out.partitions.push_back(std::move(diag));
  }
  return out;
}

std::string Explanation::ToString() const {
  std::string out;
  out += accepted ? "DECISION: answer\n" : "DECISION: refuse\n";
  if (label_is_top) {
    out +=
        "  the query reveals information no registered security view "
        "bounds (label = ⊤); no policy can accept it\n";
    return out;
  }
  for (const PartitionDiagnosis& diag : partitions) {
    out += "  partition '" + diag.partition_name + "': ";
    if (diag.lost_earlier) {
      out += "already inconsistent with earlier answered queries\n";
    } else if (diag.allowed) {
      out += "allows this query\n";
    } else {
      // Label-order numbering: packed atoms first, then wide atoms (see
      // PartitionDiagnosis::blocking_atom).
      out += "blocked by label atom #" +
             std::to_string(diag.blocking_atom) +
             (diag.blocking_atom_wide ? " (wide)" : "") +
             " (would need one of:";
      for (const std::string& name : diag.covering_views) {
        out += " " + name;
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace fdc::policy
