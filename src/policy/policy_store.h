// Compact multi-principal policy storage for reference monitoring at scale.
//
// §7.2 evaluates the policy checker with up to 1,000,000 distinct
// principals, each with its own randomly generated policy. Holding a
// SecurityPolicy object per principal would cost a dozen heap allocations
// each; PolicyStore flattens every principal's compiled partition masks
// into one contiguous array and keeps per-principal state as a single
// 64-bit consistency vector (§6.2), so the whole fleet fits in a few
// hundred bytes per principal and the hot path touches two cache lines.
//
// Masks are stored in the policies' shared per-relation word layout (one
// 64-bit word per 64 views of a relation, minimum one), so wide label
// atoms — relations beyond the packed 32-view capacity — submit exactly
// like packed ones. Every policy added must be compiled against the same
// catalog (the layout is captured from the first AddPrincipal).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "label/compressed_label.h"
#include "policy/policy.h"

namespace fdc::policy {

class PolicyStore {
 public:
  /// `num_relations` fixes the schema size every added policy must match.
  explicit PolicyStore(int num_relations) : num_relations_(num_relations) {}

  /// Pre-allocates for `n` principals with ~`avg_partitions` each
  /// (one word per relation assumed; wide relations grow on demand).
  void Reserve(size_t n, int avg_partitions);

  /// Copies a compiled policy in; returns the new principal id. All added
  /// policies must share one catalog — a mismatched relation count or
  /// per-relation word layout returns InvalidArgument (the flat masks
  /// would otherwise be misinterpreted).
  Result<uint32_t> AddPrincipal(const SecurityPolicy& policy);

  size_t NumPrincipals() const { return meta_.size(); }

  /// §6.2 stateful submit for one principal: accept (and narrow the
  /// consistency bits) or refuse (state untouched).
  bool Submit(uint32_t principal, const label::DisclosureLabel& label);

  /// Stateless variant: evaluates against the full partition set without
  /// touching stored state.
  bool CheckStateless(uint32_t principal,
                      const label::DisclosureLabel& label) const;

  /// Remaining consistent partitions of a principal.
  uint64_t ConsistentPartitions(uint32_t principal) const {
    return states_[principal];
  }

  /// Resets every principal to the fully consistent state.
  void ResetStates();

  /// Approximate resident bytes (for capacity planning / benchmarks).
  size_t MemoryBytes() const;

 private:
  struct Meta {
    uint32_t offset;       // index into words_ of this principal's block
    uint8_t partitions;    // k
  };

  uint64_t SurvivingPartitions(const Meta& meta,
                               const label::DisclosureLabel& label,
                               uint64_t candidates) const;

  int num_relations_;
  // Shared per-relation word layout, captured from the first added policy
  // (word_begin_[r]..word_begin_[r+1] = relation r's words in a partition
  // row of total_words_ words).
  std::vector<uint32_t> word_begin_;
  uint32_t total_words_ = 0;
  std::vector<uint64_t> words_;  // per principal: k × total_words_ mask words
  std::vector<Meta> meta_;
  std::vector<uint64_t> states_;
};

}  // namespace fdc::policy
