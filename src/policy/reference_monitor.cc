#include "policy/reference_monitor.h"

// Header-only hot path; this translation unit anchors the library target.

namespace fdc::policy {}  // namespace fdc::policy
