#include "policy/reference_monitor.h"

namespace fdc::policy {

namespace {

// Content hash of a sealed label (atoms are sorted by Seal and wide atoms
// normalized, so equal labels hash equally).
size_t HashLabel(const label::DisclosureLabel& label) {
  uint64_t h = label.top() ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const label::PackedAtomLabel& atom : label.atoms()) {
    mix(atom.raw());
  }
  for (const label::WideAtomLabel& atom : label.wide_atoms()) {
    mix(static_cast<uint64_t>(atom.relation));
    for (uint64_t word : atom.mask) mix(word);
  }
  return static_cast<size_t>(h);
}

struct LabelRef {
  const label::DisclosureLabel* label;
  size_t hash;
};
struct LabelRefHash {
  size_t operator()(const LabelRef& ref) const { return ref.hash; }
};
struct LabelRefEq {
  bool operator()(const LabelRef& a, const LabelRef& b) const {
    return *a.label == *b.label;
  }
};

// Shared core for both SubmitBatch overloads; `at(i)` yields the i-th
// label by reference without copying it.
template <typename GetLabel>
std::vector<bool> SubmitBatchImpl(const ReferenceMonitor& monitor,
                                  PrincipalState* state, size_t count,
                                  GetLabel&& at) {
  std::vector<bool> decisions;
  decisions.reserve(count);
  // Monotone-narrowing memo: accepted labels stay accepted with no state
  // change; refused labels stay refused (see header). Valid within the
  // batch because `state` only narrows.
  std::unordered_map<LabelRef, bool, LabelRefHash, LabelRefEq> memo;
  memo.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const label::DisclosureLabel& label = at(i);
    const LabelRef ref{&label, HashLabel(label)};
    auto it = memo.find(ref);
    if (it != memo.end()) {
      decisions.push_back(it->second);
      continue;
    }
    const bool accepted = monitor.Submit(state, label);
    memo.emplace(ref, accepted);
    decisions.push_back(accepted);
  }
  return decisions;
}

}  // namespace

std::vector<bool> ReferenceMonitor::SubmitBatch(
    PrincipalState* state,
    std::span<const label::DisclosureLabel> labels) const {
  return SubmitBatchImpl(
      *this, state, labels.size(),
      [&](size_t i) -> const label::DisclosureLabel& { return labels[i]; });
}

std::vector<bool> ReferenceMonitor::SubmitBatch(
    PrincipalState* state,
    std::span<const label::DisclosureLabel* const> labels) const {
  return SubmitBatchImpl(
      *this, state, labels.size(),
      [&](size_t i) -> const label::DisclosureLabel& { return *labels[i]; });
}

}  // namespace fdc::policy
