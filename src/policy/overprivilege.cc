#include "policy/overprivilege.h"

#include <algorithm>
#include <set>

#include "label/dissect.h"
#include "label/pipeline.h"
#include "rewriting/atom_rewriting.h"

namespace fdc::policy {

namespace {

// ℓ+ of one dissected atom as a set of catalog view ids, routing pairwise
// rewritability tests through the shared cache when one is provided.
std::set<int> PlusSet(const label::ViewCatalog& catalog,
                      const cq::AtomPattern& atom,
                      cq::QueryInterner* interner,
                      rewriting::ContainmentCache* cache) {
  std::set<int> plus;
  const bool use_cache = interner != nullptr && cache != nullptr;
  const int pattern_id = use_cache ? interner->InternPattern(atom) : -1;
  for (int view_id : catalog.ViewsOfRelation(atom.relation)) {
    const cq::AtomPattern& view_pattern = catalog.view(view_id).pattern;
    const bool rewritable =
        use_cache ? cache->RewritableCached(*interner, pattern_id, view_id,
                                            atom, view_pattern)
                  : rewriting::AtomRewritable(atom, view_pattern);
    if (rewritable) plus.insert(view_id);
  }
  return plus;
}

}  // namespace

OverprivilegeReport AnalyzeOverprivilege(
    const label::ViewCatalog& catalog, const std::vector<int>& requested_views,
    const std::vector<cq::ConjunctiveQuery>& workload,
    cq::QueryInterner* interner, rewriting::ContainmentCache* cache) {
  OverprivilegeReport report;
  const std::set<int> requested(requested_views.begin(),
                                requested_views.end());

  // Per atom: requested views able to answer it.
  std::vector<std::vector<int>> atom_options;
  for (const cq::ConjunctiveQuery& query : workload) {
    label::SetLabel label;
    for (const cq::AtomPattern& atom : label::Dissect(query)) {
      label.per_atom.push_back(PlusSet(catalog, atom, interner, cache));
    }
    for (const std::set<int>& plus : label.per_atom) {
      std::vector<int> usable;
      for (int v : plus) {
        if (requested.contains(v)) usable.push_back(v);
      }
      if (usable.empty()) {
        ++report.unanswerable_atoms;
      } else {
        atom_options.push_back(std::move(usable));
      }
    }
  }

  // Unused: requested views appearing in no atom's options.
  std::set<int> appearing;
  for (const std::vector<int>& options : atom_options) {
    appearing.insert(options.begin(), options.end());
  }
  for (int v : requested) {
    if (!appearing.contains(v)) report.unused_views.push_back(v);
  }

  // Greedy cover: repeatedly take the view covering the most uncovered
  // atoms, then prune views made redundant (removal-minimal result).
  std::vector<bool> covered(atom_options.size(), false);
  std::set<int> chosen;
  for (;;) {
    int best_view = -1;
    int best_gain = 0;
    for (int v : appearing) {
      if (chosen.contains(v)) continue;
      int gain = 0;
      for (size_t a = 0; a < atom_options.size(); ++a) {
        if (!covered[a] &&
            std::find(atom_options[a].begin(), atom_options[a].end(), v) !=
                atom_options[a].end()) {
          ++gain;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_view = v;
      }
    }
    if (best_view < 0) break;
    chosen.insert(best_view);
    for (size_t a = 0; a < atom_options.size(); ++a) {
      if (!covered[a] &&
          std::find(atom_options[a].begin(), atom_options[a].end(),
                    best_view) != atom_options[a].end()) {
        covered[a] = true;
      }
    }
  }
  // Removal-minimality pass.
  for (auto it = chosen.begin(); it != chosen.end();) {
    const int candidate = *it;
    bool needed = false;
    for (const std::vector<int>& options : atom_options) {
      bool covered_without = false;
      for (int v : options) {
        if (v != candidate && chosen.contains(v)) {
          covered_without = true;
          break;
        }
      }
      if (!covered_without &&
          std::find(options.begin(), options.end(), candidate) !=
              options.end()) {
        needed = true;
        break;
      }
    }
    if (!needed) {
      it = chosen.erase(it);
    } else {
      ++it;
    }
  }
  report.minimal_sufficient.assign(chosen.begin(), chosen.end());
  return report;
}

}  // namespace fdc::policy
