// The reference monitor (§3.4 algorithm + §6.2 bit-vector state).
//
// Queries arrive one at a time; the monitor answers or refuses each so the
// policy invariant "{answered queries} ⪯ Wi for some partition i" always
// holds. Per-principal state is a single bit vector with one bit per
// partition (Example 6.3): bit i set means the history so far is ⪯ Wi.
// A query is accepted iff at least one bit survives; refused queries leave
// the state untouched. The state word is 64 bits wide, matching
// SecurityPolicy::kMaxPartitions.
//
// SubmitBatch amortizes repeated-structure workloads: state narrowing is
// monotone, so a label's decision is stable for the lifetime of a state —
// once a label is accepted, later identical submits accept without touching
// the state; once refused, they stay refused. The batch path memoizes
// decisions per distinct label and only runs the partition scan once each.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "label/compressed_label.h"
#include "policy/policy.h"

namespace fdc::policy {

/// Per-principal monitor state: which partitions remain consistent with the
/// queries answered so far. Within one policy epoch the bits only ever
/// narrow (Submit clears bits, never sets them) — the monotonicity every
/// lifecycle layer above relies on: batch deduplication is sound because a
/// label's decision is stable under narrowing, and the engine's
/// PrincipalStateMap may reclaim an idle principal's slot and later resume
/// these exact bits from a compact residual record (engine/principal_map.h)
/// precisely because resuming a narrowed value can never widen what the
/// principal may still learn.
struct PrincipalState {
  uint64_t consistent = 0;
};

class ReferenceMonitor {
 public:
  explicit ReferenceMonitor(const SecurityPolicy* policy) : policy_(policy) {}

  PrincipalState InitialState() const {
    return PrincipalState{policy_->AllPartitionsMask()};
  }

  /// Stateless check (§6.2 first model): answer iff the label alone is below
  /// some partition. Equivalent to the stateful model when k == 1.
  bool CheckStateless(const label::DisclosureLabel& label) const {
    return policy_->AllowedPartitions(label, policy_->AllPartitionsMask()) !=
           0;
  }

  /// Stateful submit: on accept, state narrows to the partitions that stay
  /// consistent; on refuse, state is unchanged and false is returned.
  bool Submit(PrincipalState* state, const label::DisclosureLabel& label) const {
    const uint64_t surviving =
        policy_->AllowedPartitions(label, state->consistent);
    if (surviving == 0) return false;
    state->consistent = surviving;
    return true;
  }

  /// Batched stateful submit: decision-for-decision identical to calling
  /// Submit on each label in order, but duplicate labels (compared by
  /// content; labels should be Sealed) cost one hash probe instead of a
  /// partition scan. Returns one accept/refuse bit per input label.
  std::vector<bool> SubmitBatch(
      PrincipalState* state,
      std::span<const label::DisclosureLabel> labels) const;

  /// Same batched submit over non-contiguous labels. The engine's
  /// cross-principal coalesced path groups one labeled batch by principal;
  /// each group's labels stay where the labeler put them and only their
  /// addresses are gathered here — no label copies per group.
  std::vector<bool> SubmitBatch(
      PrincipalState* state,
      std::span<const label::DisclosureLabel* const> labels) const;

  const SecurityPolicy& policy() const { return *policy_; }

 private:
  const SecurityPolicy* policy_;
};

}  // namespace fdc::policy
