// Cumulative disclosure tracking (§2.2, §6.2).
//
// "Our framework allows a system to keep track of cumulative information
// disclosure across multiple queries. We can determine whether each new
// query would push the total amount of information disclosed beyond the
// user's desired threshold."
//
// CumulativeTracker maintains the running LUB of answered-query labels — the
// ⇓(L_cum ∪ Q) of the §3.4 reference-monitor algorithm — independent of any
// policy, so auditors and UIs can display "what does this app know so far?"
// and diff it against thresholds. The §6.2 monitor does not need this to
// make decisions (its bit vector suffices); the tracker is the
// observability companion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::policy {

class CumulativeTracker {
 public:
  /// Records an answered query's label (running LUB, §4.2 union semantics).
  void RecordAnswered(const label::DisclosureLabel& label) {
    cumulative_.UnionWith(label);
    ++answered_;
  }

  /// The total disclosure so far.
  const label::DisclosureLabel& cumulative() const { return cumulative_; }

  int answered_queries() const { return answered_; }

  /// Would answering `next` increase the cumulative disclosure at all?
  /// (False means the app already knows everything `next` reveals — a free
  /// query under any internally consistent policy that admitted history.)
  bool WouldIncrease(const label::DisclosureLabel& next) const {
    return !next.Leq(cumulative_);
  }

  /// Is the cumulative disclosure still below the threshold label?
  /// Thresholds are expressed as labels (e.g. the label of a set of views
  /// the user is comfortable disclosing).
  bool WithinThreshold(const label::DisclosureLabel& threshold) const {
    return cumulative_.Leq(threshold);
  }

  /// Per-relation summary of which security views' worth of information has
  /// been cumulatively revealed: for each relation, the union of covering
  /// masks is *not* the right semantics (atoms are separate lattice points),
  /// so this reports the per-atom breakdown as view-name lists.
  std::vector<std::vector<std::string>> DescribeAtoms(
      const label::ViewCatalog& catalog) const;

 private:
  label::DisclosureLabel cumulative_;
  int answered_ = 0;
};

}  // namespace fdc::policy
