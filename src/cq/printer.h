// Pretty printing of terms, atoms and queries in the paper's notation:
//   Q(x) :- Meetings(x, 'Cathy')
// and the §5 tagged form:
//   [M(x_d, y_e), C(y_e, w_e, 'Intern')]
#pragma once

#include <string>

#include "cq/pattern.h"
#include "cq/query.h"
#include "cq/schema.h"

namespace fdc::cq {

/// Datalog-style rendering, e.g. "Q(v0) :- Meetings(v0, 'Cathy')".
std::string ToDatalog(const ConjunctiveQuery& query, const Schema& schema);

/// §5 tagged-body rendering, e.g. "[Meetings(v0_d, v1_e)]".
std::string ToTaggedBody(const ConjunctiveQuery& query, const Schema& schema);

/// Renders an AtomPattern using schema names, e.g. "Contacts(x0_d, x1_e, 'I')".
std::string PatternToString(const AtomPattern& pattern, const Schema& schema);

}  // namespace fdc::cq
