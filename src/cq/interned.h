// Hash-consed canonical queries — the intern layer of the hot path.
//
// Workloads at §7.2 scale are dominated by structurally repeated queries:
// the same app template instantiated over and over. Canonicalizing once and
// hash-consing the result means every downstream kernel (homomorphism
// search, containment memoization, labeling, monitor batching) can key its
// work on a dense immutable id instead of re-walking query structure.
//
// An InternedQuery additionally carries precomputed structural digests:
//   * a predicate (relation) multiset hash and a 64-bit relation Bloom set,
//     used for O(1) necessary-condition rejects before any backtracking;
//   * per-atom constant/variable signatures (constant-position masks and a
//     constant-value hash) feeding the predicate-indexed homomorphism
//     engine's candidate filters;
//   * max-var id and atom count, so search buffers can be sized without
//     touching the query.
//
// The interner also hash-conses AtomPatterns (the single-atom-view currency
// of the labeling path) into the same dense-id space, which is what the
// shared rewriting::ContainmentCache keys pairwise decisions on.
//
// Sharing contract: a QueryInterner is a plain mutable table — mutating
// calls (Intern/TryIntern/InternPattern) require external synchronization,
// and the const surface (Find/query/pattern/stats) is only safe concurrently
// with other const calls. Two supported sharing shapes:
//   * frozen — build the interner single-threaded, then treat it as
//     immutable; any number of threads may call the const surface without
//     locks (engine::FrozenCatalog does exactly this);
//   * guarded — wrap it in a reader/writer lock with Find under the shared
//     side and TryIntern under the exclusive side (engine::ConcurrentLabeler
//     does this for the dynamic overlay).
// Use one interner per pipeline family (catalog/universe) either way.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/canonical.h"
#include "cq/pattern.h"
#include "cq/query.h"

namespace fdc::cq {

/// Per-atom structural signature, positional and renaming-invariant.
struct AtomSignature {
  int relation = -1;
  int arity = 0;
  uint64_t const_positions = 0;  // bit p set iff position p holds a constant

  /// True iff an atom with this signature could map onto an atom with
  /// `target` under a homomorphism (constants map to themselves): same
  /// relation/arity and every source constant matched by the same target
  /// constant. Necessary, not sufficient (variable bindings still checked).
  bool CompatibleWith(const AtomSignature& target) const {
    return relation == target.relation && arity == target.arity &&
           (const_positions & ~target.const_positions) == 0;
  }
};

/// Whole-query structural digest, invariant under variable renaming and
/// atom reordering. relation_set drives the homomorphism fast reject;
/// predicate_multiset_hash is a cheap order-insensitive fingerprint for
/// dedup screens and observability; the int fields size search buffers.
struct QueryDigest {
  uint64_t predicate_multiset_hash = 0;  // order-insensitive relation multiset
  uint64_t relation_set = 0;             // Bloom set: bit (relation & 63)
  int num_atoms = 0;
  int max_var = -1;
  int head_arity = 0;
};

/// Sound O(1) reject: false means no homomorphism from `from` into `to` can
/// exist (some relation of `from` is absent from `to`). True means "maybe".
inline bool MayHaveHomomorphismInto(const QueryDigest& from,
                                    const QueryDigest& to) {
  return (from.relation_set & ~to.relation_set) == 0;
}

AtomSignature ComputeAtomSignature(const Atom& atom);

/// Digest + per-atom signatures of an (ideally canonical) query.
QueryDigest ComputeQueryDigest(const ConjunctiveQuery& query);

/// An immutable hash-consed query: canonical form + digests + dense id.
/// Obtained from QueryInterner; pointers remain valid for the interner's
/// lifetime.
class InternedQuery {
 public:
  int id() const { return id_; }
  const ConjunctiveQuery& query() const { return query_; }
  const QueryDigest& digest() const { return digest_; }
  const std::vector<AtomSignature>& atom_signatures() const {
    return atom_signatures_;
  }

 private:
  friend class QueryInterner;
  InternedQuery(int id, ConjunctiveQuery canonical);

  int id_;
  ConjunctiveQuery query_;  // canonical form
  QueryDigest digest_;
  std::vector<AtomSignature> atom_signatures_;
};

class QueryInterner {
 public:
  QueryInterner();

  /// Canonicalizes and hash-conses. Queries equal up to variable renaming
  /// and atom order map to the same handle.
  ///
  /// Two-level: a raw-equality table is probed first (apps re-issue
  /// byte-identical query templates, so the common hit costs one structural
  /// hash — no canonicalization); only raw misses pay the canonical-key
  /// computation. The raw table is capped at kMaxRawEntries distinct forms;
  /// beyond that, new raw forms still intern correctly but are not added.
  const InternedQuery& Intern(const ConjunctiveQuery& query);

  /// Bounded variant for untrusted inputs: behaves like Intern, but when
  /// the query is not already interned and either num_queries() >=
  /// max_queries or the interner's approximate resident bytes exceed
  /// kMaxApproxBytes, returns nullptr instead of growing the tables (the
  /// byte budget matters because one entry stores the raw query, its
  /// canonical form, and a key string — entry counts alone would let
  /// few-KB constants pin gigabytes). Known structures keep resolving
  /// after saturation; only novel ones are turned away, so an adversary
  /// issuing endless distinct structures cannot grow memory without bound
  /// (callers fall back to stateless labeling).
  const InternedQuery* TryIntern(const ConjunctiveQuery& query,
                                 size_t max_queries);

  /// Read-only probe: the already-interned handle for `query` (up to
  /// variable renaming and atom order), or nullptr if it was never
  /// interned. Touches no table or counter, so concurrent Find calls on a
  /// frozen interner are race-free; pays the canonical-key computation when
  /// the raw form misses, exactly like TryIntern's hit path.
  const InternedQuery* Find(const ConjunctiveQuery& query) const;

  /// Hash-conses a normalized single-atom view pattern into a dense id
  /// (independent id space from query ids).
  int InternPattern(const AtomPattern& pattern);

  const InternedQuery& query(int id) const { return queries_[id]; }
  const AtomPattern& pattern(int id) const { return patterns_[id]; }

  int num_queries() const { return static_cast<int>(queries_.size()); }
  int num_patterns() const { return static_cast<int>(patterns_.size()); }

  /// Interns performed vs. canonicalizations avoided, for observability.
  /// raw_hits counts queries resolved by the exact-match level (a subset of
  /// query_hits); query_hits + query_misses = total Intern calls.
  struct Stats {
    uint64_t query_hits = 0;
    uint64_t query_misses = 0;
    uint64_t raw_hits = 0;
    uint64_t pattern_hits = 0;
    uint64_t pattern_misses = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Process-unique identity of this interner; pattern/query ids are only
  /// meaningful relative to it (ContainmentCache binds on it — a uid can
  /// never be reused, unlike an address).
  uint64_t uid() const { return uid_; }

  /// Approximate bytes resident in the intern tables.
  size_t approx_bytes() const { return approx_bytes_; }

  /// Structural hash of a query exactly as written (variable names and atom
  /// order sensitive) — the probe key of the raw-equality level. Exposed so
  /// external lock-free indexes (the labeler's epoch-swapped overlay chunk)
  /// can probe with bit-identical hashing.
  static uint64_t RawHash(const ConjunctiveQuery& query);

  /// Enumerate the raw-equality table: fn(raw form, interned query id).
  /// Const-surface sharing rules apply (safe on a frozen/guarded interner).
  template <typename Fn>
  void ForEachRawEntry(Fn&& fn) const {
    for (const auto& [hash, bucket] : raw_buckets_) {
      for (const auto& [raw, id] : bucket) fn(raw, id);
    }
  }

  /// Enumerate the canonical-key table: fn(canonical key, interned query id).
  template <typename Fn>
  void ForEachCanonicalKey(Fn&& fn) const {
    for (const auto& [key, id] : query_by_key_) fn(key, id);
  }

  static constexpr size_t kMaxRawEntries = 1 << 20;
  static constexpr size_t kMaxApproxBytes = size_t{256} << 20;  // 256 MB

 private:
  // Deques keep handed-out references stable across growth.
  std::deque<InternedQuery> queries_;
  std::deque<AtomPattern> patterns_;
  std::unordered_map<std::string, int> query_by_key_;
  std::unordered_map<std::string, int> pattern_by_key_;
  // Raw-equality fast path: structural hash -> (raw query, interned id)
  // bucket, verified by exact comparison.
  std::unordered_map<uint64_t, std::vector<std::pair<ConjunctiveQuery, int>>>
      raw_buckets_;
  size_t raw_entries_ = 0;
  size_t approx_bytes_ = 0;
  uint64_t uid_;
  Stats stats_;
};

}  // namespace fdc::cq
