#include "cq/canonical.h"

#include <algorithm>
#include <unordered_map>

namespace fdc::cq {

namespace {

// Structural key of an atom under a partial variable renaming: variables not
// yet renamed print as "?", so the key refines as the renaming grows.
std::string AtomKey(const Atom& atom,
                    const std::unordered_map<int, int>& renaming,
                    const std::vector<bool>& is_distinguished) {
  std::string key = std::to_string(atom.relation) + "(";
  for (const Term& t : atom.terms) {
    if (t.is_const()) {
      key += "'" + t.value() + "'";
    } else {
      auto it = renaming.find(t.var());
      const bool dist = t.var() < static_cast<int>(is_distinguished.size()) &&
                        is_distinguished[t.var()];
      if (it != renaming.end()) {
        key += "v" + std::to_string(it->second);
      } else {
        key += "?";
      }
      key += dist ? "d" : "e";
    }
    key += ",";
  }
  key += ")";
  return key;
}

}  // namespace

ConjunctiveQuery Canonicalize(const ConjunctiveQuery& query) {
  std::vector<bool> dist(static_cast<size_t>(query.MaxVarId() + 1), false);
  for (int v : query.DistinguishedVars()) dist[v] = true;

  // Greedy refinement: repeatedly pick the not-yet-placed atom with the
  // smallest key under the current renaming, then extend the renaming with
  // its unseen variables in position order.
  std::vector<bool> placed(query.atoms().size(), false);
  std::unordered_map<int, int> renaming;
  std::vector<int> order;
  order.reserve(query.atoms().size());
  for (size_t round = 0; round < query.atoms().size(); ++round) {
    int best = -1;
    std::string best_key;
    for (size_t i = 0; i < query.atoms().size(); ++i) {
      if (placed[i]) continue;
      std::string key = AtomKey(query.atoms()[i], renaming, dist);
      if (best == -1 || key < best_key) {
        best = static_cast<int>(i);
        best_key = std::move(key);
      }
    }
    placed[best] = true;
    order.push_back(best);
    for (const Term& t : query.atoms()[best].terms) {
      if (t.is_var()) {
        renaming.try_emplace(t.var(), static_cast<int>(renaming.size()));
      }
    }
  }
  // Any head-only variables would be unsafe; Validate rejects them, but be
  // defensive and number them last.
  for (const Term& t : query.head()) {
    if (t.is_var()) {
      renaming.try_emplace(t.var(), static_cast<int>(renaming.size()));
    }
  }

  auto rename_term = [&](const Term& t) -> Term {
    if (t.is_const()) return t;
    return Term::Var(renaming.at(t.var()));
  };
  std::vector<Atom> atoms;
  atoms.reserve(order.size());
  for (int idx : order) {
    const Atom& a = query.atoms()[idx];
    std::vector<Term> ts;
    ts.reserve(a.terms.size());
    for (const Term& t : a.terms) ts.push_back(rename_term(t));
    atoms.emplace_back(a.relation, std::move(ts));
  }
  // Canonical head: sorted distinguished variables (head order carries no
  // information for disclosure comparisons).
  std::vector<int> head_vars;
  for (const Term& t : query.head()) {
    if (t.is_var()) head_vars.push_back(renaming.at(t.var()));
  }
  std::sort(head_vars.begin(), head_vars.end());
  head_vars.erase(std::unique(head_vars.begin(), head_vars.end()),
                  head_vars.end());
  std::vector<Term> head;
  head.reserve(head_vars.size());
  for (int v : head_vars) head.push_back(Term::Var(v));
  return ConjunctiveQuery(query.name(), std::move(head), std::move(atoms));
}

std::string CanonicalKey(const ConjunctiveQuery& query) {
  ConjunctiveQuery canon = Canonicalize(query);
  std::vector<bool> dist(static_cast<size_t>(canon.MaxVarId() + 1), false);
  for (int v : canon.DistinguishedVars()) dist[v] = true;
  std::unordered_map<int, int> identity;
  for (int v = 0; v <= canon.MaxVarId(); ++v) identity[v] = v;
  std::string key;
  for (const Atom& a : canon.atoms()) {
    key += AtomKey(a, identity, dist);
    key += ";";
  }
  return key;
}

ConjunctiveQuery CompactVariables(const ConjunctiveQuery& query) {
  std::unordered_map<int, int> renaming;
  auto visit = [&](const Term& t) {
    if (t.is_var()) {
      renaming.try_emplace(t.var(), static_cast<int>(renaming.size()));
    }
  };
  for (const Atom& a : query.atoms()) {
    for (const Term& t : a.terms) visit(t);
  }
  for (const Term& t : query.head()) visit(t);

  std::vector<Term> mapping(static_cast<size_t>(query.MaxVarId() + 1));
  for (int v = 0; v <= query.MaxVarId(); ++v) {
    auto it = renaming.find(v);
    mapping[v] = it == renaming.end() ? Term::Var(v) : Term::Var(it->second);
  }
  return query.Substitute(mapping);
}

ConjunctiveQuery ShiftVariables(const ConjunctiveQuery& query, int offset) {
  std::vector<Term> mapping(static_cast<size_t>(query.MaxVarId() + 1));
  for (int v = 0; v <= query.MaxVarId(); ++v) {
    mapping[v] = Term::Var(v + offset);
  }
  return query.Substitute(mapping);
}

}  // namespace fdc::cq
