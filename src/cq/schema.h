// Database schema catalog: relation names, attribute names, arities.
//
// The labeler (§5) and the compressed-label representation (§6.1) both key
// views by relation id, so relations get dense integer ids at registration
// time. Ids are stable for the lifetime of the Schema.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fdc::cq {

/// Definition of one relation: its name and ordered attribute names.
struct RelationDef {
  int id = -1;
  std::string name;
  std::vector<std::string> attributes;

  int arity() const { return static_cast<int>(attributes.size()); }

  /// Index of an attribute by name, or -1 if absent.
  int AttributeIndex(const std::string& attr) const;
};

/// A catalog of relations. Queries and views are always interpreted against
/// a Schema; atoms refer to relations by id.
class Schema {
 public:
  /// Registers a relation; fails if the name already exists or arity is 0.
  Result<int> AddRelation(std::string name, std::vector<std::string> attrs);

  /// Lookup by name; nullptr if absent.
  const RelationDef* Find(const std::string& name) const;

  /// Lookup by id; nullptr if out of range.
  const RelationDef* FindById(int id) const;

  int NumRelations() const { return static_cast<int>(relations_.size()); }

  const std::vector<RelationDef>& relations() const { return relations_; }

 private:
  std::vector<RelationDef> relations_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace fdc::cq
