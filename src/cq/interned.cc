#include "cq/interned.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace fdc::cq {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t h, uint64_t byte) { return (h ^ byte) * kFnvPrime; }

uint64_t HashBytes(uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = FnvMix(h, c);
  return FnvMix(h, 0xff);  // length delimiter
}

// splitmix64 finalizer: turns a relation id into a well-spread word so the
// multiset hash (a commutative sum) doesn't collapse for small ids.
uint64_t SpreadId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

AtomSignature ComputeAtomSignature(const Atom& atom) {
  AtomSignature sig;
  sig.relation = atom.relation;
  sig.arity = atom.arity();
  for (int p = 0; p < atom.arity() && p < 64; ++p) {
    if (atom.terms[p].is_const()) sig.const_positions |= (1ULL << p);
  }
  return sig;
}

QueryDigest ComputeQueryDigest(const ConjunctiveQuery& query) {
  QueryDigest digest;
  digest.num_atoms = query.size();
  digest.max_var = query.MaxVarId();
  digest.head_arity = static_cast<int>(query.head().size());
  for (const Atom& atom : query.atoms()) {
    digest.relation_set |= (1ULL << (static_cast<uint32_t>(atom.relation) & 63));
    // Commutative combine keeps the hash independent of atom order while
    // still counting multiplicity.
    digest.predicate_multiset_hash +=
        SpreadId(static_cast<uint64_t>(static_cast<uint32_t>(atom.relation)));
  }
  return digest;
}

InternedQuery::InternedQuery(int id, ConjunctiveQuery canonical)
    : id_(id), query_(std::move(canonical)) {
  digest_ = ComputeQueryDigest(query_);
  atom_signatures_.reserve(query_.atoms().size());
  for (const Atom& atom : query_.atoms()) {
    atom_signatures_.push_back(ComputeAtomSignature(atom));
  }
}

namespace {

std::atomic<uint64_t> g_next_interner_uid{1};

// Rough resident-size estimate of a stored query: term slots plus constant
// payloads. Feeds the interner's byte budget; precision is unnecessary,
// only the order of magnitude matters.
size_t ApproxQueryBytes(const ConjunctiveQuery& query) {
  size_t bytes = sizeof(ConjunctiveQuery);
  auto term_bytes = [](const Term& t) {
    return sizeof(Term) + (t.is_const() ? t.value().capacity() : 0);
  };
  for (const Term& t : query.head()) bytes += term_bytes(t);
  for (const Atom& atom : query.atoms()) {
    bytes += sizeof(Atom);
    for (const Term& t : atom.terms) bytes += term_bytes(t);
  }
  return bytes;
}

// Structural hash of a query exactly as written (variable names and atom
// order sensitive) — the raw-equality fast path's probe key.
uint64_t HashRawQuery(const ConjunctiveQuery& query) {
  uint64_t h = kFnvOffset;
  auto mix_term = [&h](const Term& t) {
    if (t.is_var()) {
      h = FnvMix(h, 0x1);
      h = FnvMix(h, static_cast<uint64_t>(static_cast<uint32_t>(t.var())));
    } else {
      h = FnvMix(h, 0x2);
      h = HashBytes(h, t.value());
    }
  };
  for (const Term& t : query.head()) mix_term(t);
  h = FnvMix(h, 0x3);
  for (const Atom& atom : query.atoms()) {
    h = FnvMix(h, static_cast<uint64_t>(static_cast<uint32_t>(atom.relation)));
    for (const Term& t : atom.terms) mix_term(t);
    h = FnvMix(h, 0x4);
  }
  return h;
}

}  // namespace

uint64_t QueryInterner::RawHash(const ConjunctiveQuery& query) {
  return HashRawQuery(query);
}

QueryInterner::QueryInterner()
    : uid_(g_next_interner_uid.fetch_add(1, std::memory_order_relaxed)) {}

const InternedQuery* QueryInterner::TryIntern(const ConjunctiveQuery& query,
                                              size_t max_queries) {
  // Level 1: exact raw form — no canonicalization on hit.
  const uint64_t raw_hash = HashRawQuery(query);
  auto raw_it = raw_buckets_.find(raw_hash);
  if (raw_it != raw_buckets_.end()) {
    for (const auto& [raw, id] : raw_it->second) {
      if (raw == query) {
        ++stats_.query_hits;
        ++stats_.raw_hits;
        return &queries_[id];
      }
    }
  }

  // Level 2: canonical form.
  std::string key = CanonicalKey(query);
  int id;
  auto it = query_by_key_.find(key);
  if (it != query_by_key_.end()) {
    ++stats_.query_hits;
    id = it->second;
  } else {
    if (queries_.size() >= max_queries || approx_bytes_ >= kMaxApproxBytes) {
      return nullptr;  // saturated (entry count or byte budget)
    }
    ++stats_.query_misses;
    id = static_cast<int>(queries_.size());
    queries_.push_back(InternedQuery(id, Canonicalize(query)));
    approx_bytes_ += ApproxQueryBytes(queries_.back().query()) + key.size();
    query_by_key_.emplace(std::move(key), id);
    // Make the canonical form itself level-1 findable: a caller that
    // canonicalizes once up front (e.g. template registration) then probes
    // with the canonical object never pays CanonicalKey again.
    const ConjunctiveQuery& canonical = queries_.back().query();
    if (!(canonical == query) && raw_entries_ < kMaxRawEntries &&
        approx_bytes_ < kMaxApproxBytes) {
      approx_bytes_ += ApproxQueryBytes(canonical);
      raw_buckets_[HashRawQuery(canonical)].emplace_back(canonical, id);
      ++raw_entries_;
    }
  }
  if (raw_entries_ < kMaxRawEntries && approx_bytes_ < kMaxApproxBytes) {
    approx_bytes_ += ApproxQueryBytes(query);
    raw_buckets_[raw_hash].emplace_back(query, id);
    ++raw_entries_;
  }
  return &queries_[id];
}

const InternedQuery* QueryInterner::Find(const ConjunctiveQuery& query) const {
  const uint64_t raw_hash = HashRawQuery(query);
  auto raw_it = raw_buckets_.find(raw_hash);
  if (raw_it != raw_buckets_.end()) {
    for (const auto& [raw, id] : raw_it->second) {
      if (raw == query) return &queries_[id];
    }
  }
  auto it = query_by_key_.find(CanonicalKey(query));
  if (it == query_by_key_.end()) return nullptr;
  return &queries_[it->second];
}

const InternedQuery& QueryInterner::Intern(const ConjunctiveQuery& query) {
  const InternedQuery* interned =
      TryIntern(query, std::numeric_limits<size_t>::max());
  return *interned;  // never null: no cap
}

int QueryInterner::InternPattern(const AtomPattern& pattern) {
  std::string key = pattern.Key();
  auto it = pattern_by_key_.find(key);
  if (it != pattern_by_key_.end()) {
    ++stats_.pattern_hits;
    return it->second;
  }
  ++stats_.pattern_misses;
  const int id = static_cast<int>(patterns_.size());
  patterns_.push_back(pattern);
  approx_bytes_ += sizeof(AtomPattern) +
                   pattern.terms.size() * sizeof(PatTerm) + key.size();
  pattern_by_key_.emplace(std::move(key), id);
  return id;
}

}  // namespace fdc::cq
