// A small SQL front-end lowering SELECT-PROJECT-JOIN queries to conjunctive
// queries.
//
// App ecosystems expose SQL-ish query languages (Facebook's FQL was the
// paper's running example). Mature embeddable SQL parsers for C++ are scarce,
// so this module implements a recursive-descent parser for the fragment the
// disclosure labeler supports — exactly the class of queries FQL supported:
//
//   SELECT a.col1, b.col2
//   FROM Rel1 [AS] a JOIN Rel2 [AS] b ON a.colX = b.colY [JOIN ...]
//   [WHERE col = 'literal' AND a.col = b.col AND ...]
//
// Also accepted: comma joins (FROM R1 a, R2 b) with join predicates in
// WHERE, SELECT *, unqualified column names when unambiguous, numeric and
// string literals, <> and = comparisons only (= lowers to unification; <> is
// rejected as outside the conjunctive fragment).
#pragma once

#include <string_view>

#include "common/result.h"
#include "cq/query.h"
#include "cq/schema.h"

namespace fdc::cq {

/// Parses one SELECT statement and lowers it to a ConjunctiveQuery.
Result<ConjunctiveQuery> ParseSql(std::string_view text, const Schema& schema);

}  // namespace fdc::cq
