#include "cq/datalog_parser.h"

#include <cctype>
#include <unordered_map>

#include "common/string_utils.h"

namespace fdc::cq {

namespace {

/// Minimal hand-rolled tokenizer/parser. No exceptions; errors carry the
/// offending position.
class Parser {
 public:
  Parser(std::string_view text, const Schema& schema)
      : text_(text), schema_(schema) {}

  Result<ConjunctiveQuery> Parse() {
    SkipSpace();
    // Head: Name ( args )
    std::string head_name;
    if (!ReadIdentifier(&head_name)) {
      return Error("expected head predicate name");
    }
    std::vector<Term> head;
    auto head_status = ParseTermList(&head, /*in_head=*/true);
    if (!head_status.ok()) return head_status;
    SkipSpace();
    if (!Consume(":-") && !Consume(":−")) {
      return Error("expected ':-' after head");
    }
    // Body: atom (, atom)*
    std::vector<Atom> atoms;
    for (;;) {
      SkipSpace();
      std::string rel_name;
      if (!ReadIdentifier(&rel_name)) {
        return Error("expected relation name in body");
      }
      const RelationDef* rel = schema_.Find(rel_name);
      if (rel == nullptr) {
        return Status::ParseError("unknown relation '" + rel_name + "'");
      }
      std::vector<Term> terms;
      auto st = ParseTermList(&terms, /*in_head=*/false);
      if (!st.ok()) return st;
      if (static_cast<int>(terms.size()) != rel->arity()) {
        return Status::ParseError(
            "relation '" + rel_name + "' expects " +
            std::to_string(rel->arity()) + " arguments, got " +
            std::to_string(terms.size()));
      }
      atoms.emplace_back(rel->id, std::move(terms));
      SkipSpace();
      if (!Consume(",") && !Consume("∧") && !ConsumeWord("AND")) break;
    }
    SkipSpace();
    Consume(".");  // optional trailing period
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    ConjunctiveQuery query(head_name, std::move(head), std::move(atoms));
    Status valid = query.Validate(schema_);
    if (!valid.ok()) return valid;
    return query;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    size_t save = pos_;
    std::string ident;
    if (!ReadIdentifier(&ident)) return false;
    if (EqualsIgnoreCase(ident, word)) return true;
    pos_ = save;
    return false;
  }

  bool ReadIdentifier(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || !IsIdentStart(text_[pos_])) return false;
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  // Parses "( term, term, ... )" (possibly empty). Variables share ids via
  // name across the whole rule.
  Status ParseTermList(std::vector<Term>* out, bool in_head) {
    SkipSpace();
    if (!Consume("(")) return Error("expected '('");
    SkipSpace();
    if (Consume(")")) return Status::OK();
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated argument list");
      char c = text_[pos_];
      if (c == '\'' || c == '"') {
        std::string value;
        Status st = ReadQuoted(&value);
        if (!st.ok()) return st;
        if (in_head) {
          return Error("constants are not allowed in query heads");
        }
        out->push_back(Term::Const(std::move(value)));
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (in_head) {
          return Error("constants are not allowed in query heads");
        }
        out->push_back(
            Term::Const(std::string(text_.substr(start, pos_ - start))));
      } else if (IsIdentStart(c)) {
        std::string name;
        ReadIdentifier(&name);
        auto [it, inserted] =
            vars_.try_emplace(name, static_cast<int>(vars_.size()));
        out->push_back(Term::Var(it->second));
      } else {
        return Error(std::string("unexpected character '") + c +
                     "' in argument list");
      }
      SkipSpace();
      if (Consume(")")) return Status::OK();
      if (!Consume(",")) return Error("expected ',' or ')'");
    }
  }

  Status ReadQuoted(std::string* out) {
    const char quote = text_[pos_];
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      value += text_[pos_];
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    *out = std::move(value);
    return Status::OK();
  }

  std::string_view text_;
  const Schema& schema_;
  size_t pos_ = 0;
  std::unordered_map<std::string, int> vars_;
};

}  // namespace

Result<ConjunctiveQuery> ParseDatalog(std::string_view text,
                                      const Schema& schema) {
  return Parser(text, schema).Parse();
}

}  // namespace fdc::cq
