#include "cq/schema.h"

namespace fdc::cq {

int RelationDef::AttributeIndex(const std::string& attr) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::AddRelation(std::string name,
                                std::vector<std::string> attrs) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("relation '" + name +
                                   "' must have at least one attribute");
  }
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("relation '" + name + "' already registered");
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i] == attrs[j]) {
        return Status::InvalidArgument("relation '" + name +
                                       "' has duplicate attribute '" +
                                       attrs[i] + "'");
      }
    }
  }
  const int id = static_cast<int>(relations_.size());
  relations_.push_back(RelationDef{id, name, std::move(attrs)});
  by_name_.emplace(relations_.back().name, id);
  return id;
}

const RelationDef* Schema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &relations_[it->second];
}

const RelationDef* Schema::FindById(int id) const {
  if (id < 0 || id >= static_cast<int>(relations_.size())) return nullptr;
  return &relations_[id];
}

}  // namespace fdc::cq
