// Conjunctive queries H :- B (§2.3) and the tagged-variable representation
// of §5 ("associate each query with a list of its body atoms and discard the
// head, tagging variables as distinguished or existential").
//
// We keep both: the head is retained so the storage engine knows output
// column order, while all reasoning code works off the distinguished-variable
// set, which is exactly the §5 representation.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "cq/atom.h"
#include "cq/schema.h"
#include "cq/term.h"

namespace fdc::cq {

/// A conjunctive query with set semantics. Head terms must be variables that
/// appear in the body (safety); Validate() enforces this plus schema arity.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string name, std::vector<Term> head,
                   std::vector<Atom> atoms)
      : name_(std::move(name)),
        head_(std::move(head)),
        atoms_(std::move(atoms)) {
    RecomputeVarInfo();
  }

  const std::string& name() const { return name_; }
  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }

  void set_name(std::string n) { name_ = std::move(n); }

  /// Number of body atoms.
  int size() const { return static_cast<int>(atoms_.size()); }

  bool IsBoolean() const { return head_.empty(); }
  bool IsSingleAtom() const { return atoms_.size() == 1; }

  /// Largest variable id used, or -1 if the query has no variables.
  int MaxVarId() const { return max_var_; }

  /// True iff variable `v` appears in the head.
  bool IsDistinguished(int v) const {
    return v >= 0 && v < static_cast<int>(distinguished_.size()) &&
           distinguished_[v];
  }

  /// Sorted ids of distinguished variables.
  std::vector<int> DistinguishedVars() const;

  /// Sorted ids of all variables appearing anywhere in the query.
  std::vector<int> AllVars() const;

  /// Number of body atoms (counting duplicates) each variable occurs in.
  /// Index by variable id; 0 for unused ids.
  std::vector<int> AtomCountPerVar() const;

  /// Checks safety (head vars appear in body) and arity against the schema.
  Status Validate(const Schema& schema) const;

  /// Returns a copy with the given variables promoted to distinguished: they
  /// are appended (sorted, deduplicated) to the head. Used by Dissect (§5.2).
  ConjunctiveQuery WithPromotedVars(const std::vector<int>& vars) const;

  /// Returns a copy with only the selected atoms kept (indices into atoms()).
  /// The head is unchanged; callers are responsible for safety.
  ConjunctiveQuery WithAtomSubset(const std::vector<int>& keep) const;

  /// Applies a variable substitution (var id -> Term) to head and body.
  /// Ids absent from the map are kept as-is.
  ConjunctiveQuery Substitute(const std::vector<Term>& mapping) const;

  bool operator==(const ConjunctiveQuery& other) const {
    return head_ == other.head_ && atoms_ == other.atoms_;
  }

 private:
  void RecomputeVarInfo();

  std::string name_;
  std::vector<Term> head_;
  std::vector<Atom> atoms_;

  // Derived caches.
  int max_var_ = -1;
  std::vector<bool> distinguished_;  // indexed by variable id
};

}  // namespace fdc::cq
