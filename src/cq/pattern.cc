#include "cq/pattern.h"

#include <algorithm>
#include <unordered_map>

namespace fdc::cq {

Result<AtomPattern> AtomPattern::FromQuery(const ConjunctiveQuery& query) {
  if (!query.IsSingleAtom()) {
    return Status::InvalidArgument(
        "AtomPattern requires a single-atom query; got " +
        std::to_string(query.size()) + " atoms");
  }
  std::vector<bool> dist(static_cast<size_t>(query.MaxVarId() + 1), false);
  for (int v : query.DistinguishedVars()) dist[v] = true;
  return FromAtom(query.atoms()[0], dist);
}

AtomPattern AtomPattern::FromAtom(const Atom& atom,
                                  const std::vector<bool>& is_distinguished) {
  AtomPattern p;
  p.relation = atom.relation;
  p.terms.reserve(atom.terms.size());
  // var → class via linear probe over a small inline table: atoms have at
  // most `arity` distinct variables, and this runs once per dissected atom
  // on the labeling hot path (allocation here would dominate §7.2-scale
  // workloads).
  constexpr int kInline = 64;
  int vars_inline[kInline];
  std::vector<int> vars_heap;
  int* vars = vars_inline;
  if (atom.arity() > kInline) {
    vars_heap.resize(atom.terms.size());
    vars = vars_heap.data();
  }
  int num_classes = 0;
  for (const Term& t : atom.terms) {
    PatTerm pt;
    if (t.is_const()) {
      pt.is_const = true;
      pt.value = t.value();
    } else {
      int cls = -1;
      for (int c = 0; c < num_classes; ++c) {
        if (vars[c] == t.var()) {
          cls = c;
          break;
        }
      }
      if (cls < 0) {
        cls = num_classes;
        vars[num_classes++] = t.var();
      }
      pt.cls = cls;
      pt.distinguished = t.var() < static_cast<int>(is_distinguished.size()) &&
                         is_distinguished[t.var()];
    }
    p.terms.push_back(std::move(pt));
  }
  // Classes are already numbered by first occurrence; no Normalize() needed.
  return p;
}

ConjunctiveQuery AtomPattern::ToQuery(const std::string& name) const {
  // Class id doubles as variable id in the reconstructed query.
  std::vector<Term> head;
  std::vector<Term> atom_terms;
  atom_terms.reserve(terms.size());
  std::vector<bool> head_emitted;
  for (const PatTerm& pt : this->terms) {
    if (pt.is_const) {
      atom_terms.push_back(Term::Const(pt.value));
      continue;
    }
    atom_terms.push_back(Term::Var(pt.cls));
    if (pt.distinguished) {
      if (pt.cls >= static_cast<int>(head_emitted.size())) {
        head_emitted.resize(pt.cls + 1, false);
      }
      if (!head_emitted[pt.cls]) {
        head_emitted[pt.cls] = true;
        head.push_back(Term::Var(pt.cls));
      }
    }
  }
  Atom atom(relation, std::move(atom_terms));
  return ConjunctiveQuery(name, std::move(head), {std::move(atom)});
}

void AtomPattern::Normalize() {
  std::unordered_map<int, int> renumber;
  for (PatTerm& pt : terms) {
    if (pt.is_const) continue;
    auto [it, inserted] =
        renumber.try_emplace(pt.cls, static_cast<int>(renumber.size()));
    pt.cls = it->second;
  }
}

int AtomPattern::NumClasses() const {
  int max_cls = -1;
  for (const PatTerm& pt : terms) {
    if (!pt.is_const) max_cls = std::max(max_cls, pt.cls);
  }
  return max_cls + 1;
}

bool AtomPattern::HasDistinguished() const {
  for (const PatTerm& pt : terms) {
    if (!pt.is_const && pt.distinguished) return true;
  }
  return false;
}

std::string AtomPattern::Key() const {
  std::string out = "R" + std::to_string(relation) + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ",";
    const PatTerm& pt = terms[i];
    if (pt.is_const) {
      out += "'" + pt.value + "'";
    } else {
      out += "#" + std::to_string(pt.cls) + (pt.distinguished ? "d" : "e");
    }
  }
  out += ")";
  return out;
}

}  // namespace fdc::cq
