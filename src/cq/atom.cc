#include "cq/atom.h"

#include <functional>

namespace fdc::cq {

size_t HashAtom(const Atom& atom) {
  size_t h = std::hash<int>()(atom.relation);
  for (const Term& t : atom.terms) {
    h = h * 1099511628211ULL + std::hash<Term>()(t);
  }
  return h;
}

}  // namespace fdc::cq
