#include "cq/printer.h"

namespace fdc::cq {

namespace {

std::string RelationName(int id, const Schema& schema) {
  const RelationDef* rel = schema.FindById(id);
  return rel != nullptr ? rel->name : ("R" + std::to_string(id));
}

std::string VarName(int v) { return "v" + std::to_string(v); }

}  // namespace

std::string ToDatalog(const ConjunctiveQuery& query, const Schema& schema) {
  std::string out = query.name().empty() ? "Q" : query.name();
  out += "(";
  for (size_t i = 0; i < query.head().size(); ++i) {
    if (i > 0) out += ", ";
    const Term& t = query.head()[i];
    out += t.is_var() ? VarName(t.var()) : ("'" + t.value() + "'");
  }
  out += ") :- ";
  for (size_t i = 0; i < query.atoms().size(); ++i) {
    if (i > 0) out += ", ";
    const Atom& a = query.atoms()[i];
    out += RelationName(a.relation, schema) + "(";
    for (size_t j = 0; j < a.terms.size(); ++j) {
      if (j > 0) out += ", ";
      const Term& t = a.terms[j];
      out += t.is_var() ? VarName(t.var()) : ("'" + t.value() + "'");
    }
    out += ")";
  }
  return out;
}

std::string ToTaggedBody(const ConjunctiveQuery& query, const Schema& schema) {
  std::string out = "[";
  for (size_t i = 0; i < query.atoms().size(); ++i) {
    if (i > 0) out += ", ";
    const Atom& a = query.atoms()[i];
    out += RelationName(a.relation, schema) + "(";
    for (size_t j = 0; j < a.terms.size(); ++j) {
      if (j > 0) out += ", ";
      const Term& t = a.terms[j];
      if (t.is_const()) {
        out += "'" + t.value() + "'";
      } else {
        out += VarName(t.var()) +
               (query.IsDistinguished(t.var()) ? "_d" : "_e");
      }
    }
    out += ")";
  }
  out += "]";
  return out;
}

std::string PatternToString(const AtomPattern& pattern, const Schema& schema) {
  std::string out = RelationName(pattern.relation, schema) + "(";
  for (size_t i = 0; i < pattern.terms.size(); ++i) {
    if (i > 0) out += ", ";
    const PatTerm& pt = pattern.terms[i];
    if (pt.is_const) {
      out += "'" + pt.value + "'";
    } else {
      out += "x" + std::to_string(pt.cls) + (pt.distinguished ? "_d" : "_e");
    }
  }
  out += ")";
  return out;
}

}  // namespace fdc::cq
