#include "cq/query.h"

#include <algorithm>

namespace fdc::cq {

void ConjunctiveQuery::RecomputeVarInfo() {
  max_var_ = -1;
  auto consider = [&](const Term& t) {
    if (t.is_var()) max_var_ = std::max(max_var_, t.var());
  };
  for (const Term& t : head_) consider(t);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms) consider(t);
  }
  distinguished_.assign(static_cast<size_t>(max_var_ + 1), false);
  for (const Term& t : head_) {
    if (t.is_var()) distinguished_[t.var()] = true;
  }
}

std::vector<int> ConjunctiveQuery::DistinguishedVars() const {
  std::vector<int> out;
  for (int v = 0; v <= max_var_; ++v) {
    if (distinguished_[v]) out.push_back(v);
  }
  return out;
}

std::vector<int> ConjunctiveQuery::AllVars() const {
  std::vector<bool> seen(static_cast<size_t>(max_var_ + 1), false);
  for (const Term& t : head_) {
    if (t.is_var()) seen[t.var()] = true;
  }
  for (const Atom& a : atoms_) {
    for (const Term& t : a.terms) {
      if (t.is_var()) seen[t.var()] = true;
    }
  }
  std::vector<int> out;
  for (int v = 0; v <= max_var_; ++v) {
    if (seen[v]) out.push_back(v);
  }
  return out;
}

std::vector<int> ConjunctiveQuery::AtomCountPerVar() const {
  std::vector<int> counts(static_cast<size_t>(max_var_ + 1), 0);
  std::vector<bool> in_this_atom;
  for (const Atom& a : atoms_) {
    in_this_atom.assign(static_cast<size_t>(max_var_ + 1), false);
    for (const Term& t : a.terms) {
      if (t.is_var() && !in_this_atom[t.var()]) {
        in_this_atom[t.var()] = true;
        ++counts[t.var()];
      }
    }
  }
  return counts;
}

Status ConjunctiveQuery::Validate(const Schema& schema) const {
  std::vector<bool> in_body(static_cast<size_t>(max_var_ + 1), false);
  for (const Atom& a : atoms_) {
    const RelationDef* rel = schema.FindById(a.relation);
    if (rel == nullptr) {
      return Status::InvalidArgument("atom references unknown relation id " +
                                     std::to_string(a.relation));
    }
    if (a.arity() != rel->arity()) {
      return Status::InvalidArgument(
          "atom over '" + rel->name + "' has arity " +
          std::to_string(a.arity()) + ", expected " +
          std::to_string(rel->arity()));
    }
    for (const Term& t : a.terms) {
      if (t.is_var()) in_body[t.var()] = true;
    }
  }
  for (const Term& t : head_) {
    if (t.is_const()) {
      return Status::InvalidArgument(
          "head constants are not supported; select via the body instead");
    }
    if (!in_body[t.var()]) {
      return Status::InvalidArgument("head variable does not appear in body");
    }
  }
  return Status::OK();
}

ConjunctiveQuery ConjunctiveQuery::WithPromotedVars(
    const std::vector<int>& vars) const {
  std::vector<Term> new_head = head_;
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int v : sorted) {
    if (!IsDistinguished(v)) new_head.push_back(Term::Var(v));
  }
  return ConjunctiveQuery(name_, std::move(new_head), atoms_);
}

ConjunctiveQuery ConjunctiveQuery::WithAtomSubset(
    const std::vector<int>& keep) const {
  std::vector<Atom> kept;
  kept.reserve(keep.size());
  for (int idx : keep) kept.push_back(atoms_[idx]);
  return ConjunctiveQuery(name_, head_, std::move(kept));
}

ConjunctiveQuery ConjunctiveQuery::Substitute(
    const std::vector<Term>& mapping) const {
  auto apply = [&](const Term& t) -> Term {
    if (t.is_var() && t.var() < static_cast<int>(mapping.size())) {
      return mapping[t.var()];
    }
    return t;
  };
  std::vector<Term> new_head;
  new_head.reserve(head_.size());
  for (const Term& t : head_) new_head.push_back(apply(t));
  std::vector<Atom> new_atoms;
  new_atoms.reserve(atoms_.size());
  for (const Atom& a : atoms_) {
    std::vector<Term> ts;
    ts.reserve(a.terms.size());
    for (const Term& t : a.terms) ts.push_back(apply(t));
    new_atoms.emplace_back(a.relation, std::move(ts));
  }
  return ConjunctiveQuery(name_, std::move(new_head), std::move(new_atoms));
}

}  // namespace fdc::cq
