// Relational atoms: a relation id applied to a list of terms.
#pragma once

#include <string>
#include <vector>

#include "cq/schema.h"
#include "cq/term.h"

namespace fdc::cq {

/// One body atom R(t1, ..., tk). `relation` is an id in the governing Schema.
struct Atom {
  int relation = -1;
  std::vector<Term> terms;

  Atom() = default;
  Atom(int relation_id, std::vector<Term> ts)
      : relation(relation_id), terms(std::move(ts)) {}

  int arity() const { return static_cast<int>(terms.size()); }

  bool operator==(const Atom& other) const {
    return relation == other.relation && terms == other.terms;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }
};

/// Structural hash of an atom (exact terms, not up to renaming).
size_t HashAtom(const Atom& atom);

}  // namespace fdc::cq
