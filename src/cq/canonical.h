// Canonical renaming of query variables.
//
// Canonicalize() renames variables to dense ids ordered by first occurrence
// after sorting atoms by a stable structural key. Two queries that differ
// only by variable names and atom order map to the same canonical form.
// (Exact canonicalization up to isomorphism is GI-hard; this fixpoint
// refinement is exact for the view/query shapes used in this system and is
// only used for deduplication, never for equivalence decisions — those go
// through containment, see rewriting/containment.h.)
#pragma once

#include <string>

#include "cq/query.h"

namespace fdc::cq {

/// Returns a copy with variables renamed to 0..n-1 by first occurrence in a
/// stable atom order, and atoms sorted by their resulting structural key.
ConjunctiveQuery Canonicalize(const ConjunctiveQuery& query);

/// A stable text key of the canonical form; equal keys imply isomorphic
/// queries for the shapes we generate (used for hashing and dedup).
std::string CanonicalKey(const ConjunctiveQuery& query);

/// Renames variables so they occupy dense ids 0..n-1 (first-occurrence
/// order), without reordering atoms.
ConjunctiveQuery CompactVariables(const ConjunctiveQuery& query);

/// Returns a copy of `query` with all variable ids shifted by `offset`.
/// Useful to make two queries variable-disjoint before unification.
ConjunctiveQuery ShiftVariables(const ConjunctiveQuery& query, int offset);

}  // namespace fdc::cq
