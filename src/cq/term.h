// Terms: variables and constants, the building blocks of atoms (§2.3).
//
// Variables are dense non-negative integers local to one query. Whether a
// variable is distinguished (appears in the head) or existential is a
// property of the enclosing query, not of the term; see
// ConjunctiveQuery::IsDistinguished.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

namespace fdc::cq {

/// A variable or a constant. Constants are stored as strings; numeric
/// constants compare by their textual form, which suffices for equality-only
/// conjunctive queries (no arithmetic predicates in this fragment).
class Term {
 public:
  Term() : var_(0) {}

  static Term Var(int id) {
    Term t;
    t.var_ = id;
    return t;
  }
  static Term Const(std::string value) {
    Term t;
    t.var_ = kConstMarker;
    t.value_ = std::move(value);
    return t;
  }

  bool is_var() const { return var_ != kConstMarker; }
  bool is_const() const { return var_ == kConstMarker; }

  int var() const { return var_; }
  const std::string& value() const { return value_; }

  bool operator==(const Term& other) const {
    if (var_ != other.var_) return false;
    return is_var() || value_ == other.value_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Total order (variables first by id, then constants by value), used for
  /// canonical sorting.
  bool operator<(const Term& other) const {
    if (is_var() != other.is_var()) return is_var();
    if (is_var()) return var_ < other.var_;
    return value_ < other.value_;
  }

 private:
  static constexpr int kConstMarker = -1;
  int var_;
  std::string value_;
};

}  // namespace fdc::cq

namespace std {
template <>
struct hash<fdc::cq::Term> {
  size_t operator()(const fdc::cq::Term& t) const {
    if (t.is_var()) return hash<int>()(t.var()) * 0x9e3779b97f4a7c15ULL;
    return hash<string>()(t.value());
  }
};
}  // namespace std
