#include "cq/sql_parser.h"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/string_utils.h"

namespace fdc::cq {

namespace {

enum class TokKind { kIdent, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    size_t pos = 0;
    while (pos < text_.size()) {
      char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t start = pos;
        while (pos < text_.size() && IsIdentChar(text_[pos])) ++pos;
        out.push_back({TokKind::kIdent,
                       std::string(text_.substr(start, pos - start)), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos;
        while (pos < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          ++pos;
        }
        out.push_back({TokKind::kNumber,
                       std::string(text_.substr(start, pos - start)), start});
        continue;
      }
      if (c == '\'' || c == '"') {
        size_t start = ++pos;
        while (pos < text_.size() && text_[pos] != c) ++pos;
        if (pos >= text_.size()) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start - 1));
        }
        out.push_back({TokKind::kString,
                       std::string(text_.substr(start, pos - start)), start});
        ++pos;
        continue;
      }
      // Multi-char symbols first.
      if (c == '<' && pos + 1 < text_.size() && text_[pos + 1] == '>') {
        out.push_back({TokKind::kSymbol, "<>", pos});
        pos += 2;
        continue;
      }
      if (c == '!' && pos + 1 < text_.size() && text_[pos + 1] == '=') {
        out.push_back({TokKind::kSymbol, "!=", pos});
        pos += 2;
        continue;
      }
      static constexpr std::string_view kSingles = ".,()=*;";
      if (kSingles.find(c) != std::string_view::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), pos});
        ++pos;
        continue;
      }
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos));
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  std::string_view text_;
};

// A column reference: table instance index + attribute index.
struct ColumnRef {
  int table;  // index into `tables_`
  int column;
};

// Union-find over column slots, carrying an optional constant per class.
class SlotUnion {
 public:
  void Init(int n) {
    parent_.resize(n);
    for (int i = 0; i < n; ++i) parent_[i] = i;
    constant_.assign(n, std::nullopt);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unions two slots; fails on constant conflict.
  Status Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return Status::OK();
    if (constant_[a].has_value() && constant_[b].has_value() &&
        *constant_[a] != *constant_[b]) {
      return Status::ParseError(
          "contradictory equalities: column constrained to both '" +
          *constant_[a] + "' and '" + *constant_[b] + "'");
    }
    if (!constant_[a].has_value()) std::swap(a, b);
    parent_[b] = a;
    return Status::OK();
  }

  /// Binds a slot's class to a constant; fails on conflict.
  Status Bind(int slot, const std::string& value) {
    int root = Find(slot);
    if (constant_[root].has_value() && *constant_[root] != value) {
      return Status::ParseError(
          "contradictory equalities: column constrained to both '" +
          *constant_[root] + "' and '" + value + "'");
    }
    constant_[root] = value;
    return Status::OK();
  }

  const std::optional<std::string>& ConstantOf(int root) const {
    return constant_[root];
  }

 private:
  std::vector<int> parent_;
  std::vector<std::optional<std::string>> constant_;
};

class SqlParser {
 public:
  SqlParser(std::vector<Token> tokens, const Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<ConjunctiveQuery> Parse() {
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");

    // Select list is resolved after FROM; remember raw items.
    struct SelectItem {
      std::string qualifier;  // alias or empty
      std::string column;     // column name or "*" for star
    };
    std::vector<SelectItem> select_items;
    if (ConsumeSymbol("*")) {
      select_items.push_back({"", "*"});
    } else {
      for (;;) {
        std::string first;
        if (!ConsumeIdent(&first)) return Error("expected column name");
        SelectItem item;
        if (ConsumeSymbol(".")) {
          if (ConsumeSymbol("*")) {
            item = {first, "*"};
          } else {
            std::string col;
            if (!ConsumeIdent(&col)) return Error("expected column after '.'");
            item = {first, col};
          }
        } else {
          item = {"", first};
        }
        select_items.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }

    if (!ConsumeKeyword("FROM")) return Error("expected FROM");
    // Table refs: first, then JOIN ... ON ... or comma-separated.
    Status st = ParseTableRef();
    if (!st.ok()) return st;
    std::vector<std::pair<ColumnRef, ColumnRef>> join_conds;
    for (;;) {
      if (ConsumeKeyword("JOIN") || ConsumeKeyword("INNER")) {
        // Allow "INNER JOIN".
        ConsumeKeyword("JOIN");
        st = ParseTableRef();
        if (!st.ok()) return st;
        if (!ConsumeKeyword("ON")) return Error("expected ON after JOIN");
        st = ParseCondition();
        if (!st.ok()) return st;
        // Additional AND-ed ON conditions.
        while (ConsumeKeyword("AND")) {
          st = ParseCondition();
          if (!st.ok()) return st;
        }
        continue;
      }
      if (ConsumeSymbol(",")) {
        st = ParseTableRef();
        if (!st.ok()) return st;
        continue;
      }
      break;
    }

    if (ConsumeKeyword("WHERE")) {
      st = ParseCondition();
      if (!st.ok()) return st;
      while (ConsumeKeyword("AND")) {
        st = ParseCondition();
        if (!st.ok()) return st;
      }
    }
    ConsumeSymbol(";");
    if (Peek().kind != TokKind::kEnd) return Error("unexpected trailing input");

    // ---- Lowering ----
    slots_.Init(total_slots_);
    for (const auto& [slot_a, slot_b] : pending_slot_eqs_) {
      Status u = slots_.Union(slot_a, slot_b);
      if (!u.ok()) return u;
    }
    for (const auto& [slot, value] : pending_binds_) {
      Status b = slots_.Bind(slot, value);
      if (!b.ok()) return b;
    }

    // Assign a variable per non-constant class.
    std::unordered_map<int, int> class_to_var;
    auto slot_term = [&](int slot) -> Term {
      int root = slots_.Find(slot);
      const auto& constant = slots_.ConstantOf(root);
      if (constant.has_value()) return Term::Const(*constant);
      auto [it, inserted] =
          class_to_var.try_emplace(root, static_cast<int>(class_to_var.size()));
      return Term::Var(it->second);
    };

    std::vector<Atom> atoms;
    for (size_t ti = 0; ti < tables_.size(); ++ti) {
      const RelationDef* rel = schema_.FindById(tables_[ti].relation);
      std::vector<Term> terms;
      terms.reserve(rel->arity());
      for (int c = 0; c < rel->arity(); ++c) {
        terms.push_back(slot_term(SlotOf(static_cast<int>(ti), c)));
      }
      atoms.emplace_back(rel->id, std::move(terms));
    }

    std::vector<Term> head;
    for (const auto& item : select_items) {
      if (item.column == "*") {
        // Expand: all columns of the qualified table, or of all tables.
        for (size_t ti = 0; ti < tables_.size(); ++ti) {
          if (!item.qualifier.empty() &&
              tables_[ti].alias != item.qualifier) {
            continue;
          }
          const RelationDef* rel = schema_.FindById(tables_[ti].relation);
          for (int c = 0; c < rel->arity(); ++c) {
            Term t = slot_term(SlotOf(static_cast<int>(ti), c));
            if (t.is_var()) head.push_back(t);
            // Constant-bound columns are dropped from the head: their value
            // is fixed by the query text and reveals nothing extra.
          }
        }
        continue;
      }
      Result<ColumnRef> ref = Resolve(item.qualifier, item.column);
      if (!ref.ok()) return ref.status();
      Term t = slot_term(SlotOf(ref->table, ref->column));
      if (t.is_const()) {
        // Selecting an equated-to-constant column: no variable to expose.
        continue;
      }
      head.push_back(t);
    }

    ConjunctiveQuery query("Q", std::move(head), std::move(atoms));
    Status valid = query.Validate(schema_);
    if (!valid.ok()) return valid;
    return query;
  }

 private:
  struct TableInstance {
    int relation;
    std::string alias;
    int first_slot;
  };

  const Token& Peek() const { return tokens_[cursor_]; }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().kind == TokKind::kIdent && EqualsIgnoreCase(Peek().text, kw)) {
      ++cursor_;
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++cursor_;
      return true;
    }
    return false;
  }

  bool ConsumeIdent(std::string* out) {
    if (Peek().kind == TokKind::kIdent && !IsReserved(Peek().text)) {
      *out = Peek().text;
      ++cursor_;
      return true;
    }
    return false;
  }

  static bool IsReserved(const std::string& word) {
    static constexpr std::string_view kReserved[] = {
        "SELECT", "FROM", "WHERE", "JOIN", "INNER", "ON", "AND", "AS"};
    for (std::string_view kw : kReserved) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::ParseError(what + " near offset " +
                              std::to_string(Peek().pos));
  }

  Status ParseTableRef() {
    std::string rel_name;
    if (!ConsumeIdent(&rel_name)) return Error("expected table name");
    const RelationDef* rel = schema_.Find(rel_name);
    if (rel == nullptr) {
      return Status::ParseError("unknown table '" + rel_name + "'");
    }
    ConsumeKeyword("AS");
    std::string alias = rel_name;
    std::string maybe_alias;
    if (ConsumeIdent(&maybe_alias)) alias = maybe_alias;
    for (const TableInstance& t : tables_) {
      if (t.alias == alias) {
        return Status::ParseError("duplicate table alias '" + alias + "'");
      }
    }
    tables_.push_back({rel->id, alias, total_slots_});
    total_slots_ += rel->arity();
    return Status::OK();
  }

  int SlotOf(int table, int column) const {
    return tables_[table].first_slot + column;
  }

  Result<ColumnRef> Resolve(const std::string& qualifier,
                            const std::string& column) {
    if (!qualifier.empty()) {
      for (size_t ti = 0; ti < tables_.size(); ++ti) {
        if (tables_[ti].alias != qualifier) continue;
        const RelationDef* rel = schema_.FindById(tables_[ti].relation);
        int c = rel->AttributeIndex(column);
        if (c < 0) {
          return Status::ParseError("table '" + qualifier +
                                    "' has no column '" + column + "'");
        }
        return ColumnRef{static_cast<int>(ti), c};
      }
      return Status::ParseError("unknown table alias '" + qualifier + "'");
    }
    // Unqualified: must be unambiguous across tables.
    std::optional<ColumnRef> found;
    for (size_t ti = 0; ti < tables_.size(); ++ti) {
      const RelationDef* rel = schema_.FindById(tables_[ti].relation);
      int c = rel->AttributeIndex(column);
      if (c < 0) continue;
      if (found.has_value()) {
        return Status::ParseError("ambiguous column '" + column + "'");
      }
      found = ColumnRef{static_cast<int>(ti), c};
    }
    if (!found.has_value()) {
      return Status::ParseError("unknown column '" + column + "'");
    }
    return *found;
  }

  // cond := colref = colref | colref = literal | literal = colref
  Status ParseCondition() {
    if (Peek().kind == TokKind::kString || Peek().kind == TokKind::kNumber) {
      std::string value = Peek().text;
      ++cursor_;
      if (!ConsumeSymbol("=")) return Error("only '=' comparisons supported");
      Result<ColumnRef> rhs = ParseColumnRef();
      if (!rhs.ok()) return rhs.status();
      pending_binds_.emplace_back(SlotOf(rhs->table, rhs->column), value);
      return Status::OK();
    }
    Result<ColumnRef> lhs = ParseColumnRef();
    if (!lhs.ok()) return lhs.status();
    if (ConsumeSymbol("<>") || ConsumeSymbol("!=")) {
      return Status::Unsupported(
          "inequality predicates are outside the conjunctive fragment");
    }
    if (!ConsumeSymbol("=")) return Error("expected '=' in condition");
    if (Peek().kind == TokKind::kString || Peek().kind == TokKind::kNumber) {
      pending_binds_.emplace_back(SlotOf(lhs->table, lhs->column), Peek().text);
      ++cursor_;
      return Status::OK();
    }
    Result<ColumnRef> rhs = ParseColumnRef();
    if (!rhs.ok()) return rhs.status();
    pending_slot_eqs_.emplace_back(SlotOf(lhs->table, lhs->column),
                                   SlotOf(rhs->table, rhs->column));
    return Status::OK();
  }

  Result<ColumnRef> ParseColumnRef() {
    std::string first;
    if (!ConsumeIdent(&first)) {
      return Status::ParseError("expected column reference near offset " +
                                std::to_string(Peek().pos));
    }
    if (ConsumeSymbol(".")) {
      std::string col;
      if (!ConsumeIdent(&col)) {
        return Status::ParseError("expected column name after '.'");
      }
      return Resolve(first, col);
    }
    return Resolve("", first);
  }

  std::vector<Token> tokens_;
  const Schema& schema_;
  size_t cursor_ = 0;

  std::vector<TableInstance> tables_;
  int total_slots_ = 0;
  SlotUnion slots_;
  std::vector<std::pair<int, int>> pending_slot_eqs_;
  std::vector<std::pair<int, std::string>> pending_binds_;
};

}  // namespace

Result<ConjunctiveQuery> ParseSql(std::string_view text, const Schema& schema) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Lex();
  if (!tokens.ok()) return tokens.status();
  return SqlParser(std::move(tokens).value(), schema).Parse();
}

}  // namespace fdc::cq
