// Parser for the paper's Datalog-style query notation, e.g.
//
//   Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')
//
// Conventions: bare identifiers inside parentheses are variables; quoted
// strings and numeric literals are constants; `,` or `AND`-free conjunction
// via comma. Boolean queries use an empty head: `V5() :- Meetings(x, y)`.
#pragma once

#include <string_view>

#include "common/result.h"
#include "cq/query.h"
#include "cq/schema.h"

namespace fdc::cq {

/// Parses one Datalog rule against `schema`. Validates arity and safety.
Result<ConjunctiveQuery> ParseDatalog(std::string_view text,
                                      const Schema& schema);

}  // namespace fdc::cq
