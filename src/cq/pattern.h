// AtomPattern: the normalized form of a single-atom conjunctive view.
//
// A single-atom view V(head) :- R(t1..tk) is fully characterized, up to
// ⪯-equivalence under the equivalent-view-rewriting order, by three pieces of
// per-position information (§5.1):
//   * which positions carry which constants,
//   * the partition of variable positions into equality classes
//     (repeated variables), and
//   * which classes are distinguished (head) vs existential.
// Head column order and multiplicity are deliberately quotiented away: views
// V1(x,y) :- M(x,y) and V1'(y,x) :- M(x,y) have the same pattern, mirroring
// §3.1's observation that they reveal equivalent information.
//
// GenMGU / GLBSingleton (§5.1) and the single-atom rewriting test operate on
// AtomPatterns.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "cq/query.h"

namespace fdc::cq {

/// One position of an AtomPattern.
struct PatTerm {
  bool is_const = false;
  std::string value;         // constant value; valid when is_const
  int cls = -1;              // equality-class id; valid when !is_const
  bool distinguished = false;  // class tag; valid when !is_const

  bool operator==(const PatTerm& other) const {
    if (is_const != other.is_const) return false;
    if (is_const) return value == other.value;
    return cls == other.cls && distinguished == other.distinguished;
  }
};

/// Normalized single-atom view. Class ids are renumbered by first occurrence,
/// so structural equality coincides with ⪯-equivalence of the underlying
/// views (for the single-atom fragment).
struct AtomPattern {
  int relation = -1;
  std::vector<PatTerm> terms;

  int arity() const { return static_cast<int>(terms.size()); }

  /// Builds a pattern from a single-atom query (its one body atom plus the
  /// distinguished-variable set). Fails for multi-atom or empty queries.
  static Result<AtomPattern> FromQuery(const ConjunctiveQuery& query);

  /// Builds directly from an atom plus a predicate telling which variables
  /// are distinguished.
  static AtomPattern FromAtom(const Atom& atom,
                              const std::vector<bool>& is_distinguished);

  /// Converts back to a ConjunctiveQuery. The head lists one variable per
  /// distinguished class, in class order.
  ConjunctiveQuery ToQuery(const std::string& name) const;

  /// Renumbers class ids by first occurrence (idempotent). All other
  /// operations assume patterns are normalized.
  void Normalize();

  /// Number of distinct variable classes.
  int NumClasses() const;

  /// True iff some class is distinguished.
  bool HasDistinguished() const;

  /// A stable text encoding, e.g. "R(#0d, #0d, 'x', #1e)"; used for hashing,
  /// ordering and debug output.
  std::string Key() const;

  bool operator==(const AtomPattern& other) const {
    return relation == other.relation && terms == other.terms;
  }
  bool operator<(const AtomPattern& other) const {
    if (relation != other.relation) return relation < other.relation;
    return Key() < other.Key();
  }
};

}  // namespace fdc::cq

namespace std {
template <>
struct hash<fdc::cq::AtomPattern> {
  size_t operator()(const fdc::cq::AtomPattern& p) const {
    return hash<string>()(p.Key()) ^ (hash<int>()(p.relation) << 1);
  }
};
}  // namespace std
