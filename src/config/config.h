// Disclosure configuration files.
//
// Figure 2's workflow has users (helped by platform developers and privacy
// watchdogs) author security views and policies ahead of time. This module
// gives that artifact a concrete, diffable, reviewable form: a line-oriented
// text format declaring the schema, the security views (in the paper's
// Datalog notation), and named partition policies.
//
//   # Alice's calendar
//   relation Meetings(time, person)
//   relation Contacts(person, email, position)
//
//   view meetings_full: V(x, y) :- Meetings(x, y)
//   view meeting_times: V(x) :- Meetings(x, y)
//   view contacts_full: V(x, y, z) :- Contacts(x, y, z)
//
//   policy alice {
//     partition meetings_side: meetings_full, meeting_times
//     partition contacts_side: contacts_full
//   }
//
// Parsing validates everything through the same code paths the engine uses
// (schema arity, view safety/single-atom shape, policy compilation), and
// WriteConfig() round-trips.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "cq/schema.h"
#include "label/view_catalog.h"
#include "policy/policy.h"

namespace fdc::config {

/// A parsed configuration: owns the schema and catalog (the catalog holds a
/// pointer into the schema, so the pair is heap-allocated and pinned).
struct DisclosureConfig {
  std::unique_ptr<cq::Schema> schema;
  std::unique_ptr<label::ViewCatalog> catalog;
  std::vector<std::pair<std::string, policy::SecurityPolicy>> policies;

  /// Policy lookup by name; nullptr if absent.
  const policy::SecurityPolicy* FindPolicy(const std::string& name) const;
};

/// Parses a configuration document. Errors carry the line number.
Result<std::unique_ptr<DisclosureConfig>> ParseConfig(std::string_view text);

/// Serializes a configuration; ParseConfig(WriteConfig(c)) reproduces the
/// same schema, views (up to variable naming) and policies.
std::string WriteConfig(const DisclosureConfig& config);

}  // namespace fdc::config
