#include "config/config.h"

#include <vector>

#include "common/string_utils.h"
#include "cq/printer.h"

namespace fdc::config {

namespace {

// Splits a comma-separated list of identifiers; empty items are errors.
Result<std::vector<std::string>> SplitIdentList(std::string_view text,
                                                int line_no) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    std::string_view item = comma == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, comma - start);
    item = TrimView(item);
    if (item.empty()) {
      return Status::ParseError("empty identifier in list at line " +
                                std::to_string(line_no));
    }
    out.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

struct PendingPolicy {
  std::string name;
  std::vector<policy::Partition> partitions;
};

}  // namespace

const policy::SecurityPolicy* DisclosureConfig::FindPolicy(
    const std::string& name) const {
  for (const auto& [policy_name, policy] : policies) {
    if (policy_name == name) return &policy;
  }
  return nullptr;
}

Result<std::unique_ptr<DisclosureConfig>> ParseConfig(std::string_view text) {
  auto config = std::make_unique<DisclosureConfig>();
  config->schema = std::make_unique<cq::Schema>();
  config->catalog = std::make_unique<label::ViewCatalog>(config->schema.get());

  std::vector<PendingPolicy> pending;
  PendingPolicy* open_policy = nullptr;

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view raw = eol == std::string_view::npos
                               ? text.substr(pos)
                               : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments and whitespace.
    size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = TrimView(raw);
    if (line.empty()) continue;

    auto error = [&](const std::string& what) {
      return Status::ParseError(what + " at line " + std::to_string(line_no));
    };

    if (line == "}") {
      if (open_policy == nullptr) return error("unmatched '}'");
      if (open_policy->partitions.empty()) {
        return error("policy '" + open_policy->name + "' has no partitions");
      }
      open_policy = nullptr;
      continue;
    }

    if (open_policy != nullptr) {
      // Inside a policy block: "partition <name>: v1, v2, ..."
      if (!line.starts_with("partition")) {
        return error("expected 'partition' or '}' inside policy block");
      }
      std::string_view rest = TrimView(line.substr(9));
      size_t colon = rest.find(':');
      if (colon == std::string_view::npos) {
        return error("expected ':' after partition name");
      }
      std::string part_name{TrimView(rest.substr(0, colon))};
      if (part_name.empty()) return error("partition needs a name");
      Result<std::vector<std::string>> names =
          SplitIdentList(rest.substr(colon + 1), line_no);
      if (!names.ok()) return names.status();
      policy::Partition partition;
      partition.name = part_name;
      for (const std::string& view_name : *names) {
        const label::SecurityView* view =
            config->catalog->FindByName(view_name);
        if (view == nullptr) {
          return error("unknown view '" + view_name + "' in partition '" +
                       part_name + "'");
        }
        partition.view_ids.push_back(view->id);
      }
      open_policy->partitions.push_back(std::move(partition));
      continue;
    }

    if (line.starts_with("relation")) {
      // relation Name(attr1, attr2, ...)
      std::string_view rest = TrimView(line.substr(8));
      size_t open = rest.find('(');
      size_t close = rest.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        return error("malformed relation declaration");
      }
      std::string name{TrimView(rest.substr(0, open))};
      Result<std::vector<std::string>> attrs =
          SplitIdentList(rest.substr(open + 1, close - open - 1), line_no);
      if (!attrs.ok()) return attrs.status();
      Result<int> id = config->schema->AddRelation(name, std::move(*attrs));
      if (!id.ok()) return error(id.status().message());
      continue;
    }

    if (line.starts_with("view")) {
      // view <name>: <datalog>
      std::string_view rest = TrimView(line.substr(4));
      size_t colon = rest.find(':');
      // Beware: the Datalog body contains ":-"; the *first* colon that is
      // not part of ":-" separates name from definition. A name cannot
      // contain ':', so the first colon works iff it is not followed by '-'.
      if (colon == std::string_view::npos ||
          (colon + 1 < rest.size() && rest[colon + 1] == '-')) {
        return error("expected 'view <name>: <definition>'");
      }
      std::string name{TrimView(rest.substr(0, colon))};
      std::string definition{TrimView(rest.substr(colon + 1))};
      Result<int> id = config->catalog->AddViewText(name, definition);
      if (!id.ok()) return error(id.status().message());
      continue;
    }

    if (line.starts_with("policy")) {
      std::string_view rest = TrimView(line.substr(6));
      if (!rest.ends_with("{")) return error("expected '{' after policy name");
      std::string name{TrimView(rest.substr(0, rest.size() - 1))};
      if (name.empty()) return error("policy needs a name");
      for (const PendingPolicy& p : pending) {
        if (p.name == name) return error("duplicate policy '" + name + "'");
      }
      pending.push_back(PendingPolicy{name, {}});
      open_policy = &pending.back();
      continue;
    }

    return error("unrecognized directive '" +
                 std::string(line.substr(0, line.find(' '))) + "'");
  }
  if (open_policy != nullptr) {
    return Status::ParseError("unterminated policy block '" +
                              open_policy->name + "'");
  }

  // Compile policies last (all views known).
  for (PendingPolicy& p : pending) {
    Result<policy::SecurityPolicy> compiled =
        policy::SecurityPolicy::Compile(*config->catalog,
                                        std::move(p.partitions));
    if (!compiled.ok()) return compiled.status();
    config->policies.emplace_back(p.name, std::move(*compiled));
  }
  return config;
}

std::string WriteConfig(const DisclosureConfig& config) {
  std::string out;
  for (const cq::RelationDef& rel : config.schema->relations()) {
    out += "relation " + rel.name + "(" + JoinStrings(rel.attributes, ", ") +
           ")\n";
  }
  out += "\n";
  for (const label::SecurityView& view : config.catalog->views()) {
    cq::ConjunctiveQuery def = view.pattern.ToQuery(view.name);
    out += "view " + view.name + ": " +
           cq::ToDatalog(def, *config.schema) + "\n";
  }
  for (const auto& [name, policy] : config.policies) {
    out += "\npolicy " + name + " {\n";
    for (const policy::Partition& partition : policy.partitions()) {
      std::vector<std::string> names;
      for (int id : partition.view_ids) {
        names.push_back(config.catalog->view(id).name);
      }
      out += "  partition " + partition.name + ": " +
             JoinStrings(names, ", ") + "\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace fdc::config
