// Tier 2 of the DisclosureEngine: sharded per-principal monitor state.
//
// Per-principal state is the one genuinely mutable piece of the enforcement
// hot path (a 64-bit consistency vector that narrows monotonically, §6.2).
// PrincipalStateMap shards it: principal names hash into one of N shards,
// each an independently locked open-addressed (linear-probing) table, so
// submits from different threads on distinct principals contend only when
// their names land in the same shard — with the default shard count that is
// rare, and the critical section is a probe plus a partition scan, never a
// labeling or containment computation.
//
// Policy-epoch semantics: each slot records the epoch its state was last
// narrowed under, and slots only ever move *forward*. An access with a
// newer epoch resets the slot to that policy's full partition mask —
// partition bit positions are not comparable across policies, so carrying
// consistency bits over an epoch swap would be unsound. An access with an
// *older* epoch (a request that loaded its snapshot just before a swap and
// then lost a race with a post-swap request on the same principal) is
// rejected instead of regressing the slot — regressing would erase the
// newer epoch's accumulated narrowing and let the next new-epoch request
// restart from the full mask, silently forgetting disclosures. The engine
// handles the rejection by reloading the current snapshot and retrying.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "policy/reference_monitor.h"

namespace fdc::engine {

class PrincipalStateMap {
 public:
  explicit PrincipalStateMap(size_t shards = 64) {
    num_shards_ = 1;
    while (num_shards_ < shards) num_shards_ <<= 1;
    shards_ = std::make_unique<Shard[]>(num_shards_);
  }

  /// Runs `fn(policy::PrincipalState&)` under the owning shard's lock and
  /// returns its result wrapped in an optional. The slot is created (or
  /// epoch-advanced-and-reset) with `init_mask` when absent or older than
  /// `epoch`; if the slot has already moved to a NEWER epoch, returns
  /// nullopt without touching it — the caller's snapshot is stale and it
  /// must reload and retry. `fn` must not call back into this map (single
  /// shard lock held throughout).
  template <typename Fn>
  auto TryWithState(std::string_view principal, uint64_t epoch,
                    uint64_t init_mask, Fn&& fn)
      -> std::optional<decltype(fn(std::declval<policy::PrincipalState&>()))> {
    const uint64_t hash = HashName(principal);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    Slot& slot = FindOrCreateLocked(shard, hash, principal);
    if (slot.epoch > epoch) return std::nullopt;  // stale caller; no regress
    if (slot.epoch < epoch) {
      slot.epoch = epoch;
      slot.state.consistent = init_mask;
    }
    return std::forward<Fn>(fn)(slot.state);
  }

  /// The principal's consistent-partition bits under `epoch`: init_mask if
  /// it has not submitted since the epoch began, nullopt if the slot has
  /// already advanced past `epoch` (stale caller — reload the snapshot).
  /// Does not create or mutate a slot.
  std::optional<uint64_t> Consistent(std::string_view principal,
                                     uint64_t epoch,
                                     uint64_t init_mask) const {
    const uint64_t hash = HashName(principal);
    const Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::vector<Slot>& slots = shard.slots;
    if (slots.empty()) return init_mask;
    const size_t mask = slots.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots[i];
      if (!slot.used) return init_mask;
      if (slot.hash == hash && slot.name == principal) {
        if (slot.epoch > epoch) return std::nullopt;
        return slot.epoch == epoch ? slot.state.consistent : init_mask;
      }
    }
  }

  size_t NumPrincipals() const {
    size_t total = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      total += shards_[s].used;
    }
    return total;
  }

  size_t num_shards() const { return num_shards_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    bool used = false;
    std::string name;
    uint64_t epoch = 0;
    policy::PrincipalState state;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;  // open-addressed, power-of-two size
    size_t used = 0;
  };

  static uint64_t HashName(std::string_view name) {
    // FNV-1a, then a splitmix-style finalizer so shard selection (high
    // bits) and slot selection (low bits) are both well mixed.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return h;
  }

  Shard& ShardFor(uint64_t hash) const {
    return shards_[(hash >> 48) & (num_shards_ - 1)];
  }

  // Requires shard.mu held.
  Slot& FindOrCreateLocked(Shard& shard, uint64_t hash,
                           std::string_view name) {
    if (shard.slots.empty()) shard.slots.resize(16);
    // Grow at ~70% load so probe chains stay short.
    if (shard.used * 10 >= shard.slots.size() * 7) GrowLocked(shard);
    const size_t mask = shard.slots.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = shard.slots[i];
      if (!slot.used) {
        slot.used = true;
        slot.hash = hash;
        slot.name = std::string(name);
        ++shard.used;
        return slot;
      }
      if (slot.hash == hash && slot.name == name) return slot;
    }
  }

  static void GrowLocked(Shard& shard) {
    std::vector<Slot> old = std::move(shard.slots);
    shard.slots.assign(old.size() * 2, Slot{});
    const size_t mask = shard.slots.size() - 1;
    for (Slot& slot : old) {
      if (!slot.used) continue;
      size_t i = slot.hash & mask;
      while (shard.slots[i].used) i = (i + 1) & mask;
      shard.slots[i] = std::move(slot);
    }
  }

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace fdc::engine
