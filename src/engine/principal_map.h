// Tier 2 of the DisclosureEngine: sharded per-principal monitor state with a
// bounded lifecycle.
//
// Per-principal state is the one genuinely mutable piece of the enforcement
// hot path (a 64-bit consistency vector that narrows monotonically, §6.2).
// PrincipalStateMap shards it: principal names hash into one of N shards,
// each an independently locked open-addressed (linear-probing, backward-
// shift deletion) table, so submits from different threads on distinct
// principals contend only when their names land in the same shard — with the
// default shard count that is rare, and the critical section is a probe plus
// a partition scan, never a labeling or containment computation.
//
// Lifecycle (PR 5): app-ecosystem principal populations are huge and heavily
// long-tailed, so a map that only ever grows is an unbounded leak — but
// naive forgetting is *unsound*: a reclaimed-then-returning principal would
// restart at the policy's full partition mask and could extract more than
// any single partition allows. The map therefore reclaims in two sound ways:
//
//   * Capacity: `PrincipalMapOptions::max_principals` bounds live slots.
//     When a shard is full, inserting a new principal first evicts the
//     shard's least-recently-used slot (per-slot idle-clock stamps).
//   * TTL: `Sweep()` reclaims every slot idle for more than
//     `idle_ttl_ticks` ticks of the map's logical clock (`AdvanceClock()`,
//     driven by the engine's sweep cadence).
//
// Eviction reclaims the expensive parts of a slot — the name string and the
// probe slot — but not the principal's narrowing: if the slot's consistency
// bits have narrowed below the epoch's initial mask, a compact *residual*
// record (name fingerprint → epoch + consistent bits, 24 bytes) is kept in a
// per-shard side table. A returning principal rehydrates its residual and
// resumes narrowing exactly where it left off; it never widens. Slots that
// never narrowed need no residual (re-creation at the initial mask is
// byte-identical), which keeps the residual store proportional to the
// *narrowed* churned population, not to total churn.
//
// Residuals are keyed by the 64-bit name hash only. A fingerprint collision
// makes two principals share one record; records merge by ANDing the
// consistency bits, which is strictly narrowing — stricter-never-looser, so
// collisions can only over-refuse, never over-disclose. For the same
// reason rehydration COPIES the record rather than consuming it (erasing
// it when the first colliding principal returned would forget the other's
// narrowing — an over-disclosure): a record lives until an epoch swap
// drops it, is never consulted while its principal's slot is live, and
// re-evicting the slot AND-merges the further-narrowed bits back in.
//
// Policy-epoch semantics: each slot records the epoch its state was last
// narrowed under, and slots only ever move *forward*. An access with a
// newer epoch resets the slot to that policy's full partition mask —
// partition bit positions are not comparable across policies, so carrying
// consistency bits over an epoch swap would be unsound. An access with an
// *older* epoch (a request that loaded its snapshot just before a swap and
// then lost a race with a post-swap request on the same principal) is
// rejected instead of regressing the slot — regressing would erase the
// newer epoch's accumulated narrowing and let the next new-epoch request
// restart from the full mask, silently forgetting disclosures. The engine
// handles the rejection by reloading the current snapshot and retrying.
//
// Epochs are also the residual store's natural TTL: consistency bits never
// transfer across policy epochs, so once the engine publishes epoch E,
// every residual with an older epoch is dead weight.
// `DropResidualsBefore(E)` frees them all and raises the shard's *floor
// epoch*: accesses older than the floor are rejected like any other stale
// access (their residuals are gone, so letting them re-create state at the
// dropped epoch would silently forget disclosures — the exact unsoundness
// eviction must avoid). Callers must use epochs >= 1; epoch 0 is the
// empty-residual sentinel.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "policy/reference_monitor.h"

namespace fdc::engine {

/// Namespace-scope (not nested) so it can brace-default in signatures —
/// mirrors ConcurrentLabelerOptions.
struct PrincipalMapOptions {
  /// Shard count (rounded up to a power of two).
  size_t shards = 64;
  /// Live-slot capacity across all shards; 0 = unbounded (the pre-lifecycle
  /// behavior). Enforced per shard as ceil(max_principals / shards), so the
  /// effective global bound rounds up to a shard multiple (and hash skew
  /// inside one shard can never push the total past it).
  size_t max_principals = 0;
  /// Slots idle for more than this many logical-clock ticks are reclaimed
  /// by Sweep(); 0 disables TTL eviction (Sweep is then a no-op).
  uint64_t idle_ttl_ticks = 0;
};

class PrincipalStateMap {
 public:
  /// Lifecycle counters, summed across shards under their locks.
  struct Stats {
    size_t live = 0;            // live slots (== NumPrincipals())
    size_t residuals = 0;       // residual records currently held
    size_t residual_bytes = 0;  // bytes backing the residual tables
    uint64_t evictions = 0;     // slots reclaimed = capacity + ttl
    uint64_t capacity_evictions = 0;
    uint64_t ttl_evictions = 0;
    uint64_t residual_hits = 0;   // returning principals resumed a residual
    uint64_t residual_drops = 0;  // residuals discarded (older epoch)
  };

  explicit PrincipalStateMap(PrincipalMapOptions options = {});
  explicit PrincipalStateMap(size_t shards)
      : PrincipalStateMap(PrincipalMapOptions{.shards = shards}) {}

  /// Runs `fn(policy::PrincipalState&)` under the owning shard's lock and
  /// returns its result wrapped in an optional. The slot is created (or
  /// epoch-advanced-and-reset) with `init_mask` when absent or older than
  /// `epoch`; an evicted principal returning under the epoch its residual
  /// was taken at resumes that narrowed state instead. If the slot (or the
  /// shard's floor epoch) has already moved to a NEWER epoch, returns
  /// nullopt without touching it — the caller's snapshot is stale and it
  /// must reload and retry. `fn` must not call back into this map (single
  /// shard lock held throughout). Requires epoch >= 1.
  template <typename Fn>
  auto TryWithState(std::string_view principal, uint64_t epoch,
                    uint64_t init_mask, Fn&& fn)
      -> std::optional<decltype(fn(std::declval<policy::PrincipalState&>()))> {
    const uint64_t hash = HashName(principal);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    policy::PrincipalState* state =
        AccessLocked(shard, hash, principal, epoch, init_mask);
    if (state == nullptr) return std::nullopt;  // stale caller; no regress
    return std::forward<Fn>(fn)(*state);
  }

  /// The principal's consistent-partition bits under `epoch`: the live
  /// slot's bits, an evicted principal's residual bits, or init_mask if it
  /// has not submitted since the epoch began; nullopt if the slot, residual
  /// or shard floor has already advanced past `epoch` (stale caller —
  /// reload the snapshot). Does not create or mutate a slot.
  std::optional<uint64_t> Consistent(std::string_view principal,
                                     uint64_t epoch,
                                     uint64_t init_mask) const;

  /// Advances the idle clock by one tick and returns the new value. Slots
  /// are stamped with the clock value current at access time; the engine
  /// ticks the clock once per sweep, so idle_ttl_ticks is measured in
  /// sweep periods.
  uint64_t AdvanceClock() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Reclaims every slot idle for more than idle_ttl_ticks clock ticks
  /// (storing residuals for narrowed slots). Returns slots evicted. No-op
  /// when idle_ttl_ticks == 0.
  size_t Sweep();

  /// Frees every residual narrowed under an epoch older than `epoch` (they
  /// can never be resumed: consistency bits do not transfer across epochs)
  /// and raises the floor so accesses older than `epoch` are refused as
  /// stale. Called by the engine after publishing epoch `epoch`. Returns
  /// the number of residuals dropped.
  size_t DropResidualsBefore(uint64_t epoch);

  size_t NumPrincipals() const {
    size_t total = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mu);
      total += shards_[s].used;
    }
    return total;
  }

  size_t num_shards() const { return num_shards_; }
  Stats stats() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    bool used = false;
    std::string name;
    uint64_t epoch = 0;
    uint64_t init_mask = 0;  // the epoch's full mask; != consistent means
                             // the slot has narrowed and needs a residual
    uint64_t last_used = 0;  // idle-clock stamp (LRU order within a shard)
    policy::PrincipalState state;
  };

  // One evicted principal's resumable narrowing. 24 bytes vs a Slot's
  // string + table overhead; epoch == 0 marks an empty table entry.
  struct Residual {
    uint64_t fingerprint = 0;
    uint64_t epoch = 0;
    uint64_t consistent = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Slot> slots;  // open-addressed, power-of-two size
    size_t used = 0;
    std::vector<Residual> residuals;  // open-addressed by fingerprint
    size_t residuals_used = 0;
    // Accesses with epoch < floor_epoch are refused: their epoch's
    // residuals may have been dropped, so touching state for it again
    // could silently forget disclosures.
    uint64_t floor_epoch = 0;
    // Lifecycle counters (guarded by mu, summed by stats()).
    uint64_t capacity_evictions = 0;
    uint64_t ttl_evictions = 0;
    uint64_t residual_hits = 0;
    uint64_t residual_drops = 0;
  };

  static uint64_t HashName(std::string_view name) {
    // FNV-1a, then a splitmix-style finalizer so shard selection (high
    // bits) and slot selection (low bits) are both well mixed.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return h;
  }

  Shard& ShardFor(uint64_t hash) const {
    return shards_[(hash >> 48) & (num_shards_ - 1)];
  }

  /// Find-or-create with the full lifecycle applied: floor/epoch staleness
  /// checks, capacity eviction, residual rehydration, LRU stamping.
  /// Returns nullptr when the caller's epoch is stale. Requires shard.mu.
  policy::PrincipalState* AccessLocked(Shard& shard, uint64_t hash,
                                       std::string_view name, uint64_t epoch,
                                       uint64_t init_mask);

  // The locked helpers below all require shard.mu held.
  Slot* FindSlotLocked(const Shard& shard, uint64_t hash,
                       std::string_view name) const;
  void RemoveSlotLocked(Shard& shard, size_t index);  // backward-shift
  bool EvictLruLocked(Shard& shard);
  void EvictSlotLocked(Shard& shard, size_t index);
  void StoreResidualLocked(Shard& shard, const Slot& slot);
  Residual* FindResidualLocked(const Shard& shard, uint64_t fingerprint) const;
  static void RebuildResidualsLocked(Shard& shard, std::vector<Residual> keep);
  static void GrowSlotsLocked(Shard& shard);
  static void RebuildSlotsLocked(Shard& shard, std::vector<Slot> live);

  PrincipalMapOptions options_;
  size_t num_shards_;
  size_t shard_capacity_;  // per-shard live-slot cap; 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> clock_{0};
};

}  // namespace fdc::engine
