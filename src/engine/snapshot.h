// Tier 1 of the DisclosureEngine: build-then-freeze shared state.
//
// The engine splits enforcement state by mutability so that the common case
// — many threads labeling and submitting concurrently — touches no locks on
// anything shared and immutable:
//
//   * FrozenCatalog: everything derivable from the view catalog alone,
//     built once single-threaded and then immutable. Holds the interned
//     view catalog (every view pattern hash-consed into a frozen
//     QueryInterner), each view's own precomputed disclosure label, the
//     rewriting-order closure over catalog views ({v} ⪯ {w} for every
//     pair), and an optional frozen warmup tier: whole-query labels for a
//     representative workload, looked up lock-free before the engine's
//     mutable overlay is consulted.
//
//   * EngineSnapshot: one *policy epoch* — a FrozenCatalog plus a compiled
//     SecurityPolicy and a monotonically increasing epoch id. Snapshots are
//     immutable and published by the engine via an atomic shared_ptr swap,
//     so a policy update never edits state a concurrent request can see:
//     in-flight requests finish against the snapshot they loaded, new
//     requests see the new epoch. Per-principal consistency bits are tagged
//     with the epoch they were narrowed under; a principal's first submit
//     after a swap restarts from the new policy's full partition mask
//     (partition bit positions are meaningless across policies, so carrying
//     bits across epochs would be unsound).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cq/interned.h"
#include "cq/query.h"
#include "label/compiled_matcher.h"
#include "label/compressed_label.h"
#include "label/dissect.h"
#include "label/view_catalog.h"
#include "policy/policy.h"

namespace fdc::engine {

class FrozenCatalog {
 public:
  /// Builds the frozen tier: compiles the catalog's matcher automaton
  /// (label::CompiledCatalogMatcher), interns every catalog view pattern,
  /// labels each view's defining query, closes the single-atom rewriting
  /// order over the catalog, and pre-labels `warmup` queries into the
  /// frozen label table. Single-threaded; the result is immutable and every
  /// const method below is safe from any number of threads without locks.
  static std::shared_ptr<const FrozenCatalog> Build(
      const label::ViewCatalog* catalog,
      std::span<const cq::ConjunctiveQuery> warmup = {},
      label::DissectOptions dissect_options = {});

  const label::ViewCatalog& catalog() const { return *catalog_; }
  const label::DissectOptions& dissect_options() const {
    return dissect_options_;
  }

  /// The catalog's compiled matcher automaton — the frozen tier owns the
  /// compiled artifact; every labeling consumer (overlay, stateless
  /// fallback, pipelines built over this catalog) evaluates this one
  /// instance lock-free. Mask width is per-relation (multi-word beyond 64
  /// views; wide label atoms beyond the packed 32-view capacity), fixed
  /// when this catalog froze.
  const label::CompiledCatalogMatcher& matcher() const { return matcher_; }

  /// Largest per-relation mask word count in the compiled matcher: 1 for
  /// packed-only catalogs, more when some relation carries > 64 views.
  int max_mask_words() const { return matcher_.max_mask_words(); }

  /// Disclosure label of view `id`'s own defining query.
  const label::DisclosureLabel& ViewLabel(int id) const {
    return view_labels_[id];
  }

  /// Rewriting-order closure bit: {view v} ⪯ {view w} (single-atom
  /// rewritability of v in terms of w), precomputed for every catalog pair.
  bool ViewLeq(int v, int w) const {
    return (closure_[static_cast<size_t>(v) * closure_stride_ +
                     (static_cast<size_t>(w) >> 6)] >>
            (static_cast<size_t>(w) & 63)) &
           1;
  }

  /// Frozen warmup label for `query` (up to renaming/atom order), or
  /// nullptr if the structure was not in the warmup set. Lock-free.
  const label::DisclosureLabel* FindLabel(
      const cq::ConjunctiveQuery& query) const;

  int num_views() const { return catalog_->size(); }
  size_t num_frozen_labels() const { return label_by_query_.size(); }

 private:
  FrozenCatalog() = default;

  const label::ViewCatalog* catalog_ = nullptr;
  label::DissectOptions dissect_options_;
  label::CompiledCatalogMatcher matcher_;  // frozen after Build
  cq::QueryInterner interner_;  // frozen after Build; const reads only
  std::unordered_map<int, label::DisclosureLabel> label_by_query_;
  std::vector<label::DisclosureLabel> view_labels_;
  std::vector<uint64_t> closure_;  // row-major bitset, stride in words
  size_t closure_stride_ = 0;
};

/// One immutable policy epoch: the frozen catalog tier plus a compiled
/// policy. Published by DisclosureEngine::UpdatePolicy via atomic
/// shared_ptr exchange; hold the shared_ptr for the duration of a request
/// and every read is consistent.
class EngineSnapshot {
 public:
  EngineSnapshot(std::shared_ptr<const FrozenCatalog> frozen,
                 policy::SecurityPolicy policy, uint64_t epoch)
      : frozen_(std::move(frozen)),
        policy_(std::move(policy)),
        epoch_(epoch) {}

  const FrozenCatalog& frozen() const { return *frozen_; }
  const policy::SecurityPolicy& policy() const { return policy_; }
  uint64_t epoch() const { return epoch_; }

  /// The fully consistent per-principal state under this policy.
  uint64_t InitialMask() const { return policy_.AllPartitionsMask(); }

 private:
  std::shared_ptr<const FrozenCatalog> frozen_;
  policy::SecurityPolicy policy_;
  uint64_t epoch_;
};

}  // namespace fdc::engine
