#include "engine/principal_map.h"

#include <algorithm>

namespace fdc::engine {
namespace {

// Smallest power-of-two table size that keeps `entries` under the ~70% load
// factor the probe chains are tuned for.
size_t TableSizeFor(size_t entries) {
  size_t size = 16;
  while (entries * 10 >= size * 7) size <<= 1;
  return size;
}

}  // namespace

PrincipalStateMap::PrincipalStateMap(PrincipalMapOptions options)
    : options_(options) {
  num_shards_ = 1;
  while (num_shards_ < options.shards) num_shards_ <<= 1;
  shard_capacity_ =
      options.max_principals == 0
          ? 0
          : std::max<size_t>(
                1, (options.max_principals + num_shards_ - 1) / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

policy::PrincipalState* PrincipalStateMap::AccessLocked(Shard& shard,
                                                        uint64_t hash,
                                                        std::string_view name,
                                                        uint64_t epoch,
                                                        uint64_t init_mask) {
  if (epoch < shard.floor_epoch) return nullptr;  // epoch's residuals dropped
  Slot* slot = FindSlotLocked(shard, hash, name);
  if (slot == nullptr) {
    // Make room first: both eviction (backward shift) and growth move
    // slots, so the insert position is computed only after them.
    if (shard_capacity_ != 0 && shard.used >= shard_capacity_) {
      EvictLruLocked(shard);
      ++shard.capacity_evictions;
    }
    if (shard.slots.empty()) shard.slots.resize(16);
    if (shard.used * 10 >= shard.slots.size() * 7) GrowSlotsLocked(shard);
    const size_t mask = shard.slots.size() - 1;
    size_t i = hash & mask;
    while (shard.slots[i].used) i = (i + 1) & mask;
    slot = &shard.slots[i];
    slot->used = true;
    slot->hash = hash;
    slot->name = std::string(name);
    slot->epoch = 0;
    slot->init_mask = 0;
    slot->state.consistent = 0;
    ++shard.used;
    // A returning evicted principal rehydrates its residual and resumes
    // the narrowing it left off with (never the full mask). The residual
    // is COPIED, not consumed: two principals whose names collide on the
    // 64-bit fingerprint share one record, and erasing it when the first
    // of them returns would silently forget the other's narrowing — the
    // over-disclosure collisions must never cause. A lingering record
    // costs 24 bytes until the next epoch swap drops it, and stays exact:
    // re-evicting the live slot AND-merges its (further-narrowed) bits
    // back in, and it is never consulted while the slot exists. Records
    // under an epoch older than the caller's carry nothing resumable and
    // are skipped (DropResidualsBefore reaps them).
    if (const Residual* residual = FindResidualLocked(shard, hash);
        residual != nullptr && residual->epoch >= epoch) {
      slot->epoch = residual->epoch;
      slot->state.consistent = residual->consistent;
      // The residual epoch's init mask is only known when it matches the
      // caller's; 0 otherwise forces a residual at the next eviction —
      // conservative, never unsound.
      slot->init_mask = residual->epoch == epoch ? init_mask : 0;
      if (residual->epoch == epoch) ++shard.residual_hits;
    }
  }
  if (slot->epoch > epoch) return nullptr;  // stale caller; no regress
  if (slot->epoch < epoch) {
    // First touch under a newer policy: restart from its full mask
    // (partition bit positions do not transfer across epochs).
    slot->epoch = epoch;
    slot->state.consistent = init_mask;
  }
  // init_mask is constant per epoch; refreshing keeps slots rehydrated
  // under an older epoch exact once they advance.
  slot->init_mask = init_mask;
  slot->last_used = clock_.load(std::memory_order_relaxed);
  return &slot->state;
}

std::optional<uint64_t> PrincipalStateMap::Consistent(
    std::string_view principal, uint64_t epoch, uint64_t init_mask) const {
  const uint64_t hash = HashName(principal);
  const Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (epoch < shard.floor_epoch) return std::nullopt;
  if (const Slot* slot = FindSlotLocked(shard, hash, principal)) {
    if (slot->epoch > epoch) return std::nullopt;
    return slot->epoch == epoch ? slot->state.consistent : init_mask;
  }
  if (const Residual* residual = FindResidualLocked(shard, hash)) {
    if (residual->epoch > epoch) return std::nullopt;
    if (residual->epoch == epoch) return residual->consistent;
  }
  return init_mask;
}

size_t PrincipalStateMap::Sweep() {
  if (options_.idle_ttl_ticks == 0) return 0;
  const uint64_t now = clock_.load(std::memory_order_relaxed);
  const uint64_t ttl = options_.idle_ttl_ticks;
  size_t evicted = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.used == 0) continue;
    // A racing AdvanceClock + access can stamp a slot with a clock value
    // newer than the `now` this sweep loaded; saturate such slots to idle
    // time 0 (they were just touched) instead of letting the unsigned
    // subtraction underflow and evict the hottest slot.
    const auto idle_for = [now](const Slot& slot) {
      return now >= slot.last_used ? now - slot.last_used : 0;
    };
    bool any_idle = false;
    for (const Slot& slot : shard.slots) {
      if (slot.used && idle_for(slot) > ttl) {
        any_idle = true;
        break;
      }
    }
    if (!any_idle) continue;
    // Evict by rebuilding the table from the survivors: simpler to reason
    // about than chained backward shifts under iteration, and it shrinks
    // the table after a large reclaim.
    std::vector<Slot> live;
    live.reserve(shard.used);
    for (Slot& slot : shard.slots) {
      if (!slot.used) continue;
      if (idle_for(slot) > ttl) {
        if (slot.state.consistent != slot.init_mask &&
            slot.epoch >= shard.floor_epoch) {
          StoreResidualLocked(shard, slot);
        }
        ++shard.ttl_evictions;
        ++evicted;
      } else {
        live.push_back(std::move(slot));
      }
    }
    RebuildSlotsLocked(shard, std::move(live));
  }
  return evicted;
}

size_t PrincipalStateMap::DropResidualsBefore(uint64_t epoch) {
  size_t dropped = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.floor_epoch = std::max(shard.floor_epoch, epoch);
    if (shard.residuals.empty()) continue;
    std::vector<Residual> keep;
    keep.reserve(shard.residuals_used);
    for (const Residual& residual : shard.residuals) {
      if (residual.epoch == 0) continue;
      if (residual.epoch < epoch) {
        ++dropped;
        ++shard.residual_drops;
      } else {
        keep.push_back(residual);
      }
    }
    if (keep.empty()) {
      std::vector<Residual>().swap(shard.residuals);  // free the table
      shard.residuals_used = 0;
      continue;
    }
    RebuildResidualsLocked(shard, std::move(keep));
  }
  return dropped;
}

PrincipalStateMap::Stats PrincipalStateMap::stats() const {
  Stats stats;
  for (size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.live += shard.used;
    stats.residuals += shard.residuals_used;
    stats.residual_bytes += shard.residuals.capacity() * sizeof(Residual);
    stats.capacity_evictions += shard.capacity_evictions;
    stats.ttl_evictions += shard.ttl_evictions;
    stats.residual_hits += shard.residual_hits;
    stats.residual_drops += shard.residual_drops;
  }
  stats.evictions = stats.capacity_evictions + stats.ttl_evictions;
  return stats;
}

PrincipalStateMap::Slot* PrincipalStateMap::FindSlotLocked(
    const Shard& shard, uint64_t hash, std::string_view name) const {
  if (shard.slots.empty()) return nullptr;
  const size_t mask = shard.slots.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const Slot& slot = shard.slots[i];
    if (!slot.used) return nullptr;
    if (slot.hash == hash && slot.name == name) {
      return const_cast<Slot*>(&slot);
    }
  }
}

void PrincipalStateMap::RemoveSlotLocked(Shard& shard, size_t index) {
  // Backward-shift deletion: linear-probe chains stay hole-free, so the
  // unguarded probe loops in FindSlotLocked never break. An entry at j with
  // home position h may move into the hole iff probing from h reaches the
  // hole no later than j (h cyclically outside (hole, j]).
  std::vector<Slot>& slots = shard.slots;
  const size_t mask = slots.size() - 1;
  size_t hole = index;
  for (size_t j = index;;) {
    j = (j + 1) & mask;
    if (!slots[j].used) break;
    const size_t home = slots[j].hash & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      slots[hole] = std::move(slots[j]);
      hole = j;
    }
  }
  slots[hole] = Slot{};
  --shard.used;
}

bool PrincipalStateMap::EvictLruLocked(Shard& shard) {
  // Exact LRU by scanning the whole shard table: O(slots-per-shard) under
  // the shard lock, paid once per new-principal insert when the shard is
  // at capacity. Fine at the intended shape (capacity/shards slots per
  // shard, e.g. 64); a config with few shards and a very large capacity
  // would want an incremental clock-hand instead.
  size_t lru = shard.slots.size();
  uint64_t oldest = 0;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    const Slot& slot = shard.slots[i];
    if (!slot.used) continue;
    if (lru == shard.slots.size() || slot.last_used < oldest) {
      lru = i;
      oldest = slot.last_used;
    }
  }
  if (lru == shard.slots.size()) return false;
  EvictSlotLocked(shard, lru);
  return true;
}

void PrincipalStateMap::EvictSlotLocked(Shard& shard, size_t index) {
  const Slot& slot = shard.slots[index];
  // Reclaim the name string and the probe slot; keep the narrowing. A slot
  // still at its epoch's full mask needs no residual (re-creation restarts
  // at exactly init_mask), and a slot below the floor epoch can never be
  // resumed (its epoch's accesses are refused).
  if (slot.state.consistent != slot.init_mask &&
      slot.epoch >= shard.floor_epoch) {
    StoreResidualLocked(shard, slot);
  }
  RemoveSlotLocked(shard, index);
}

void PrincipalStateMap::StoreResidualLocked(Shard& shard, const Slot& slot) {
  if (Residual* existing = FindResidualLocked(shard, slot.hash)) {
    // Re-eviction or fingerprint collision: newer epoch wins; same-epoch
    // records merge by ANDing — strictly narrowing, so a collision can
    // only over-refuse, never over-disclose.
    if (slot.epoch > existing->epoch) {
      existing->epoch = slot.epoch;
      existing->consistent = slot.state.consistent;
    } else if (slot.epoch == existing->epoch) {
      existing->consistent &= slot.state.consistent;
    }
    return;
  }
  if (shard.residuals.empty() ||
      (shard.residuals_used + 1) * 10 >= shard.residuals.size() * 7) {
    std::vector<Residual> keep;
    keep.reserve(shard.residuals_used);
    for (const Residual& residual : shard.residuals) {
      if (residual.epoch != 0) keep.push_back(residual);
    }
    RebuildResidualsLocked(shard, std::move(keep));
  }
  const size_t mask = shard.residuals.size() - 1;
  size_t i = slot.hash & mask;
  while (shard.residuals[i].epoch != 0) i = (i + 1) & mask;
  shard.residuals[i] =
      Residual{slot.hash, slot.epoch, slot.state.consistent};
  ++shard.residuals_used;
}

PrincipalStateMap::Residual* PrincipalStateMap::FindResidualLocked(
    const Shard& shard, uint64_t fingerprint) const {
  if (shard.residuals.empty()) return nullptr;
  const size_t mask = shard.residuals.size() - 1;
  for (size_t i = fingerprint & mask;; i = (i + 1) & mask) {
    const Residual& residual = shard.residuals[i];
    if (residual.epoch == 0) return nullptr;
    if (residual.fingerprint == fingerprint) {
      return const_cast<Residual*>(&residual);
    }
  }
}

void PrincipalStateMap::RebuildResidualsLocked(Shard& shard,
                                               std::vector<Residual> keep) {
  // Sized for one imminent insert (StoreResidualLocked rebuilds right
  // before inserting); never frees — DropResidualsBefore handles the
  // all-dropped case itself.
  std::vector<Residual> table(TableSizeFor(keep.size() + 1));
  const size_t mask = table.size() - 1;
  for (const Residual& residual : keep) {
    size_t i = residual.fingerprint & mask;
    while (table[i].epoch != 0) i = (i + 1) & mask;
    table[i] = residual;
  }
  shard.residuals.swap(table);
  shard.residuals_used = keep.size();
}

void PrincipalStateMap::GrowSlotsLocked(Shard& shard) {
  std::vector<Slot> old = std::move(shard.slots);
  shard.slots.assign(old.size() * 2, Slot{});
  const size_t mask = shard.slots.size() - 1;
  for (Slot& slot : old) {
    if (!slot.used) continue;
    size_t i = slot.hash & mask;
    while (shard.slots[i].used) i = (i + 1) & mask;
    shard.slots[i] = std::move(slot);
  }
}

void PrincipalStateMap::RebuildSlotsLocked(Shard& shard,
                                           std::vector<Slot> live) {
  std::vector<Slot> table(TableSizeFor(live.size()));
  const size_t mask = table.size() - 1;
  for (Slot& slot : live) {
    size_t i = slot.hash & mask;
    while (table[i].used) i = (i + 1) & mask;
    table[i] = std::move(slot);
  }
  shard.slots.swap(table);
  shard.used = live.size();
}

}  // namespace fdc::engine
