// DisclosureEngine: the shard-aware, thread-safe enforcement core.
//
// One engine instance serves any number of threads. The paper's
// per-principal reference monitor (§3.4/§6.2) is preserved exactly — the
// engine is decision-for-decision identical to the seed
// ReferenceMonitor/GuardedDatabase path (property-tested) — but the state
// behind it is restructured into three tiers:
//
//   1. frozen shared state (engine/snapshot.h): the interned view catalog,
//      precomputed view labels, the rewriting-order closure, and a frozen
//      warmup label table, built once and read lock-free;
//   2. sharded concurrency: the dynamic labeling overlay behind a
//      reader/writer lock (engine/labeler.h), the sharded
//      rewriting::ContainmentCache, and per-principal monitor state in a
//      sharded open-addressed map (engine/principal_map.h) — Submit /
//      SubmitBatch from N threads on distinct principals touch disjoint
//      shard locks and never serialize on labeling hits;
//   3. policy epochs: UpdatePolicy compiles a new EngineSnapshot and
//      publishes it atomically. Every request loads the snapshot exactly
//      once, so it sees one consistent policy — never a half-updated one —
//      and per-principal state is epoch-tagged so stale consistency bits
//      can never leak across policies. Publication is dual-mode
//      (EngineOptions::reclaim / FDC_EPOCH): under kEbr (default) the
//      request path loads an epoch-protected raw pointer under an
//      epoch::Guard — no lock, no refcount traffic — and the retired
//      snapshot is reclaimed through epoch::Domain once every in-flight
//      reader has unpinned; under kLocked the pre-EBR shared_ptr-under-
//      rwlock path is preserved as the property-test oracle.
//
// Ablation/oracle baseline: the seed single-threaded path is kept intact
// behind GuardedDatabase's use_engine=false mode and LabelingPipeline;
// bench/fig_engine_scaling.cc sweeps 1→N threads against this facade.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/locks.h"
#include "common/result.h"
#include "cq/query.h"
#include "cq/sql_parser.h"
#include "engine/labeler.h"
#include "engine/principal_map.h"
#include "engine/snapshot.h"
#include "label/compressed_label.h"
#include "policy/explain.h"
#include "policy/policy.h"
#include "storage/database.h"
#include "storage/tuple.h"

namespace fdc::artifact {
class LoadedPolicyBlob;
}  // namespace fdc::artifact

namespace fdc::engine {

struct EngineOptions {
  /// Per-principal monitor-state lifecycle: shard count, live-slot
  /// capacity, idle TTL (see PrincipalMapOptions). The defaults preserve
  /// the unbounded pre-lifecycle behavior.
  PrincipalMapOptions principals;
  /// Decisions between automatic principal sweeps (each sweep advances the
  /// map's idle clock one tick and reclaims slots idle longer than
  /// principals.idle_ttl_ticks). 0 = sweep only via SweepPrincipals().
  uint64_t principal_sweep_interval = 0;
  /// Dynamic-labeler bounds (see ConcurrentLabeler::Options).
  ConcurrentLabeler::Options labeler;
  /// Dissection options shared by every tier (must not vary per request:
  /// labels are memoized).
  label::DissectOptions dissect;
  /// Read-path reclaim mode for snapshot publication (kAuto defers to
  /// FDC_EPOCH; default ebr). Propagated to the labeler when
  /// labeler.reclaim is also kAuto, so one choice configures the whole
  /// engine read path consistently.
  epoch::ReclaimChoice reclaim = epoch::ReclaimChoice::kAuto;
};

class DisclosureEngine {
 public:
  /// `db` may be null for decision-only use (Submit/SubmitBatch/Explain*);
  /// Query/QuerySql then return InvalidArgument. `catalog` must outlive
  /// the engine. `policy` is copied into the first snapshot (epoch 1).
  /// `warmup` queries are pre-labeled into the lock-free frozen tier.
  DisclosureEngine(const storage::Database* db,
                   const label::ViewCatalog* catalog,
                   policy::SecurityPolicy policy, EngineOptions options = {},
                   std::span<const cq::ConjunctiveQuery> warmup = {});

  /// The current policy snapshot as an owning handle (one shared-lock
  /// acquisition; hold the returned pointer for request scope and every
  /// read is consistent). This is the ownership-transferring API for
  /// control-plane callers (server hello/drain frames, tests); the request
  /// hot path uses the internal epoch-pinned raw-pointer load instead and
  /// never touches this lock in EBR mode.
  std::shared_ptr<const EngineSnapshot> Snapshot() const {
    std::shared_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    return snapshot_;
  }

  epoch::ReclaimMode reclaim_mode() const { return mode_; }

  /// Compiles `policy` into a new snapshot and publishes it atomically.
  /// In-flight requests finish against the snapshot they already loaded
  /// (until the residual drop below refuses them into a retry);
  /// principals' cumulative state restarts at the new epoch. Publishing
  /// also drops every evicted-principal residual narrowed under an older
  /// epoch — consistency bits never transfer across policies, so an epoch
  /// swap is the residual store's natural TTL. Returns the new epoch id.
  /// Safe from any thread; publishers are serialized.
  uint64_t UpdatePolicy(policy::SecurityPolicy policy);

  /// Zero-parse policy rollout: validates the loaded artifact's frozen
  /// layout against this engine's catalog (artifact::ValidateAgainstCatalog
  /// — a blob compiled against a different catalog is rejected, never
  /// misinterpreted), reconstructs the compiled policy, and publishes it.
  /// Returns the new epoch id.
  Result<uint64_t> UpdatePolicy(const artifact::LoadedPolicyBlob& blob);

  /// Shadow-policy mode (staged-rollout divergence auditing): every
  /// subsequent Submit/SubmitBatch/SubmitCoalesced decision is *also*
  /// evaluated against `policy` over an independent per-principal state
  /// map, and the agreement is counted in Stats().shadow — evaluated,
  /// agree, shadow_stricter (live accepted, shadow would refuse),
  /// shadow_looser (live refused, shadow would accept). The returned
  /// decisions and all live monitor state are never affected
  /// (property-tested in tests/shadow_policy_test.cc). Replacing the
  /// shadow policy resets its per-principal state; the divergence
  /// counters are cumulative across shadow policies. Returns the shadow
  /// epoch id. Under concurrent same-principal traffic the live and
  /// shadow orderings can interleave differently, so divergence counts
  /// are exact per-decision comparisons but not a replayable transcript.
  uint64_t SetShadowPolicy(policy::SecurityPolicy policy,
                           std::string policy_name = std::string());

  /// Blob form: validates against this engine's catalog first, and uses
  /// the artifact's embedded policy name for Stats().shadow.policy_name.
  Result<uint64_t> SetShadowPolicy(const artifact::LoadedPolicyBlob& blob);

  /// Stops shadow evaluation and releases the shadow policy and its
  /// per-principal state. The cumulative divergence counters survive.
  void ClearShadowPolicy();

  bool ShadowEnabled() const {
    return shadow_enabled_.load(std::memory_order_acquire);
  }

  /// Advances the principal map's idle clock one tick and reclaims every
  /// slot idle for more than the configured TTL (narrowed slots leave a
  /// resumable residual behind). Returns the number of slots evicted.
  /// Cheap when nothing is idle; safe from any thread. Also runs
  /// automatically every principal_sweep_interval decisions when that
  /// option is set.
  size_t SweepPrincipals();

  /// Stateful decision only (no evaluation): answers iff the principal's
  /// cumulative disclosure stays below some partition of the current
  /// policy; on accept the principal's state narrows. If the principal's
  /// state advanced to a newer epoch while this request held an older
  /// snapshot (a lost race with UpdatePolicy), the request transparently
  /// reloads the current snapshot and retries — slots never regress.
  bool Submit(std::string_view principal, const cq::ConjunctiveQuery& query);

  /// Batched decisions for one principal against one snapshot: the whole
  /// batch is labeled first (sharing the batch's distinct structures), then
  /// submitted under a single shard-lock acquisition. Decision-identical to
  /// calling Submit per query with no interleaved policy swap.
  std::vector<bool> SubmitBatch(std::string_view principal,
                                std::span<const cq::ConjunctiveQuery> queries);

  /// One request of a coalesced cross-principal batch (SubmitCoalesced).
  /// `principal` and `*query` must stay valid for the duration of the call;
  /// the serving front end points these at per-connection state.
  struct SubmitRequest {
    std::string_view principal;
    const cq::ConjunctiveQuery* query = nullptr;
  };

  /// Coalesced decisions across principals: everything a server drained
  /// from one event-loop wake goes through a single batched labeling pass
  /// (batch/SIMD kernel + batch label dedup at the wire path's natural
  /// batch size), then one monitor SubmitBatch per distinct principal
  /// group (arrival order preserved within each principal). Decision-
  /// identical to calling Submit per request in order: principals' monitor
  /// states are independent, so only the per-principal order matters.
  /// `decisions` is resized to requests.size(); when `epochs` is non-null
  /// it receives the epoch each request's decision was made under (groups
  /// racing UpdatePolicy may land on different epochs, exactly like
  /// sequential Submit calls would).
  void SubmitCoalesced(std::span<const SubmitRequest> requests,
                       std::vector<bool>* decisions,
                       std::vector<uint64_t>* epochs = nullptr);

  /// Full guarded query: decide, then evaluate against the database.
  Result<std::vector<storage::Tuple>> Query(const std::string& principal,
                                            const cq::ConjunctiveQuery& query);
  Result<std::vector<storage::Tuple>> QuerySql(const std::string& principal,
                                               const std::string& sql);

  /// The label the monitor uses for `query` (thread-safe; warms caches).
  label::DisclosureLabel Explain(const cq::ConjunctiveQuery& query) {
    return labeler_.Label(query);
  }

  /// Per-partition diagnosis of the decision the monitor *would* make for
  /// `principal` right now, against one consistent snapshot; mutates no
  /// monitor state.
  policy::Explanation ExplainQuery(const std::string& principal,
                                   const cq::ConjunctiveQuery& query);

  /// Remaining consistent partitions under the current epoch (all
  /// partitions if the principal has not submitted since it began).
  uint64_t ConsistentPartitions(std::string_view principal) const;

  const FrozenCatalog& frozen() const { return *frozen_; }

  /// One aggregated view of every tier's counters (per-shard counters
  /// summed; see individual Stats types for the exact meaning of each).
  struct EngineStats {
    uint64_t epoch = 0;
    size_t num_principals = 0;
    /// Principal-lifecycle counters: evictions (capacity + TTL), residual
    /// store occupancy/bytes, resumed returning principals.
    PrincipalStateMap::Stats principal_map;
    size_t frozen_labels = 0;  // structures pre-labeled in the frozen tier
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t refused = 0;
    ConcurrentLabeler::Stats labeler;
    cq::QueryInterner::Stats interner;          // dynamic overlay interner
    rewriting::ContainmentCache::Stats containment;  // sharded cache, summed
    /// Folding's atom-drop hom searches served by a warm thread-local
    /// scratch arena. Process-wide (rewriting::FoldScratchReuses), not
    /// per-engine: it counts every consumer in the process.
    uint64_t fold_scratch_reuses = 0;
    /// Read-path reclamation: the engine's resolved mode plus the shared
    /// epoch::Domain counters (process-wide — every EBR structure retires
    /// through the same domain).
    epoch::ReclaimMode reclaim = epoch::ReclaimMode::kLocked;
    epoch::DomainStats ebr;
    /// Shadow-policy divergence audit (SetShadowPolicy). The counters are
    /// cumulative across shadow policies; epoch/policy_name describe the
    /// currently staged one (enabled=false leaves them zero/empty).
    struct ShadowStats {
      bool enabled = false;
      uint64_t epoch = 0;
      std::string policy_name;
      /// Always agree + shadow_stricter + shadow_looser, in any snapshot.
      uint64_t evaluated = 0;
      uint64_t agree = 0;
      /// Live accepted, shadow would have refused.
      uint64_t shadow_stricter = 0;
      /// Live refused, shadow would have accepted.
      uint64_t shadow_looser = 0;
    };
    ShadowStats shadow;
  };
  EngineStats Stats() const;

 private:
  // Request-scoped snapshot access: constructed once per request (or per
  // retry loop), then Load()/LoadShadow() as often as needed. In EBR mode
  // it pins one epoch::Guard for its lifetime and every load is a single
  // acquire load of the published raw pointer — pointers stay valid until
  // the guard drops because retired snapshots pass through epoch::Domain.
  // In locked mode each load copies the shared_ptr under the reader lock
  // (the pre-EBR path, kept as the oracle). Holding the guard across a
  // retry loop is safe: a pinned epoch also protects pointers published
  // *after* the pin (they retire at an epoch the pin blocks from expiring).
  class SnapshotAccess {
   public:
    explicit SnapshotAccess(const DisclosureEngine* engine)
        : engine_(engine) {
      if (engine_->mode_ == epoch::ReclaimMode::kEbr) guard_.emplace();
    }
    const EngineSnapshot* Load() {
      if (engine_->mode_ == epoch::ReclaimMode::kEbr) {
        return engine_->snapshot_ptr_.load(std::memory_order_acquire);
      }
      owned_ = engine_->Snapshot();
      return owned_.get();
    }
    /// Current shadow snapshot, or nullptr when no shadow policy is staged.
    const EngineSnapshot* LoadShadow() {
      if (engine_->mode_ == epoch::ReclaimMode::kEbr) {
        return engine_->shadow_ptr_.load(std::memory_order_acquire);
      }
      shadow_owned_ = engine_->ShadowSnapshot();
      return shadow_owned_.get();
    }

   private:
    const DisclosureEngine* engine_;
    std::optional<epoch::Guard> guard_;
    std::shared_ptr<const EngineSnapshot> owned_;
    std::shared_ptr<const EngineSnapshot> shadow_owned_;
  };

  const storage::Database* db_;
  std::shared_ptr<const FrozenCatalog> frozen_;
  epoch::ReclaimMode mode_;
  ConcurrentLabeler labeler_;
  PrincipalStateMap principals_;
  // Snapshot publication. The shared_ptr under the rwlock remains the
  // owning store in both modes (and the locked-mode read path — readers
  // copy the pointer under the shared side; deliberately not
  // std::atomic<std::shared_ptr>, whose libstdc++ _Sp_atomic spin-bit
  // protocol trips ThreadSanitizer). In EBR mode the raw pointer below is
  // the read path: published with a release store inside the writer
  // section, loaded with one acquire load under an epoch::Guard, and the
  // displaced snapshot's ownership is parked in a heap holder retired
  // through epoch::Domain so its refcount cannot drop while any reader is
  // still pinned.
  mutable locks::CountedSharedMutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;
  std::atomic<const EngineSnapshot*> snapshot_ptr_{nullptr};
  uint64_t next_epoch_ = 2;  // guarded by snapshot_mu_; epoch 1 = ctor
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  // Shadow-policy state. The snapshot and name share snapshot_mu_ (shadow
  // epochs come from the same counter, so live and shadow epochs are
  // totally ordered); the flag is the request fast path — when false the
  // only shadow cost per decision is one relaxed-ish atomic load.
  std::atomic<bool> shadow_enabled_{false};
  std::shared_ptr<const EngineSnapshot> shadow_snapshot_;  // snapshot_mu_
  // EBR read path for the shadow snapshot, mirroring snapshot_ptr_
  // (nullptr = no shadow staged).
  std::atomic<const EngineSnapshot*> shadow_ptr_{nullptr};
  std::string shadow_name_;                                // snapshot_mu_
  // Shadow decisions narrow their *own* per-principal states; live
  // monitor state is never read or written by shadow evaluation — that
  // separation is what makes shadow mode decision-invisible.
  PrincipalStateMap shadow_principals_;
  // Every shadow-evaluated decision lands in exactly one of these three;
  // Stats() derives `evaluated` as their sum so no separate total can
  // drift out of step in a concurrent snapshot.
  std::atomic<uint64_t> shadow_agree_{0};
  std::atomic<uint64_t> shadow_stricter_{0};
  std::atomic<uint64_t> shadow_looser_{0};
  std::shared_ptr<const EngineSnapshot> ShadowSnapshot() const {
    std::shared_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    return shadow_snapshot_;
  }
  /// Replays one principal's just-decided labels against the shadow
  /// policy and tallies agreement; `live` holds the live decisions in
  /// `labels` order.
  void ShadowEvaluate(std::string_view principal,
                      std::span<const label::DisclosureLabel* const> labels,
                      const std::vector<bool>& live);
  /// Auto-sweep cadence: the thread whose decision count crosses a
  /// multiple of principal_sweep_interval runs one sweep.
  uint64_t sweep_interval_;
  std::atomic<uint64_t> decisions_since_sweep_{0};
  void MaybeAutoSweep(uint64_t decisions);
};

}  // namespace fdc::engine
