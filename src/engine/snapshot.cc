#include "engine/snapshot.h"

#include "label/pipeline.h"
#include "rewriting/atom_rewriting.h"

namespace fdc::engine {

std::shared_ptr<const FrozenCatalog> FrozenCatalog::Build(
    const label::ViewCatalog* catalog,
    std::span<const cq::ConjunctiveQuery> warmup,
    label::DissectOptions dissect_options) {
  auto frozen = std::shared_ptr<FrozenCatalog>(new FrozenCatalog());
  frozen->catalog_ = catalog;
  frozen->dissect_options_ = dissect_options;
  frozen->matcher_ = label::CompiledCatalogMatcher::Compile(*catalog);

  // Label the views' own defining queries and the warmup workload through
  // one LabelingPipeline sharing the frozen interner (so warmup query ids
  // land in the id space FindLabel probes) and the compiled matcher (so
  // build-time labels come from the exact artifact the serving tiers
  // evaluate).
  label::LabelingPipeline pipeline(catalog, &frozen->interner_,
                                   /*cache=*/nullptr, dissect_options,
                                   /*options=*/{}, &frozen->matcher_);
  // Freeze-time labeling runs batched: the views' defining queries and the
  // warmup pool each go through LabelBatch, whose per-relation buckets feed
  // the batch-structured mask kernel — the whole table is labeled in a
  // handful of MatchMaskBatch calls instead of one net pass per atom.
  const int n = catalog->size();
  frozen->view_labels_.reserve(n);
  std::vector<cq::ConjunctiveQuery> view_queries;
  view_queries.reserve(n);
  for (int v = 0; v < n; ++v) {
    view_queries.push_back(catalog->view(v).pattern.ToQuery("V"));
  }
  std::vector<label::DisclosureLabel> view_labels =
      pipeline.LabelBatch(view_queries);
  for (int v = 0; v < n; ++v) {
    const cq::InternedQuery& interned =
        frozen->interner_.Intern(view_queries[static_cast<size_t>(v)]);
    frozen->label_by_query_.emplace(interned.id(),
                                    view_labels[static_cast<size_t>(v)]);
    frozen->view_labels_.push_back(
        std::move(view_labels[static_cast<size_t>(v)]));
  }

  // Rewriting-order closure over catalog views: one bit per ordered pair.
  // O(n²) AtomRewritable calls at build time — fine for real catalogs
  // (tens of views); consumed by explain/analysis tooling and the
  // equivalence tests, not the per-request hot path, so it is paid once
  // here rather than lazily under a lock.
  frozen->closure_stride_ = (static_cast<size_t>(n) + 63) / 64;
  frozen->closure_.assign(static_cast<size_t>(n) * frozen->closure_stride_,
                          0);
  for (int v = 0; v < n; ++v) {
    for (int w = 0; w < n; ++w) {
      if (rewriting::AtomRewritable(catalog->view(v).pattern,
                                    catalog->view(w).pattern)) {
        frozen->closure_[static_cast<size_t>(v) * frozen->closure_stride_ +
                         (static_cast<size_t>(w) >> 6)] |=
            (uint64_t{1} << (static_cast<size_t>(w) & 63));
      }
    }
  }

  // Frozen warmup tier: the whole pool labeled in one batch (LabelBatch
  // computes each distinct structure once; duplicates are memo probes).
  std::vector<label::DisclosureLabel> warmup_labels =
      pipeline.LabelBatch(warmup);
  for (size_t i = 0; i < warmup.size(); ++i) {
    const cq::InternedQuery& interned = frozen->interner_.Intern(warmup[i]);
    auto it = frozen->label_by_query_.find(interned.id());
    if (it == frozen->label_by_query_.end()) {
      frozen->label_by_query_.emplace(interned.id(),
                                      std::move(warmup_labels[i]));
    }
  }
  return frozen;
}

const label::DisclosureLabel* FrozenCatalog::FindLabel(
    const cq::ConjunctiveQuery& query) const {
  const cq::InternedQuery* interned = interner_.Find(query);
  if (interned == nullptr) return nullptr;
  auto it = label_by_query_.find(interned->id());
  if (it == label_by_query_.end()) return nullptr;
  return &it->second;
}

}  // namespace fdc::engine
