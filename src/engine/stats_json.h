// One JSON schema for DisclosureEngine::Stats(), shared by every consumer
// that externalizes engine counters: the serving front end's /stats frame
// (server/disclosure_server.cc) and examples/end_to_end_monitor.cpp print
// byte-identical documents, so dashboards and tests parse one shape.
//
// The document is a flat two-level object mirroring EngineStats' nesting:
//
//   {"epoch": 3,
//    "num_principals": 12, "frozen_labels": 512,
//    "decisions": {"submitted": N, "accepted": N, "refused": N},
//    "principal_lifecycle": {"live": ..., "evictions": ...,
//      "capacity_evictions": ..., "ttl_evictions": ..., "residual_hits": ...,
//      "residual_drops": ..., "residuals": ..., "residual_bytes": ...},
//    "labeler": {"frozen_hits": ..., "overlay_hits": ..., "overlay_misses":
//      ..., "stateless_fallbacks": ..., "compiled_mask_evals": ...,
//      "wide_mask_evals": ..., "batch_mask_evals": ..., "simd_lanes_used":
//      ..., "per_view_tests_avoided": ...},
//    "interner": {"query_hits": ..., "query_misses": ..., "raw_hits": ...,
//      "pattern_hits": ..., "pattern_misses": ...},
//    "containment_cache": {"hits": ..., "misses": ..., "insertions": ...,
//      "evictions": ..., "hom_scratch_reuses": ...},
//    "fold_scratch_reuses": ...,
//    "simd_isa": "avx2"}
//
// All values are non-negative integers except simd_isa (a short lowercase
// token from simd::IsaName — never needs escaping).
//
// Consumers that own counters of their own (the serving front end's
// reap/drain/shed statistics) splice them in as one extra top-level key
// via the two-argument overload — e.g. the server's /stats document is
// the engine document plus a final "server": {...} object. The engine
// cannot depend on the server layer, so the fragment arrives pre-
// serialized; the caller is responsible for it being a valid JSON value.
#pragma once

#include <string>
#include <string_view>

#include "engine/disclosure_engine.h"

namespace fdc::engine {

/// Serializes `stats` into the JSON document described above. Output is
/// deterministic (fixed key order, no whitespace variation) and valid JSON.
std::string StatsToJson(const DisclosureEngine::EngineStats& stats);

/// As above, plus one trailing `"extra_key": <extra_json>` member.
/// `extra_json` must be a complete, valid JSON value (it is spliced in
/// verbatim, unescaped).
std::string StatsToJson(const DisclosureEngine::EngineStats& stats,
                        const char* extra_key, std::string_view extra_json);

}  // namespace fdc::engine
