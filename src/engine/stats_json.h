// One JSON schema for DisclosureEngine::Stats(), shared by every consumer
// that externalizes engine counters: the serving front end's /stats frame
// (server/disclosure_server.cc) and examples/end_to_end_monitor.cpp print
// byte-identical documents, so dashboards and tests parse one shape.
//
// The document is a flat two-level object mirroring EngineStats' nesting:
//
//   {"epoch": 3,
//    "num_principals": 12, "frozen_labels": 512,
//    "decisions": {"submitted": N, "accepted": N, "refused": N},
//    "principal_lifecycle": {"live": ..., "evictions": ...,
//      "capacity_evictions": ..., "ttl_evictions": ..., "residual_hits": ...,
//      "residual_drops": ..., "residuals": ..., "residual_bytes": ...},
//    "labeler": {"frozen_hits": ..., "overlay_hits": ..., "overlay_misses":
//      ..., "stateless_fallbacks": ..., "compiled_mask_evals": ...,
//      "wide_mask_evals": ..., "batch_mask_evals": ..., "simd_lanes_used":
//      ..., "per_view_tests_avoided": ...},
//    "interner": {"query_hits": ..., "query_misses": ..., "raw_hits": ...,
//      "pattern_hits": ..., "pattern_misses": ...},
//    "containment_cache": {"hits": ..., "misses": ..., "insertions": ...,
//      "evictions": ..., "hom_scratch_reuses": ...},
//    "fold_scratch_reuses": ...,
//    "simd_isa": "avx2",
//    "shadow": {"enabled": false, "epoch": ..., "policy_name": "...",
//      "evaluated": ..., "agree": ..., "shadow_stricter": ...,
//      "shadow_looser": ...}}
//
// All values are non-negative integers except simd_isa (a short lowercase
// token from simd::IsaName), shadow.enabled (a bool), and
// shadow.policy_name — free operator-chosen text (SetShadowPolicy /
// a policy artifact's embedded name), emitted through JsonEscape.
//
// Consumers that own counters of their own (the serving front end's
// reap/drain/shed statistics) splice them in as one extra top-level key
// via the two-argument overload — e.g. the server's /stats document is
// the engine document plus a final "server": {...} object. The engine
// cannot depend on the server layer, so the fragment arrives pre-
// serialized; the caller is responsible for it being a valid JSON value.
#pragma once

#include <string>
#include <string_view>

#include "engine/disclosure_engine.h"

namespace fdc::engine {

/// Escapes `s` for inclusion inside a JSON string literal (RFC 8259 §7):
/// quote, backslash, and every control character below 0x20 (\b \f \n \r
/// \t get their short forms, the rest \u00XX). Bytes >= 0x80 pass through
/// only as complete, valid UTF-8 sequences (no overlongs, surrogates, or
/// values past U+10FFFF); every byte of an invalid sequence is emitted as
/// \u00XX so the document stays parseable even when `s` came out of an
/// arbitrary artifact blob. Returns the escaped body WITHOUT surrounding
/// quotes. Anything that emits operator-supplied text into JSON (policy
/// names, file paths) must route through this.
std::string JsonEscape(std::string_view s);

/// Serializes `stats` into the JSON document described above. Output is
/// deterministic (fixed key order, no whitespace variation) and valid JSON.
std::string StatsToJson(const DisclosureEngine::EngineStats& stats);

/// As above, plus one trailing `"extra_key": <extra_json>` member.
/// `extra_json` must be a complete, valid JSON value (it is spliced in
/// verbatim, unescaped).
std::string StatsToJson(const DisclosureEngine::EngineStats& stats,
                        const char* extra_key, std::string_view extra_json);

}  // namespace fdc::engine
