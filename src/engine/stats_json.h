// One JSON schema for DisclosureEngine::Stats(), shared by every consumer
// that externalizes engine counters: the serving front end's /stats frame
// (server/disclosure_server.cc) and examples/end_to_end_monitor.cpp print
// byte-identical documents, so dashboards and tests parse one shape.
//
// The document is a flat two-level object mirroring EngineStats' nesting:
//
//   {"epoch": 3,
//    "num_principals": 12, "frozen_labels": 512,
//    "decisions": {"submitted": N, "accepted": N, "refused": N},
//    "principal_lifecycle": {"live": ..., "evictions": ...,
//      "capacity_evictions": ..., "ttl_evictions": ..., "residual_hits": ...,
//      "residual_drops": ..., "residuals": ..., "residual_bytes": ...},
//    "labeler": {"frozen_hits": ..., "overlay_hits": ..., "overlay_misses":
//      ..., "stateless_fallbacks": ..., "compiled_mask_evals": ...,
//      "wide_mask_evals": ..., "batch_mask_evals": ..., "simd_lanes_used":
//      ..., "per_view_tests_avoided": ...},
//    "interner": {"query_hits": ..., "query_misses": ..., "raw_hits": ...,
//      "pattern_hits": ..., "pattern_misses": ...},
//    "containment_cache": {"hits": ..., "misses": ..., "insertions": ...,
//      "evictions": ..., "hom_scratch_reuses": ...},
//    "fold_scratch_reuses": ...,
//    "simd_isa": "avx2"}
//
// All values are non-negative integers except simd_isa (a short lowercase
// token from simd::IsaName — never needs escaping).
#pragma once

#include <string>

#include "engine/disclosure_engine.h"

namespace fdc::engine {

/// Serializes `stats` into the JSON document described above. Output is
/// deterministic (fixed key order, no whitespace variation) and valid JSON.
std::string StatsToJson(const DisclosureEngine::EngineStats& stats);

}  // namespace fdc::engine
