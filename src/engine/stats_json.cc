#include "engine/stats_json.h"

#include <cinttypes>
#include <cstdint>

#include "common/epoch.h"
#include "common/simd.h"

namespace fdc::engine {

namespace {

// Tiny append-only writer. Keys are fixed literals; string *values* go
// through JsonEscape unconditionally — "known-safe" is not a property the
// writer can check, and shadow-policy names are operator-supplied.
class JsonWriter {
 public:
  void Begin() { out_.push_back('{'); }
  void End() { out_.push_back('}'); }

  void Key(const char* key) {
    if (!first_) out_.push_back(',');
    first_ = false;
    out_.push_back('"');
    out_.append(key);
    out_.append("\":");
  }

  void Field(const char* key, uint64_t value) {
    Key(key);
    out_.append(std::to_string(value));
  }

  void StringField(const char* key, std::string_view value) {
    Key(key);
    out_.push_back('"');
    out_.append(JsonEscape(value));
    out_.push_back('"');
  }

  void BoolField(const char* key, bool value) {
    Key(key);
    out_.append(value ? "true" : "false");
  }

  /// Splices a pre-serialized JSON value in verbatim.
  void RawField(const char* key, std::string_view json) {
    Key(key);
    out_.append(json);
  }

  void BeginObject(const char* key) {
    Key(key);
    out_.push_back('{');
    first_ = true;
  }

  void EndObject() {
    out_.push_back('}');
    first_ = false;
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
  bool first_ = true;
};

}  // namespace

namespace {

/// Length (2..4) of the valid UTF-8 sequence starting at s[i], or 0 when
/// the bytes there are not one (truncated, lone continuation, overlong
/// encoding, surrogate, or beyond U+10FFFF).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  const unsigned char b0 = static_cast<unsigned char>(s[i]);
  size_t len;
  unsigned char lo = 0x80, hi = 0xbf;  // bounds for the first continuation
  if (b0 >= 0xc2 && b0 <= 0xdf) {
    len = 2;
  } else if (b0 >= 0xe0 && b0 <= 0xef) {
    len = 3;
    if (b0 == 0xe0) lo = 0xa0;  // reject overlong
    if (b0 == 0xed) hi = 0x9f;  // reject UTF-16 surrogates
  } else if (b0 >= 0xf0 && b0 <= 0xf4) {
    len = 4;
    if (b0 == 0xf0) lo = 0x90;  // reject overlong
    if (b0 == 0xf4) hi = 0x8f;  // reject > U+10FFFF
  } else {
    return 0;  // continuation byte, or the never-valid 0xc0/0xc1/0xf5..0xff
  }
  if (s.size() - i < len) return 0;
  const unsigned char b1 = static_cast<unsigned char>(s[i + 1]);
  if (b1 < lo || b1 > hi) return 0;
  for (size_t k = 2; k < len; ++k) {
    const unsigned char b = static_cast<unsigned char>(s[i + k]);
    if (b < 0x80 || b > 0xbf) return 0;
  }
  return len;
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x80) {
      // Non-ASCII passes through only as complete, valid UTF-8 sequences;
      // anything else would make the whole document invalid for strict
      // RFC 8259 parsers, so each offending byte becomes a \u00XX escape.
      const size_t len = Utf8SequenceLength(s, i);
      if (len == 0) {
        out.append("\\u00");
        out.push_back(kHex[u >> 4]);
        out.push_back(kHex[u & 0xf]);
        ++i;
      } else {
        out.append(s.substr(i, len));
        i += len;
      }
      continue;
    }
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (u < 0x20) {
          out.append("\\u00");
          out.push_back(kHex[u >> 4]);
          out.push_back(kHex[u & 0xf]);
        } else {
          out.push_back(c);
        }
    }
    ++i;
  }
  return out;
}

std::string StatsToJson(const DisclosureEngine::EngineStats& stats) {
  return StatsToJson(stats, nullptr, {});
}

std::string StatsToJson(const DisclosureEngine::EngineStats& stats,
                        const char* extra_key, std::string_view extra_json) {
  JsonWriter w;
  w.Begin();
  w.Field("epoch", stats.epoch);
  w.Field("num_principals", stats.num_principals);
  w.Field("frozen_labels", stats.frozen_labels);

  w.BeginObject("decisions");
  w.Field("submitted", stats.submitted);
  w.Field("accepted", stats.accepted);
  w.Field("refused", stats.refused);
  w.EndObject();

  w.BeginObject("principal_lifecycle");
  w.Field("live", stats.principal_map.live);
  w.Field("evictions", stats.principal_map.evictions);
  w.Field("capacity_evictions", stats.principal_map.capacity_evictions);
  w.Field("ttl_evictions", stats.principal_map.ttl_evictions);
  w.Field("residual_hits", stats.principal_map.residual_hits);
  w.Field("residual_drops", stats.principal_map.residual_drops);
  w.Field("residuals", stats.principal_map.residuals);
  w.Field("residual_bytes", stats.principal_map.residual_bytes);
  w.EndObject();

  w.BeginObject("labeler");
  w.Field("frozen_hits", stats.labeler.frozen_hits);
  w.Field("overlay_hits", stats.labeler.overlay_hits);
  w.Field("overlay_misses", stats.labeler.overlay_misses);
  w.Field("stateless_fallbacks", stats.labeler.stateless_fallbacks);
  w.Field("compiled_mask_evals", stats.labeler.compiled_mask_evals);
  w.Field("wide_mask_evals", stats.labeler.wide_mask_evals);
  w.Field("batch_mask_evals", stats.labeler.batch_mask_evals);
  w.Field("simd_lanes_used", stats.labeler.simd_lanes_used);
  w.Field("per_view_tests_avoided", stats.labeler.per_view_tests_avoided);
  w.Field("overlay_chunk_hits", stats.labeler.overlay_chunk_hits);
  w.Field("overlay_chunk_publishes", stats.labeler.overlay_chunk_publishes);
  w.Field("overlay_chunk_entries", stats.labeler.overlay_chunk_entries);
  w.Field("overlay_reader_locks", stats.labeler.overlay_reader_locks);
  w.EndObject();

  w.BeginObject("interner");
  w.Field("query_hits", stats.interner.query_hits);
  w.Field("query_misses", stats.interner.query_misses);
  w.Field("raw_hits", stats.interner.raw_hits);
  w.Field("pattern_hits", stats.interner.pattern_hits);
  w.Field("pattern_misses", stats.interner.pattern_misses);
  w.EndObject();

  w.BeginObject("containment_cache");
  w.Field("hits", stats.containment.hits);
  w.Field("misses", stats.containment.misses);
  w.Field("insertions", stats.containment.insertions);
  w.Field("evictions", stats.containment.evictions);
  w.Field("hom_scratch_reuses", stats.containment.hom_scratch_reuses);
  w.EndObject();

  w.Field("fold_scratch_reuses", stats.fold_scratch_reuses);
  w.StringField("simd_isa", simd::IsaName(simd::ActiveIsa()));

  w.BeginObject("ebr");
  w.StringField("mode", stats.reclaim == epoch::ReclaimMode::kEbr ? "ebr"
                                                                  : "locked");
  w.Field("epoch", stats.ebr.epoch);
  w.Field("retired", stats.ebr.retired);
  w.Field("freed", stats.ebr.freed);
  w.Field("pending", stats.ebr.pending);
  w.Field("advances", stats.ebr.advances);
  w.EndObject();

  w.BeginObject("shadow");
  w.BoolField("enabled", stats.shadow.enabled);
  w.Field("epoch", stats.shadow.epoch);
  w.StringField("policy_name", stats.shadow.policy_name);
  w.Field("evaluated", stats.shadow.evaluated);
  w.Field("agree", stats.shadow.agree);
  w.Field("shadow_stricter", stats.shadow.shadow_stricter);
  w.Field("shadow_looser", stats.shadow.shadow_looser);
  w.EndObject();

  if (extra_key != nullptr) w.RawField(extra_key, extra_json);
  w.End();
  return w.Take();
}

}  // namespace fdc::engine
