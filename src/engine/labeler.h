// The engine's shared labeling front end: frozen tier + guarded overlay.
//
// LabelingPipeline memoizes aggressively but is single-threaded by design;
// duplicating one per serving thread duplicates exactly the state interning
// exists to share. ConcurrentLabeler is the thread-safe replacement:
//
//   1. the FrozenCatalog warmup tier is probed first — an immutable
//      interner + label table, read lock-free by any number of threads;
//   2. misses fall into a *dynamic overlay*. Its read side depends on the
//      reclaim mode (Options::reclaim / FDC_EPOCH):
//        * kEbr (default): warm hits take NO lock. An immutable
//          OverlayChunk — the overlay interner's raw and canonical tables
//          plus their memoized labels, frozen into open-addressed arrays —
//          is published through an epoch-protected atomic pointer and
//          probed under an epoch::Guard. The chunk is rebuilt under the
//          write mutex when enough novel structures accumulate
//          (Options::overlay_min_publish + a live-size-proportional
//          threshold, so rebuild work is amortized O(n)) and the old chunk
//          is retired through epoch::Domain, never freed under a reader.
//          Chunk misses (genuinely novel structures, or entries memoized
//          since the last publish) take the exclusive write side to intern
//          and label once. A stale chunk is always *correct* — labels are
//          pure functions of the query — it just under-hits.
//        * kLocked: the pre-EBR rwlock overlay, kept bit-identical as the
//          property-test oracle — repeated structures resolve under the
//          shared (reader) side via QueryInterner::Find; novel structures
//          take the exclusive side.
//      Per-atom ℓ+ masks come from the frozen tier's
//      CompiledCatalogMatcher (one allocation-free pass per atom, read
//      lock-free); the seed per-view kernel — pattern interning + the
//      sharded rewriting::ContainmentCache — stays behind
//      Options::ablate_compiled_matcher as the oracle;
//   3. when the overlay interner saturates (principal-controlled input must
//      not grow memory without bound), novel structures are labeled
//      statelessly via the compiled matcher — a pure function, no locks.
//
// This saturation bound is the labeling-side twin of the principal map's
// capacity/TTL lifecycle (engine/principal_map.h): both cap the only two
// engine tiers that grow with untrusted traffic. Labels are pure functions
// of the query, so overlay saturation merely costs recomputation; monitor
// state is *not* recomputable, which is why the principal map needs its
// residual store where the labeler can simply fall back.
//
// Labels produced here are byte-identical to LabelingPipeline::Label on
// the same catalog — including which relations ride packed vs wide atoms:
// every path evaluates the same Dissect + single-atom rewritability
// decision (the compiled matcher is property-tested mask-for-mask against
// the per-view loop, across the packed 32-view edge), so the engine path
// is decision-equivalent to the seed path. On packed-only catalogs that
// also coincides with LabelerPipeline::LabelPacked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/epoch.h"
#include "common/locks.h"
#include "cq/interned.h"
#include "cq/query.h"
#include "engine/snapshot.h"
#include "label/compressed_label.h"
#include "label/pipeline.h"
#include "rewriting/containment_cache.h"

namespace fdc::engine {

/// Namespace-scope (not nested) so it can brace-default in signatures.
struct ConcurrentLabelerOptions {
  /// Overlay interner growth bound (see LabelingOptions).
  size_t max_interned_queries = 1 << 20;
  /// Overlay whole-query label memo entries kept before a reset.
  size_t max_label_cache = 1 << 20;
  /// Total slots in the sharded containment cache (seed-kernel path only).
  size_t containment_cache_capacity = 1 << 16;
  /// Ablation: per-atom masks via the seed per-view kernel (pattern
  /// interning + ContainmentCache) instead of the compiled matcher. The
  /// seed kernel is packed-only (views with bit ≥ 32 excluded — strictly
  /// higher labels), so this oracle is meaningful on catalogs within the
  /// packed view capacity; the wide path has its own per-view oracle
  /// (LabelerPipeline::LabelWide, tests/wide_matcher_property_test.cc).
  bool ablate_compiled_matcher = false;
  /// Batch ablation: LabelBatch degrades to one Label() per query (the
  /// pre-batch shape) instead of the bucketed MatchMaskBatch path. Labels
  /// are identical either way; isolates the batch kernel in benchmarks.
  bool ablate_batch_kernel = false;
  /// Overlay read-side reclaim mode: kAuto defers to FDC_EPOCH (default
  /// ebr). kLocked preserves the rwlock overlay as the oracle.
  epoch::ReclaimChoice reclaim = epoch::ReclaimChoice::kAuto;
  /// EBR mode: minimum publish pressure (novel memoizations + warm hits
  /// served from the write side because the chunk is stale) before the
  /// overlay chunk is rebuilt and re-published. The effective threshold is
  /// max(overlay_min_publish, live_entries/8), so rebuild cost stays
  /// amortized-linear under novel floods. Tests set 1 for determinism.
  size_t overlay_min_publish = 16;
};

class ConcurrentLabeler {
 public:
  using Options = ConcurrentLabelerOptions;

  struct Stats {
    uint64_t frozen_hits = 0;    // resolved by the lock-free frozen tier
    uint64_t overlay_hits = 0;   // resolved by the shared overlay memo
    uint64_t overlay_misses = 0; // labeled from scratch into the overlay
    uint64_t stateless_fallbacks = 0;  // overlay saturated; pure compute
    uint64_t compiled_mask_evals = 0;  // per-atom masks from the matcher
    // Of those, evaluations over relations beyond the packed view capacity
    // (multi-word wide atoms).
    uint64_t wide_mask_evals = 0;
    // Of those, masks evaluated through the batch-structured kernel
    // (LabelBatch's per-relation buckets via MatchMaskBatch).
    uint64_t batch_mask_evals = 0;
    // 64-bit mask words ANDed by vector (AVX2/NEON) instructions in those
    // batch evaluations; 0 under scalar dispatch (FDC_SIMD=scalar) and for
    // one-word (narrow) relations, which always run the scalar fused loop.
    uint64_t simd_lanes_used = 0;
    // Per-view rewritability tests the seed kernel would have run for
    // those masks.
    uint64_t per_view_tests_avoided = 0;
    // EBR overlay: warm hits served lock-free from the published chunk
    // (a subset of overlay_hits), chunk rebuild/publish count, and entries
    // in the currently published chunk (raw + canonical).
    uint64_t overlay_chunk_hits = 0;
    uint64_t overlay_chunk_publishes = 0;
    uint64_t overlay_chunk_entries = 0;
    // Reader-side (shared) acquisitions of the overlay lock — the bench
    // counter proving the wait-free read path: 0 in EBR mode.
    uint64_t overlay_reader_locks = 0;
  };

  explicit ConcurrentLabeler(std::shared_ptr<const FrozenCatalog> frozen,
                             Options options = {});

  /// Thread-safe label; agrees with LabelingPipeline::Label (and with
  /// LabelerPipeline::LabelPacked on packed-only catalogs).
  label::DisclosureLabel Label(const cq::ConjunctiveQuery& query);

  /// Labels a batch; each distinct novel structure is computed once. On the
  /// compiled path the batch's novel structures resolve through the
  /// batch-structured frozen-tier kernel: one reader section probes the
  /// overlay for every miss, a first writer section interns and dedupes,
  /// the heavy compute (Dissect + per-relation MatchMaskBatch buckets via
  /// label::LabelQueriesBatched) runs with no lock held, and a second
  /// writer section memoizes. `ablate_batch_kernel` (or the seed-kernel
  /// ablation) restores the per-query loop.
  std::vector<label::DisclosureLabel> LabelBatch(
      std::span<const cq::ConjunctiveQuery> queries);

  /// Same batched labeling over non-contiguous queries (one pointer per
  /// query). This is the serving front end's shape: the coalescing layer
  /// gathers requests that point at per-connection interned templates, so
  /// the batch is naturally a pointer span — labeling must not force a
  /// copy of every query per wake.
  std::vector<label::DisclosureLabel> LabelBatch(
      std::span<const cq::ConjunctiveQuery* const> queries);

  ~ConcurrentLabeler();

  Stats stats() const;
  rewriting::ContainmentCache::Stats cache_stats() const {
    return cache_ != nullptr ? cache_->stats()
                             : rewriting::ContainmentCache::Stats{};
  }
  cq::QueryInterner::Stats interner_stats() const;
  const FrozenCatalog& frozen() const { return *frozen_; }
  epoch::ReclaimMode reclaim_mode() const { return mode_; }

  /// EBR mode: force an overlay chunk rebuild + publish now (no-op in
  /// locked mode). Tests and operators use it to make every memoized entry
  /// immediately probe-able lock-free instead of waiting for publish
  /// pressure to accumulate.
  void PublishOverlayChunk();

 private:
  struct OverlayChunk;
  /// Dissect + compiled-matcher evaluation: pure reads of frozen state plus
  /// relaxed counter bumps, safe from any thread with no locks held.
  label::DisclosureLabel LabelCompiled(const cq::ConjunctiveQuery& query);

  /// Seed-kernel (ablated) labeling; requires mu_ held exclusively — it
  /// mutates the per-pattern mask memo and the overlay pattern interner.
  label::DisclosureLabel ComputeLabelLocked(
      const cq::ConjunctiveQuery& canonical);

  /// EBR write side, mu_ held exclusively: bumps publish pressure and
  /// rebuilds + publishes the chunk when it crosses the threshold.
  void NotePublishPressureLocked();
  void PublishChunkLocked();

  std::shared_ptr<const FrozenCatalog> frozen_;
  Options options_;
  epoch::ReclaimMode mode_;
  label::LabelerPipeline stateless_;  // pure fallback; const methods only
  // Sharded, internally synchronized; only the ablated seed kernel probes
  // it, so it is constructed only when that mode is selected.
  std::unique_ptr<rewriting::ContainmentCache> cache_;

  // Dynamic overlay write side (and, in locked mode, the reader side):
  // QueryInterner::Find + memo probes under shared_lock, interning and
  // labeling of novel structures under unique_lock. In EBR mode readers
  // never touch mu_ — they probe the published chunk below. The mutex type
  // counts shared acquisitions so tests can assert the EBR warm path takes
  // zero reader-side locks.
  mutable locks::CountedSharedMutex mu_;
  cq::QueryInterner interner_;
  std::unordered_map<int, label::DisclosureLabel> label_by_query_;
  std::unordered_map<int, label::PackedAtomLabel> mask_by_pattern_;

  // EBR overlay chunk: immutable snapshot of (raw form | canonical key) ->
  // label, swapped atomically on publish; the old chunk is retired through
  // epoch::Domain. Null until the first publish.
  std::atomic<const OverlayChunk*> chunk_{nullptr};
  // Guarded by mu_ (write side only).
  size_t publish_pressure_ = 0;
  size_t published_entries_ = 0;

  std::atomic<uint64_t> frozen_hits_{0};
  std::atomic<uint64_t> overlay_hits_{0};
  std::atomic<uint64_t> overlay_misses_{0};
  std::atomic<uint64_t> stateless_fallbacks_{0};
  std::atomic<uint64_t> compiled_mask_evals_{0};
  std::atomic<uint64_t> wide_mask_evals_{0};
  std::atomic<uint64_t> batch_mask_evals_{0};
  std::atomic<uint64_t> simd_lanes_used_{0};
  std::atomic<uint64_t> per_view_tests_avoided_{0};
  std::atomic<uint64_t> overlay_chunk_hits_{0};
  std::atomic<uint64_t> overlay_chunk_publishes_{0};
  std::atomic<uint64_t> overlay_chunk_entries_{0};
  std::atomic<uint64_t> overlay_reader_locks_{0};
};

}  // namespace fdc::engine
