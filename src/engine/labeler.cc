#include "engine/labeler.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <string>
#include <utility>

#include "cq/canonical.h"
#include "label/dissect.h"

namespace fdc::engine {

// Immutable snapshot of the overlay's (raw form | canonical key) -> label
// mapping. Built under the write mutex, published through an epoch-protected
// atomic pointer, probed lock-free under an epoch::Guard, retired through
// epoch::Domain when replaced. Two open-addressed tables mirror the
// interner's two levels: byte-identical resubmitted templates hit the raw
// table without paying canonicalization; renamed/reordered variants fall
// through to the canonical-key table.
struct ConcurrentLabeler::OverlayChunk {
  static constexpr uint32_t kEmpty = 0xffffffffu;

  struct Slot {
    uint64_t hash = 0;
    uint32_t idx = kEmpty;
  };

  std::vector<std::pair<cq::ConjunctiveQuery, label::DisclosureLabel>>
      raw_entries;
  std::vector<std::pair<std::string, label::DisclosureLabel>> canon_entries;
  std::vector<Slot> raw_slots;    // power-of-two, linear probing
  std::vector<Slot> canon_slots;  // power-of-two, linear probing

  static uint64_t KeyHash(const std::string& key) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  template <typename Entries, typename HashFn>
  static void BuildTable(const Entries& entries, HashFn&& hash_of,
                         std::vector<Slot>* slots) {
    const size_t n = entries.size();
    const size_t cap = std::max<size_t>(8, std::bit_ceil(2 * n + 1));
    slots->assign(cap, Slot{});
    const size_t mask = cap - 1;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t h = hash_of(entries[i].first);
      size_t pos = static_cast<size_t>(h) & mask;
      while ((*slots)[pos].idx != kEmpty) pos = (pos + 1) & mask;
      (*slots)[pos] = Slot{h, static_cast<uint32_t>(i)};
    }
  }

  void BuildTables() {
    BuildTable(raw_entries, [](const cq::ConjunctiveQuery& q) {
      return cq::QueryInterner::RawHash(q);
    }, &raw_slots);
    BuildTable(canon_entries, [](const std::string& k) { return KeyHash(k); },
               &canon_slots);
  }

  const label::DisclosureLabel* FindRaw(uint64_t hash,
                                        const cq::ConjunctiveQuery& q) const {
    const size_t mask = raw_slots.size() - 1;
    for (size_t pos = static_cast<size_t>(hash) & mask;;
         pos = (pos + 1) & mask) {
      const Slot& slot = raw_slots[pos];
      if (slot.idx == kEmpty) return nullptr;
      if (slot.hash == hash && raw_entries[slot.idx].first == q) {
        return &raw_entries[slot.idx].second;
      }
    }
  }

  const label::DisclosureLabel* FindCanonical(uint64_t hash,
                                              const std::string& key) const {
    const size_t mask = canon_slots.size() - 1;
    for (size_t pos = static_cast<size_t>(hash) & mask;;
         pos = (pos + 1) & mask) {
      const Slot& slot = canon_slots[pos];
      if (slot.idx == kEmpty) return nullptr;
      if (slot.hash == hash && canon_entries[slot.idx].first == key) {
        return &canon_entries[slot.idx].second;
      }
    }
  }
};

ConcurrentLabeler::ConcurrentLabeler(
    std::shared_ptr<const FrozenCatalog> frozen, Options options)
    : frozen_(std::move(frozen)),
      options_(options),
      mode_(epoch::Resolve(options.reclaim)),
      stateless_(&frozen_->catalog(), frozen_->dissect_options()) {
  if (options_.ablate_compiled_matcher) {
    // The cache follows the labeler's resolved mode so one FDC_EPOCH leg
    // exercises one consistent read-path design end to end.
    cache_ = std::make_unique<rewriting::ContainmentCache>(
        options_.containment_cache_capacity, 64,
        mode_ == epoch::ReclaimMode::kEbr ? epoch::ReclaimChoice::kEbr
                                          : epoch::ReclaimChoice::kLocked);
  }
}

ConcurrentLabeler::~ConcurrentLabeler() {
  // Destruction implies no concurrent Label calls on *this*, but a chunk
  // retired earlier may still be pending in the domain; route the live one
  // through the same path rather than deleting inline.
  if (const OverlayChunk* chunk =
          chunk_.exchange(nullptr, std::memory_order_acq_rel)) {
    epoch::Domain::Instance().RetireDelete(chunk);
  }
}

void ConcurrentLabeler::PublishChunkLocked() {
  auto* chunk = new OverlayChunk;
  interner_.ForEachRawEntry([&](const cq::ConjunctiveQuery& raw, int id) {
    auto it = label_by_query_.find(id);
    if (it != label_by_query_.end()) {
      chunk->raw_entries.emplace_back(raw, it->second);
    }
  });
  interner_.ForEachCanonicalKey([&](const std::string& key, int id) {
    auto it = label_by_query_.find(id);
    if (it != label_by_query_.end()) {
      chunk->canon_entries.emplace_back(key, it->second);
    }
  });
  chunk->BuildTables();
  overlay_chunk_entries_.store(
      chunk->raw_entries.size() + chunk->canon_entries.size(),
      std::memory_order_relaxed);
  overlay_chunk_publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_pressure_ = 0;
  published_entries_ = label_by_query_.size();
  const OverlayChunk* old =
      chunk_.exchange(chunk, std::memory_order_acq_rel);
  if (old != nullptr) epoch::Domain::Instance().RetireDelete(old);
}

void ConcurrentLabeler::NotePublishPressureLocked() {
  if (mode_ != epoch::ReclaimMode::kEbr) return;
  ++publish_pressure_;
  const size_t threshold =
      std::max<size_t>(1, std::max(options_.overlay_min_publish,
                                   published_entries_ / 8));
  if (publish_pressure_ >= threshold) PublishChunkLocked();
}

void ConcurrentLabeler::PublishOverlayChunk() {
  if (mode_ != epoch::ReclaimMode::kEbr) return;
  std::unique_lock<locks::CountedSharedMutex> lock(mu_);
  PublishChunkLocked();
}

label::DisclosureLabel ConcurrentLabeler::LabelCompiled(
    const cq::ConjunctiveQuery& query) {
  // One matcher evaluation per atom against the frozen artifact — no
  // pattern interning, no mask memo, no cache probes, no locks. Relations
  // beyond the packed view capacity get exact multi-word wide atoms.
  label::DisclosureLabel label;
  const label::CompiledCatalogMatcher& matcher = frozen_->matcher();
  for (const cq::AtomPattern& atom :
       label::Dissect(query, frozen_->dissect_options())) {
    compiled_mask_evals_.fetch_add(1, std::memory_order_relaxed);
    per_view_tests_avoided_.fetch_add(
        static_cast<uint64_t>(matcher.AvoidedPerViewTests(atom.relation)),
        std::memory_order_relaxed);
    if (matcher.UsesWideMask(atom.relation)) {
      wide_mask_evals_.fetch_add(1, std::memory_order_relaxed);
      label::WideAtomLabel wide;
      matcher.MatchWideAtom(atom, &wide);
      label.AddWide(std::move(wide));
    } else {
      label.Add(matcher.MatchLabel(atom));
    }
  }
  label.Seal();
  return label;
}

label::DisclosureLabel ConcurrentLabeler::ComputeLabelLocked(
    const cq::ConjunctiveQuery& canonical) {
  label::DisclosureLabel label;
  for (const cq::AtomPattern& atom :
       label::Dissect(canonical, frozen_->dissect_options())) {
    const int pattern_id = interner_.InternPattern(atom);
    auto it = mask_by_pattern_.find(pattern_id);
    if (it == mask_by_pattern_.end()) {
      // Same kernel as LabelingPipeline::MaskFor — decision identity with
      // the seed path depends on sharing it, not re-implementing it.
      it = mask_by_pattern_
               .emplace(pattern_id,
                        label::ComputePatternMask(frozen_->catalog(),
                                                  interner_, *cache_,
                                                  pattern_id, atom))
               .first;
    }
    label.Add(it->second);
  }
  label.Seal();
  return label;
}

label::DisclosureLabel ConcurrentLabeler::Label(
    const cq::ConjunctiveQuery& query) {
  // Tier 1: frozen warmup table, no locks.
  if (const label::DisclosureLabel* hit = frozen_->FindLabel(query)) {
    frozen_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  // Tier 2a: EBR mode probes the published chunk under an epoch guard (no
  // lock, no shared state mutation); locked mode takes the shared (reader)
  // side of the overlay lock, exactly the pre-EBR path.
  if (mode_ == epoch::ReclaimMode::kEbr) {
    epoch::Guard guard;
    if (const OverlayChunk* chunk = chunk_.load(std::memory_order_acquire)) {
      if (const label::DisclosureLabel* hit =
              chunk->FindRaw(cq::QueryInterner::RawHash(query), query)) {
        overlay_chunk_hits_.fetch_add(1, std::memory_order_relaxed);
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        return *hit;
      }
      const std::string key = cq::CanonicalKey(query);
      if (const label::DisclosureLabel* hit =
              chunk->FindCanonical(OverlayChunk::KeyHash(key), key)) {
        overlay_chunk_hits_.fetch_add(1, std::memory_order_relaxed);
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        return *hit;
      }
    }
  } else {
    std::shared_lock<locks::CountedSharedMutex> lock(mu_);
    overlay_reader_locks_.fetch_add(1, std::memory_order_relaxed);
    if (const cq::InternedQuery* interned = interner_.Find(query)) {
      auto it = label_by_query_.find(interned->id());
      if (it != label_by_query_.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
  }

  // Tier 2b: label, intern, memoize. On the compiled path the label is
  // computed *before* the writer lock — LabelCompiled only reads frozen
  // state, so N threads labeling distinct novel structures (Dissect,
  // folding's hom searches, the net evaluations) proceed in parallel and
  // the exclusive section shrinks to TryIntern + one memo insert. Labels
  // are pure functions of the structure, so a racing duplicate compute
  // stores the identical value. The ablated seed kernel mutates overlay
  // state (pattern interner + mask memo) and must stay fully locked.
  if (!options_.ablate_compiled_matcher) {
    label::DisclosureLabel label = LabelCompiled(query);
    std::unique_lock<locks::CountedSharedMutex> lock(mu_);
    const cq::InternedQuery* interned =
        interner_.TryIntern(query, options_.max_interned_queries);
    if (interned == nullptr) {
      // Tier 3: overlay saturated; the label is already stateless.
      lock.unlock();
      stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return label;
    }
    auto it = label_by_query_.find(interned->id());
    if (it != label_by_query_.end()) {
      overlay_hits_.fetch_add(1, std::memory_order_relaxed);
      // EBR: a memoized entry the chunk doesn't cover yet — publish
      // pressure, so repeated traffic re-freezes the chunk promptly.
      NotePublishPressureLocked();
      return it->second;
    }
    overlay_misses_.fetch_add(1, std::memory_order_relaxed);
    if (label_by_query_.size() >= options_.max_label_cache) {
      label_by_query_.clear();
    }
    label_by_query_.emplace(interned->id(), label);
    NotePublishPressureLocked();
    return label;
  }

  // Ablated (seed-kernel) path: exclusive intern + label. Double-check
  // under the writer lock: another thread may have labeled the same
  // structure since we unlocked.
  std::unique_lock<locks::CountedSharedMutex> lock(mu_);
  const cq::InternedQuery* interned =
      interner_.TryIntern(query, options_.max_interned_queries);
  if (interned == nullptr) {
    // Tier 3: overlay saturated; pure stateless compute, no shared state.
    lock.unlock();
    stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return stateless_.LabelPacked(query);
  }
  auto it = label_by_query_.find(interned->id());
  if (it != label_by_query_.end()) {
    overlay_hits_.fetch_add(1, std::memory_order_relaxed);
    NotePublishPressureLocked();
    return it->second;
  }
  overlay_misses_.fetch_add(1, std::memory_order_relaxed);
  if (label_by_query_.size() >= options_.max_label_cache) {
    label_by_query_.clear();
  }
  label::DisclosureLabel label = ComputeLabelLocked(interned->query());
  label_by_query_.emplace(interned->id(), label);
  NotePublishPressureLocked();
  return label;
}

std::vector<label::DisclosureLabel> ConcurrentLabeler::LabelBatch(
    std::span<const cq::ConjunctiveQuery> queries) {
  // Forward to the pointer-span core (the serving front end's shape).
  std::vector<const cq::ConjunctiveQuery*> ptrs;
  ptrs.reserve(queries.size());
  for (const cq::ConjunctiveQuery& query : queries) ptrs.push_back(&query);
  return LabelBatch(std::span<const cq::ConjunctiveQuery* const>(ptrs));
}

std::vector<label::DisclosureLabel> ConcurrentLabeler::LabelBatch(
    std::span<const cq::ConjunctiveQuery* const> queries) {
  if (options_.ablate_compiled_matcher || options_.ablate_batch_kernel) {
    // Ablations: the seed kernel mutates overlay state per query, and the
    // batch ablation deliberately restores the pre-batch shape.
    std::vector<label::DisclosureLabel> out;
    out.reserve(queries.size());
    for (const cq::ConjunctiveQuery* query : queries) {
      out.push_back(Label(*query));
    }
    return out;
  }

  std::vector<label::DisclosureLabel> out(queries.size());

  // Tier 1: frozen warmup table, no locks.
  std::vector<size_t> unresolved;
  for (size_t k = 0; k < queries.size(); ++k) {
    if (const label::DisclosureLabel* hit = frozen_->FindLabel(*queries[k])) {
      frozen_hits_.fetch_add(1, std::memory_order_relaxed);
      out[k] = *hit;
    } else {
      unresolved.push_back(k);
    }
  }
  if (unresolved.empty()) return out;

  // Tier 2a: EBR mode probes the published chunk for every miss under one
  // epoch guard (no lock); locked mode keeps the pre-EBR single shared
  // (reader) section.
  if (mode_ == epoch::ReclaimMode::kEbr) {
    epoch::Guard guard;
    if (const OverlayChunk* chunk = chunk_.load(std::memory_order_acquire)) {
      size_t kept = 0;
      for (const size_t k : unresolved) {
        const cq::ConjunctiveQuery& query = *queries[k];
        const label::DisclosureLabel* hit =
            chunk->FindRaw(cq::QueryInterner::RawHash(query), query);
        if (hit == nullptr) {
          const std::string key = cq::CanonicalKey(query);
          hit = chunk->FindCanonical(OverlayChunk::KeyHash(key), key);
        }
        if (hit != nullptr) {
          overlay_chunk_hits_.fetch_add(1, std::memory_order_relaxed);
          overlay_hits_.fetch_add(1, std::memory_order_relaxed);
          out[k] = *hit;
          continue;
        }
        unresolved[kept++] = k;
      }
      unresolved.resize(kept);
    }
  } else {
    std::shared_lock<locks::CountedSharedMutex> lock(mu_);
    overlay_reader_locks_.fetch_add(1, std::memory_order_relaxed);
    size_t kept = 0;
    for (const size_t k : unresolved) {
      if (const cq::InternedQuery* interned = interner_.Find(*queries[k])) {
        auto it = label_by_query_.find(interned->id());
        if (it != label_by_query_.end()) {
          overlay_hits_.fetch_add(1, std::memory_order_relaxed);
          out[k] = it->second;
          continue;
        }
      }
      unresolved[kept++] = k;
    }
    unresolved.resize(kept);
  }
  if (unresolved.empty()) return out;

  // Writer pass 1: intern the misses and dedupe the batch's novel
  // structures (racing threads may have labeled some since the reader
  // probe — those resolve here). Saturated-interner queries get compute
  // slots too; they are just never memoized.
  constexpr int32_t kResolved = -1;
  std::vector<int32_t> slot_of(unresolved.size(), kResolved);
  std::vector<int> slot_id;  // interned id per slot, -1 = stateless
  std::vector<const cq::ConjunctiveQuery*> slot_query;
  std::unordered_map<int, int32_t> first_slot;
  {
    std::unique_lock<locks::CountedSharedMutex> lock(mu_);
    for (size_t u = 0; u < unresolved.size(); ++u) {
      const size_t k = unresolved[u];
      const cq::InternedQuery* interned =
          interner_.TryIntern(*queries[k], options_.max_interned_queries);
      if (interned == nullptr) {
        stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        slot_of[u] = static_cast<int32_t>(slot_id.size());
        slot_id.push_back(-1);
        slot_query.push_back(queries[k]);
        continue;
      }
      const int id = interned->id();
      auto it = label_by_query_.find(id);
      if (it != label_by_query_.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        // Memoized but not yet chunk-visible (EBR): publish pressure.
        NotePublishPressureLocked();
        out[k] = it->second;
        continue;
      }
      auto fit = first_slot.find(id);
      if (fit != first_slot.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        slot_of[u] = fit->second;  // batch-internal duplicate structure
        continue;
      }
      const int32_t slot = static_cast<int32_t>(slot_id.size());
      first_slot.emplace(id, slot);
      slot_of[u] = slot;
      slot_id.push_back(id);
      slot_query.push_back(queries[k]);
    }
  }

  // Heavy compute with no lock held: Dissect + the per-relation
  // MatchMaskBatch buckets over every distinct novel structure at once.
  // Labels are pure functions of the (raw) query — exactly what the
  // per-query compiled path evaluates — so per-thread scratch suffices.
  if (!slot_query.empty()) {
    thread_local label::BatchLabelScratch scratch;
    std::vector<label::DisclosureLabel> computed;
    label::BatchLabelCounters counters;
    label::LabelQueriesBatched(
        frozen_->matcher(), frozen_->dissect_options(),
        std::span<const cq::ConjunctiveQuery* const>(slot_query), &scratch,
        &computed, &counters);
    compiled_mask_evals_.fetch_add(counters.batch_mask_evals,
                                   std::memory_order_relaxed);
    batch_mask_evals_.fetch_add(counters.batch_mask_evals,
                                std::memory_order_relaxed);
    wide_mask_evals_.fetch_add(counters.wide_mask_evals,
                               std::memory_order_relaxed);
    per_view_tests_avoided_.fetch_add(counters.per_view_tests_avoided,
                                      std::memory_order_relaxed);
    simd_lanes_used_.fetch_add(counters.simd_lanes_used,
                               std::memory_order_relaxed);

    // Writer pass 2: memoize the genuinely novel structures. A racing
    // duplicate insert loses harmlessly — labels of one structure are
    // identical by purity.
    {
      std::unique_lock<locks::CountedSharedMutex> lock(mu_);
      for (size_t s = 0; s < slot_id.size(); ++s) {
        if (slot_id[s] < 0) continue;  // stateless: never memoized
        overlay_misses_.fetch_add(1, std::memory_order_relaxed);
        if (label_by_query_.size() >= options_.max_label_cache) {
          label_by_query_.clear();
        }
        label_by_query_.emplace(slot_id[s], computed[s]);
        NotePublishPressureLocked();
      }
    }
    for (size_t u = 0; u < unresolved.size(); ++u) {
      if (slot_of[u] != kResolved) {
        out[unresolved[u]] = computed[static_cast<size_t>(slot_of[u])];
      }
    }
  }
  return out;
}

ConcurrentLabeler::Stats ConcurrentLabeler::stats() const {
  Stats stats;
  stats.frozen_hits = frozen_hits_.load(std::memory_order_relaxed);
  stats.overlay_hits = overlay_hits_.load(std::memory_order_relaxed);
  stats.overlay_misses = overlay_misses_.load(std::memory_order_relaxed);
  stats.stateless_fallbacks =
      stateless_fallbacks_.load(std::memory_order_relaxed);
  stats.compiled_mask_evals =
      compiled_mask_evals_.load(std::memory_order_relaxed);
  stats.wide_mask_evals = wide_mask_evals_.load(std::memory_order_relaxed);
  stats.batch_mask_evals = batch_mask_evals_.load(std::memory_order_relaxed);
  stats.simd_lanes_used = simd_lanes_used_.load(std::memory_order_relaxed);
  stats.per_view_tests_avoided =
      per_view_tests_avoided_.load(std::memory_order_relaxed);
  stats.overlay_chunk_hits =
      overlay_chunk_hits_.load(std::memory_order_relaxed);
  stats.overlay_chunk_publishes =
      overlay_chunk_publishes_.load(std::memory_order_relaxed);
  stats.overlay_chunk_entries =
      overlay_chunk_entries_.load(std::memory_order_relaxed);
  stats.overlay_reader_locks =
      overlay_reader_locks_.load(std::memory_order_relaxed);
  return stats;
}

cq::QueryInterner::Stats ConcurrentLabeler::interner_stats() const {
  std::shared_lock<locks::CountedSharedMutex> lock(mu_);
  return interner_.stats();
}

}  // namespace fdc::engine
