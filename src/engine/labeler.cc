#include "engine/labeler.h"

#include <algorithm>
#include <mutex>

#include "label/dissect.h"

namespace fdc::engine {

ConcurrentLabeler::ConcurrentLabeler(
    std::shared_ptr<const FrozenCatalog> frozen, Options options)
    : frozen_(std::move(frozen)),
      options_(options),
      stateless_(&frozen_->catalog(), frozen_->dissect_options()) {
  if (options_.ablate_compiled_matcher) {
    cache_ = std::make_unique<rewriting::ContainmentCache>(
        options_.containment_cache_capacity);
  }
}

label::DisclosureLabel ConcurrentLabeler::LabelCompiled(
    const cq::ConjunctiveQuery& query) {
  // One matcher evaluation per atom against the frozen artifact — no
  // pattern interning, no mask memo, no cache probes, no locks. Relations
  // beyond the packed view capacity get exact multi-word wide atoms.
  label::DisclosureLabel label;
  const label::CompiledCatalogMatcher& matcher = frozen_->matcher();
  for (const cq::AtomPattern& atom :
       label::Dissect(query, frozen_->dissect_options())) {
    compiled_mask_evals_.fetch_add(1, std::memory_order_relaxed);
    per_view_tests_avoided_.fetch_add(
        static_cast<uint64_t>(matcher.AvoidedPerViewTests(atom.relation)),
        std::memory_order_relaxed);
    if (matcher.UsesWideMask(atom.relation)) {
      wide_mask_evals_.fetch_add(1, std::memory_order_relaxed);
      label::WideAtomLabel wide;
      matcher.MatchWideAtom(atom, &wide);
      label.AddWide(std::move(wide));
    } else {
      label.Add(matcher.MatchLabel(atom));
    }
  }
  label.Seal();
  return label;
}

label::DisclosureLabel ConcurrentLabeler::ComputeLabelLocked(
    const cq::ConjunctiveQuery& canonical) {
  label::DisclosureLabel label;
  for (const cq::AtomPattern& atom :
       label::Dissect(canonical, frozen_->dissect_options())) {
    const int pattern_id = interner_.InternPattern(atom);
    auto it = mask_by_pattern_.find(pattern_id);
    if (it == mask_by_pattern_.end()) {
      // Same kernel as LabelingPipeline::MaskFor — decision identity with
      // the seed path depends on sharing it, not re-implementing it.
      it = mask_by_pattern_
               .emplace(pattern_id,
                        label::ComputePatternMask(frozen_->catalog(),
                                                  interner_, *cache_,
                                                  pattern_id, atom))
               .first;
    }
    label.Add(it->second);
  }
  label.Seal();
  return label;
}

label::DisclosureLabel ConcurrentLabeler::Label(
    const cq::ConjunctiveQuery& query) {
  // Tier 1: frozen warmup table, no locks.
  if (const label::DisclosureLabel* hit = frozen_->FindLabel(query)) {
    frozen_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  // Tier 2a: shared (reader) probe of the overlay.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (const cq::InternedQuery* interned = interner_.Find(query)) {
      auto it = label_by_query_.find(interned->id());
      if (it != label_by_query_.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
  }

  // Tier 2b: label, intern, memoize. On the compiled path the label is
  // computed *before* the writer lock — LabelCompiled only reads frozen
  // state, so N threads labeling distinct novel structures (Dissect,
  // folding's hom searches, the net evaluations) proceed in parallel and
  // the exclusive section shrinks to TryIntern + one memo insert. Labels
  // are pure functions of the structure, so a racing duplicate compute
  // stores the identical value. The ablated seed kernel mutates overlay
  // state (pattern interner + mask memo) and must stay fully locked.
  if (!options_.ablate_compiled_matcher) {
    label::DisclosureLabel label = LabelCompiled(query);
    std::unique_lock<std::shared_mutex> lock(mu_);
    const cq::InternedQuery* interned =
        interner_.TryIntern(query, options_.max_interned_queries);
    if (interned == nullptr) {
      // Tier 3: overlay saturated; the label is already stateless.
      lock.unlock();
      stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return label;
    }
    auto it = label_by_query_.find(interned->id());
    if (it != label_by_query_.end()) {
      overlay_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    overlay_misses_.fetch_add(1, std::memory_order_relaxed);
    if (label_by_query_.size() >= options_.max_label_cache) {
      label_by_query_.clear();
    }
    label_by_query_.emplace(interned->id(), label);
    return label;
  }

  // Ablated (seed-kernel) path: exclusive intern + label. Double-check
  // under the writer lock: another thread may have labeled the same
  // structure since we unlocked.
  std::unique_lock<std::shared_mutex> lock(mu_);
  const cq::InternedQuery* interned =
      interner_.TryIntern(query, options_.max_interned_queries);
  if (interned == nullptr) {
    // Tier 3: overlay saturated; pure stateless compute, no shared state.
    lock.unlock();
    stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return stateless_.LabelPacked(query);
  }
  auto it = label_by_query_.find(interned->id());
  if (it != label_by_query_.end()) {
    overlay_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  overlay_misses_.fetch_add(1, std::memory_order_relaxed);
  if (label_by_query_.size() >= options_.max_label_cache) {
    label_by_query_.clear();
  }
  label::DisclosureLabel label = ComputeLabelLocked(interned->query());
  label_by_query_.emplace(interned->id(), label);
  return label;
}

std::vector<label::DisclosureLabel> ConcurrentLabeler::LabelBatch(
    std::span<const cq::ConjunctiveQuery> queries) {
  // Forward to the pointer-span core (the serving front end's shape).
  std::vector<const cq::ConjunctiveQuery*> ptrs;
  ptrs.reserve(queries.size());
  for (const cq::ConjunctiveQuery& query : queries) ptrs.push_back(&query);
  return LabelBatch(std::span<const cq::ConjunctiveQuery* const>(ptrs));
}

std::vector<label::DisclosureLabel> ConcurrentLabeler::LabelBatch(
    std::span<const cq::ConjunctiveQuery* const> queries) {
  if (options_.ablate_compiled_matcher || options_.ablate_batch_kernel) {
    // Ablations: the seed kernel mutates overlay state per query, and the
    // batch ablation deliberately restores the pre-batch shape.
    std::vector<label::DisclosureLabel> out;
    out.reserve(queries.size());
    for (const cq::ConjunctiveQuery* query : queries) {
      out.push_back(Label(*query));
    }
    return out;
  }

  std::vector<label::DisclosureLabel> out(queries.size());

  // Tier 1: frozen warmup table, no locks.
  std::vector<size_t> unresolved;
  for (size_t k = 0; k < queries.size(); ++k) {
    if (const label::DisclosureLabel* hit = frozen_->FindLabel(*queries[k])) {
      frozen_hits_.fetch_add(1, std::memory_order_relaxed);
      out[k] = *hit;
    } else {
      unresolved.push_back(k);
    }
  }
  if (unresolved.empty()) return out;

  // Tier 2a: one shared (reader) section probes the overlay for every miss.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t kept = 0;
    for (const size_t k : unresolved) {
      if (const cq::InternedQuery* interned = interner_.Find(*queries[k])) {
        auto it = label_by_query_.find(interned->id());
        if (it != label_by_query_.end()) {
          overlay_hits_.fetch_add(1, std::memory_order_relaxed);
          out[k] = it->second;
          continue;
        }
      }
      unresolved[kept++] = k;
    }
    unresolved.resize(kept);
  }
  if (unresolved.empty()) return out;

  // Writer pass 1: intern the misses and dedupe the batch's novel
  // structures (racing threads may have labeled some since the reader
  // probe — those resolve here). Saturated-interner queries get compute
  // slots too; they are just never memoized.
  constexpr int32_t kResolved = -1;
  std::vector<int32_t> slot_of(unresolved.size(), kResolved);
  std::vector<int> slot_id;  // interned id per slot, -1 = stateless
  std::vector<const cq::ConjunctiveQuery*> slot_query;
  std::unordered_map<int, int32_t> first_slot;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (size_t u = 0; u < unresolved.size(); ++u) {
      const size_t k = unresolved[u];
      const cq::InternedQuery* interned =
          interner_.TryIntern(*queries[k], options_.max_interned_queries);
      if (interned == nullptr) {
        stateless_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        slot_of[u] = static_cast<int32_t>(slot_id.size());
        slot_id.push_back(-1);
        slot_query.push_back(queries[k]);
        continue;
      }
      const int id = interned->id();
      auto it = label_by_query_.find(id);
      if (it != label_by_query_.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        out[k] = it->second;
        continue;
      }
      auto fit = first_slot.find(id);
      if (fit != first_slot.end()) {
        overlay_hits_.fetch_add(1, std::memory_order_relaxed);
        slot_of[u] = fit->second;  // batch-internal duplicate structure
        continue;
      }
      const int32_t slot = static_cast<int32_t>(slot_id.size());
      first_slot.emplace(id, slot);
      slot_of[u] = slot;
      slot_id.push_back(id);
      slot_query.push_back(queries[k]);
    }
  }

  // Heavy compute with no lock held: Dissect + the per-relation
  // MatchMaskBatch buckets over every distinct novel structure at once.
  // Labels are pure functions of the (raw) query — exactly what the
  // per-query compiled path evaluates — so per-thread scratch suffices.
  if (!slot_query.empty()) {
    thread_local label::BatchLabelScratch scratch;
    std::vector<label::DisclosureLabel> computed;
    label::BatchLabelCounters counters;
    label::LabelQueriesBatched(
        frozen_->matcher(), frozen_->dissect_options(),
        std::span<const cq::ConjunctiveQuery* const>(slot_query), &scratch,
        &computed, &counters);
    compiled_mask_evals_.fetch_add(counters.batch_mask_evals,
                                   std::memory_order_relaxed);
    batch_mask_evals_.fetch_add(counters.batch_mask_evals,
                                std::memory_order_relaxed);
    wide_mask_evals_.fetch_add(counters.wide_mask_evals,
                               std::memory_order_relaxed);
    per_view_tests_avoided_.fetch_add(counters.per_view_tests_avoided,
                                      std::memory_order_relaxed);
    simd_lanes_used_.fetch_add(counters.simd_lanes_used,
                               std::memory_order_relaxed);

    // Writer pass 2: memoize the genuinely novel structures. A racing
    // duplicate insert loses harmlessly — labels of one structure are
    // identical by purity.
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      for (size_t s = 0; s < slot_id.size(); ++s) {
        if (slot_id[s] < 0) continue;  // stateless: never memoized
        overlay_misses_.fetch_add(1, std::memory_order_relaxed);
        if (label_by_query_.size() >= options_.max_label_cache) {
          label_by_query_.clear();
        }
        label_by_query_.emplace(slot_id[s], computed[s]);
      }
    }
    for (size_t u = 0; u < unresolved.size(); ++u) {
      if (slot_of[u] != kResolved) {
        out[unresolved[u]] = computed[static_cast<size_t>(slot_of[u])];
      }
    }
  }
  return out;
}

ConcurrentLabeler::Stats ConcurrentLabeler::stats() const {
  Stats stats;
  stats.frozen_hits = frozen_hits_.load(std::memory_order_relaxed);
  stats.overlay_hits = overlay_hits_.load(std::memory_order_relaxed);
  stats.overlay_misses = overlay_misses_.load(std::memory_order_relaxed);
  stats.stateless_fallbacks =
      stateless_fallbacks_.load(std::memory_order_relaxed);
  stats.compiled_mask_evals =
      compiled_mask_evals_.load(std::memory_order_relaxed);
  stats.wide_mask_evals = wide_mask_evals_.load(std::memory_order_relaxed);
  stats.batch_mask_evals = batch_mask_evals_.load(std::memory_order_relaxed);
  stats.simd_lanes_used = simd_lanes_used_.load(std::memory_order_relaxed);
  stats.per_view_tests_avoided =
      per_view_tests_avoided_.load(std::memory_order_relaxed);
  return stats;
}

cq::QueryInterner::Stats ConcurrentLabeler::interner_stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return interner_.stats();
}

}  // namespace fdc::engine
