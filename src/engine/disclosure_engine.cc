#include "engine/disclosure_engine.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "artifact/policy_blob.h"
#include "policy/reference_monitor.h"
#include "rewriting/fold.h"
#include "storage/evaluator.h"

namespace fdc::engine {
namespace {

// Propagate the engine's resolved reclaim mode into the labeler unless the
// caller pinned the labeler's mode explicitly — one FDC_EPOCH leg configures
// one consistent read-path design across all three layers.
ConcurrentLabeler::Options ResolvedLabelerOptions(const EngineOptions& options,
                                                  epoch::ReclaimMode mode) {
  ConcurrentLabeler::Options labeler = options.labeler;
  if (labeler.reclaim == epoch::ReclaimChoice::kAuto) {
    labeler.reclaim = mode == epoch::ReclaimMode::kEbr
                          ? epoch::ReclaimChoice::kEbr
                          : epoch::ReclaimChoice::kLocked;
  }
  return labeler;
}

// Parks a displaced snapshot's ownership in the epoch domain: the refcount
// held by the heap holder drops only after every reader pinned at retire
// time has unpinned, so EBR raw-pointer loads stay valid for guard scope.
void RetireSnapshot(std::shared_ptr<const EngineSnapshot> retired) {
  if (retired == nullptr) return;
  auto* holder =
      new std::shared_ptr<const EngineSnapshot>(std::move(retired));
  epoch::Domain::Instance().RetireDelete(holder);
}

}  // namespace

DisclosureEngine::DisclosureEngine(const storage::Database* db,
                                   const label::ViewCatalog* catalog,
                                   policy::SecurityPolicy policy,
                                   EngineOptions options,
                                   std::span<const cq::ConjunctiveQuery> warmup)
    : db_(db),
      frozen_(FrozenCatalog::Build(catalog, warmup, options.dissect)),
      mode_(epoch::Resolve(options.reclaim)),
      labeler_(frozen_, ResolvedLabelerOptions(options, mode_)),
      principals_(options.principals),
      snapshot_(std::make_shared<const EngineSnapshot>(
          frozen_, std::move(policy), /*epoch=*/1)),
      shadow_principals_(options.principals),
      sweep_interval_(options.principal_sweep_interval) {
  snapshot_ptr_.store(snapshot_.get(), std::memory_order_release);
}

uint64_t DisclosureEngine::UpdatePolicy(policy::SecurityPolicy policy) {
  std::shared_ptr<const EngineSnapshot> retired;
  uint64_t epoch;
  {
    // Epoch assignment and publication stay under one writer section so
    // concurrent updaters can never publish out of order. The snapshot is
    // a moved-in policy plus one allocation — cheap enough to build here.
    std::unique_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    epoch = next_epoch_++;
    auto next = std::make_shared<const EngineSnapshot>(
        frozen_, std::move(policy), epoch);
    snapshot_ptr_.store(next.get(), std::memory_order_release);
    retired = std::exchange(snapshot_, std::move(next));
  }
  if (mode_ == epoch::ReclaimMode::kEbr) {
    // EBR readers hold raw pointers, not refcounts — the retired snapshot
    // must outlive every reader pinned before the publish above.
    RetireSnapshot(std::move(retired));
  }
  // Otherwise the retired snapshot releases here; in-flight requests
  // holding their own shared_ptr copies keep it alive until they finish.
  //
  // Residuals narrowed under retired epochs can never be resumed
  // (consistency bits do not transfer across policies) — drop them all and
  // raise the floor, so a straggler still holding a retired snapshot is
  // refused into the standard reload-and-retry path instead of re-creating
  // state whose narrowing was just forgotten.
  principals_.DropResidualsBefore(epoch);
  return epoch;
}

Result<uint64_t> DisclosureEngine::UpdatePolicy(
    const artifact::LoadedPolicyBlob& blob) {
  Status valid = artifact::ValidateAgainstCatalog(blob, frozen_->catalog());
  if (!valid.ok()) return valid;
  Result<policy::SecurityPolicy> policy = artifact::PolicyFromBlob(blob);
  if (!policy.ok()) return policy.status();
  return UpdatePolicy(*std::move(policy));
}

uint64_t DisclosureEngine::SetShadowPolicy(policy::SecurityPolicy policy,
                                           std::string policy_name) {
  uint64_t epoch;
  std::shared_ptr<const EngineSnapshot> retired;
  {
    std::unique_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    epoch = next_epoch_++;
    auto next = std::make_shared<const EngineSnapshot>(
        frozen_, std::move(policy), epoch);
    shadow_ptr_.store(next.get(), std::memory_order_release);
    retired = std::exchange(shadow_snapshot_, std::move(next));
    shadow_name_ = std::move(policy_name);
  }
  if (mode_ == epoch::ReclaimMode::kEbr) RetireSnapshot(std::move(retired));
  // A replaced shadow policy invalidates shadow consistency state exactly
  // like a live swap invalidates live state.
  shadow_principals_.DropResidualsBefore(epoch);
  shadow_enabled_.store(true, std::memory_order_release);
  return epoch;
}

Result<uint64_t> DisclosureEngine::SetShadowPolicy(
    const artifact::LoadedPolicyBlob& blob) {
  Status valid = artifact::ValidateAgainstCatalog(blob, frozen_->catalog());
  if (!valid.ok()) return valid;
  Result<policy::SecurityPolicy> policy = artifact::PolicyFromBlob(blob);
  if (!policy.ok()) return policy.status();
  return SetShadowPolicy(*std::move(policy), blob.meta().name);
}

void DisclosureEngine::ClearShadowPolicy() {
  // Flag first: a request that loads shadow_enabled_ == true right before
  // this still reads a coherent (snapshot, epoch) pair or sees nullptr and
  // skips — either way its live decision is unaffected.
  shadow_enabled_.store(false, std::memory_order_release);
  std::shared_ptr<const EngineSnapshot> retired;
  {
    std::unique_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    shadow_ptr_.store(nullptr, std::memory_order_release);
    retired = std::exchange(shadow_snapshot_, nullptr);
    shadow_name_.clear();
  }
  if (mode_ == epoch::ReclaimMode::kEbr) RetireSnapshot(std::move(retired));
}

void DisclosureEngine::ShadowEvaluate(
    std::string_view principal,
    std::span<const label::DisclosureLabel* const> labels,
    const std::vector<bool>& live) {
  SnapshotAccess access(this);
  for (;;) {
    const EngineSnapshot* snap = access.LoadShadow();
    if (snap == nullptr) return;  // cleared while we were deciding
    const policy::ReferenceMonitor monitor(&snap->policy());
    std::optional<std::vector<bool>> decisions =
        shadow_principals_.TryWithState(
            principal, snap->epoch(), snap->InitialMask(),
            [&](policy::PrincipalState& state) {
              return monitor.SubmitBatch(&state, labels);
            });
    if (!decisions.has_value()) continue;  // raced a shadow swap; reload
    uint64_t agree = 0, stricter = 0, looser = 0;
    for (size_t i = 0; i < decisions->size(); ++i) {
      const bool shadow = (*decisions)[i];
      if (shadow == live[i]) {
        ++agree;
      } else if (live[i]) {
        ++stricter;  // live accepted, candidate would refuse
      } else {
        ++looser;  // live refused, candidate would accept
      }
    }
    shadow_agree_.fetch_add(agree, std::memory_order_relaxed);
    shadow_stricter_.fetch_add(stricter, std::memory_order_relaxed);
    shadow_looser_.fetch_add(looser, std::memory_order_relaxed);
    return;
  }
}

size_t DisclosureEngine::SweepPrincipals() {
  principals_.AdvanceClock();
  return principals_.Sweep();
}

void DisclosureEngine::MaybeAutoSweep(uint64_t decisions) {
  if (sweep_interval_ == 0) return;
  const uint64_t before =
      decisions_since_sweep_.fetch_add(decisions, std::memory_order_relaxed);
  // Exactly the thread that crosses a multiple of the interval sweeps.
  if (before / sweep_interval_ != (before + decisions) / sweep_interval_) {
    SweepPrincipals();
  }
}

bool DisclosureEngine::Submit(std::string_view principal,
                              const cq::ConjunctiveQuery& query) {
  // Labels depend only on the catalog, never the policy — label once,
  // outside the snapshot retry loop.
  const label::DisclosureLabel label = labeler_.Label(query);
  SnapshotAccess access(this);
  for (;;) {
    const EngineSnapshot* snap = access.Load();
    const policy::ReferenceMonitor monitor(&snap->policy());
    const std::optional<bool> ok = principals_.TryWithState(
        principal, snap->epoch(), snap->InitialMask(),
        [&](policy::PrincipalState& state) {
          return monitor.Submit(&state, label);
        });
    if (!ok.has_value()) continue;  // lost a race with a policy swap
    if (*ok) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      refused_.fetch_add(1, std::memory_order_relaxed);
    }
    if (ShadowEnabled()) {
      const label::DisclosureLabel* one[1] = {&label};
      ShadowEvaluate(principal, one, std::vector<bool>{*ok});
    }
    MaybeAutoSweep(1);
    return *ok;
  }
}

std::vector<bool> DisclosureEngine::SubmitBatch(
    std::string_view principal,
    std::span<const cq::ConjunctiveQuery> queries) {
  const std::vector<label::DisclosureLabel> labels =
      labeler_.LabelBatch(queries);
  SnapshotAccess access(this);
  for (;;) {
    const EngineSnapshot* snap = access.Load();
    const policy::ReferenceMonitor monitor(&snap->policy());
    std::optional<std::vector<bool>> decisions = principals_.TryWithState(
        principal, snap->epoch(), snap->InitialMask(),
        [&](policy::PrincipalState& state) {
          return monitor.SubmitBatch(&state, labels);
        });
    if (!decisions.has_value()) continue;  // lost a race with a policy swap
    uint64_t ok = 0;
    for (const bool d : *decisions) ok += d ? 1 : 0;
    accepted_.fetch_add(ok, std::memory_order_relaxed);
    refused_.fetch_add(decisions->size() - ok, std::memory_order_relaxed);
    if (ShadowEnabled()) {
      std::vector<const label::DisclosureLabel*> label_ptrs;
      label_ptrs.reserve(labels.size());
      for (const label::DisclosureLabel& l : labels) label_ptrs.push_back(&l);
      ShadowEvaluate(principal, label_ptrs, *decisions);
    }
    MaybeAutoSweep(decisions->size());
    return *std::move(decisions);
  }
}

void DisclosureEngine::SubmitCoalesced(
    std::span<const SubmitRequest> requests, std::vector<bool>* decisions,
    std::vector<uint64_t>* epochs) {
  // Per-thread scratch: one serving thread calls this once per event-loop
  // wake, so the gather/group vectors stay warm and allocation-free.
  struct Scratch {
    std::vector<const cq::ConjunctiveQuery*> queries;
    std::unordered_map<std::string_view, uint32_t> group_of;
    struct Group {
      std::string_view principal;
      std::vector<uint32_t> indices;  // request indices, arrival order
      std::vector<const label::DisclosureLabel*> labels;
    };
    std::vector<Group> groups;
    size_t groups_used = 0;
  };
  thread_local Scratch scratch;

  decisions->clear();
  decisions->resize(requests.size());
  if (epochs != nullptr) {
    epochs->clear();
    epochs->resize(requests.size());
  }
  if (requests.empty()) return;

  // One batched labeling pass over the whole wake: the batch/SIMD kernel
  // and the batch's distinct-structure dedup see the full coalesced size,
  // not per-connection fragments.
  scratch.queries.clear();
  scratch.queries.reserve(requests.size());
  for (const SubmitRequest& request : requests) {
    scratch.queries.push_back(request.query);
  }
  const std::vector<label::DisclosureLabel> labels = labeler_.LabelBatch(
      std::span<const cq::ConjunctiveQuery* const>(scratch.queries));

  // Group request indices by principal, preserving arrival order within
  // each group (the only order monitor decisions depend on).
  scratch.group_of.clear();
  scratch.groups_used = 0;
  for (uint32_t i = 0; i < requests.size(); ++i) {
    auto [it, inserted] = scratch.group_of.try_emplace(
        requests[i].principal, static_cast<uint32_t>(scratch.groups_used));
    if (inserted) {
      if (scratch.groups_used == scratch.groups.size()) {
        scratch.groups.emplace_back();
      }
      Scratch::Group& group = scratch.groups[scratch.groups_used++];
      group.principal = requests[i].principal;
      group.indices.clear();
      group.labels.clear();
    }
    Scratch::Group& group = scratch.groups[it->second];
    group.indices.push_back(i);
    group.labels.push_back(&labels[i]);
  }

  uint64_t ok_total = 0;
  SnapshotAccess access(this);
  for (size_t g = 0; g < scratch.groups_used; ++g) {
    const Scratch::Group& group = scratch.groups[g];
    for (;;) {
      const EngineSnapshot* snap = access.Load();
      const policy::ReferenceMonitor monitor(&snap->policy());
      std::optional<std::vector<bool>> group_decisions =
          principals_.TryWithState(
              group.principal, snap->epoch(), snap->InitialMask(),
              [&](policy::PrincipalState& state) {
                return monitor.SubmitBatch(
                    &state, std::span<const label::DisclosureLabel* const>(
                                group.labels));
              });
      if (!group_decisions.has_value()) continue;  // raced a policy swap
      for (size_t j = 0; j < group.indices.size(); ++j) {
        const bool d = (*group_decisions)[j];
        (*decisions)[group.indices[j]] = d;
        if (epochs != nullptr) (*epochs)[group.indices[j]] = snap->epoch();
        ok_total += d ? 1 : 0;
      }
      if (ShadowEnabled()) {
        ShadowEvaluate(
            group.principal,
            std::span<const label::DisclosureLabel* const>(group.labels),
            *group_decisions);
      }
      break;
    }
  }
  accepted_.fetch_add(ok_total, std::memory_order_relaxed);
  refused_.fetch_add(requests.size() - ok_total, std::memory_order_relaxed);
  MaybeAutoSweep(requests.size());
}

Result<std::vector<storage::Tuple>> DisclosureEngine::Query(
    const std::string& principal, const cq::ConjunctiveQuery& query) {
  if (db_ == nullptr) {
    return Status::InvalidArgument(
        "engine was constructed without a database; use Submit for "
        "decision-only checks");
  }
  if (!Submit(principal, query)) {
    return Status::PolicyViolation(
        "query refused: cumulative disclosure would exceed every policy "
        "partition for principal '" +
        principal + "'");
  }
  return Evaluate(*db_, query);
}

Result<std::vector<storage::Tuple>> DisclosureEngine::QuerySql(
    const std::string& principal, const std::string& sql) {
  if (db_ == nullptr) {
    return Status::InvalidArgument(
        "engine was constructed without a database; use Submit for "
        "decision-only checks");
  }
  Result<cq::ConjunctiveQuery> parsed = cq::ParseSql(sql, db_->schema());
  if (!parsed.ok()) return parsed.status();
  return Query(principal, *parsed);
}

policy::Explanation DisclosureEngine::ExplainQuery(
    const std::string& principal, const cq::ConjunctiveQuery& query) {
  const label::DisclosureLabel label = labeler_.Label(query);
  SnapshotAccess access(this);
  for (;;) {
    const EngineSnapshot* snap = access.Load();
    const std::optional<uint64_t> consistent = principals_.Consistent(
        principal, snap->epoch(), snap->InitialMask());
    if (!consistent.has_value()) continue;  // raced a policy swap; reload
    return policy::ExplainDecision(snap->policy(), frozen_->catalog(), label,
                                   *consistent);
  }
}

uint64_t DisclosureEngine::ConsistentPartitions(
    std::string_view principal) const {
  SnapshotAccess access(this);
  for (;;) {
    const EngineSnapshot* snap = access.Load();
    const std::optional<uint64_t> consistent = principals_.Consistent(
        principal, snap->epoch(), snap->InitialMask());
    if (consistent.has_value()) return *consistent;
  }
}

DisclosureEngine::EngineStats DisclosureEngine::Stats() const {
  EngineStats stats;
  stats.principal_map = principals_.stats();
  stats.num_principals = stats.principal_map.live;
  stats.frozen_labels = frozen_->num_frozen_labels();
  // Independent relaxed counters: totals may be transiently inconsistent
  // with each other under concurrency, but each is monotone and exact.
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.refused = refused_.load(std::memory_order_relaxed);
  stats.submitted = stats.accepted + stats.refused;
  stats.labeler = labeler_.stats();
  stats.interner = labeler_.interner_stats();
  stats.containment = labeler_.cache_stats();
  stats.fold_scratch_reuses = rewriting::FoldScratchReuses();
  stats.reclaim = mode_;
  stats.ebr = epoch::Domain::Instance().Stats();
  {
    // One snapshot load per Stats call: the live epoch and the shadow
    // fields are read under the same acquisition, so a report can never
    // pair an epoch with shadow state from a different snapshot.
    std::shared_lock<locks::CountedSharedMutex> lock(snapshot_mu_);
    stats.epoch = snapshot_->epoch();
    if (shadow_snapshot_ != nullptr) {
      stats.shadow.enabled =
          shadow_enabled_.load(std::memory_order_acquire);
      stats.shadow.epoch = shadow_snapshot_->epoch();
      stats.shadow.policy_name = shadow_name_;
    }
  }
  // Each outcome counter is an exact monotone count; `evaluated` is
  // derived as their sum rather than kept separately, so the identity
  // evaluated == agree + stricter + looser holds in every snapshot even
  // when the three loads interleave with a concurrent ShadowEvaluate.
  stats.shadow.agree = shadow_agree_.load(std::memory_order_relaxed);
  stats.shadow.shadow_stricter =
      shadow_stricter_.load(std::memory_order_relaxed);
  stats.shadow.shadow_looser =
      shadow_looser_.load(std::memory_order_relaxed);
  stats.shadow.evaluated = stats.shadow.agree + stats.shadow.shadow_stricter +
                           stats.shadow.shadow_looser;
  return stats;
}

}  // namespace fdc::engine
