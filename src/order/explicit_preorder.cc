#include "order/explicit_preorder.h"

#include "common/bit_utils.h"

namespace fdc::order {

uint64_t ExplicitPreorder::FactsOfSet(const ViewSet& w_set) const {
  uint64_t facts = 0;
  for (int w : w_set) facts |= facts_[w];
  return facts;
}

bool ExplicitPreorder::LeqSingle(int v, const ViewSet& w_set) const {
  return IsBitSubset(facts_[v], FactsOfSet(w_set));
}

}  // namespace fdc::order
