// A generic finite disclosure order given by "information contents".
//
// Each universe element v is assigned a finite set of abstract facts f(v);
// the induced order is
//     {v} ⪯ W   iff   f(v) ⊆ ⋃_{w∈W} f(w).
// Every such order satisfies Definition 3.1 by construction (checked
// executably in tests), and the family is expressive enough to produce
// decomposable and non-decomposable universes, and distributive and
// non-distributive disclosure lattices (e.g. the diamond M3 arises from
// facts {1,2}, {2,3}, {1,3}) — which is exactly what the theory-validation
// tests for Theorems 3.3–4.8 need.
//
// The Figure 3 universe is reproduced with
//     f(V1) = {col1, col2, pair},  f(V2) = {ne, col1},
//     f(V4) = {ne, col2},          f(V5) = {ne}.
#pragma once

#include <cstdint>
#include <vector>

#include "order/preorder.h"

namespace fdc::order {

class ExplicitPreorder final : public DisclosureOrder {
 public:
  /// facts[v] is a bitmask over at most 64 abstract facts.
  explicit ExplicitPreorder(std::vector<uint64_t> facts)
      : facts_(std::move(facts)) {}

  bool LeqSingle(int v, const ViewSet& w_set) const override;

  int size() const { return static_cast<int>(facts_.size()); }

  uint64_t FactsOf(int v) const { return facts_[v]; }

  uint64_t FactsOfSet(const ViewSet& w_set) const;

 private:
  std::vector<uint64_t> facts_;
};

}  // namespace fdc::order
