// A finite, enumerated universe of single-atom views (patterns).
//
// §3 works with an abstract finite universe U of views; the concrete
// algorithms of §5 instantiate U with single-atom conjunctive views. This
// class interns AtomPatterns and hands out dense ids, which the order,
// lattice, and labeling code use as view handles.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cq/pattern.h"

namespace fdc::order {

class Universe {
 public:
  /// Interns a pattern; returns its id (existing id if already present).
  int Add(const cq::AtomPattern& pattern);

  /// Id of a pattern, or -1 if not interned.
  int Find(const cq::AtomPattern& pattern) const;

  const cq::AtomPattern& Get(int id) const { return patterns_[id]; }

  int size() const { return static_cast<int>(patterns_.size()); }

  const std::vector<cq::AtomPattern>& patterns() const { return patterns_; }

  /// Enumerates every projection/selection-free pattern over one relation:
  /// all assignments of {distinguished, existential} tags to positions with
  /// all-distinct variables (2^arity patterns — the "all relational
  /// projections" universe of Figure 4). Returns the new ids.
  std::vector<int> AddAllProjections(int relation, int arity);

 private:
  std::vector<cq::AtomPattern> patterns_;
  std::unordered_map<std::string, int> by_key_;
};

}  // namespace fdc::order
