#include "order/down_set.h"

#include <cassert>

#include "common/bit_utils.h"

namespace fdc::order {

uint64_t DownSet(const DisclosureOrder& order, const ViewSet& w_set,
                 int universe_size) {
  assert(universe_size <= 64);
  uint64_t bits = 0;
  for (int v = 0; v < universe_size; ++v) {
    if (order.LeqSingle(v, w_set)) bits |= (1ULL << v);
  }
  return bits;
}

ViewSet BitsToViewSet(uint64_t bits) {
  ViewSet out;
  ForEachBit(bits, [&](int v) { out.push_back(v); });
  return out;
}

uint64_t ViewSetToBits(const ViewSet& set) {
  uint64_t bits = 0;
  for (int v : set) {
    assert(v >= 0 && v < 64);
    bits |= (1ULL << v);
  }
  return bits;
}

}  // namespace fdc::order
