#include "order/down_set.h"

#include <algorithm>

#include "common/bit_utils.h"

namespace fdc::order {

uint64_t DownSet(const DisclosureOrder& order, const ViewSet& w_set,
                 int universe_size) {
  // Wrap-safe at the 64-bit representation edge: views beyond bit 63 cannot
  // be represented, so they are skipped — the returned down-set
  // under-approximates, which is the stricter (fail-safe) direction. The
  // former assert-only guard vanished under NDEBUG and left `1ULL << v`
  // undefined for v >= 64.
  const int bound = std::min(universe_size, 64);
  uint64_t bits = 0;
  for (int v = 0; v < bound; ++v) {
    if (order.LeqSingle(v, w_set)) bits |= (1ULL << v);
  }
  return bits;
}

ViewSet BitsToViewSet(uint64_t bits) {
  ViewSet out;
  ForEachBit(bits, [&](int v) { out.push_back(v); });
  return out;
}

uint64_t ViewSetToBits(const ViewSet& set) {
  uint64_t bits = 0;
  for (int v : set) {
    // Ids outside [0, 64) have no bit; skipping them loses members of the
    // *upper* set W, shrinking ⇓W — again stricter, never looser (and no
    // longer UB under NDEBUG).
    if (v < 0 || v >= 64) continue;
    bits |= (1ULL << v);
  }
  return bits;
}

}  // namespace fdc::order
