#include "order/disclosure_lattice.h"

#include <algorithm>

#include "common/bit_utils.h"

namespace fdc::order {

Result<DisclosureLattice> DisclosureLattice::Build(
    const DisclosureOrder& order, int universe_size) {
  if (universe_size < 0 || universe_size > 16) {
    return Status::OutOfRange(
        "DisclosureLattice materialization supports universes of at most 16 "
        "views; got " +
        std::to_string(universe_size));
  }
  DisclosureLattice lattice(&order, universe_size);
  const uint64_t num_subsets = 1ULL << universe_size;
  std::vector<uint64_t> down_sets;
  down_sets.reserve(num_subsets);
  for (uint64_t bits = 0; bits < num_subsets; ++bits) {
    down_sets.push_back(DownSet(order, BitsToViewSet(bits), universe_size));
  }
  std::sort(down_sets.begin(), down_sets.end());
  down_sets.erase(std::unique(down_sets.begin(), down_sets.end()),
                  down_sets.end());
  lattice.elements_ = std::move(down_sets);

  // Bottom is ⇓∅, top is ⇓U (Theorem 3.3(c)). With elements sorted by the
  // bitmask value, and down-sets ordered by ⊆ implying ≤ on masks is not
  // guaranteed — locate them explicitly.
  lattice.bottom_ = lattice.IndexOf(
      DownSet(order, BitsToViewSet(0), universe_size));
  lattice.top_ = lattice.IndexOf(
      DownSet(order, BitsToViewSet(LowMask(universe_size)), universe_size));
  if (lattice.bottom_ < 0 || lattice.top_ < 0) {
    return Status::Internal("lattice bounds not found");
  }

  // Verify closure under intersection (Theorem 3.3(b)); a failure means
  // `order` is not a disclosure order.
  for (size_t i = 0; i < lattice.elements_.size(); ++i) {
    for (size_t j = i + 1; j < lattice.elements_.size(); ++j) {
      if (lattice.IndexOf(lattice.elements_[i] & lattice.elements_[j]) < 0) {
        return Status::InvalidArgument(
            "down-sets are not closed under intersection; the given order "
            "violates Definition 3.1");
      }
    }
  }
  return lattice;
}

int DisclosureLattice::IndexOf(uint64_t bits) const {
  auto it = std::lower_bound(elements_.begin(), elements_.end(), bits);
  if (it == elements_.end() || *it != bits) return -1;
  return static_cast<int>(it - elements_.begin());
}

int DisclosureLattice::IndexOfDownSet(const ViewSet& w_set) const {
  return IndexOf(DownSet(*order_, w_set, universe_size_));
}

int DisclosureLattice::Glb(int a, int b) const {
  return IndexOf(elements_[a] & elements_[b]);
}

int DisclosureLattice::Lub(int a, int b) const {
  // Theorem 3.3(a): LUB is ⇓ of the union of the generating sets; the
  // down-sets themselves serve as generating sets.
  const uint64_t unioned = elements_[a] | elements_[b];
  return IndexOf(DownSet(*order_, BitsToViewSet(unioned), universe_size_));
}

std::vector<int> DisclosureLattice::LowerCovers(int idx) const {
  std::vector<int> covers;
  for (int c = 0; c < NumElements(); ++c) {
    if (c == idx || !Below(c, idx)) continue;
    bool is_cover = true;
    for (int m = 0; m < NumElements(); ++m) {
      if (m == idx || m == c) continue;
      if (Below(c, m) && Below(m, idx)) {
        is_cover = false;
        break;
      }
    }
    if (is_cover) covers.push_back(c);
  }
  return covers;
}

}  // namespace fdc::order
