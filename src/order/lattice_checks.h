// Executable checks for the order-theoretic results of §3–§4.
//
// These run the paper's definitions and theorems directly on finite
// universes: Definition 3.1 (disclosure-order axioms), Definition 4.7
// (decomposability), Theorem 4.8 (decomposable ⇒ distributive lattice), and
// lattice laws (idempotence, commutativity, associativity, absorption).
// Used by the property-test suites and by policy tooling that wants to
// sanity-check a custom order.
#pragma once

#include "common/status.h"
#include "order/disclosure_lattice.h"
#include "order/preorder.h"

namespace fdc::order {

/// Verifies Definition 3.1 on the full powerset of {0..universe_size-1}:
/// reflexivity, transitivity (sampled triples when exhaustive is too big),
/// property (a) monotonicity under ⊆, and property (b) closure under unions.
/// universe_size must be ≤ 10 for the exhaustive parts.
Status CheckDisclosureOrderAxioms(const DisclosureOrder& order,
                                  int universe_size);

/// Definition 4.7: U is decomposable iff {V} ⪯ W1 ∪ W2 implies {V} ⪯ W1 or
/// {V} ⪯ W2, for all subsets. Exhaustive; universe_size ≤ 10.
bool IsDecomposable(const DisclosureOrder& order, int universe_size);

/// Checks the distributive law a ⊓ (b ⊔ c) = (a ⊓ b) ⊔ (a ⊓ c) over all
/// triples of lattice elements.
bool IsDistributive(const DisclosureLattice& lattice);

/// Checks the basic lattice laws over all pairs/triples: commutativity,
/// associativity, absorption, idempotence, and bound laws.
Status CheckLatticeLaws(const DisclosureLattice& lattice);

}  // namespace fdc::order
