#include "order/lattice_checks.h"

#include <string>

#include "common/bit_utils.h"

namespace fdc::order {

namespace {

std::string SetName(uint64_t bits) {
  std::string out = "{";
  bool first = true;
  ForEachBit(bits, [&](int v) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(v);
  });
  return out + "}";
}

}  // namespace

Status CheckDisclosureOrderAxioms(const DisclosureOrder& order,
                                  int universe_size) {
  if (universe_size > 10) {
    return Status::OutOfRange("exhaustive axiom check limited to 10 views");
  }
  const uint64_t n = 1ULL << universe_size;

  // Reflexivity and property (a): W1 ⊆ W2 ⇒ W1 ⪯ W2.
  for (uint64_t w1 = 0; w1 < n; ++w1) {
    const ViewSet s1 = BitsToViewSet(w1);
    if (!order.Leq(s1, s1)) {
      return Status::Internal("reflexivity fails at " + SetName(w1));
    }
    for (uint64_t w2 = w1; w2 < n; ++w2) {
      if ((w1 & ~w2) == 0) {  // w1 ⊆ w2
        if (!order.Leq(s1, BitsToViewSet(w2))) {
          return Status::Internal("property (a) fails: " + SetName(w1) +
                                  " ⊆ " + SetName(w2) + " but not ⪯");
        }
      }
    }
  }

  // Transitivity over singleton-left chains is what matters given the
  // element-wise structure; check {v} ⪯ W ⪯ W' ⇒ {v} ⪯ W'.
  for (int v = 0; v < universe_size; ++v) {
    for (uint64_t w = 0; w < n; ++w) {
      const ViewSet ws = BitsToViewSet(w);
      if (!order.LeqSingle(v, ws)) continue;
      for (uint64_t w2 = 0; w2 < n; ++w2) {
        const ViewSet w2s = BitsToViewSet(w2);
        if (order.Leq(ws, w2s) && !order.LeqSingle(v, w2s)) {
          return Status::Internal(
              "transitivity fails: {" + std::to_string(v) + "} ⪯ " +
              SetName(w) + " ⪯ " + SetName(w2) + " but {v} not ⪯ the last");
        }
      }
    }
  }

  // Property (b): if every member of a family is ⪯ W0, the union is too.
  // With Leq derived element-wise this is structural, but verify the public
  // contract anyway on all pairs-of-subsets unions.
  for (uint64_t w0 = 0; w0 < n; ++w0) {
    const ViewSet w0s = BitsToViewSet(w0);
    for (uint64_t a = 0; a < n; ++a) {
      if (!order.Leq(BitsToViewSet(a), w0s)) continue;
      for (uint64_t b = 0; b < n; ++b) {
        if (!order.Leq(BitsToViewSet(b), w0s)) continue;
        if (!order.Leq(BitsToViewSet(a | b), w0s)) {
          return Status::Internal("property (b) fails: " + SetName(a) +
                                  " and " + SetName(b) + " ⪯ " + SetName(w0) +
                                  " but their union is not");
        }
      }
    }
  }
  return Status::OK();
}

bool IsDecomposable(const DisclosureOrder& order, int universe_size) {
  const uint64_t n = 1ULL << universe_size;
  for (int v = 0; v < universe_size; ++v) {
    for (uint64_t w1 = 0; w1 < n; ++w1) {
      for (uint64_t w2 = 0; w2 < n; ++w2) {
        const ViewSet u = BitsToViewSet(w1 | w2);
        if (order.LeqSingle(v, u) &&
            !order.LeqSingle(v, BitsToViewSet(w1)) &&
            !order.LeqSingle(v, BitsToViewSet(w2))) {
          return false;
        }
      }
    }
  }
  return true;
}

bool IsDistributive(const DisclosureLattice& lattice) {
  const int n = lattice.NumElements();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      for (int c = 0; c < n; ++c) {
        const int lhs = lattice.Glb(a, lattice.Lub(b, c));
        const int rhs =
            lattice.Lub(lattice.Glb(a, b), lattice.Glb(a, c));
        if (lhs != rhs) return false;
      }
    }
  }
  return true;
}

Status CheckLatticeLaws(const DisclosureLattice& lattice) {
  const int n = lattice.NumElements();
  for (int a = 0; a < n; ++a) {
    if (lattice.Glb(a, a) != a || lattice.Lub(a, a) != a) {
      return Status::Internal("idempotence fails");
    }
    if (lattice.Glb(a, lattice.Bottom()) != lattice.Bottom() ||
        lattice.Lub(a, lattice.Top()) != lattice.Top()) {
      return Status::Internal("bound laws fail");
    }
    for (int b = 0; b < n; ++b) {
      if (lattice.Glb(a, b) != lattice.Glb(b, a) ||
          lattice.Lub(a, b) != lattice.Lub(b, a)) {
        return Status::Internal("commutativity fails");
      }
      if (lattice.Glb(a, lattice.Lub(a, b)) != a ||
          lattice.Lub(a, lattice.Glb(a, b)) != a) {
        return Status::Internal("absorption fails");
      }
      for (int c = 0; c < n; ++c) {
        if (lattice.Glb(a, lattice.Glb(b, c)) !=
            lattice.Glb(lattice.Glb(a, b), c)) {
          return Status::Internal("GLB associativity fails");
        }
        if (lattice.Lub(a, lattice.Lub(b, c)) !=
            lattice.Lub(lattice.Lub(a, b), c)) {
          return Status::Internal("LUB associativity fails");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace fdc::order
