// The usual set order (§3.1): W1 ⪯ W2 iff W1 ⊆ W2.
//
// The simplest example of a disclosure order; included both as a baseline
// for tests and because Definition 3.1 names it explicitly.
#pragma once

#include "order/preorder.h"

namespace fdc::order {

class SetOrder final : public DisclosureOrder {
 public:
  bool LeqSingle(int v, const ViewSet& w_set) const override;
};

}  // namespace fdc::order
