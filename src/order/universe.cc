#include "order/universe.h"

namespace fdc::order {

int Universe::Add(const cq::AtomPattern& pattern) {
  cq::AtomPattern normalized = pattern;
  normalized.Normalize();
  const std::string key = normalized.Key();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  const int id = static_cast<int>(patterns_.size());
  patterns_.push_back(std::move(normalized));
  by_key_.emplace(key, id);
  return id;
}

int Universe::Find(const cq::AtomPattern& pattern) const {
  cq::AtomPattern normalized = pattern;
  normalized.Normalize();
  auto it = by_key_.find(normalized.Key());
  return it == by_key_.end() ? -1 : it->second;
}

std::vector<int> Universe::AddAllProjections(int relation, int arity) {
  std::vector<int> ids;
  ids.reserve(1u << arity);
  for (unsigned mask = 0; mask < (1u << arity); ++mask) {
    cq::AtomPattern p;
    p.relation = relation;
    p.terms.resize(arity);
    for (int pos = 0; pos < arity; ++pos) {
      p.terms[pos].is_const = false;
      p.terms[pos].cls = pos;
      p.terms[pos].distinguished = (mask >> pos) & 1u;
    }
    p.Normalize();
    ids.push_back(Add(p));
  }
  return ids;
}

}  // namespace fdc::order
