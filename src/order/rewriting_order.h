// The equivalent-view-rewriting disclosure order (§3.1, §5) over a Universe
// of single-atom views.
//
// {V} ⪯ W iff V has an equivalent rewriting in terms of the views in W.
// For single-atom V and single-atom views W this reduces to rewritability in
// terms of a single member of W: a multi-view rewriting unfolds to a
// multi-atom query, and for it to be equivalent to the single atom V its
// core must collapse onto one atom — at which point the one view whose atom
// survives in the core already suffices. The reduction is cross-checked
// against the brute-force oracle in tests.
//
// Results of pairwise tests are memoized in a rewriting::ContainmentCache:
// workloads ask the same (pattern, view) pairs millions of times (§7.2).
// Pass a shared cache so every consumer of the same universe (GlbLabeler,
// DisclosureLattice, analyses) hits one bounded table; without one, the
// order creates a private cache.
#pragma once

#include <memory>

#include "order/preorder.h"
#include "order/universe.h"
#include "rewriting/containment_cache.h"

namespace fdc::order {

class RewritingOrder final : public DisclosureOrder {
 public:
  /// `shared_cache` may be null (a private cache is created) but, when
  /// given, must only be keyed with this universe's ids under the
  /// kUniverseRewritable kind — one cache per universe.
  explicit RewritingOrder(const Universe* universe,
                          rewriting::ContainmentCache* shared_cache = nullptr)
      : universe_(universe), cache_(shared_cache) {
    if (cache_ == nullptr) {
      owned_cache_ = std::make_unique<rewriting::ContainmentCache>();
      cache_ = owned_cache_.get();
    }
  }

  bool LeqSingle(int v, const ViewSet& w_set) const override;

  /// Pairwise test {v} ⪯ {w}, memoized.
  bool LeqPair(int v, int w) const;

  const Universe& universe() const { return *universe_; }
  rewriting::ContainmentCache& cache() const { return *cache_; }

 private:
  const Universe* universe_;
  rewriting::ContainmentCache* cache_;
  std::unique_ptr<rewriting::ContainmentCache> owned_cache_;
};

}  // namespace fdc::order
