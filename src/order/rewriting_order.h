// The equivalent-view-rewriting disclosure order (§3.1, §5) over a Universe
// of single-atom views.
//
// {V} ⪯ W iff V has an equivalent rewriting in terms of the views in W.
// For single-atom V and single-atom views W this reduces to rewritability in
// terms of a single member of W: a multi-view rewriting unfolds to a
// multi-atom query, and for it to be equivalent to the single atom V its
// core must collapse onto one atom — at which point the one view whose atom
// survives in the core already suffices. The reduction is cross-checked
// against the brute-force oracle in tests.
//
// Results of pairwise tests are memoized: workloads ask the same
// (pattern, view) pairs millions of times (§7.2).
#pragma once

#include <unordered_map>

#include "order/preorder.h"
#include "order/universe.h"

namespace fdc::order {

class RewritingOrder final : public DisclosureOrder {
 public:
  explicit RewritingOrder(const Universe* universe) : universe_(universe) {}

  bool LeqSingle(int v, const ViewSet& w_set) const override;

  /// Pairwise test {v} ⪯ {w}, memoized.
  bool LeqPair(int v, int w) const;

  const Universe& universe() const { return *universe_; }

 private:
  const Universe* universe_;
  mutable std::unordered_map<uint64_t, bool> cache_;
};

}  // namespace fdc::order
