#include "order/set_order.h"

#include <algorithm>

namespace fdc::order {

bool SetOrder::LeqSingle(int v, const ViewSet& w_set) const {
  // Linear scan: view sets are small and not guaranteed sorted by callers.
  return std::find(w_set.begin(), w_set.end(), v) != w_set.end();
}

}  // namespace fdc::order
