// The disclosure lattice (Theorem 3.3): I = { ⇓W : W ⊆ U } ordered by ⊆,
// with (⇓W1) ⊔ (⇓W2) = ⇓(W1 ∪ W2) and (⇓W1) ⊓ (⇓W2) = (⇓W1) ∩ (⇓W2).
//
// Materialized by exhaustive subset enumeration, so intended for theory
// validation and small catalogs (universe ≤ ~16 views; the production
// labeling path of §5–§6 never materializes the lattice). Elements are
// stored as down-set bitmasks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "order/down_set.h"
#include "order/preorder.h"

namespace fdc::order {

class DisclosureLattice {
 public:
  /// Builds the lattice over universe {0..universe_size-1}. Fails if
  /// universe_size > 16 (2^n subset enumeration) or if the claimed lattice
  /// laws do not hold (which would indicate `order` violates Def 3.1).
  static Result<DisclosureLattice> Build(const DisclosureOrder& order,
                                         int universe_size);

  int NumElements() const { return static_cast<int>(elements_.size()); }

  /// Down-set bits of element `idx` (sorted ascending by construction).
  uint64_t ElementBits(int idx) const { return elements_[idx]; }

  /// Index of a down-set, or -1 if it is not an element.
  int IndexOf(uint64_t bits) const;

  /// Index of ⇓(w_set).
  int IndexOfDownSet(const ViewSet& w_set) const;

  int Bottom() const { return bottom_; }
  int Top() const { return top_; }

  /// Lattice order: element a below element b.
  bool Below(int a, int b) const {
    return (elements_[a] & ~elements_[b]) == 0;
  }

  int Glb(int a, int b) const;  // (⇓W1) ∩ (⇓W2)
  int Lub(int a, int b) const;  // ⇓(W1 ∪ W2)

  /// All elements covered by / covering `idx` (Hasse neighbours); useful for
  /// printing lattices like Figure 3.
  std::vector<int> LowerCovers(int idx) const;

 private:
  DisclosureLattice(const DisclosureOrder* order, int universe_size)
      : order_(order), universe_size_(universe_size) {}

  const DisclosureOrder* order_;
  int universe_size_;
  std::vector<uint64_t> elements_;  // sorted distinct down-set bitmasks
  int bottom_ = -1;
  int top_ = -1;
};

}  // namespace fdc::order
