// Disclosure orders (Definition 3.1).
//
// A disclosure order ⪯ is a preorder on ℘(U) such that
//   (a) W1 ⊆ W2 implies W1 ⪯ W2, and
//   (b) if W ⪯ W0 for every W in a family φ, then ⋃φ ⪯ W0.
//
// Properties (a) and (b) jointly imply that any disclosure order is fully
// determined by its restriction to singletons on the left:
//     W1 ⪯ W2   iff   {V} ⪯ W2 for every V ∈ W1.
// (⇐ is (b); ⇒ follows from (a) + transitivity.) Implementations therefore
// only provide LeqSingle; Leq is derived. This identity is itself validated
// by the axiom checks in order/lattice_checks.h.
#pragma once

#include <algorithm>
#include <vector>

namespace fdc::order {

/// A set of views, as sorted unique ids into a view universe.
using ViewSet = std::vector<int>;

/// Normalizes a view set: sorts and deduplicates in place.
inline void NormalizeViewSet(ViewSet* set) {
  std::sort(set->begin(), set->end());
  set->erase(std::unique(set->begin(), set->end()), set->end());
}

/// Abstract disclosure order over an id-indexed universe.
class DisclosureOrder {
 public:
  virtual ~DisclosureOrder() = default;

  /// {v} ⪯ w_set: everything view v reveals can be computed from w_set.
  virtual bool LeqSingle(int v, const ViewSet& w_set) const = 0;

  /// W1 ⪯ W2, derived element-wise (see file comment).
  bool Leq(const ViewSet& w1, const ViewSet& w2) const {
    for (int v : w1) {
      if (!LeqSingle(v, w2)) return false;
    }
    return true;
  }

  /// W1 ≡ W2 (the equivalence relation of §3.1).
  bool Equivalent(const ViewSet& w1, const ViewSet& w2) const {
    return Leq(w1, w2) && Leq(w2, w1);
  }
};

}  // namespace fdc::order
