#include "order/rewriting_order.h"

#include "rewriting/atom_rewriting.h"

namespace fdc::order {

bool RewritingOrder::LeqPair(int v, int w) const {
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 32) |
      static_cast<uint32_t>(w);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const bool result =
      rewriting::AtomRewritable(universe_->Get(v), universe_->Get(w));
  cache_.emplace(key, result);
  return result;
}

bool RewritingOrder::LeqSingle(int v, const ViewSet& w_set) const {
  for (int w : w_set) {
    if (LeqPair(v, w)) return true;
  }
  return false;
}

}  // namespace fdc::order
