#include "order/rewriting_order.h"

#include "rewriting/atom_rewriting.h"

namespace fdc::order {

bool RewritingOrder::LeqPair(int v, int w) const {
  using Kind = rewriting::ContainmentCache::Kind;
  if (auto cached = cache_->Lookup(Kind::kUniverseRewritable, v, w)) {
    return *cached;
  }
  const bool result =
      rewriting::AtomRewritable(universe_->Get(v), universe_->Get(w));
  cache_->Insert(Kind::kUniverseRewritable, v, w, result);
  return result;
}

bool RewritingOrder::LeqSingle(int v, const ViewSet& w_set) const {
  for (int w : w_set) {
    if (LeqPair(v, w)) return true;
  }
  return false;
}

}  // namespace fdc::order
