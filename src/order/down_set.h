// The ⇓ operator (Definition 3.2): (⇓W) = { V ∈ U : {V} ⪯ W }.
//
// Down-sets are the elements of the disclosure lattice (Theorem 3.3). For
// enumerated universes of up to 64 views we represent a down-set as a
// bitmask, which makes the lattice operations (∩, and ⇓ of unions) cheap.
#pragma once

#include <cstdint>

#include "order/preorder.h"

namespace fdc::order {

/// Computes ⇓(w_set) over a universe of `universe_size` views. Bit v of the
/// result is set iff {v} ⪯ w_set. Views beyond the 64-bit representation
/// (universe_size > 64) are skipped — the result under-approximates, which
/// is the stricter direction; it is never undefined behavior.
uint64_t DownSet(const DisclosureOrder& order, const ViewSet& w_set,
                 int universe_size);

/// Converts a bitmask back to an explicit sorted view set.
ViewSet BitsToViewSet(uint64_t bits);

/// Converts a view set to a bitmask. Ids outside [0, 64) are skipped
/// (stricter, never looser — and never an undefined shift).
uint64_t ViewSetToBits(const ViewSet& set);

}  // namespace fdc::order
