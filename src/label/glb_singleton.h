// GLBSingleton and GenMGU (§5.1): the greatest lower bound of two
// single-atom views in the disclosure lattice.
//
// GenMGU is a generalized most-general-unifier computation over the two
// views' body atoms with three modifications (§5.1):
//   1. unifying a constant with an *existential* variable FAILS
//      (Example 5.1: a tuple test and an emptiness test share nothing);
//   2. existential ∪ (existential | distinguished) → existential;
//   3. distinguished ∪ distinguished → distinguished.
//
// After unification a corner-case check (Example 5.3) rejects results that
// force a *new* equality between two positions of one original atom when at
// least one of the positions held an existential variable there. We
// implement the check semantically — the candidate result must be ⪯ both
// inputs under the rewriting order — which subsumes the syntactic condition
// and is verified against the paper's examples and a property suite
// (every returned GLB is a lower bound, and no sampled common lower bound
// lies strictly above it).
#pragma once

#include <optional>

#include "cq/pattern.h"

namespace fdc::label {

/// GLB of two single-atom views. std::nullopt is ⊥ (no common information
/// expressible as a single-atom view). Views over different relations or of
/// different arities meet at ⊥.
std::optional<cq::AtomPattern> GlbSingleton(const cq::AtomPattern& v1,
                                            const cq::AtomPattern& v2);

/// The raw GenMGU step without the lower-bound check; exposed for tests
/// that exercise Example 5.3 (where GenMGU succeeds but the GLB is ⊥).
std::optional<cq::AtomPattern> GenMgu(const cq::AtomPattern& v1,
                                      const cq::AtomPattern& v2);

}  // namespace fdc::label
