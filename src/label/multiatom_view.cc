#include "label/multiatom_view.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cq/canonical.h"
#include "rewriting/containment.h"
#include "rewriting/fold.h"

namespace fdc::label {

namespace {

using cq::Atom;
using cq::ConjunctiveQuery;
using cq::Term;

// Sentinel relation id for the view-atom of a rewriting witness; the
// witness never touches a schema, so any distinctive value works.
constexpr int kViewRelation = -2;

}  // namespace

ConjunctiveQuery UnfoldViewRewriting(const ConjunctiveQuery& rewriting,
                                     const ConjunctiveQuery& view) {
  const Atom& view_atom = rewriting.atoms().front();
  // Substitution for the view's variables: head variable i ↦ the witness's
  // i-th atom term; existential view variables get fresh ids above both.
  const int fresh_base =
      std::max(rewriting.MaxVarId(), view.MaxVarId()) + 1;
  std::vector<Term> mapping(static_cast<size_t>(view.MaxVarId() + 1));
  std::vector<bool> mapped(mapping.size(), false);
  for (size_t i = 0; i < view.head().size(); ++i) {
    const Term& h = view.head()[i];
    if (h.is_var()) {
      mapping[h.var()] = view_atom.terms[i];
      mapped[h.var()] = true;
    }
  }
  int next_fresh = fresh_base;
  for (int v = 0; v <= view.MaxVarId(); ++v) {
    if (!mapped[v]) mapping[v] = Term::Var(next_fresh++);
  }
  ConjunctiveQuery unfolded_body = view.Substitute(mapping);
  return ConjunctiveQuery(rewriting.name(), rewriting.head(),
                          unfolded_body.atoms());
}

std::optional<ConjunctiveQuery> FindViewRewriting(
    const ConjunctiveQuery& query, const ConjunctiveQuery& view) {
  const int m = static_cast<int>(view.head().size());

  // Work with the folded query: equivalence is invariant under folding and
  // the smaller body speeds up the containment checks.
  const ConjunctiveQuery target = rewriting::Fold(query);

  // Candidate pool for the view's output columns: the query's variables,
  // constants appearing in either definition, and m fresh existential
  // variables (repeats allowed, so the rewriting can equate columns).
  std::vector<Term> pool;
  for (int v : target.AllVars()) pool.push_back(Term::Var(v));
  std::set<std::string> consts;
  for (const Atom& a : target.atoms()) {
    for (const Term& t : a.terms) {
      if (t.is_const()) consts.insert(t.value());
    }
  }
  for (const Atom& a : view.atoms()) {
    for (const Term& t : a.terms) {
      if (t.is_const()) consts.insert(t.value());
    }
  }
  for (const std::string& value : consts) pool.push_back(Term::Const(value));
  const int fresh_base = std::max(target.MaxVarId(), view.MaxVarId()) + 1;
  for (int j = 0; j < m; ++j) pool.push_back(Term::Var(fresh_base + j));

  // Odometer over pool^m.
  std::vector<int> choice(static_cast<size_t>(m), 0);
  for (;;) {
    std::vector<Term> atom_terms;
    atom_terms.reserve(m);
    for (int j = 0; j < m; ++j) atom_terms.push_back(pool[choice[j]]);

    // Safety: every head variable of the query must appear among the
    // view-atom terms (they are the only body of the rewriting).
    bool safe = true;
    for (const Term& h : target.head()) {
      if (h.is_var() &&
          std::find(atom_terms.begin(), atom_terms.end(), h) ==
              atom_terms.end()) {
        safe = false;
        break;
      }
    }
    if (safe) {
      ConjunctiveQuery candidate(
          "rw", target.head(), {Atom(kViewRelation, atom_terms)});
      ConjunctiveQuery unfolded = UnfoldViewRewriting(candidate, view);
      if (rewriting::AreEquivalent(unfolded, target)) return candidate;
    }

    int j = 0;
    for (; j < m; ++j) {
      if (++choice[j] < static_cast<int>(pool.size())) break;
      choice[j] = 0;
    }
    if (j == m) break;
  }
  return std::nullopt;
}

bool RewritableFromView(const ConjunctiveQuery& query,
                        const ConjunctiveQuery& view) {
  return FindViewRewriting(query, view).has_value();
}

}  // namespace fdc::label
