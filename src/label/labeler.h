// Disclosure labelers (Definition 3.4).
//
// A labeler ℓ : ℘(U) → ℘(U) with label set F satisfies:
//   (a) ℓ(W) ≡ some element of F,
//   (b) ℓ(W) ≡ W for W ∈ F (F's elements are fixpoints),
//   (c) W ⪯ ℓ(W)           (never underestimate disclosure),
//   (d) W1 ⪯ W2 ⇒ ℓ(W1) ⪯ ℓ(W2)  (monotonicity).
//
// Three implementations mirror the paper:
//   * NaiveLabel (§3.3)   — linear scan of a topologically sorted F;
//   * GLBLabel  (§4.1)    — running GLB over a downward generating set Fd;
//   * LabelGen  (§4.2)    — per-view union over a generating set Fgen
//                            (requires decomposability + precision).
//
// All three operate over ids in an order::Universe with a DisclosureOrder.
// This header holds the shared vocabulary type.
#pragma once

#include <vector>

#include "order/preorder.h"

namespace fdc::label {

/// A family of labels: each label is a set of views. Used for F, Fd, Fgen.
using LabelFamily = std::vector<order::ViewSet>;

}  // namespace fdc::label
