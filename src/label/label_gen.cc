#include "label/label_gen.h"

namespace fdc::label {

LabelGenLabeler::GenLabel LabelGenLabeler::Label(
    const order::ViewSet& w) const {
  GenLabel out;
  for (int v : w) {
    std::optional<order::ViewSet> part = glb_labeler_.Label({v});
    if (!part.has_value()) {
      out.top = true;
      continue;
    }
    out.views.insert(out.views.end(), part->begin(), part->end());
  }
  order::NormalizeViewSet(&out.views);
  return out;
}

}  // namespace fdc::label
