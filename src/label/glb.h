// GLB of sets of single-atom views (§5.1, final paragraph):
// GLB(W1, W2) is the union of GLBSingleton over all pairs (V1, V2) with
// V1 ∈ W1, V2 ∈ W2; it satisfies (⇓W1) ⊓ (⇓W2) = (⇓ GLB(W1, W2)).
//
// New patterns produced by unification are interned into the Universe, so
// GLB can be iterated (GLBLabel's running GLB, §4.1).
#pragma once

#include "order/preorder.h"
#include "order/universe.h"

namespace fdc::label {

/// Pairwise-union GLB of two view sets. Bottom (⊥) contributions vanish, so
/// the result may be empty — the empty set plays the role of ⊥/⇓∅.
order::ViewSet GlbSets(order::Universe* universe, const order::ViewSet& w1,
                       const order::ViewSet& w2);

/// GLB of many sets (left fold; GLB is associative up to ≡).
order::ViewSet GlbMany(order::Universe* universe,
                       const std::vector<order::ViewSet>& sets);

}  // namespace fdc::label
