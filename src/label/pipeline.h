// End-to-end multi-atom labeling pipeline (§5.2 + §6.1), in the three
// variants benchmarked in Figure 5:
//
//   * Baseline        — LabelGen adapted directly from §4.2: for every
//                       dissected atom, scan the *entire* security-view
//                       catalog and collect ℓ+ as a sorted id set.
//   * Hashed          — partition views by base relation (hashtable); scan
//                       only the bucket of the atom's relation.
//   * Hashed+Bitvector— bucket scan + packed 64-bit ℓ+ masks (§6.1); no
//                       per-query allocation beyond the output label.
//
// All variants share Dissect (folding included), so measured differences
// isolate the lookup/representation optimizations, matching the paper's
// experimental design.
#pragma once

#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cq/interned.h"
#include "cq/query.h"
#include "label/compiled_matcher.h"
#include "label/compressed_label.h"
#include "label/dissect.h"
#include "label/view_catalog.h"
#include "rewriting/containment_cache.h"

namespace fdc::label {

/// Set-based label: per dissected atom, the catalog ids of views in ℓ+ as a
/// genuine set container — this is the §4.2 representation that the §6.1
/// bit vectors replace, kept as an honest comparison point (Figure 5's
/// "baseline" and "hashing only" series) and for analysis tooling.
struct SetLabel {
  std::vector<std::set<int>> per_atom;
  bool top = false;  // some atom matched no view

  /// ⪯ in the label lattice (mirrors DisclosureLabel::Leq).
  bool Leq(const SetLabel& other) const;
};

class LabelerPipeline {
 public:
  explicit LabelerPipeline(const ViewCatalog* catalog,
                           DissectOptions dissect_options = {})
      : catalog_(catalog), dissect_options_(dissect_options) {}

  /// Figure 5 series "baseline".
  SetLabel LabelBaseline(const cq::ConjunctiveQuery& query) const;

  /// Figure 5 series "hashing only".
  SetLabel LabelHashed(const cq::ConjunctiveQuery& query) const;

  /// Figure 5 series "bit vectors + hashing" — the seed packed path.
  /// Packed masks carry kPackedViewCapacity (32) views per relation; views
  /// with bit ≥ 32 are excluded (labels strictly higher — fail-safe). The
  /// production LabelingPipeline has no such edge: its compiled matcher
  /// emits wide atoms for relations beyond the packed capacity.
  DisclosureLabel LabelPacked(const cq::ConjunctiveQuery& query) const;

  /// Every atom in multi-word form via the raw per-view AtomRewritable loop
  /// (ablation A2); no per-relation view-count limit. This is the seed
  /// oracle the wide compiled kernel is property-tested against.
  WideLabel LabelWide(const cq::ConjunctiveQuery& query) const;

  const ViewCatalog& catalog() const { return *catalog_; }

 private:
  const ViewCatalog* catalog_;
  DissectOptions dissect_options_;
};

/// ℓ+ mask of one normalized single-atom pattern against `catalog`,
/// memoizing per-(pattern, view) rewritability decisions in `cache` under
/// kCatalogRewritable, keyed by `pattern_id` from `interner`. This is the
/// *seed per-view kernel*: since PR 3 the production paths evaluate the
/// CompiledCatalogMatcher instead (one pass, no interner, no cache), and
/// this loop remains as the ablation baseline and property-test oracle —
/// tests/compiled_matcher_test.cc pins the two mask-for-mask.
///
/// Packed masks hold kPackedViewCapacity (32) views per relation; views
/// with bit ≥ 32 are excluded here rather than shifted out of range (which
/// was UB) — labels over such catalogs are strictly higher (stricter,
/// fail-safe). The production matcher path has no such cap: relations
/// beyond the packed capacity get exact multi-word masks
/// (CompiledCatalogMatcher::MatchMaskWords feeding WideAtomLabel entries),
/// so this kernel is the *packed* oracle only.
PackedAtomLabel ComputePatternMask(const ViewCatalog& catalog,
                                   const cq::QueryInterner& interner,
                                   rewriting::ContainmentCache& cache,
                                   int pattern_id,
                                   const cq::AtomPattern& pattern);

/// Working state for LabelQueriesBatched, reusable across calls: the
/// dissected atoms, their relation-bucketed order, the bucket mask buffer
/// hoisted out of the bucket loop (sized once per call by
/// CompiledCatalogMatcher::max_mask_words() × the largest bucket), and the
/// matcher's BatchScratch. A warm scratch makes the whole bucket/kernel
/// phase allocation-free; confine an instance to one thread.
struct BatchLabelScratch {
  std::vector<cq::AtomPattern> atoms;
  std::vector<int32_t> atom_query;  // atoms[i] dissected from query atom_query[i]
  std::vector<int32_t> order;       // atom indices, bucketed by relation
  std::vector<const cq::AtomPattern*> bucket;  // current bucket's patterns
  std::vector<uint64_t> masks;      // hoisted per-bucket mask rows
  BatchScratch kernel;
};

/// Counters LabelQueriesBatched accumulates for the caller's stats.
struct BatchLabelCounters {
  uint64_t batch_mask_evals = 0;        // masks evaluated through the kernel
  uint64_t wide_mask_evals = 0;         // of those, wide-relation masks
  uint64_t per_view_tests_avoided = 0;  // seed per-view tests replaced
  uint64_t simd_lanes_used = 0;         // vector-ANDed 64-bit mask words
};

/// The batched labeling core shared by LabelingPipeline::LabelBatch and
/// engine::ConcurrentLabeler::LabelBatch: dissects every query, buckets the
/// dissected atoms per relation, evaluates each bucket in one
/// CompiledCatalogMatcher::MatchMaskBatch call, and scatters the mask rows
/// into one Sealed DisclosureLabel per query — identical output to the
/// per-query LabelViaMatcher/LabelCompiled paths (the batch kernel is
/// bit-identical to per-atom MatchMaskWords). Pure reads of `matcher`;
/// thread-safe given a per-thread scratch.
void LabelQueriesBatched(const CompiledCatalogMatcher& matcher,
                         DissectOptions dissect_options,
                         std::span<const cq::ConjunctiveQuery* const> queries,
                         BatchLabelScratch* scratch,
                         std::vector<DisclosureLabel>* labels,
                         BatchLabelCounters* counters);

/// The production labeling front end: intern → index → memoize → batch.
///
/// Layered on LabelerPipeline::LabelPacked (which itself benefits from the
/// indexed homomorphism engine inside Dissect's folding step):
///   1. queries are canonicalized once and hash-consed by a QueryInterner,
///      so structurally repeated queries share one interned id;
///   2. whole-query labels are memoized by interned id — the §7.2
///      repeated-template workload turns into one hash probe per query;
///   3. per-atom ℓ+ masks come from the CompiledCatalogMatcher — one
///      allocation-free pass per dissected atom, no interner probes, no
///      cache probes, no per-view tests — so even fully novel queries pay
///      O(arity) per atom. Relations with more views than a packed mask
///      carries get exact multi-word masks (wide label atoms); narrow
///      relations keep the packed representation. The seed variant
///      (patterns interned, masks memoized, per-view tests through the
///      shared ContainmentCache under kCatalogRewritable, packed-only) is
///      kept behind `ablate_compiled_matcher`;
///   4. LabelBatch buckets a whole batch by interned id and computes each
///      distinct label exactly once; the novel structures' dissected atoms
///      are then bucketed per relation and evaluated through the
///      batch-structured SIMD kernel (MatchMaskBatch — see
///      LabelQueriesBatched), with the per-atom loop kept behind
///      `ablate_batch_kernel`.
///
/// `ablate_interning` (baseline mode, kept for the Figure-style benchmark
/// ablation) bypasses all of the above and calls LabelPacked per query.
///
/// Sharing contract: this class is the *single-threaded* labeling front end
/// — every method (including the memo-warming ones) mutates unguarded
/// state, so an instance must be confined to one thread; it remains the
/// seed/ablation oracle and the right choice for one-shot tools. Serving
/// threads share labeling state through engine::ConcurrentLabeler instead,
/// which layers a lock-free frozen tier and a reader/writer-guarded overlay
/// over the same algorithm (identical labels, property-tested). The
/// ContainmentCache it is handed may be shared freely (that class is
/// internally sharded and thread-safe); the QueryInterner may not, unless
/// frozen (see interned.h).
struct LabelingOptions {
  /// Baseline mode: no interning, no memoization (bench ablation).
  bool ablate_interning = false;
  /// Seed-kernel mode: per-atom ℓ+ masks come from the per-view
  /// ComputePatternMask loop (pattern interning + ContainmentCache) instead
  /// of the CompiledCatalogMatcher. Kept as the ablation baseline and the
  /// *packed* oracle the compiled matcher is property-tested against —
  /// on catalogs beyond the packed view capacity it over-labels (bit ≥ 32
  /// excluded), while the compiled path stays exact via wide atoms.
  bool ablate_compiled_matcher = false;
  /// Batch ablation: LabelBatch labels each novel structure through the
  /// per-atom MatchMaskWords loop (the pre-batch code shape) instead of
  /// bucketing atoms per relation through MatchMaskBatch. Labels are
  /// identical either way (property-tested); this isolates the batch
  /// kernel's contribution in benchmarks.
  bool ablate_batch_kernel = false;
  /// Whole-query label memo entries kept before the memo is reset.
  size_t max_label_cache = 1 << 20;
  /// Interner growth bound: once this many distinct structures are
  /// interned, novel ones are labeled statelessly (LabelPacked) instead of
  /// being interned — queries are principal-controlled, so the interner
  /// must not grow without bound under adversarial distinct-structure
  /// streams. Known structures keep hitting their memoized labels.
  size_t max_interned_queries = 1 << 20;
};

class LabelingPipeline {
 public:
  using Options = LabelingOptions;

  struct Stats {
    uint64_t label_hits = 0;    // whole-query label memo hits
    uint64_t label_misses = 0;  // labels computed from scratch
    uint64_t mask_hits = 0;     // per-pattern ℓ+ mask memo hits (seed path)
    uint64_t mask_misses = 0;
    uint64_t compiled_mask_evals = 0;  // masks answered by the compiled net
    // Of those, evaluations over relations beyond the packed view capacity
    // (the compiled net produced a multi-word wide atom).
    uint64_t wide_mask_evals = 0;
    // Of those, masks evaluated through the batch-structured kernel
    // (LabelBatch's per-relation buckets via MatchMaskBatch).
    uint64_t batch_mask_evals = 0;
    // 64-bit mask words ANDed by vector (AVX2/NEON) instructions inside
    // those batch evaluations; stays 0 under scalar dispatch (FDC_SIMD) and
    // for one-word (narrow) relations, which always run the scalar fused
    // loop.
    uint64_t simd_lanes_used = 0;
    // Per-view rewritability tests the seed loop would have run for those
    // masks (the work the compiled matcher replaces outright).
    uint64_t per_view_tests_avoided = 0;
  };

  /// `interner` and `cache` may be null (private ones are created). When
  /// shared, the cache's kCatalogRewritable kind must only carry this
  /// (interner, catalog) pair's ids. `matcher`, when non-null, must be
  /// compiled from `catalog` and outlive the pipeline (engine::FrozenCatalog
  /// shares its compiled artifact this way); when null and neither ablation
  /// flag is set, the pipeline compiles and owns one.
  LabelingPipeline(const ViewCatalog* catalog,
                   cq::QueryInterner* interner = nullptr,
                   rewriting::ContainmentCache* cache = nullptr,
                   DissectOptions dissect_options = {},
                   LabelingOptions options = {},
                   const CompiledCatalogMatcher* matcher = nullptr);

  /// Interned + memoized packed label; agrees with LabelPacked.
  DisclosureLabel Label(const cq::ConjunctiveQuery& query);

  /// Labels a batch, computing each distinct structure once.
  std::vector<DisclosureLabel> LabelBatch(
      std::span<const cq::ConjunctiveQuery> queries);

  cq::QueryInterner& interner() { return *interner_; }
  /// The shared decision cache (created on first use when none was
  /// injected — the compiled-matcher path never probes one itself).
  rewriting::ContainmentCache& cache() { return EnsureCache(); }
  const Stats& stats() const { return stats_; }
  const ViewCatalog& catalog() const { return inner_.catalog(); }
  /// The compiled matcher in use, or nullptr when ablated.
  const CompiledCatalogMatcher* matcher() const { return matcher_; }

 private:
  /// Lazily creates the private cache when none was injected.
  rewriting::ContainmentCache& EnsureCache();
  /// ℓ+ mask of one interned pattern (memoized).
  PackedAtomLabel MaskFor(int pattern_id, const cq::AtomPattern& pattern);
  /// Dissect + one compiled-net evaluation per atom; requires matcher_.
  DisclosureLabel LabelViaMatcher(const cq::ConjunctiveQuery& query);
  /// Stateless label for uninterned queries (interner saturated): the
  /// compiled net when available, else the seed LabelPacked loop.
  DisclosureLabel LabelStateless(const cq::ConjunctiveQuery& query);
  DisclosureLabel ComputeLabel(const cq::ConjunctiveQuery& canonical);

  LabelerPipeline inner_;
  DissectOptions dissect_options_;
  Options options_;
  cq::QueryInterner* interner_;
  rewriting::ContainmentCache* cache_;
  const CompiledCatalogMatcher* matcher_ = nullptr;
  std::unique_ptr<cq::QueryInterner> owned_interner_;
  std::unique_ptr<rewriting::ContainmentCache> owned_cache_;
  std::unique_ptr<CompiledCatalogMatcher> owned_matcher_;
  std::unordered_map<int, DisclosureLabel> label_by_query_;
  std::unordered_map<int, PackedAtomLabel> mask_by_pattern_;
  // LabelBatch's bucket/kernel scratch, reused across batches (warm batches
  // allocate nothing in the bucket loop).
  BatchLabelScratch batch_scratch_;
  Stats stats_;
};

}  // namespace fdc::label
