// End-to-end multi-atom labeling pipeline (§5.2 + §6.1), in the three
// variants benchmarked in Figure 5:
//
//   * Baseline        — LabelGen adapted directly from §4.2: for every
//                       dissected atom, scan the *entire* security-view
//                       catalog and collect ℓ+ as a sorted id set.
//   * Hashed          — partition views by base relation (hashtable); scan
//                       only the bucket of the atom's relation.
//   * Hashed+Bitvector— bucket scan + packed 64-bit ℓ+ masks (§6.1); no
//                       per-query allocation beyond the output label.
//
// All variants share Dissect (folding included), so measured differences
// isolate the lookup/representation optimizations, matching the paper's
// experimental design.
#pragma once

#include <set>
#include <vector>

#include "common/result.h"
#include "cq/query.h"
#include "label/compressed_label.h"
#include "label/dissect.h"
#include "label/view_catalog.h"

namespace fdc::label {

/// Set-based label: per dissected atom, the catalog ids of views in ℓ+ as a
/// genuine set container — this is the §4.2 representation that the §6.1
/// bit vectors replace, kept as an honest comparison point (Figure 5's
/// "baseline" and "hashing only" series) and for analysis tooling.
struct SetLabel {
  std::vector<std::set<int>> per_atom;
  bool top = false;  // some atom matched no view

  /// ⪯ in the label lattice (mirrors DisclosureLabel::Leq).
  bool Leq(const SetLabel& other) const;
};

class LabelerPipeline {
 public:
  explicit LabelerPipeline(const ViewCatalog* catalog,
                           DissectOptions dissect_options = {})
      : catalog_(catalog), dissect_options_(dissect_options) {}

  /// Figure 5 series "baseline".
  SetLabel LabelBaseline(const cq::ConjunctiveQuery& query) const;

  /// Figure 5 series "hashing only".
  SetLabel LabelHashed(const cq::ConjunctiveQuery& query) const;

  /// Figure 5 series "bit vectors + hashing" — the production path.
  /// Requires ≤ 32 views per relation (checked); use LabelWide beyond that.
  DisclosureLabel LabelPacked(const cq::ConjunctiveQuery& query) const;

  /// Wide-mask fallback (ablation A2); no per-relation view-count limit.
  WideLabel LabelWide(const cq::ConjunctiveQuery& query) const;

  const ViewCatalog& catalog() const { return *catalog_; }

 private:
  const ViewCatalog* catalog_;
  DissectOptions dissect_options_;
};

}  // namespace fdc::label
