// Dissect (§5.2): converts an arbitrary conjunctive query into a set of
// single-atom views whose combined disclosure labels the query.
//
// Steps (Example 5.4):
//   1. compute a folding of Q (drop redundant atoms; rewriting/fold.h);
//   2. promote every existential variable that appears in ≥ 2 atoms of the
//      folding to distinguished — any set of single-atom views that lets a
//      join be computed must reveal the join attributes;
//   3. split the folding into its constituent atoms (deduplicated patterns).
//
// Dissect is itself a disclosure labeler with domain ℘(U_cv) and image
// ℘(U_atom); composing it with the single-atom labeler yields the full
// multi-atom labeler (§5.2, last paragraph). The labeler axioms for the
// composition are property-tested.
#pragma once

#include <vector>

#include "cq/pattern.h"
#include "cq/query.h"

namespace fdc::label {

struct DissectOptions {
  /// Skip the folding step (ablation A1). Labels stay sound but may be
  /// strictly higher in the disclosure order than necessary.
  bool fold = true;
};

/// Dissects one query into deduplicated single-atom view patterns.
std::vector<cq::AtomPattern> Dissect(const cq::ConjunctiveQuery& query,
                                     const DissectOptions& options = {});

/// Dissects a set of queries (the label of a set is the union, §4.2).
std::vector<cq::AtomPattern> DissectAll(
    const std::vector<cq::ConjunctiveQuery>& queries,
    const DissectOptions& options = {});

}  // namespace fdc::label
