// GLBLabel (§4.1): labeling with a downward generating set Fd.
//
//   L ← ⊤
//   for W' in Fd: if W ⪯ W' then L ← GLB(L, W')
//   return L
//
// Fd can be exponentially smaller than F (Example 4.4) while inducing the
// same labeler, because F's remaining elements are GLBs of Fd elements.
#pragma once

#include <optional>

#include "label/labeler.h"
#include "order/preorder.h"
#include "order/universe.h"

namespace fdc::label {

class GlbLabeler {
 public:
  /// `universe` is mutated: unification may intern new patterns.
  GlbLabeler(const order::DisclosureOrder* order, order::Universe* universe,
             LabelFamily fd)
      : order_(order), universe_(universe), fd_(std::move(fd)) {}

  /// Label of W as a view set; std::nullopt encodes ⊤ (no element of Fd is
  /// above W, so the running GLB never left its initial value).
  std::optional<order::ViewSet> Label(const order::ViewSet& w) const;

  const LabelFamily& fd() const { return fd_; }

 private:
  const order::DisclosureOrder* order_;
  order::Universe* universe_;
  LabelFamily fd_;
};

}  // namespace fdc::label
