#include "label/view_catalog.h"

#include <algorithm>

#include "cq/datalog_parser.h"

namespace fdc::label {

const std::vector<int> ViewCatalog::kEmpty;

Result<int> ViewCatalog::AddView(const std::string& name,
                                 const cq::ConjunctiveQuery& definition) {
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("security view '" + name +
                                 "' already registered");
  }
  Status valid = definition.Validate(*schema_);
  if (!valid.ok()) return valid;
  Result<cq::AtomPattern> pattern = cq::AtomPattern::FromQuery(definition);
  if (!pattern.ok()) {
    return Status::Unsupported(
        "security views must be single-atom (multi-atom views are the "
        "paper's explicit future work): " +
        pattern.status().message());
  }
  SecurityView view;
  view.id = static_cast<int>(views_.size());
  view.name = name;
  view.pattern = std::move(pattern).value();
  view.relation = view.pattern.relation;
  if (view.relation >= static_cast<int>(by_relation_.size())) {
    by_relation_.resize(view.relation + 1);
  }
  view.bit = static_cast<int>(by_relation_[view.relation].size());
  by_relation_[view.relation].push_back(view.id);
  by_name_.emplace(name, view.id);
  views_.push_back(std::move(view));
  return views_.back().id;
}

Result<int> ViewCatalog::AddViewText(const std::string& name,
                                     const std::string& datalog) {
  Result<cq::ConjunctiveQuery> parsed = cq::ParseDatalog(datalog, *schema_);
  if (!parsed.ok()) return parsed.status();
  return AddView(name, *parsed);
}

const SecurityView* ViewCatalog::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &views_[it->second];
}

const std::vector<int>& ViewCatalog::ViewsOfRelation(int relation) const {
  if (relation < 0 || relation >= static_cast<int>(by_relation_.size())) {
    return kEmpty;
  }
  return by_relation_[relation];
}

int ViewCatalog::MaxViewsPerRelation() const {
  int max_views = 0;
  for (const auto& bucket : by_relation_) {
    max_views = std::max(max_views, static_cast<int>(bucket.size()));
  }
  return max_views;
}

}  // namespace fdc::label
