// Downward generating sets (§4.1) and labeler-existence machinery (§3.3).
//
//   * Theorem 3.7: F induces a labeler iff K = {⇓W : W ∈ F} is closed under
//     GLB and contains ⇓U. InducesLabeler() checks this on a materialized
//     lattice.
//   * Theorem 4.3: every F inducing a labeler has a unique (up to ≡) minimal
//     downward generating set; MinimalDownwardGeneratingSet() computes it by
//     removing elements expressible as GLBs of the rest.
//   * Theorem 4.5: any G containing ⊤ extends to an F inducing a labeler
//     with G as downward generating set; CloseUnderGlb() computes that F.
#pragma once

#include "label/labeler.h"
#include "order/disclosure_lattice.h"
#include "order/preorder.h"
#include "order/universe.h"

namespace fdc::label {

/// Theorem 3.7 check on an explicit lattice: is {⇓W : W ∈ family} closed
/// under GLB and does it contain ⊤ = ⇓U?
bool InducesLabeler(const order::DisclosureLattice& lattice,
                    const LabelFamily& family);

/// Definition 4.6 check: family additionally closed under LUB and
/// containing ⇓∅ — i.e. induces a *precise* labeler.
bool InducesPreciseLabeler(const order::DisclosureLattice& lattice,
                           const LabelFamily& family);

/// Theorem 4.5: closes `family` under pairwise set-GLB until fixpoint.
/// Works directly with the single-atom GLB (no lattice needed); the result
/// induces a labeler with `family` as a downward generating set. Family
/// elements are deduplicated up to ≡.
LabelFamily CloseUnderGlb(const order::DisclosureOrder& order,
                          order::Universe* universe, LabelFamily family);

/// Theorem 4.3: removes every element of `family` that is ≡ to the GLB of a
/// subset of the others. Deterministic (scans in order); the result is the
/// minimal downward generating set, unique up to ≡.
LabelFamily MinimalDownwardGeneratingSet(const order::DisclosureOrder& order,
                                         order::Universe* universe,
                                         LabelFamily family);

}  // namespace fdc::label
