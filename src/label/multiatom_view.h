// Experimental extension: multi-atom security views.
//
// §5 restricts security views to single atoms and notes that "extending
// these algorithms to multi-atom security views is ongoing work"; the §7.2
// evaluation worked around the limitation with the viewer_rel
// denormalization. This module implements the natural next step for the
// cases that motivated it (friend-scoped permissions defined as a
// Friend ⋈ User join):
//
//   RewritableFromView(Q, W) decides whether the conjunctive query Q has an
//   equivalent rewriting P over the (possibly multi-atom) view W using a
//   single W-atom: P(head) :- W(t1..tm). The search enumerates the
//   assignments of W's output columns to terms drawn from Q's variables,
//   the constants of Q and W, and fresh existential variables, unfolds each
//   candidate through W's definition, and tests CQ-equivalence with Q by
//   two-way containment.
//
// This is sound (an explicit witness is produced and checked) and complete
// for single-W-atom rewritings; rewritings joining W with itself are not
// searched. Cost is O(pool^arity(W_head)) equivalence checks, so it suits
// interactive/offline labeling of named permissions rather than the
// million-query hot path — which is precisely how the paper's Facebook
// permissions would use it. The single-atom fast path (§5.1) remains the
// default pipeline.
#pragma once

#include <optional>

#include "cq/query.h"

namespace fdc::label {

/// Returns a rewriting witness P (whose single body atom stands for the view
/// W, columns = W's head positions) such that unfolding P through W is
/// equivalent to `query`; std::nullopt if no single-W-atom rewriting exists.
std::optional<cq::ConjunctiveQuery> FindViewRewriting(
    const cq::ConjunctiveQuery& query, const cq::ConjunctiveQuery& view);

/// Convenience wrapper: does a rewriting exist?
bool RewritableFromView(const cq::ConjunctiveQuery& query,
                        const cq::ConjunctiveQuery& view);

/// Unfolds a witness produced by FindViewRewriting back over the base
/// relations (substitutes the rewriting's terms for the view's head
/// variables and freshens the view's existential variables).
cq::ConjunctiveQuery UnfoldViewRewriting(const cq::ConjunctiveQuery& rewriting,
                                         const cq::ConjunctiveQuery& view);

}  // namespace fdc::label
