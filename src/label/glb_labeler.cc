#include "label/glb_labeler.h"

#include "label/glb.h"

namespace fdc::label {

std::optional<order::ViewSet> GlbLabeler::Label(
    const order::ViewSet& w) const {
  bool any = false;
  order::ViewSet acc;
  for (const order::ViewSet& candidate : fd_) {
    if (!order_->Leq(w, candidate)) continue;
    if (!any) {
      acc = candidate;
      order::NormalizeViewSet(&acc);
      any = true;
    } else {
      acc = GlbSets(universe_, acc, candidate);
    }
  }
  if (!any) return std::nullopt;  // ⊤
  return acc;
}

}  // namespace fdc::label
