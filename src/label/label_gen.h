// LabelGen (§4.2): labeling with a (full) generating set Fgen, one view at a
// time:
//
//   result ← ∅
//   for each V ∈ W: result ← result ∪ GLBLabel(Fgen, {V})
//   return result
//
// Correct when U is decomposable under ⪯ and F induces a *precise* labeler
// (Definitions 4.6/4.7) — both hold for the single-atom universe of §5.1,
// where Fgen is simply {{S_i} : S_i ∈ S} for the security views S.
#pragma once

#include "label/glb_labeler.h"
#include "label/labeler.h"
#include "order/preorder.h"
#include "order/universe.h"

namespace fdc::label {

class LabelGenLabeler {
 public:
  LabelGenLabeler(const order::DisclosureOrder* order,
                  order::Universe* universe, LabelFamily fgen)
      : glb_labeler_(order, universe, std::move(fgen)) {}

  /// Union of per-view GLB labels. Views whose GLBLabel is ⊤ contribute a
  /// sentinel: the result's `top` flag is set, meaning the query reveals
  /// information no label in F bounds (the monitor must refuse).
  struct GenLabel {
    order::ViewSet views;
    bool top = false;
  };
  GenLabel Label(const order::ViewSet& w) const;

  const LabelFamily& fgen() const { return glb_labeler_.fd(); }

 private:
  GlbLabeler glb_labeler_;
};

}  // namespace fdc::label
