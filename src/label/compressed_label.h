// Compressed disclosure labels (§6.1).
//
// For a single-atom view V, instead of materializing the GLB label we store
//     ℓ+(V) = { S_i ∈ Fgen : {V} ⪯ {S_i} }
// — the set of security views that determine V's answer — because
//     ℓ(V) ⪯ ℓ(V')   iff   ℓ+(V) ⊇ ℓ+(V').
//
// A PackedAtomLabel packs the base relation id into the low 32 bits of one
// 64-bit word and the ℓ+ membership mask (bit i = the i-th view registered
// for that relation in the ViewCatalog) into the high 32 bits — exactly the
// layout §6.1 describes. A WideAtomLabel carries the same ℓ+ set as an
// array of 64-bit mask words for relations whose view count exceeds the
// packed capacity; the word count is fixed per relation at catalog-compile
// time (CompiledCatalogMatcher::MaskWords).
//
// A DisclosureLabel holds one entry per dissected atom, in whichever
// representation the atom's relation uses: packed atoms for relations with
// at most kPackedViewCapacity views, wide atoms beyond that. Which
// representation a relation gets is a property of the catalog (its view
// count), so any two labels over the same catalog agree representation-wise
// and compare/hash consistently.
//
// An atom whose ℓ+ is empty is not determined by any security view: its
// label is ⊤. Labels record this in a flag; ⊤-labeled queries compare above
// everything and are refused under every partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_utils.h"

namespace fdc::label {

/// Views representable by one packed 32-bit atom mask. Relations with more
/// views than this use WideAtomLabel entries (multi-word masks).
inline constexpr int kPackedViewCapacity = 32;

/// Mask words a relation with `views` security views needs: ceil(views/64),
/// minimum one. The single definition of the word-width rule that keeps
/// labels, compiled matcher nets, policies and the flat PolicyStore
/// layout-compatible.
constexpr int MaskWordsFor(int views) {
  return views > 64 ? (views + 63) / 64 : 1;
}

/// One dissected atom's ℓ+ set: relation id (low 32) + view mask (high 32).
class PackedAtomLabel {
 public:
  PackedAtomLabel() : raw_(0) {}
  PackedAtomLabel(uint32_t relation, uint32_t mask)
      : raw_((static_cast<uint64_t>(mask) << 32) | relation) {}

  uint32_t relation() const { return static_cast<uint32_t>(raw_); }
  uint32_t mask() const { return static_cast<uint32_t>(raw_ >> 32); }
  uint64_t raw() const { return raw_; }

  /// ℓ(this) ⪯ ℓ(other): same relation and ℓ+(this) ⊇ ℓ+(other).
  bool LeqAtom(const PackedAtomLabel& other) const {
    return relation() == other.relation() &&
           (other.mask() & ~mask()) == 0;
  }

  bool operator==(const PackedAtomLabel& other) const {
    return raw_ == other.raw_;
  }
  bool operator<(const PackedAtomLabel& other) const {
    return raw_ < other.raw_;
  }

 private:
  uint64_t raw_;
};

/// Atom label for relations with more than kPackedViewCapacity security
/// views: mask words replace the single 32-bit mask (bit b of ℓ+ lives in
/// mask[b / 64] bit b % 64). Canonical form has no trailing zero words
/// (Normalize), so equal ℓ+ sets compare equal regardless of producer.
struct WideAtomLabel {
  int relation = -1;
  std::vector<uint64_t> mask;

  void SetBit(int bit);
  /// True iff view bit `bit` is in ℓ+ (bits past the stored words are 0).
  bool Test(int bit) const {
    const std::size_t word = static_cast<std::size_t>(bit) / 64;
    return word < mask.size() &&
           (mask[word] & (uint64_t{1} << (bit % 64))) != 0;
  }
  bool LeqAtom(const WideAtomLabel& other) const;
  bool MaskEmpty() const;
  /// Drops trailing zero words (the canonical form Add/AddWide store).
  void Normalize();
  bool operator==(const WideAtomLabel& other) const {
    return relation == other.relation && mask == other.mask;
  }
  bool operator<(const WideAtomLabel& other) const {
    if (relation != other.relation) return relation < other.relation;
    return mask < other.mask;
  }
};

/// ℓ+(packed) ⊇ ℓ+(wide) over the same relation (mixed-representation
/// comparison; only reachable when labels from different catalogs meet).
bool PackedCoversWide(const PackedAtomLabel& packed, const WideAtomLabel& wide);
/// ℓ+(wide) ⊇ ℓ+(packed) over the same relation.
bool WideCoversPacked(const WideAtomLabel& wide, const PackedAtomLabel& packed);

/// A query's disclosure label: one entry per dissected atom — packed for
/// narrow relations, wide for relations beyond the packed view capacity.
class DisclosureLabel {
 public:
  /// Adds one atom's ℓ+; an empty mask marks the whole label ⊤.
  void Add(PackedAtomLabel atom);

  /// Adds one wide atom's ℓ+ (normalized in place); empty again marks ⊤.
  void AddWide(WideAtomLabel atom);

  /// Marks the label ⊤ explicitly (atom over a relation with no views).
  void MarkTop() { top_ = true; }

  bool top() const { return top_; }
  const std::vector<PackedAtomLabel>& atoms() const { return atoms_; }
  const std::vector<WideAtomLabel>& wide_atoms() const { return wide_atoms_; }
  /// Packed-atom count (wide atoms are surfaced separately; total entries =
  /// size() + wide_atoms().size()).
  int size() const { return static_cast<int>(atoms_.size()); }
  bool empty() const { return atoms_.empty() && wide_atoms_.empty() && !top_; }

  /// Canonicalizes (sorts, dedupes) — call once after the last Add when the
  /// label will be compared or hashed.
  void Seal();

  /// ℓ(this) ⪯ ℓ(other) in the lattice of disclosure labels. O(r·s) as in
  /// the §6.1 complexity analysis.
  bool Leq(const DisclosureLabel& other) const;

  /// LUB with another label (information combination across queries):
  /// concatenation + dedup, per §4.2's union semantics.
  void UnionWith(const DisclosureLabel& other);

  bool operator==(const DisclosureLabel& other) const {
    return top_ == other.top_ && atoms_ == other.atoms_ &&
           wide_atoms_ == other.wide_atoms_;
  }

 private:
  std::vector<PackedAtomLabel> atoms_;
  std::vector<WideAtomLabel> wide_atoms_;
  bool top_ = false;
};

/// Wide counterpart of DisclosureLabel: every atom in multi-word form with
/// no per-relation view cap. This is the seed per-view oracle's output
/// (LabelerPipeline::LabelWide) and the ablation-A2 representation; the
/// production DisclosureLabel carries wide atoms only where the catalog
/// needs them.
class WideLabel {
 public:
  void Add(WideAtomLabel atom);
  bool top() const { return top_; }
  const std::vector<WideAtomLabel>& atoms() const { return atoms_; }
  bool Leq(const WideLabel& other) const;

 private:
  std::vector<WideAtomLabel> atoms_;
  bool top_ = false;
};

}  // namespace fdc::label
