// Compressed disclosure labels (§6.1).
//
// For a single-atom view V, instead of materializing the GLB label we store
//     ℓ+(V) = { S_i ∈ Fgen : {V} ⪯ {S_i} }
// — the set of security views that determine V's answer — because
//     ℓ(V) ⪯ ℓ(V')   iff   ℓ+(V) ⊇ ℓ+(V').
//
// A PackedAtomLabel packs the base relation id into the low 32 bits of one
// 64-bit word and the ℓ+ membership mask (bit i = the i-th view registered
// for that relation in the ViewCatalog) into the high 32 bits — exactly the
// layout §6.1 describes. A multi-atom label is a small array of packed
// atoms. WideAtomLabel is the >32-views-per-relation fallback with the same
// comparison contract (exercised by ablation A2).
//
// An atom whose ℓ+ is empty is not determined by any security view: its
// label is ⊤. Labels record this in a flag; ⊤-labeled queries compare above
// everything and are refused under every partition.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_utils.h"

namespace fdc::label {

/// One dissected atom's ℓ+ set: relation id (low 32) + view mask (high 32).
class PackedAtomLabel {
 public:
  PackedAtomLabel() : raw_(0) {}
  PackedAtomLabel(uint32_t relation, uint32_t mask)
      : raw_((static_cast<uint64_t>(mask) << 32) | relation) {}

  uint32_t relation() const { return static_cast<uint32_t>(raw_); }
  uint32_t mask() const { return static_cast<uint32_t>(raw_ >> 32); }
  uint64_t raw() const { return raw_; }

  /// ℓ(this) ⪯ ℓ(other): same relation and ℓ+(this) ⊇ ℓ+(other).
  bool LeqAtom(const PackedAtomLabel& other) const {
    return relation() == other.relation() &&
           (other.mask() & ~mask()) == 0;
  }

  bool operator==(const PackedAtomLabel& other) const {
    return raw_ == other.raw_;
  }
  bool operator<(const PackedAtomLabel& other) const {
    return raw_ < other.raw_;
  }

 private:
  uint64_t raw_;
};

/// A query's disclosure label: one packed entry per dissected atom.
class DisclosureLabel {
 public:
  /// Adds one atom's ℓ+; an empty mask marks the whole label ⊤.
  void Add(PackedAtomLabel atom);

  /// Marks the label ⊤ explicitly (atom over a relation with no views).
  void MarkTop() { top_ = true; }

  bool top() const { return top_; }
  const std::vector<PackedAtomLabel>& atoms() const { return atoms_; }
  int size() const { return static_cast<int>(atoms_.size()); }
  bool empty() const { return atoms_.empty() && !top_; }

  /// Canonicalizes (sorts, dedupes) — call once after the last Add when the
  /// label will be compared or hashed.
  void Seal();

  /// ℓ(this) ⪯ ℓ(other) in the lattice of disclosure labels. O(r·s) as in
  /// the §6.1 complexity analysis.
  bool Leq(const DisclosureLabel& other) const;

  /// LUB with another label (information combination across queries):
  /// concatenation + dedup, per §4.2's union semantics.
  void UnionWith(const DisclosureLabel& other);

  bool operator==(const DisclosureLabel& other) const {
    return top_ == other.top_ && atoms_ == other.atoms_;
  }

 private:
  std::vector<PackedAtomLabel> atoms_;
  bool top_ = false;
};

/// Fallback atom label for relations with more than 32 security views; mask
/// words replace the single 32-bit mask.
struct WideAtomLabel {
  int relation = -1;
  std::vector<uint64_t> mask;

  void SetBit(int bit);
  bool LeqAtom(const WideAtomLabel& other) const;
  bool MaskEmpty() const;
  bool operator==(const WideAtomLabel& other) const {
    return relation == other.relation && mask == other.mask;
  }
};

/// Wide counterpart of DisclosureLabel (same contract, ablation A2).
class WideLabel {
 public:
  void Add(WideAtomLabel atom);
  bool top() const { return top_; }
  const std::vector<WideAtomLabel>& atoms() const { return atoms_; }
  bool Leq(const WideLabel& other) const;

 private:
  std::vector<WideAtomLabel> atoms_;
  bool top_ = false;
};

}  // namespace fdc::label
