#include "label/generating_set.h"

#include "label/glb.h"

namespace fdc::label {

bool InducesLabeler(const order::DisclosureLattice& lattice,
                    const LabelFamily& family) {
  std::vector<int> k;
  k.reserve(family.size());
  for (const order::ViewSet& w : family) {
    const int idx = lattice.IndexOfDownSet(w);
    if (idx < 0) return false;  // should not happen
    k.push_back(idx);
  }
  // (b) K contains ⇓U.
  bool has_top = false;
  for (int idx : k) has_top |= (idx == lattice.Top());
  if (!has_top) return false;
  // (a) closure under GLB.
  for (size_t i = 0; i < k.size(); ++i) {
    for (size_t j = i + 1; j < k.size(); ++j) {
      const int glb = lattice.Glb(k[i], k[j]);
      bool found = false;
      for (int idx : k) found |= (idx == glb);
      if (!found) return false;
    }
  }
  return true;
}

bool InducesPreciseLabeler(const order::DisclosureLattice& lattice,
                           const LabelFamily& family) {
  if (!InducesLabeler(lattice, family)) return false;
  std::vector<int> k;
  for (const order::ViewSet& w : family) {
    k.push_back(lattice.IndexOfDownSet(w));
  }
  bool has_bottom = false;
  for (int idx : k) has_bottom |= (idx == lattice.Bottom());
  if (!has_bottom) return false;
  for (size_t i = 0; i < k.size(); ++i) {
    for (size_t j = i + 1; j < k.size(); ++j) {
      const int lub = lattice.Lub(k[i], k[j]);
      bool found = false;
      for (int idx : k) found |= (idx == lub);
      if (!found) return false;
    }
  }
  return true;
}

namespace {

bool ContainsEquivalent(const order::DisclosureOrder& order,
                        const LabelFamily& family, const order::ViewSet& w) {
  for (const order::ViewSet& member : family) {
    if (order.Equivalent(member, w)) return true;
  }
  return false;
}

}  // namespace

LabelFamily CloseUnderGlb(const order::DisclosureOrder& order,
                          order::Universe* universe, LabelFamily family) {
  // Deduplicate input up to ≡ first.
  LabelFamily closed;
  for (order::ViewSet w : family) {
    order::NormalizeViewSet(&w);
    if (!ContainsEquivalent(order, closed, w)) closed.push_back(std::move(w));
  }
  // Fixpoint: add GLBs of all pairs until nothing new appears. Termination:
  // unification only yields patterns built from input relations, arities and
  // constants, a finite space.
  for (size_t i = 0; i < closed.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      order::ViewSet glb = GlbSets(universe, closed[i], closed[j]);
      if (!ContainsEquivalent(order, closed, glb)) {
        closed.push_back(std::move(glb));
      }
    }
  }
  return closed;
}

LabelFamily MinimalDownwardGeneratingSet(const order::DisclosureOrder& order,
                                         order::Universe* universe,
                                         LabelFamily family) {
  // An element e is redundant iff e ≡ GLB{ f ≠ e : e ⪯ f }: any witnessing
  // subset consists of elements above e, and GLB is monotone, so the full
  // set of elements above e is the best candidate.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < family.size(); ++i) {
      std::vector<order::ViewSet> above;
      for (size_t j = 0; j < family.size(); ++j) {
        if (j != i && order.Leq(family[i], family[j])) {
          above.push_back(family[j]);
        }
      }
      if (above.empty()) continue;
      order::ViewSet glb = GlbMany(universe, above);
      if (order.Equivalent(glb, family[i])) {
        family.erase(family.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
    }
  }
  return family;
}

}  // namespace fdc::label
