// Compiled view-catalog matcher: the catalog-side dual of AtomRewritable.
//
// The labeling hot path needs, for every dissected atom pattern v, the full
// per-relation ℓ+ mask { i : AtomRewritable(v, w_i) } over the catalog's
// views w_i. The seed kernel answers that with one AtomRewritable call per
// (pattern, view) pair — a ContainmentCache probe and, on miss, a fresh
// position-class analysis per view. Because catalog views are single-atom
// patterns (ViewCatalog enforces this), the whole per-relation test can be
// *compiled once* at catalog-freeze time into a discrimination net over
// constant positions/values and class structure, and then evaluated for any
// incoming pattern in one pass over its positions:
//
//   * per-position view bitmasks (const_at / dist_at / not_const_at) fold
//     conditions C1/C3/C4 of the rewriting test into AND-masks;
//   * per-position constant-value tables (flat, sorted, string probes)
//     resolve "which views select exactly this constant here" in one
//     binary search;
//   * view-side equality constraints (C2) are precompiled into a short list
//     of (q, p, mask) requirements shared by all views imposing them;
//   * pattern-side equality constraints (C5) are answered by a precomputed
//     position×position same-class mask plus the distinguished masks.
//
// Mask width: every per-view mask in the net is an array of uint64_t words
// whose count is fixed per relation at compile time (MaskWords(relation) =
// ceil(view count / 64), minimum 1) — a MaskSpan threaded through the whole
// SoA layout. MatchMaskWords therefore evaluates C1–C5 for *any* number of
// views per relation in one allocation-free pass; there is no 32-view
// capacity cliff in the compiled kernel. One-word relations (the common
// case) run a specialized single-word loop with exactly the pre-wide code
// shape. Whether a relation's ℓ+ rides in packed or wide label atoms is a
// catalog property exposed as UsesWideMask(relation) (view count >
// kPackedViewCapacity); MatchMask/MatchLabel keep the packed 32-bit
// contract — the low 32 bits of the full mask, identical to the seed
// ComputePatternMask guard — for consumers and oracles that stay packed.
//
// MatchMask/MatchMaskWords are allocation-free, touch no interner and no
// cache, and are pure/immutable after Compile — any number of threads may
// evaluate concurrently. Equivalence with the seed per-view loop is
// property-tested over the packed range (tests/compiled_matcher_test.cc)
// and across the 31/32/33/63/64/65/128 view boundaries
// (tests/wide_matcher_property_test.cc); the seed loop is kept behind the
// `ablate_compiled_matcher` labeling option as the oracle.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "cq/pattern.h"
#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::label {

class CompiledCatalogMatcher {
 public:
  /// Largest pattern arity the discrimination net compiles for. Covers
  /// every real schema (the widest Facebook relation, User, has 34
  /// columns); wider relations fall back to the seed per-view loop inside
  /// MatchMask*, so results never change.
  static constexpr int kMaxCompiledArity = 64;

  CompiledCatalogMatcher() = default;

  /// Compiles `catalog` (one pass over its views). The catalog must outlive
  /// the matcher and must not be mutated afterwards — the matcher is a
  /// frozen artifact, rebuilt whenever the catalog is.
  static CompiledCatalogMatcher Compile(const ViewCatalog& catalog);

  /// Packed ℓ+ mask of `pattern` against its relation's views: bit i set
  /// iff AtomRewritable(pattern, i-th view of the relation) and
  /// i < kPackedViewCapacity — i.e. the low 32 bits of the full wide mask,
  /// matching the seed ComputePatternMask guard exactly. `pattern` must be
  /// normalized (class ids by first occurrence), which
  /// Dissect/AtomPattern::FromAtom guarantee. Zero allocation; lock-free.
  uint32_t MatchMask(const cq::AtomPattern& pattern) const;

  /// MatchMask wrapped in the packed per-atom label. Whole-query labeling
  /// (Dissect + one MatchLabel per atom) lives with the consumers —
  /// LabelingPipeline::LabelViaMatcher and ConcurrentLabeler::LabelCompiled
  /// — which layer their own counters over this kernel.
  PackedAtomLabel MatchLabel(const cq::AtomPattern& pattern) const {
    return PackedAtomLabel(static_cast<uint32_t>(pattern.relation),
                           MatchMask(pattern));
  }

  /// Mask words per view-set of `relation` (ceil(view count / 64), minimum
  /// 1 — also 1 for unknown relations). The stride of every wide-mask
  /// buffer a caller hands to MatchMaskWords.
  int MaskWords(int relation) const {
    const RelationNet* net = NetFor(relation);
    return net != nullptr ? net->words : 1;
  }

  /// Largest MaskWords over the catalog (1 for an empty catalog): size a
  /// single scratch buffer once and it fits every relation.
  int max_mask_words() const { return max_words_; }

  /// True iff `relation` has more views than a packed atom mask can carry,
  /// so its ℓ+ belongs in WideAtomLabel entries.
  bool UsesWideMask(int relation) const {
    const RelationNet* net = NetFor(relation);
    return net != nullptr && net->num_views > kPackedViewCapacity;
  }

  /// Full ℓ+ mask of `pattern` over *all* of its relation's views — no
  /// packed capacity, bit b of view b lives in out[b / 64]. Writes exactly
  /// MaskWords(pattern.relation) words into `out`. Zero allocation;
  /// lock-free; same C1–C5 evaluation as MatchMask.
  void MatchMaskWords(const cq::AtomPattern& pattern, uint64_t* out) const;

  /// MatchMaskWords into a reusable WideAtomLabel: sets the relation, fills
  /// the mask words, and normalizes (trims trailing zero words). Reuses
  /// `out->mask`'s storage, so a warm caller-owned label makes this
  /// allocation-free too.
  void MatchWideAtom(const cq::AtomPattern& pattern, WideAtomLabel* out) const;

  /// Per-view rewritability tests the seed kernel would run for an atom
  /// over `relation` that a compiled evaluation does NOT run: the
  /// relation's full view count — or 0 for fallback relations, where the
  /// compiled path itself executes the per-view loop. Feeds the
  /// per_view_tests_avoided observability counters.
  int AvoidedPerViewTests(int relation) const {
    const RelationNet* net = NetFor(relation);
    return (net == nullptr || net->use_fallback) ? 0 : net->num_views;
  }

 private:
  /// One relation's compiled net, flat SoA: every mask is `words`
  /// consecutive uint64_t (the relation's MaskSpan width); per-position
  /// masks share one stride-`arity×words` layout, value tables one sorted
  /// (pos, value) span list with `words`-stride mask rows.
  struct RelationNet {
    int arity = 0;
    int words = 1;      // mask words per view-set: ceil(num_views / 64), ≥ 1
    int num_views = 0;  // total views of the relation (all representable)
    bool use_fallback = false;  // arity > kMaxCompiledArity: per-view loop
    // Per-position masks (arity × words each).
    std::vector<uint64_t> all_views;     // words: every compiled view
    std::vector<uint64_t> const_at;      // views with a constant at p
    std::vector<uint64_t> dist_at;       // views with a distinguished var
    // same_class[(q * arity + p) * words + w]: views with the same variable
    // class at positions q and p (both non-const).
    std::vector<uint64_t> same_class;
    // Constant-value table: values sorted within each position's span
    // [value_begin[p], value_begin[p + 1]); mask rows parallel to values.
    std::vector<int> value_begin;        // length arity + 1
    std::vector<std::string> values;
    std::vector<uint64_t> value_masks;   // values.size() × words
    // C2: view-side equalities. Views in the mask row require the incoming
    // pattern to imply equality between positions q and p.
    struct EqRequirement {
      uint16_t q = 0;
      uint16_t p = 0;
      uint32_t mask_row = 0;  // row index into eq_masks (× words)
    };
    std::vector<EqRequirement> eq_requirements;
    std::vector<uint64_t> eq_masks;      // eq_requirements.size() × words
  };

  const RelationNet* NetFor(int relation) const {
    if (relation < 0 || static_cast<size_t>(relation) >= nets_.size()) {
      return nullptr;
    }
    return &nets_[static_cast<size_t>(relation)];
  }

  /// Mask row of views at `pattern.relation` selecting exactly `value` at
  /// position p (binary search in the flat value table), or nullptr when no
  /// view does.
  static const uint64_t* LookupValue(const RelationNet& net, int p,
                                     const std::string& value);

  /// The single-word kernel (net.words == 1): today's exact code shape, one
  /// uint64_t accumulator, no scratch.
  static uint64_t MatchWordNarrow(const RelationNet& net,
                                  const cq::AtomPattern& v);

  /// The width-generic kernel (any net.words): accumulates into `out`.
  static void MatchWordsWide(const RelationNet& net, const cq::AtomPattern& v,
                             uint64_t* out);

  /// Per-view AtomRewritable loop for fallback relations, full bit range.
  void FallbackMaskWords(int relation, const cq::AtomPattern& v,
                         uint64_t* out, int words) const;

  const ViewCatalog* catalog_ = nullptr;
  std::vector<RelationNet> nets_;  // indexed by relation id
  int max_words_ = 1;
};

}  // namespace fdc::label
