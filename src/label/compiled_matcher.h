// Compiled view-catalog matcher: the catalog-side dual of AtomRewritable.
//
// The labeling hot path needs, for every dissected atom pattern v, the full
// per-relation ℓ+ mask { i : AtomRewritable(v, w_i) } over the catalog's
// views w_i. The seed kernel answers that with one AtomRewritable call per
// (pattern, view) pair — a ContainmentCache probe and, on miss, a fresh
// position-class analysis per view. Because catalog views are single-atom
// patterns (ViewCatalog enforces this), the whole per-relation test can be
// *compiled once* at catalog-freeze time into a discrimination net over
// constant positions/values and class structure, and then evaluated for any
// incoming pattern in one pass over its positions:
//
//   * per-position view bitmasks (const_at / dist_at / not_const_at) fold
//     conditions C1/C3/C4 of the rewriting test into AND-masks;
//   * per-position constant-value tables (flat, sorted, string probes)
//     resolve "which views select exactly this constant here" in one
//     binary search;
//   * view-side equality constraints (C2) are precompiled into a short list
//     of (q, p, mask) requirements shared by all views imposing them;
//   * pattern-side equality constraints (C5) are answered by a precomputed
//     position×position same-class mask plus the distinguished masks.
//
// Mask width: every per-view mask in the net is an array of uint64_t words
// whose count is fixed per relation at compile time (MaskWords(relation) =
// ceil(view count / 64), minimum 1) — a MaskSpan threaded through the whole
// SoA layout. MatchMaskWords therefore evaluates C1–C5 for *any* number of
// views per relation in one allocation-free pass; there is no 32-view
// capacity cliff in the compiled kernel. One-word relations (the common
// case) run a specialized single-word loop with exactly the pre-wide code
// shape. Whether a relation's ℓ+ rides in packed or wide label atoms is a
// catalog property exposed as UsesWideMask(relation) (view count >
// kPackedViewCapacity); MatchMask/MatchLabel keep the packed 32-bit
// contract — the low 32 bits of the full mask, identical to the seed
// ComputePatternMask guard — for consumers and oracles that stay packed.
//
// Batch kernel: MatchMaskBatch evaluates one relation's net over N
// dissected atoms at once. Each pattern still runs the fused per-atom loop
// shape — the running mask stays hot (a register word for one-word
// relations, W cache-resident words for wide ones) and dies early — because
// staging per-position operands through memory loses to that shape at every
// real mask width. What the batch adds:
//
//   * a batch-level constant-probe memo (BatchScratch::ProbeMemo): C1/C3
//     value lookups are the kernel's dominant cost, and batches repeat
//     constants heavily, so each (position, value) pair pays its binary
//     search once per batch and resolves O(1) afterwards — for values of
//     ≤ 8 bytes a hit needs no string access at all (the prefix key plus
//     length is the full content);
//   * precomputed single-AND rows for every condition (nc/ncd complements,
//     value∨dist, same-class∨dist), so the fused loop never composes masks
//     at eval time;
//   * cross-pattern prefetch of the next atom's term array;
//   * for wide relations, the per-position W-word row ANDs dispatch at
//     runtime (common/simd.h) to AVX2 (four words per vpand plus a 128-bit
//     step) or NEON (two words) kernel variants, with the scalar variant
//     always compiled and selectable (FDC_SIMD env / simd::ForceIsa) for
//     ablation and the scalar-forced CI leg. One-word relations have
//     nothing for vector ANDs to fold, so they always run the scalar fused
//     word kernel and report zero SIMD lanes.
//
// The per-atom MatchMaskWords stays the property-test oracle: the batch
// kernel is bit-identical to it by construction and by the randomized
// differential suite (tests/batch_kernel_property_test.cc), under every
// compiled ISA variant.
//
// MatchMask/MatchMaskWords are allocation-free, touch no interner and no
// cache, and are pure/immutable after Compile — any number of threads may
// evaluate concurrently (MatchMaskBatch too, given per-thread scratch).
// Equivalence with the seed per-view loop is property-tested over the
// packed range (tests/compiled_matcher_test.cc) and across the
// 31/32/33/63/64/65/128 view boundaries
// (tests/wide_matcher_property_test.cc); the seed loop is kept behind the
// `ablate_compiled_matcher` labeling option as the oracle.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cq/pattern.h"
#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::label {

class CompiledCatalogMatcher;

/// Reusable working state for MatchMaskBatch: the constant-probe memo plus
/// the SIMD lane counter. A warm scratch (memo grown to the largest arity
/// seen) makes MatchMaskBatch allocation-free; one scratch serves any
/// number of sequential batches over any relations but must not be shared
/// across threads concurrently.
class BatchScratch {
 public:
  /// Cumulative count of 64-bit mask words ANDed through vector (AVX2/NEON)
  /// instructions across every batch evaluated with this scratch; stays 0
  /// under scalar dispatch and for one-word (narrow) relations, where there
  /// is nothing for vector ANDs to fold. Feeds the simd_lanes_used stats
  /// counters.
  uint64_t simd_lanes_used() const { return simd_lanes_used_; }

 private:
  friend class CompiledCatalogMatcher;

  /// Direct-mapped constant-probe memo, indexed by (position, hashed value
  /// key). Batches repeat constants heavily — a catalog's selection values
  /// form a small set — so after the first binary search for a value, every
  /// other pattern in the batch probing the same (position, value) resolves
  /// in O(1). Entries are validated by epoch so nothing is cleared between
  /// batches (a batch of one pattern must not pay a table wipe). Only
  /// values of ≤ 8 bytes are memoized: for those the prefix key plus the
  /// length IS the full value, so a hit needs no string dereference at all;
  /// longer values always take the binary search (they are rare as
  /// selection constants, and correctness never depends on the memo).
  struct ProbeMemo {
    uint64_t key = 0;
    uint64_t epoch = 0;
    const uint64_t* row = nullptr;
    uint32_t size = 0;
  };
  static constexpr int kProbeMemoBits = 6;  // 64 slots per position
  std::vector<ProbeMemo> memo_;             // arity << kProbeMemoBits slots
  uint64_t epoch_ = 0;

  uint64_t simd_lanes_used_ = 0;
};

class CompiledCatalogMatcher {
 public:
  /// Largest pattern arity the discrimination net compiles for. Covers
  /// every real schema (the widest Facebook relation, User, has 34
  /// columns); wider relations fall back to the seed per-view loop inside
  /// MatchMask*, so results never change.
  static constexpr int kMaxCompiledArity = 64;

  CompiledCatalogMatcher() = default;

  /// Compiles `catalog` (one pass over its views). The catalog must outlive
  /// the matcher and must not be mutated afterwards — the matcher is a
  /// frozen artifact, rebuilt whenever the catalog is.
  static CompiledCatalogMatcher Compile(const ViewCatalog& catalog);

  /// Packed ℓ+ mask of `pattern` against its relation's views: bit i set
  /// iff AtomRewritable(pattern, i-th view of the relation) and
  /// i < kPackedViewCapacity — i.e. the low 32 bits of the full wide mask,
  /// matching the seed ComputePatternMask guard exactly. `pattern` must be
  /// normalized (class ids by first occurrence), which
  /// Dissect/AtomPattern::FromAtom guarantee. Zero allocation; lock-free.
  uint32_t MatchMask(const cq::AtomPattern& pattern) const;

  /// MatchMask wrapped in the packed per-atom label. Whole-query labeling
  /// (Dissect + one MatchLabel per atom) lives with the consumers —
  /// LabelingPipeline::LabelViaMatcher and ConcurrentLabeler::LabelCompiled
  /// — which layer their own counters over this kernel.
  PackedAtomLabel MatchLabel(const cq::AtomPattern& pattern) const {
    return PackedAtomLabel(static_cast<uint32_t>(pattern.relation),
                           MatchMask(pattern));
  }

  /// Mask words per view-set of `relation` (ceil(view count / 64), minimum
  /// 1 — also 1 for unknown relations). The stride of every wide-mask
  /// buffer a caller hands to MatchMaskWords.
  int MaskWords(int relation) const {
    const RelationNet* net = NetFor(relation);
    return net != nullptr ? net->words : 1;
  }

  /// Largest MaskWords over the catalog (1 for an empty catalog): size a
  /// single scratch buffer once and it fits every relation.
  int max_mask_words() const { return max_words_; }

  /// True iff `relation` has more views than a packed atom mask can carry,
  /// so its ℓ+ belongs in WideAtomLabel entries.
  bool UsesWideMask(int relation) const {
    const RelationNet* net = NetFor(relation);
    return net != nullptr && net->num_views > kPackedViewCapacity;
  }

  /// Full ℓ+ mask of `pattern` over *all* of its relation's views — no
  /// packed capacity, bit b of view b lives in out[b / 64]. Writes exactly
  /// MaskWords(pattern.relation) words into `out`. Zero allocation;
  /// lock-free; same C1–C5 evaluation as MatchMask.
  void MatchMaskWords(const cq::AtomPattern& pattern, uint64_t* out) const;

  /// MatchMaskWords into a reusable WideAtomLabel: sets the relation, fills
  /// the mask words, and normalizes (trims trailing zero words). Reuses
  /// `out->mask`'s storage, so a warm caller-owned label makes this
  /// allocation-free too.
  void MatchWideAtom(const cq::AtomPattern& pattern, WideAtomLabel* out) const;

  /// Batch-structured MatchMaskWords: evaluates this relation's net over
  /// all of `patterns` at once through the fused memoized kernel (see the
  /// header comment for the kernel structure and SIMD dispatch contract). Every pattern must name the same relation
  /// (`patterns[0].relation`); consumers bucket per relation first.
  /// Writes patterns.size() rows of MaskWords(relation) words each into
  /// `out_masks` (row i = pattern i), bit-identical to calling
  /// MatchMaskWords per pattern — arity mismatches zero their row,
  /// fallback relations run the per-view loop per pattern. Allocation-free
  /// once `scratch` is warm; lock-free over the frozen net.
  void MatchMaskBatch(std::span<const cq::AtomPattern> patterns,
                      uint64_t* out_masks, BatchScratch* scratch) const;

  /// Pointer-batch overload for consumers whose bucketed atoms are not
  /// contiguous (LabelBatch buckets dissected atoms from many queries by
  /// relation without copying them). Identical contract otherwise.
  void MatchMaskBatch(std::span<const cq::AtomPattern* const> patterns,
                      uint64_t* out_masks, BatchScratch* scratch) const;

  /// Per-view rewritability tests the seed kernel would run for an atom
  /// over `relation` that a compiled evaluation does NOT run: the
  /// relation's full view count — or 0 for fallback relations, where the
  /// compiled path itself executes the per-view loop. Feeds the
  /// per_view_tests_avoided observability counters.
  int AvoidedPerViewTests(int relation) const {
    const RelationNet* net = NetFor(relation);
    return (net == nullptr || net->use_fallback) ? 0 : net->num_views;
  }

 private:
  /// One relation's compiled net, flat SoA: every mask is `words`
  /// consecutive uint64_t (the relation's MaskSpan width); per-position
  /// masks share one stride-`arity×words` layout, value tables one sorted
  /// (pos, value) span list with `words`-stride mask rows.
  struct RelationNet {
    int arity = 0;
    int words = 1;      // mask words per view-set: ceil(num_views / 64), ≥ 1
    int num_views = 0;  // total views of the relation (all representable)
    bool use_fallback = false;  // arity > kMaxCompiledArity: per-view loop
    // Per-position masks (arity × words each).
    std::vector<uint64_t> all_views;     // words: every compiled view
    std::vector<uint64_t> const_at;      // views with a constant at p
    std::vector<uint64_t> dist_at;       // views with a distinguished var
    // same_class[(q * arity + p) * words + w]: views with the same variable
    // class at positions q and p (both non-const).
    std::vector<uint64_t> same_class;
    // Constant-value table: values sorted within each position's span
    // [value_begin[p], value_begin[p + 1]); mask rows parallel to values.
    std::vector<int> value_begin;        // length arity + 1
    std::vector<std::string> values;
    std::vector<uint64_t> value_masks;   // values.size() × words
    // 8-byte big-endian prefix keys parallel to `values`. Key order is a
    // coarsening of the span's lexicographic order, so lookups binary-search
    // the integer keys and only touch strings to break prefix ties.
    std::vector<uint64_t> value_keys;
    // C2: view-side equalities. Views in the mask row require the incoming
    // pattern to imply equality between positions q and p.
    struct EqRequirement {
      uint16_t q = 0;
      uint16_t p = 0;
      uint32_t mask_row = 0;  // row index into eq_masks (× words)
    };
    std::vector<EqRequirement> eq_requirements;
    std::vector<uint64_t> eq_masks;      // eq_requirements.size() × words
    // Derived rows for the batch kernel: every per-position condition as a
    // single AND-able row, so classification never composes masks at eval
    // time. All precomputed from the rows above at compile time.
    std::vector<uint64_t> nc_at;         // arity × words: all_views & ~const_at
    std::vector<uint64_t> ncd_at;        // arity × words: nc_at & dist_at
    // value_masks row | dist_at of its position (parallel to value_masks).
    std::vector<uint64_t> value_or_dist;
    // (q·arity + p) rows: same_class | (dist_at[q] & dist_at[p]).
    std::vector<uint64_t> same_or_dist;
    // all_views & ~eq_masks, parallel to eq_masks.
    std::vector<uint64_t> eq_not;
  };

  const RelationNet* NetFor(int relation) const {
    if (relation < 0 || static_cast<size_t>(relation) >= nets_.size()) {
      return nullptr;
    }
    return &nets_[static_cast<size_t>(relation)];
  }

  /// Mask row of views at `pattern.relation` selecting exactly `value` at
  /// position p, or nullptr when no view does. Wraps LookupRow over the
  /// value_masks rows.
  static const uint64_t* LookupValue(const RelationNet& net, int p,
                                     const std::string& value);

  /// Row index of `value` in position p's span of the flat value table
  /// (prefix-key binary search + string tie-break), or -1 when absent.
  /// `key` must be ValueKey(value).
  static int LookupRow(const RelationNet& net, int p, uint64_t key,
                       const std::string& value);

  /// The single-word kernel (net.words == 1): today's exact code shape, one
  /// uint64_t accumulator, no scratch.
  static uint64_t MatchWordNarrow(const RelationNet& net,
                                  const cq::AtomPattern& v);

  /// Shared body of the single-word kernel, parameterized over how C1/C3
  /// constant probes resolve: MatchWordNarrow passes the plain binary
  /// search; the batch kernel passes the BatchScratch probe memo. `lookup`
  /// gets (position, prefix key, value) and returns the row to AND — the
  /// value_or_dist row on a table hit, the dist row otherwise.
  template <typename Lookup>
  static uint64_t MatchNarrowImpl(const RelationNet& net,
                                  const cq::AtomPattern& v, Lookup lookup);

  /// The width-generic kernel (any net.words): accumulates into `out`.
  static void MatchWordsWide(const RelationNet& net, const cq::AtomPattern& v,
                             uint64_t* out);

  /// Per-view AtomRewritable loop for fallback relations, full bit range.
  void FallbackMaskWords(int relation, const cq::AtomPattern& v,
                         uint64_t* out, int words) const;

  /// Batch kernel core, generic over how the batch is stored (`at(i)` must
  /// yield the i-th cq::AtomPattern). Both public overloads forward here.
  template <typename Access>
  void MatchMaskBatchImpl(Access at, int n_patterns, uint64_t* out,
                          BatchScratch* scratch) const;

  const ViewCatalog* catalog_ = nullptr;
  std::vector<RelationNet> nets_;  // indexed by relation id
  int max_words_ = 1;
};

}  // namespace fdc::label
