// Compiled view-catalog matcher: the catalog-side dual of AtomRewritable.
//
// The labeling hot path needs, for every dissected atom pattern v, the full
// per-relation ℓ+ mask { i : AtomRewritable(v, w_i) } over the catalog's
// views w_i. The seed kernel answers that with one AtomRewritable call per
// (pattern, view) pair — a ContainmentCache probe and, on miss, a fresh
// position-class analysis per view. Because catalog views are single-atom
// patterns (ViewCatalog enforces this), the whole per-relation test can be
// *compiled once* at catalog-freeze time into a discrimination net over
// constant positions/values and class structure, and then evaluated for any
// incoming pattern in one pass over its positions:
//
//   * per-position view bitmasks (const_at / dist_at / not_const_at) fold
//     conditions C1/C3/C4 of the rewriting test into AND-masks;
//   * per-position constant-value tables (flat, sorted, string_view probes)
//     resolve "which views select exactly this constant here" in one
//     binary search;
//   * view-side equality constraints (C2) are precompiled into a short list
//     of (q, p, mask) requirements shared by all views imposing them;
//   * pattern-side equality constraints (C5) are answered by a precomputed
//     position×position same-class mask plus the distinguished masks.
//
// MatchMask is allocation-free, touches no interner and no cache, and is
// pure/immutable after Compile — any number of threads may evaluate
// concurrently. Equivalence with the seed per-view loop is property-tested
// (tests/compiled_matcher_test.cc); the seed loop is kept behind the
// `ablate_compiled_matcher` labeling option as the oracle.
//
// Packed-mask contract: like every packed-label kernel, the matcher
// represents at most 32 views per relation (bit i of the mask = the i-th
// view registered for that relation). Views with bit ≥ 32 are excluded from
// packed masks — labels get strictly higher (stricter, fail-safe), never
// looser — mirroring the guard in label::ComputePatternMask; relations that
// genuinely need more views belong on the WideLabel path.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "cq/pattern.h"
#include "label/compressed_label.h"
#include "label/view_catalog.h"

namespace fdc::label {

class CompiledCatalogMatcher {
 public:
  /// Largest pattern arity the discrimination net compiles for. Covers
  /// every real schema (the widest Facebook relation, User, has 34
  /// columns); wider relations fall back to the seed per-view loop inside
  /// MatchMask, so results never change.
  static constexpr int kMaxCompiledArity = 64;

  CompiledCatalogMatcher() = default;

  /// Compiles `catalog` (one pass over its views). The catalog must outlive
  /// the matcher and must not be mutated afterwards — the matcher is a
  /// frozen artifact, rebuilt whenever the catalog is.
  static CompiledCatalogMatcher Compile(const ViewCatalog& catalog);

  /// ℓ+ mask of `pattern` against every view of its relation: bit i set iff
  /// AtomRewritable(pattern, i-th view of the relation) and i < 32.
  /// `pattern` must be normalized (class ids by first occurrence), which
  /// Dissect/AtomPattern::FromAtom guarantee. Zero allocation; lock-free.
  uint32_t MatchMask(const cq::AtomPattern& pattern) const;

  /// MatchMask wrapped in the packed per-atom label. Whole-query labeling
  /// (Dissect + one MatchLabel per atom) lives with the consumers —
  /// LabelingPipeline::LabelViaMatcher and ConcurrentLabeler::LabelCompiled
  /// — which layer their own counters over this kernel.
  PackedAtomLabel MatchLabel(const cq::AtomPattern& pattern) const {
    return PackedAtomLabel(static_cast<uint32_t>(pattern.relation),
                           MatchMask(pattern));
  }

  /// Per-view rewritability tests the seed kernel would run for an atom
  /// over `relation` that a MatchMask evaluation does NOT run: the
  /// relation's packed-representable view count — or 0 for fallback
  /// relations, where MatchMask itself executes the per-view loop. Feeds
  /// the per_view_tests_avoided observability counters.
  int AvoidedPerViewTests(int relation) const {
    if (relation < 0 || static_cast<size_t>(relation) >= nets_.size()) {
      return 0;
    }
    const RelationNet& net = nets_[static_cast<size_t>(relation)];
    return net.use_fallback ? 0 : std::popcount(net.all_views);
  }

 private:
  /// One relation's compiled net, flat SoA: per-position masks share one
  /// stride-`arity` layout, value tables one sorted (pos, value) span list.
  struct RelationNet {
    int arity = 0;
    uint32_t all_views = 0;  // views representable in the packed mask
    bool use_fallback = false;  // arity > kMaxCompiledArity: per-view loop
    // Per-position masks (length = arity each).
    std::vector<uint32_t> const_at;      // views with a constant at p
    std::vector<uint32_t> dist_at;       // views with a distinguished var
    // same_class[q * arity + p]: views with the same variable class at
    // positions q and p (both non-const).
    std::vector<uint32_t> same_class;
    // Constant-value table: values sorted within each position's span
    // [value_begin[p], value_begin[p + 1]); masks parallel to values.
    std::vector<int> value_begin;        // length arity + 1
    std::vector<std::string> values;
    std::vector<uint32_t> value_masks;
    // C2: view-side equalities. Views in `mask` require the incoming
    // pattern to imply equality between positions q and p.
    struct EqRequirement {
      uint16_t q = 0;
      uint16_t p = 0;
      uint32_t mask = 0;
    };
    std::vector<EqRequirement> eq_requirements;
  };

  /// Views at `pattern.relation` whose constant at position p equals
  /// `value`, as a mask (binary search in the flat value table).
  static uint32_t LookupValue(const RelationNet& net, int p,
                              const std::string& value);

  const ViewCatalog* catalog_ = nullptr;
  std::vector<RelationNet> nets_;  // indexed by relation id
};

}  // namespace fdc::label
