#include "label/compiled_matcher.h"

#include <algorithm>
#include <tuple>

#include "rewriting/atom_rewriting.h"

namespace fdc::label {

namespace {

using cq::AtomPattern;
using cq::PatTerm;

// "v implies position q ≡ position p": equal constants or the same variable
// class — exactly the implication test AtomRewritable runs for C2.
inline bool ImpliesEquality(const PatTerm& a, const PatTerm& b) {
  if (a.is_const != b.is_const) return false;
  if (a.is_const) return a.value == b.value;
  return a.cls == b.cls;
}

}  // namespace

CompiledCatalogMatcher CompiledCatalogMatcher::Compile(
    const ViewCatalog& catalog) {
  CompiledCatalogMatcher matcher;
  matcher.catalog_ = &catalog;

  int max_relation = -1;
  for (const SecurityView& view : catalog.views()) {
    max_relation = std::max(max_relation, view.relation);
  }
  matcher.nets_.resize(static_cast<size_t>(max_relation + 1));

  for (int relation = 0; relation <= max_relation; ++relation) {
    const std::vector<int>& view_ids = catalog.ViewsOfRelation(relation);
    if (view_ids.empty()) continue;
    RelationNet& net = matcher.nets_[static_cast<size_t>(relation)];
    net.num_views = static_cast<int>(view_ids.size());
    net.words = MaskWordsFor(net.num_views);
    matcher.max_words_ = std::max(matcher.max_words_, net.words);
    net.arity = catalog.view(view_ids.front()).pattern.arity();
    if (net.arity > kMaxCompiledArity) {
      // Pathological arity: MatchMask* runs the per-view loop instead. The
      // net stays empty but the relation is still answered correctly.
      net.use_fallback = true;
      continue;
    }
    const int n = net.arity;
    const int W = net.words;
    net.all_views.assign(static_cast<size_t>(W), 0);
    net.const_at.assign(static_cast<size_t>(n) * W, 0);
    net.dist_at.assign(static_cast<size_t>(n) * W, 0);
    net.same_class.assign(static_cast<size_t>(n) * n * W, 0);

    // (pos, value, view bit) triples, sorted into the flat table below.
    std::vector<std::tuple<int, std::string, int>> constants;
    // (q * n + p) -> requirement mask words, merged across views.
    std::vector<uint64_t> eq_mask(static_cast<size_t>(n) * n * W, 0);

    for (int view_id : view_ids) {
      const SecurityView& view = catalog.view(view_id);
      const size_t bit_word = static_cast<size_t>(view.bit) / 64;
      const uint64_t bit = uint64_t{1} << (view.bit % 64);
      const AtomPattern& w = view.pattern;
      // Mixed-arity views over one relation cannot come from a validated
      // schema; a mismatch would make every per-position mask meaningless.
      if (w.arity() != n) {
        net.use_fallback = true;
        break;
      }
      net.all_views[bit_word] |= bit;
      // class -> first position, for C2 requirement extraction.
      int first_pos[kMaxCompiledArity];
      std::fill(first_pos, first_pos + n, -1);
      for (int p = 0; p < n; ++p) {
        const PatTerm& wt = w.terms[p];
        if (wt.is_const) {
          net.const_at[static_cast<size_t>(p) * W + bit_word] |= bit;
          constants.emplace_back(p, wt.value, view.bit);
          continue;
        }
        if (wt.distinguished) {
          net.dist_at[static_cast<size_t>(p) * W + bit_word] |= bit;
        }
        const int q = first_pos[wt.cls];
        if (q < 0) {
          first_pos[wt.cls] = p;
        } else {
          // The view imposes q ≡ p (via the class representative, exactly
          // as AtomRewritable checks it).
          eq_mask[(static_cast<size_t>(q) * n + p) * W + bit_word] |= bit;
        }
        // Same-class masks for every earlier position of the class (C5
        // probes arbitrary (first, later) pairs of the *incoming* pattern's
        // classes, so all pairs are needed, not just representatives).
        for (int r = 0; r < p; ++r) {
          const PatTerm& wr = w.terms[r];
          if (!wr.is_const && wr.cls == wt.cls) {
            net.same_class[(static_cast<size_t>(r) * n + p) * W + bit_word] |=
                bit;
            net.same_class[(static_cast<size_t>(p) * n + r) * W + bit_word] |=
                bit;
          }
        }
      }
    }
    if (net.use_fallback) continue;

    for (int q = 0; q < n; ++q) {
      for (int p = 0; p < n; ++p) {
        const uint64_t* row = &eq_mask[(static_cast<size_t>(q) * n + p) * W];
        bool any = false;
        for (int w = 0; w < W; ++w) any = any || row[w] != 0;
        if (any) {
          net.eq_requirements.push_back(
              {static_cast<uint16_t>(q), static_cast<uint16_t>(p),
               static_cast<uint32_t>(net.eq_masks.size() / W)});
          net.eq_masks.insert(net.eq_masks.end(), row, row + W);
        }
      }
    }

    // Flat sorted constant-value table with per-position spans.
    std::sort(constants.begin(), constants.end(),
              [](const auto& a, const auto& b) {
                if (std::get<0>(a) != std::get<0>(b)) {
                  return std::get<0>(a) < std::get<0>(b);
                }
                return std::get<1>(a) < std::get<1>(b);
              });
    net.value_begin.assign(static_cast<size_t>(n) + 1, 0);
    for (size_t i = 0; i < constants.size();) {
      const int pos = std::get<0>(constants[i]);
      const std::string& value = std::get<1>(constants[i]);
      const size_t row = net.values.size();
      net.value_masks.insert(net.value_masks.end(), static_cast<size_t>(W), 0);
      size_t j = i;  // merge the run of views selecting `value` at `pos`
      while (j < constants.size() && std::get<0>(constants[j]) == pos &&
             std::get<1>(constants[j]) == value) {
        const int view_bit = std::get<2>(constants[j]);
        net.value_masks[row * W + static_cast<size_t>(view_bit) / 64] |=
            uint64_t{1} << (view_bit % 64);
        ++j;
      }
      net.values.push_back(value);
      net.value_begin[static_cast<size_t>(pos) + 1] =
          static_cast<int>(net.values.size());
      i = j;
    }
    // Positions without constants inherit the previous offset, so every
    // span [value_begin[p], value_begin[p+1]) is well-formed.
    for (int p = 1; p <= n; ++p) {
      net.value_begin[p] = std::max(net.value_begin[p], net.value_begin[p - 1]);
    }
  }
  return matcher;
}

const uint64_t* CompiledCatalogMatcher::LookupValue(const RelationNet& net,
                                                    int p,
                                                    const std::string& value) {
  const auto begin = net.values.begin() + net.value_begin[p];
  const auto end = net.values.begin() + net.value_begin[p + 1];
  const auto it = std::lower_bound(begin, end, value);
  if (it == end || *it != value) return nullptr;
  return &net.value_masks[static_cast<size_t>(it - net.values.begin()) *
                          net.words];
}

uint64_t CompiledCatalogMatcher::MatchWordNarrow(const RelationNet& net,
                                                 const AtomPattern& v) {
  // One-word relations: the pre-wide code shape — a single accumulator,
  // no scratch, indexes collapse because words == 1.
  const int n = net.arity;
  uint64_t mask = net.all_views[0];
  // class -> first position of the *incoming* pattern (normalized classes
  // are numbered by first occurrence, so `cls == next_class` detects one).
  int first_pos[kMaxCompiledArity];
  int next_class = 0;
  for (int p = 0; p < n && mask != 0; ++p) {
    const PatTerm& vt = v.terms[p];
    if (vt.is_const) {
      // C1: views selecting a constant here must select this value.
      // C3: views exposing the column instead can filter on it.
      const uint64_t* value_row = LookupValue(net, p, vt.value);
      mask &= (value_row != nullptr ? value_row[0] : 0) | net.dist_at[p];
      continue;
    }
    // C1 (converse): views selecting any constant here miss tuples v needs.
    mask &= ~net.const_at[p];
    // C4: columns v outputs must be exposed.
    if (vt.distinguished) mask &= net.dist_at[p];
    // C5: equalities v imposes must be imposed by the view or checkable
    // from its output (both positions distinguished). Representative
    // pairing against the class's first occurrence, as in AtomRewritable.
    if (vt.cls == next_class) {
      first_pos[next_class++] = p;
    } else {
      const int q = first_pos[vt.cls];
      mask &= net.same_class[static_cast<size_t>(q) * n + p] |
              (net.dist_at[q] & net.dist_at[p]);
    }
  }
  if (mask == 0) return 0;
  // C2: equalities views impose must be implied by v.
  for (const RelationNet::EqRequirement& req : net.eq_requirements) {
    const uint64_t req_mask = net.eq_masks[req.mask_row];
    if ((mask & req_mask) != 0 &&
        !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      mask &= ~req_mask;
    }
  }
  return mask;
}

void CompiledCatalogMatcher::MatchWordsWide(const RelationNet& net,
                                            const AtomPattern& v,
                                            uint64_t* out) {
  // The width-generic kernel: identical C1–C5 structure, each AND applied
  // word-wise against the relation's MaskSpan rows; `acc` ORs the surviving
  // words so a dead mask still exits early.
  const int n = net.arity;
  const int W = net.words;
  std::copy(net.all_views.begin(), net.all_views.end(), out);
  int first_pos[kMaxCompiledArity];
  int next_class = 0;
  uint64_t acc = 1;
  for (int p = 0; p < n && acc != 0; ++p) {
    const PatTerm& vt = v.terms[p];
    const uint64_t* dist_p = &net.dist_at[static_cast<size_t>(p) * W];
    acc = 0;
    if (vt.is_const) {
      const uint64_t* value_row = LookupValue(net, p, vt.value);
      for (int w = 0; w < W; ++w) {
        out[w] &= (value_row != nullptr ? value_row[w] : 0) | dist_p[w];
        acc |= out[w];
      }
      continue;
    }
    const uint64_t* const_p = &net.const_at[static_cast<size_t>(p) * W];
    if (vt.distinguished) {
      for (int w = 0; w < W; ++w) out[w] &= ~const_p[w] & dist_p[w];
    } else {
      for (int w = 0; w < W; ++w) out[w] &= ~const_p[w];
    }
    if (vt.cls == next_class) {
      first_pos[next_class++] = p;
    } else {
      const int q = first_pos[vt.cls];
      const uint64_t* same =
          &net.same_class[(static_cast<size_t>(q) * n + p) * W];
      const uint64_t* dist_q = &net.dist_at[static_cast<size_t>(q) * W];
      for (int w = 0; w < W; ++w) out[w] &= same[w] | (dist_q[w] & dist_p[w]);
    }
    for (int w = 0; w < W; ++w) acc |= out[w];
  }
  if (acc == 0) return;  // every word already zero
  for (const RelationNet::EqRequirement& req : net.eq_requirements) {
    const uint64_t* req_mask = &net.eq_masks[static_cast<size_t>(req.mask_row) * W];
    uint64_t hit = 0;
    for (int w = 0; w < W; ++w) hit |= out[w] & req_mask[w];
    if (hit != 0 && !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      for (int w = 0; w < W; ++w) out[w] &= ~req_mask[w];
    }
  }
}

void CompiledCatalogMatcher::FallbackMaskWords(int relation,
                                               const AtomPattern& v,
                                               uint64_t* out, int words) const {
  std::fill(out, out + words, 0);
  for (int view_id : catalog_->ViewsOfRelation(relation)) {
    const SecurityView& view = catalog_->view(view_id);
    if (rewriting::AtomRewritable(v, view.pattern)) {
      out[static_cast<size_t>(view.bit) / 64] |= uint64_t{1} << (view.bit % 64);
    }
  }
}

uint32_t CompiledCatalogMatcher::MatchMask(const cq::AtomPattern& v) const {
  const RelationNet* net = NetFor(v.relation);
  if (net == nullptr) return 0;  // no views over this relation
  if (net->use_fallback) {
    // Seed per-view loop for pathological relations; packed bits only, so
    // views beyond the packed capacity are not even tested.
    uint32_t mask = 0;
    for (int view_id : catalog_->ViewsOfRelation(v.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (view.bit < kPackedViewCapacity &&
          rewriting::AtomRewritable(v, view.pattern)) {
        mask |= uint32_t{1} << view.bit;
      }
    }
    return mask;
  }
  if (v.arity() != net->arity) return 0;  // never rewritable (arity mismatch)
  if (net->words == 1) {
    // The packed contract is the low 32 bits of the full mask — views with
    // bit ≥ kPackedViewCapacity are excluded (labels strictly higher —
    // fail-safe), mirroring the guard in label::ComputePatternMask.
    return static_cast<uint32_t>(MatchWordNarrow(*net, v));
  }
  thread_local std::vector<uint64_t> scratch;
  if (scratch.size() < static_cast<size_t>(net->words)) {
    scratch.resize(static_cast<size_t>(net->words));
  }
  MatchWordsWide(*net, v, scratch.data());
  return static_cast<uint32_t>(scratch[0]);
}

void CompiledCatalogMatcher::MatchMaskWords(const cq::AtomPattern& v,
                                            uint64_t* out) const {
  const RelationNet* net = NetFor(v.relation);
  if (net == nullptr) {
    out[0] = 0;  // MaskWords == 1 for unknown relations
    return;
  }
  if (net->use_fallback) {
    FallbackMaskWords(v.relation, v, out, net->words);
    return;
  }
  if (v.arity() != net->arity) {
    std::fill(out, out + net->words, 0);
    return;
  }
  if (net->words == 1) {
    out[0] = MatchWordNarrow(*net, v);
    return;
  }
  MatchWordsWide(*net, v, out);
}

void CompiledCatalogMatcher::MatchWideAtom(const cq::AtomPattern& pattern,
                                           WideAtomLabel* out) const {
  out->relation = pattern.relation;
  const size_t words = static_cast<size_t>(MaskWords(pattern.relation));
  out->mask.resize(words);
  MatchMaskWords(pattern, out->mask.data());
  out->Normalize();
}

}  // namespace fdc::label
