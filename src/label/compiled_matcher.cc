#include "label/compiled_matcher.h"

#include <algorithm>
#include <tuple>

#include "common/simd.h"
#include "rewriting/atom_rewriting.h"

#if defined(__x86_64__) || defined(__i386__)
#define FDC_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#define FDC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fdc::label {

namespace {

using cq::AtomPattern;
using cq::PatTerm;

// "v implies position q ≡ position p": equal constants or the same variable
// class — exactly the implication test AtomRewritable runs for C2.
inline bool ImpliesEquality(const PatTerm& a, const PatTerm& b) {
  if (a.is_const != b.is_const) return false;
  if (a.is_const) return a.value == b.value;
  return a.cls == b.cls;
}

// 8-byte big-endian prefix of `s`, zero-padded: integer key order is a
// coarsening of lexicographic order (shorter prefixes sort below any
// continuation because the pad byte 0 is the minimum), so sorted-by-key
// probe runs line up with the sorted value table and ties only need a
// string comparison to resolve.
inline uint64_t ValueKey(const std::string& s) {
  const size_t n = s.size() < 8 ? s.size() : 8;
  uint64_t key = 0;
  for (size_t i = 0; i < n; ++i) {
    key |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
           << (56 - 8 * i);
  }
  return key;
}

// ---- Fused wide batch kernels -----------------------------------------
//
// The batch kernel evaluates each pattern through a fused loop that keeps
// the running W-word mask hot (the per-atom code shape — every C1–C5
// condition is an AND against a precomputed net row, with early exit the
// moment the mask dies), while the batch-level win comes from the shared
// constant-probe memo threaded in via `lookup`. For multi-word (wide)
// relations the per-position row ANDs are the kernel's densest work, so
// they are specialized per ISA: the AVX2 variant folds four 64-bit mask
// words per vpand (plus a 128-bit step), NEON two, and the scalar variant
// is always compiled and selected when simd::ActiveIsa() == kScalar
// (FDC_SIMD=scalar, ForceIsa, or hardware without AVX2/NEON). `lanes`
// counts 64-bit words that went through vector instructions — the
// simd_lanes_used observability counter. The kernels are templates over
// the (private) RelationNet so they can live outside the class.
//
// Each position contributes up to two operand rows: op1 is the C1/C3 value
// row (constants) or the C1-converse/C4 row nc/ncd (variables), op2 the C5
// same_or_dist row for repeated variables. The AND helpers apply both in
// one pass and OR-accumulate the surviving words so a dead mask exits the
// position loop, exactly like the per-atom kernel.

#if FDC_SIMD_X86
__attribute__((target("avx2"))) inline uint64_t AndRowAccAvx2(
    uint64_t* out, const uint64_t* a, const uint64_t* b, int w_count,
    uint64_t* lanes) {
  __m256i accv = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= w_count; w += 4) {
    __m256i r =
        _mm256_and_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + w)),
                         _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)));
    if (b != nullptr) {
      r = _mm256_and_si256(
          r, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), r);
    accv = _mm256_or_si256(accv, r);
  }
  uint64_t acc = _mm256_testz_si256(accv, accv) ? 0 : 1;
  if (w + 2 <= w_count) {
    __m128i r =
        _mm_and_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(out + w)),
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w)));
    if (b != nullptr) {
      r = _mm_and_si128(
          r, _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + w), r);
    if (!_mm_testz_si128(r, r)) acc = 1;
    w += 2;
  }
  *lanes += static_cast<uint64_t>(w);
  for (; w < w_count; ++w) {
    out[w] &= a[w];
    if (b != nullptr) out[w] &= b[w];
    acc |= out[w];
  }
  return acc;
}
#endif  // FDC_SIMD_X86

#if FDC_SIMD_NEON
inline uint64_t AndRowAccNeon(uint64_t* out, const uint64_t* a,
                              const uint64_t* b, int w_count,
                              uint64_t* lanes) {
  uint64x2_t accv = vdupq_n_u64(0);
  int w = 0;
  for (; w + 2 <= w_count; w += 2) {
    uint64x2_t r = vandq_u64(vld1q_u64(out + w), vld1q_u64(a + w));
    if (b != nullptr) r = vandq_u64(r, vld1q_u64(b + w));
    vst1q_u64(out + w, r);
    accv = vorrq_u64(accv, r);
  }
  *lanes += static_cast<uint64_t>(w);
  uint64_t acc = vgetq_lane_u64(accv, 0) | vgetq_lane_u64(accv, 1);
  for (; w < w_count; ++w) {
    out[w] &= a[w];
    if (b != nullptr) out[w] &= b[w];
    acc |= out[w];
  }
  return acc;
}
#endif  // FDC_SIMD_NEON

inline uint64_t AndRowAccScalar(uint64_t* out, const uint64_t* a,
                                const uint64_t* b, int w_count) {
  uint64_t acc = 0;
  if (b == nullptr) {
    for (int w = 0; w < w_count; ++w) {
      out[w] &= a[w];
      acc |= out[w];
    }
  } else {
    for (int w = 0; w < w_count; ++w) {
      out[w] &= a[w] & b[w];
      acc |= out[w];
    }
  }
  return acc;
}

// Resolves the (up to two) operand rows position p contributes for pattern
// term vt; returns op1, sets *op2 for C5 repeats. Identical classification
// to the per-atom kernels.
template <typename Net, typename Lookup>
inline const uint64_t* WideOperands(const Net& net, const PatTerm& vt, int p,
                                    int* first_pos, int* next_class,
                                    Lookup& lookup, const uint64_t** op2) {
  const int n = net.arity;
  const int W = net.words;
  *op2 = nullptr;
  if (vt.is_const) {
    return lookup(p, ValueKey(vt.value), vt.value);
  }
  const uint64_t* op1 = vt.distinguished
                            ? &net.ncd_at[static_cast<size_t>(p) * W]
                            : &net.nc_at[static_cast<size_t>(p) * W];
  if (vt.cls == *next_class) {
    first_pos[(*next_class)++] = p;
  } else {
    *op2 = &net.same_or_dist[(static_cast<size_t>(first_pos[vt.cls]) * n + p) *
                             W];
  }
  return op1;
}

// C2 epilogue shared by every wide variant: hit-check against the masked
// words, then clear the requirement's views when the pattern does not
// imply the equality — the per-atom shape exactly.
template <typename Net>
inline void WideEqEpilogue(const Net& net, const AtomPattern& v,
                           uint64_t* out) {
  const int W = net.words;
  for (const auto& req : net.eq_requirements) {
    const uint64_t* req_mask =
        &net.eq_masks[static_cast<size_t>(req.mask_row) * W];
    uint64_t hit = 0;
    for (int w = 0; w < W; ++w) hit |= out[w] & req_mask[w];
    if (hit != 0 && !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      for (int w = 0; w < W; ++w) out[w] &= ~req_mask[w];
    }
  }
}

// Two-word relations (65–128 views) are the common wide case, so they get
// register-resident specializations: the mask pair lives in two scalar
// registers or one 128-bit vector register across the whole position loop,
// and memory only sees the final store.

template <typename Net, typename Lookup>
void MatchW2FusedScalar(const Net& net, const AtomPattern& v, Lookup& lookup,
                        uint64_t* out) {
  const int n = net.arity;
  uint64_t m0 = net.all_views[0];
  uint64_t m1 = net.all_views[1];
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  for (int p = 0; p < n && (m0 | m1) != 0; ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    m0 &= op1[0];
    m1 &= op1[1];
    if (op2 != nullptr) {
      m0 &= op2[0];
      m1 &= op2[1];
    }
  }
  if ((m0 | m1) != 0) {
    for (const auto& req : net.eq_requirements) {
      const uint64_t* r = &net.eq_masks[static_cast<size_t>(req.mask_row) * 2];
      if (((m0 & r[0]) | (m1 & r[1])) != 0 &&
          !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
        m0 &= ~r[0];
        m1 &= ~r[1];
      }
    }
  }
  out[0] = m0;
  out[1] = m1;
}

#if FDC_SIMD_X86
template <typename Net, typename Lookup>
__attribute__((target("avx2"))) void MatchW2FusedAvx2(const Net& net,
                                                      const AtomPattern& v,
                                                      Lookup& lookup,
                                                      uint64_t* out,
                                                      uint64_t* lanes) {
  const int n = net.arity;
  __m128i m =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(net.all_views.data()));
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  uint64_t l = 0;
  for (int p = 0; p < n && !_mm_testz_si128(m, m); ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    m = _mm_and_si128(m,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(op1)));
    if (op2 != nullptr) {
      m = _mm_and_si128(m,
                        _mm_loadu_si128(reinterpret_cast<const __m128i*>(op2)));
    }
    l += 2;
  }
  if (!_mm_testz_si128(m, m)) {
    for (const auto& req : net.eq_requirements) {
      const __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          &net.eq_masks[static_cast<size_t>(req.mask_row) * 2]));
      // testz(m, r) is the hit check: (m & r) == 0.
      if (!_mm_testz_si128(m, r) &&
          !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
        m = _mm_andnot_si128(r, m);
      }
    }
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), m);
  *lanes += l;
}
#endif  // FDC_SIMD_X86

#if FDC_SIMD_NEON
template <typename Net, typename Lookup>
void MatchW2FusedNeon(const Net& net, const AtomPattern& v, Lookup& lookup,
                      uint64_t* out, uint64_t* lanes) {
  const int n = net.arity;
  uint64x2_t m = vld1q_u64(net.all_views.data());
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  uint64_t l = 0;
  const auto alive = [](uint64x2_t x) {
    return (vgetq_lane_u64(x, 0) | vgetq_lane_u64(x, 1)) != 0;
  };
  for (int p = 0; p < n && alive(m); ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    m = vandq_u64(m, vld1q_u64(op1));
    if (op2 != nullptr) m = vandq_u64(m, vld1q_u64(op2));
    l += 2;
  }
  if (alive(m)) {
    for (const auto& req : net.eq_requirements) {
      const uint64x2_t r =
          vld1q_u64(&net.eq_masks[static_cast<size_t>(req.mask_row) * 2]);
      if (alive(vandq_u64(m, r)) &&
          !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
        m = vbicq_u64(m, r);
      }
    }
  }
  vst1q_u64(out, m);
  *lanes += l;
}
#endif  // FDC_SIMD_NEON

template <typename Net, typename Lookup>
void MatchWideFusedScalar(const Net& net, const AtomPattern& v,
                          Lookup& lookup, uint64_t* out) {
  const int n = net.arity;
  const int W = net.words;
  std::copy(net.all_views.begin(), net.all_views.end(), out);
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  uint64_t acc = 1;
  for (int p = 0; p < n && acc != 0; ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    acc = AndRowAccScalar(out, op1, op2, W);
  }
  if (acc != 0) WideEqEpilogue(net, v, out);
}

#if FDC_SIMD_X86
template <typename Net, typename Lookup>
__attribute__((target("avx2"))) void MatchWideFusedAvx2(const Net& net,
                                                        const AtomPattern& v,
                                                        Lookup& lookup,
                                                        uint64_t* out,
                                                        uint64_t* lanes) {
  const int n = net.arity;
  const int W = net.words;
  std::copy(net.all_views.begin(), net.all_views.end(), out);
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  uint64_t acc = 1;
  for (int p = 0; p < n && acc != 0; ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    acc = AndRowAccAvx2(out, op1, op2, W, lanes);
  }
  if (acc != 0) WideEqEpilogue(net, v, out);
}
#endif  // FDC_SIMD_X86

#if FDC_SIMD_NEON
template <typename Net, typename Lookup>
void MatchWideFusedNeon(const Net& net, const AtomPattern& v, Lookup& lookup,
                        uint64_t* out, uint64_t* lanes) {
  const int n = net.arity;
  const int W = net.words;
  std::copy(net.all_views.begin(), net.all_views.end(), out);
  int first_pos[CompiledCatalogMatcher::kMaxCompiledArity];
  int next_class = 0;
  uint64_t acc = 1;
  for (int p = 0; p < n && acc != 0; ++p) {
    const uint64_t* op2;
    const uint64_t* op1 =
        WideOperands(net, v.terms[p], p, first_pos, &next_class, lookup, &op2);
    acc = AndRowAccNeon(out, op1, op2, W, lanes);
  }
  if (acc != 0) WideEqEpilogue(net, v, out);
}
#endif  // FDC_SIMD_NEON

}  // namespace

CompiledCatalogMatcher CompiledCatalogMatcher::Compile(
    const ViewCatalog& catalog) {
  CompiledCatalogMatcher matcher;
  matcher.catalog_ = &catalog;

  int max_relation = -1;
  for (const SecurityView& view : catalog.views()) {
    max_relation = std::max(max_relation, view.relation);
  }
  matcher.nets_.resize(static_cast<size_t>(max_relation + 1));

  for (int relation = 0; relation <= max_relation; ++relation) {
    const std::vector<int>& view_ids = catalog.ViewsOfRelation(relation);
    if (view_ids.empty()) continue;
    RelationNet& net = matcher.nets_[static_cast<size_t>(relation)];
    net.num_views = static_cast<int>(view_ids.size());
    net.words = MaskWordsFor(net.num_views);
    matcher.max_words_ = std::max(matcher.max_words_, net.words);
    net.arity = catalog.view(view_ids.front()).pattern.arity();
    if (net.arity > kMaxCompiledArity) {
      // Pathological arity: MatchMask* runs the per-view loop instead. The
      // net stays empty but the relation is still answered correctly.
      net.use_fallback = true;
      continue;
    }
    const int n = net.arity;
    const int W = net.words;
    net.all_views.assign(static_cast<size_t>(W), 0);
    net.const_at.assign(static_cast<size_t>(n) * W, 0);
    net.dist_at.assign(static_cast<size_t>(n) * W, 0);
    net.same_class.assign(static_cast<size_t>(n) * n * W, 0);

    // (pos, value, view bit) triples, sorted into the flat table below.
    std::vector<std::tuple<int, std::string, int>> constants;
    // (q * n + p) -> requirement mask words, merged across views.
    std::vector<uint64_t> eq_mask(static_cast<size_t>(n) * n * W, 0);

    for (int view_id : view_ids) {
      const SecurityView& view = catalog.view(view_id);
      const size_t bit_word = static_cast<size_t>(view.bit) / 64;
      const uint64_t bit = uint64_t{1} << (view.bit % 64);
      const AtomPattern& w = view.pattern;
      // Mixed-arity views over one relation cannot come from a validated
      // schema; a mismatch would make every per-position mask meaningless.
      if (w.arity() != n) {
        net.use_fallback = true;
        break;
      }
      net.all_views[bit_word] |= bit;
      // class -> first position, for C2 requirement extraction.
      int first_pos[kMaxCompiledArity];
      std::fill(first_pos, first_pos + n, -1);
      for (int p = 0; p < n; ++p) {
        const PatTerm& wt = w.terms[p];
        if (wt.is_const) {
          net.const_at[static_cast<size_t>(p) * W + bit_word] |= bit;
          constants.emplace_back(p, wt.value, view.bit);
          continue;
        }
        if (wt.distinguished) {
          net.dist_at[static_cast<size_t>(p) * W + bit_word] |= bit;
        }
        const int q = first_pos[wt.cls];
        if (q < 0) {
          first_pos[wt.cls] = p;
        } else {
          // The view imposes q ≡ p (via the class representative, exactly
          // as AtomRewritable checks it).
          eq_mask[(static_cast<size_t>(q) * n + p) * W + bit_word] |= bit;
        }
        // Same-class masks for every earlier position of the class (C5
        // probes arbitrary (first, later) pairs of the *incoming* pattern's
        // classes, so all pairs are needed, not just representatives).
        for (int r = 0; r < p; ++r) {
          const PatTerm& wr = w.terms[r];
          if (!wr.is_const && wr.cls == wt.cls) {
            net.same_class[(static_cast<size_t>(r) * n + p) * W + bit_word] |=
                bit;
            net.same_class[(static_cast<size_t>(p) * n + r) * W + bit_word] |=
                bit;
          }
        }
      }
    }
    if (net.use_fallback) continue;

    for (int q = 0; q < n; ++q) {
      for (int p = 0; p < n; ++p) {
        const uint64_t* row = &eq_mask[(static_cast<size_t>(q) * n + p) * W];
        bool any = false;
        for (int w = 0; w < W; ++w) any = any || row[w] != 0;
        if (any) {
          net.eq_requirements.push_back(
              {static_cast<uint16_t>(q), static_cast<uint16_t>(p),
               static_cast<uint32_t>(net.eq_masks.size() / W)});
          net.eq_masks.insert(net.eq_masks.end(), row, row + W);
        }
      }
    }

    // Flat sorted constant-value table with per-position spans.
    std::sort(constants.begin(), constants.end(),
              [](const auto& a, const auto& b) {
                if (std::get<0>(a) != std::get<0>(b)) {
                  return std::get<0>(a) < std::get<0>(b);
                }
                return std::get<1>(a) < std::get<1>(b);
              });
    net.value_begin.assign(static_cast<size_t>(n) + 1, 0);
    for (size_t i = 0; i < constants.size();) {
      const int pos = std::get<0>(constants[i]);
      const std::string& value = std::get<1>(constants[i]);
      const size_t row = net.values.size();
      net.value_masks.insert(net.value_masks.end(), static_cast<size_t>(W), 0);
      size_t j = i;  // merge the run of views selecting `value` at `pos`
      while (j < constants.size() && std::get<0>(constants[j]) == pos &&
             std::get<1>(constants[j]) == value) {
        const int view_bit = std::get<2>(constants[j]);
        net.value_masks[row * W + static_cast<size_t>(view_bit) / 64] |=
            uint64_t{1} << (view_bit % 64);
        ++j;
      }
      net.values.push_back(value);
      net.value_begin[static_cast<size_t>(pos) + 1] =
          static_cast<int>(net.values.size());
      i = j;
    }
    // Positions without constants inherit the previous offset, so every
    // span [value_begin[p], value_begin[p+1]) is well-formed.
    for (int p = 1; p <= n; ++p) {
      net.value_begin[p] = std::max(net.value_begin[p], net.value_begin[p - 1]);
    }

    // Prefix keys parallel to the (lexicographically sorted, hence
    // key-sorted) value spans: lookups binary-search integers and only
    // compare strings on prefix ties.
    net.value_keys.reserve(net.values.size());
    for (const std::string& value : net.values) {
      net.value_keys.push_back(ValueKey(value));
    }

    // Derived rows for the batch kernel: each per-position condition folded
    // into one AND-able row so batch classification never composes masks.
    net.nc_at.resize(net.const_at.size());
    net.ncd_at.resize(net.const_at.size());
    for (int p = 0; p < n; ++p) {
      for (int w = 0; w < W; ++w) {
        const size_t k = static_cast<size_t>(p) * W + w;
        net.nc_at[k] = net.all_views[static_cast<size_t>(w)] & ~net.const_at[k];
        net.ncd_at[k] = net.nc_at[k] & net.dist_at[k];
      }
    }
    net.value_or_dist.resize(net.value_masks.size());
    for (int p = 0; p < n; ++p) {
      for (int row = net.value_begin[p]; row < net.value_begin[p + 1]; ++row) {
        for (int w = 0; w < W; ++w) {
          net.value_or_dist[static_cast<size_t>(row) * W + w] =
              net.value_masks[static_cast<size_t>(row) * W + w] |
              net.dist_at[static_cast<size_t>(p) * W + w];
        }
      }
    }
    net.same_or_dist.resize(net.same_class.size());
    for (int q = 0; q < n; ++q) {
      for (int p = 0; p < n; ++p) {
        for (int w = 0; w < W; ++w) {
          const size_t k = (static_cast<size_t>(q) * n + p) * W + w;
          net.same_or_dist[k] = net.same_class[k] |
                                (net.dist_at[static_cast<size_t>(q) * W + w] &
                                 net.dist_at[static_cast<size_t>(p) * W + w]);
        }
      }
    }
    net.eq_not.resize(net.eq_masks.size());
    for (size_t r = 0; r < net.eq_requirements.size(); ++r) {
      for (int w = 0; w < W; ++w) {
        net.eq_not[r * W + w] =
            net.all_views[static_cast<size_t>(w)] & ~net.eq_masks[r * W + w];
      }
    }
  }
  return matcher;
}

int CompiledCatalogMatcher::LookupRow(const RelationNet& net, int p,
                                      uint64_t key, const std::string& value) {
  const uint64_t* keys = net.value_keys.data();
  const int begin = net.value_begin[p];
  const int end = net.value_begin[p + 1];
  int idx = static_cast<int>(std::lower_bound(keys + begin, keys + end, key) -
                             keys);
  // Entries sharing the 8-byte prefix form a tiny lexicographically sorted
  // run; resolve it with full comparisons.
  for (; idx < end && keys[idx] == key; ++idx) {
    if (net.values[static_cast<size_t>(idx)] == value) return idx;
  }
  return -1;
}

const uint64_t* CompiledCatalogMatcher::LookupValue(const RelationNet& net,
                                                    int p,
                                                    const std::string& value) {
  const int row = LookupRow(net, p, ValueKey(value), value);
  if (row < 0) return nullptr;
  return &net.value_masks[static_cast<size_t>(row) * net.words];
}

template <typename Lookup>
uint64_t CompiledCatalogMatcher::MatchNarrowImpl(const RelationNet& net,
                                                 const AtomPattern& v,
                                                 Lookup lookup) {
  // One-word relations: the pre-wide code shape — a single accumulator,
  // no scratch, indexes collapse because words == 1.
  const int n = net.arity;
  uint64_t mask = net.all_views[0];
  // class -> first position of the *incoming* pattern (normalized classes
  // are numbered by first occurrence, so `cls == next_class` detects one).
  int first_pos[kMaxCompiledArity];
  int next_class = 0;
  for (int p = 0; p < n && mask != 0; ++p) {
    const PatTerm& vt = v.terms[p];
    if (vt.is_const) {
      // C1: views selecting a constant here must select this value.
      // C3: views exposing the column instead can filter on it. The
      // resolved row is value_or_dist (value hit) or dist (miss) — both
      // already include the C3 disjunct.
      mask &= lookup(p, ValueKey(vt.value), vt.value)[0];
      continue;
    }
    // C1 (converse): views selecting any constant here miss tuples v needs.
    mask &= ~net.const_at[p];
    // C4: columns v outputs must be exposed.
    if (vt.distinguished) mask &= net.dist_at[p];
    // C5: equalities v imposes must be imposed by the view or checkable
    // from its output (both positions distinguished). Representative
    // pairing against the class's first occurrence, as in AtomRewritable.
    if (vt.cls == next_class) {
      first_pos[next_class++] = p;
    } else {
      const int q = first_pos[vt.cls];
      mask &= net.same_class[static_cast<size_t>(q) * n + p] |
              (net.dist_at[q] & net.dist_at[p]);
    }
  }
  if (mask == 0) return 0;
  // C2: equalities views impose must be implied by v.
  for (const RelationNet::EqRequirement& req : net.eq_requirements) {
    const uint64_t req_mask = net.eq_masks[req.mask_row];
    if ((mask & req_mask) != 0 &&
        !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      mask &= ~req_mask;
    }
  }
  return mask;
}

uint64_t CompiledCatalogMatcher::MatchWordNarrow(const RelationNet& net,
                                                 const AtomPattern& v) {
  return MatchNarrowImpl(
      net, v,
      [&net](int p, uint64_t key, const std::string& value) -> const uint64_t* {
        const int row = LookupRow(net, p, key, value);
        return row < 0 ? &net.dist_at[static_cast<size_t>(p)]
                       : &net.value_or_dist[static_cast<size_t>(row)];
      });
}

void CompiledCatalogMatcher::MatchWordsWide(const RelationNet& net,
                                            const AtomPattern& v,
                                            uint64_t* out) {
  // The width-generic kernel: identical C1–C5 structure, each AND applied
  // word-wise against the relation's MaskSpan rows; `acc` ORs the surviving
  // words so a dead mask still exits early.
  const int n = net.arity;
  const int W = net.words;
  std::copy(net.all_views.begin(), net.all_views.end(), out);
  int first_pos[kMaxCompiledArity];
  int next_class = 0;
  uint64_t acc = 1;
  for (int p = 0; p < n && acc != 0; ++p) {
    const PatTerm& vt = v.terms[p];
    const uint64_t* dist_p = &net.dist_at[static_cast<size_t>(p) * W];
    acc = 0;
    if (vt.is_const) {
      const uint64_t* value_row = LookupValue(net, p, vt.value);
      for (int w = 0; w < W; ++w) {
        out[w] &= (value_row != nullptr ? value_row[w] : 0) | dist_p[w];
        acc |= out[w];
      }
      continue;
    }
    const uint64_t* const_p = &net.const_at[static_cast<size_t>(p) * W];
    if (vt.distinguished) {
      for (int w = 0; w < W; ++w) out[w] &= ~const_p[w] & dist_p[w];
    } else {
      for (int w = 0; w < W; ++w) out[w] &= ~const_p[w];
    }
    if (vt.cls == next_class) {
      first_pos[next_class++] = p;
    } else {
      const int q = first_pos[vt.cls];
      const uint64_t* same =
          &net.same_class[(static_cast<size_t>(q) * n + p) * W];
      const uint64_t* dist_q = &net.dist_at[static_cast<size_t>(q) * W];
      for (int w = 0; w < W; ++w) out[w] &= same[w] | (dist_q[w] & dist_p[w]);
    }
    for (int w = 0; w < W; ++w) acc |= out[w];
  }
  if (acc == 0) return;  // every word already zero
  for (const RelationNet::EqRequirement& req : net.eq_requirements) {
    const uint64_t* req_mask = &net.eq_masks[static_cast<size_t>(req.mask_row) * W];
    uint64_t hit = 0;
    for (int w = 0; w < W; ++w) hit |= out[w] & req_mask[w];
    if (hit != 0 && !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      for (int w = 0; w < W; ++w) out[w] &= ~req_mask[w];
    }
  }
}

void CompiledCatalogMatcher::FallbackMaskWords(int relation,
                                               const AtomPattern& v,
                                               uint64_t* out, int words) const {
  std::fill(out, out + words, 0);
  for (int view_id : catalog_->ViewsOfRelation(relation)) {
    const SecurityView& view = catalog_->view(view_id);
    if (rewriting::AtomRewritable(v, view.pattern)) {
      out[static_cast<size_t>(view.bit) / 64] |= uint64_t{1} << (view.bit % 64);
    }
  }
}

uint32_t CompiledCatalogMatcher::MatchMask(const cq::AtomPattern& v) const {
  const RelationNet* net = NetFor(v.relation);
  if (net == nullptr) return 0;  // no views over this relation
  if (net->use_fallback) {
    // Seed per-view loop for pathological relations; packed bits only, so
    // views beyond the packed capacity are not even tested.
    uint32_t mask = 0;
    for (int view_id : catalog_->ViewsOfRelation(v.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (view.bit < kPackedViewCapacity &&
          rewriting::AtomRewritable(v, view.pattern)) {
        mask |= uint32_t{1} << view.bit;
      }
    }
    return mask;
  }
  if (v.arity() != net->arity) return 0;  // never rewritable (arity mismatch)
  if (net->words == 1) {
    // The packed contract is the low 32 bits of the full mask — views with
    // bit ≥ kPackedViewCapacity are excluded (labels strictly higher —
    // fail-safe), mirroring the guard in label::ComputePatternMask.
    return static_cast<uint32_t>(MatchWordNarrow(*net, v));
  }
  thread_local std::vector<uint64_t> scratch;
  if (scratch.size() < static_cast<size_t>(net->words)) {
    scratch.resize(static_cast<size_t>(net->words));
  }
  MatchWordsWide(*net, v, scratch.data());
  return static_cast<uint32_t>(scratch[0]);
}

void CompiledCatalogMatcher::MatchMaskWords(const cq::AtomPattern& v,
                                            uint64_t* out) const {
  const RelationNet* net = NetFor(v.relation);
  if (net == nullptr) {
    out[0] = 0;  // MaskWords == 1 for unknown relations
    return;
  }
  if (net->use_fallback) {
    FallbackMaskWords(v.relation, v, out, net->words);
    return;
  }
  if (v.arity() != net->arity) {
    std::fill(out, out + net->words, 0);
    return;
  }
  if (net->words == 1) {
    out[0] = MatchWordNarrow(*net, v);
    return;
  }
  MatchWordsWide(*net, v, out);
}

void CompiledCatalogMatcher::MatchWideAtom(const cq::AtomPattern& pattern,
                                           WideAtomLabel* out) const {
  out->relation = pattern.relation;
  const size_t words = static_cast<size_t>(MaskWords(pattern.relation));
  out->mask.resize(words);
  MatchMaskWords(pattern, out->mask.data());
  out->Normalize();
}

template <typename Access>
void CompiledCatalogMatcher::MatchMaskBatchImpl(Access at, int n_patterns,
                                                uint64_t* out,
                                                BatchScratch* s) const {
  if (n_patterns <= 0) return;
  const int relation = at(0).relation;
  const RelationNet* net = NetFor(relation);
  if (net == nullptr) {
    std::fill(out, out + n_patterns, 0);  // MaskWords == 1 for unknown
    return;
  }
  const int W = net->words;
  if (net->use_fallback) {
    for (int i = 0; i < n_patterns; ++i) {
      FallbackMaskWords(relation, at(i), out + static_cast<size_t>(i) * W, W);
    }
    return;
  }
  const int n = net->arity;
  const int N = n_patterns;

  // Constant-probe memo for this batch: one epoch bump invalidates every
  // prior batch's entries, so nothing is cleared. Only grown, never shrunk
  // — warm batches allocate nothing.
  const size_t memo_slots = static_cast<size_t>(n)
                            << BatchScratch::kProbeMemoBits;
  if (s->memo_.size() < memo_slots) s->memo_.resize(memo_slots);
  ++s->epoch_;
  const auto memo_lookup =
      [net, s, W](int p, uint64_t key,
                  const std::string& value) -> const uint64_t* {
    const uint32_t size = static_cast<uint32_t>(value.size());
    BatchScratch::ProbeMemo& m =
        s->memo_[(static_cast<size_t>(p) << BatchScratch::kProbeMemoBits) +
                 ((key * uint64_t{0x9E3779B97F4A7C15}) >>
                  (64 - BatchScratch::kProbeMemoBits))];
    if (m.epoch == s->epoch_ && m.key == key && m.size == size &&
        size <= 8) {
      return m.row;
    }
    const int row = LookupRow(*net, p, key, value);
    const uint64_t* resolved =
        row < 0 ? &net->dist_at[static_cast<size_t>(p) * W]
                : &net->value_or_dist[static_cast<size_t>(row) * W];
    m = {key, s->epoch_, resolved, size};
    return resolved;
  };

  if (W == 1) {
    // Narrow relations: one mask word per pattern leaves the vector AND
    // stage nothing to amortize its staging against, so the batch win here
    // is the fused per-atom loop (mask lives in a register, early exit on
    // death) plus the shared probe memo replacing per-pattern binary
    // searches.
    for (int i = 0; i < N; ++i) {
      if (i + 1 < N) {
        // Each pattern's term array is its own heap block; start the next
        // one's load while this one computes.
        __builtin_prefetch(at(i + 1).terms.data());
      }
      const AtomPattern& v = at(i);
      out[i] = v.arity() == n ? MatchNarrowImpl(*net, v, memo_lookup) : 0;
    }
    return;
  }

  // Wide relations: the same fused shape, W-word mask rows instead of a
  // register word. The per-position row ANDs dispatch once per batch to the
  // active ISA's kernel; the scalar kernel is always compiled and is the
  // FDC_SIMD=scalar / no-vector-hardware path.
  const simd::Isa isa = simd::ActiveIsa();
  (void)isa;  // scalar-only builds compile exactly one kernel
  uint64_t lanes = 0;
  for (int i = 0; i < N; ++i) {
    if (i + 1 < N) {
      __builtin_prefetch(at(i + 1).terms.data());
    }
    const AtomPattern& v = at(i);
    uint64_t* row = out + static_cast<size_t>(i) * W;
    if (v.arity() != n) {
      std::fill(row, row + W, 0);  // never rewritable (arity mismatch)
      continue;
    }
    if (W == 2) {
#if FDC_SIMD_X86
      if (isa == simd::Isa::kAvx2) {
        MatchW2FusedAvx2(*net, v, memo_lookup, row, &lanes);
        continue;
      }
#endif
#if FDC_SIMD_NEON
      if (isa == simd::Isa::kNeon) {
        MatchW2FusedNeon(*net, v, memo_lookup, row, &lanes);
        continue;
      }
#endif
      MatchW2FusedScalar(*net, v, memo_lookup, row);
      continue;
    }
#if FDC_SIMD_X86
    if (isa == simd::Isa::kAvx2) {
      MatchWideFusedAvx2(*net, v, memo_lookup, row, &lanes);
      continue;
    }
#endif
#if FDC_SIMD_NEON
    if (isa == simd::Isa::kNeon) {
      MatchWideFusedNeon(*net, v, memo_lookup, row, &lanes);
      continue;
    }
#endif
    MatchWideFusedScalar(*net, v, memo_lookup, row);
  }
  s->simd_lanes_used_ += lanes;
}

void CompiledCatalogMatcher::MatchMaskBatch(
    std::span<const cq::AtomPattern> patterns, uint64_t* out_masks,
    BatchScratch* scratch) const {
  const cq::AtomPattern* data = patterns.data();
  MatchMaskBatchImpl(
      [data](int i) -> const AtomPattern& { return data[i]; },
      static_cast<int>(patterns.size()), out_masks, scratch);
}

void CompiledCatalogMatcher::MatchMaskBatch(
    std::span<const cq::AtomPattern* const> patterns, uint64_t* out_masks,
    BatchScratch* scratch) const {
  const cq::AtomPattern* const* data = patterns.data();
  MatchMaskBatchImpl(
      [data](int i) -> const AtomPattern& { return *data[i]; },
      static_cast<int>(patterns.size()), out_masks, scratch);
}

}  // namespace fdc::label
