#include "label/compiled_matcher.h"

#include <algorithm>
#include <tuple>

#include "rewriting/atom_rewriting.h"

namespace fdc::label {

namespace {

using cq::AtomPattern;
using cq::PatTerm;

// "v implies position q ≡ position p": equal constants or the same variable
// class — exactly the implication test AtomRewritable runs for C2.
inline bool ImpliesEquality(const PatTerm& a, const PatTerm& b) {
  if (a.is_const != b.is_const) return false;
  if (a.is_const) return a.value == b.value;
  return a.cls == b.cls;
}

}  // namespace

CompiledCatalogMatcher CompiledCatalogMatcher::Compile(
    const ViewCatalog& catalog) {
  CompiledCatalogMatcher matcher;
  matcher.catalog_ = &catalog;

  int max_relation = -1;
  for (const SecurityView& view : catalog.views()) {
    max_relation = std::max(max_relation, view.relation);
  }
  matcher.nets_.resize(static_cast<size_t>(max_relation + 1));

  for (int relation = 0; relation <= max_relation; ++relation) {
    const std::vector<int>& view_ids = catalog.ViewsOfRelation(relation);
    if (view_ids.empty()) continue;
    RelationNet& net = matcher.nets_[static_cast<size_t>(relation)];
    net.arity = catalog.view(view_ids.front()).pattern.arity();
    if (net.arity > kMaxCompiledArity) {
      // Pathological arity: MatchMask runs the per-view loop instead. The
      // net stays empty but the relation is still answered correctly.
      net.use_fallback = true;
      continue;
    }
    const int n = net.arity;
    net.const_at.assign(static_cast<size_t>(n), 0);
    net.dist_at.assign(static_cast<size_t>(n), 0);
    net.same_class.assign(static_cast<size_t>(n) * n, 0);

    // (pos, value, view bit) triples, sorted into the flat table below.
    std::vector<std::tuple<int, std::string, int>> constants;
    // (q, p) -> requirement mask, merged across views.
    std::vector<std::vector<uint32_t>> eq_mask(
        static_cast<size_t>(n), std::vector<uint32_t>(n, 0));

    for (int view_id : view_ids) {
      const SecurityView& view = catalog.view(view_id);
      // Packed masks carry 32 views per relation; later views are excluded
      // (strictly higher labels — fail-safe), matching ComputePatternMask.
      if (view.bit >= 32) continue;
      const uint32_t bit = uint32_t{1} << view.bit;
      const AtomPattern& w = view.pattern;
      // Mixed-arity views over one relation cannot come from a validated
      // schema; a mismatch would make every per-position mask meaningless.
      if (w.arity() != n) {
        net.use_fallback = true;
        break;
      }
      net.all_views |= bit;
      // class -> first position, for C2 requirement extraction.
      int first_pos[kMaxCompiledArity];
      std::fill(first_pos, first_pos + n, -1);
      for (int p = 0; p < n; ++p) {
        const PatTerm& wt = w.terms[p];
        if (wt.is_const) {
          net.const_at[p] |= bit;
          constants.emplace_back(p, wt.value, view.bit);
          continue;
        }
        if (wt.distinguished) net.dist_at[p] |= bit;
        const int q = first_pos[wt.cls];
        if (q < 0) {
          first_pos[wt.cls] = p;
        } else {
          // The view imposes q ≡ p (via the class representative, exactly
          // as AtomRewritable checks it).
          eq_mask[q][p] |= bit;
        }
        // Same-class masks for every earlier position of the class (C5
        // probes arbitrary (first, later) pairs of the *incoming* pattern's
        // classes, so all pairs are needed, not just representatives).
        for (int r = 0; r < p; ++r) {
          const PatTerm& wr = w.terms[r];
          if (!wr.is_const && wr.cls == wt.cls) {
            net.same_class[static_cast<size_t>(r) * n + p] |= bit;
            net.same_class[static_cast<size_t>(p) * n + r] |= bit;
          }
        }
      }
    }
    if (net.use_fallback) continue;

    for (int q = 0; q < n; ++q) {
      for (int p = 0; p < n; ++p) {
        if (eq_mask[q][p] != 0) {
          net.eq_requirements.push_back({static_cast<uint16_t>(q),
                                         static_cast<uint16_t>(p),
                                         eq_mask[q][p]});
        }
      }
    }

    // Flat sorted constant-value table with per-position spans.
    std::sort(constants.begin(), constants.end(),
              [](const auto& a, const auto& b) {
                if (std::get<0>(a) != std::get<0>(b)) {
                  return std::get<0>(a) < std::get<0>(b);
                }
                return std::get<1>(a) < std::get<1>(b);
              });
    net.value_begin.assign(static_cast<size_t>(n) + 1, 0);
    for (size_t i = 0; i < constants.size();) {
      const int pos = std::get<0>(constants[i]);
      const std::string& value = std::get<1>(constants[i]);
      uint32_t value_mask = 0;
      size_t j = i;  // merge the run of views selecting `value` at `pos`
      while (j < constants.size() && std::get<0>(constants[j]) == pos &&
             std::get<1>(constants[j]) == value) {
        value_mask |= uint32_t{1} << std::get<2>(constants[j]);
        ++j;
      }
      net.values.push_back(value);
      net.value_masks.push_back(value_mask);
      net.value_begin[static_cast<size_t>(pos) + 1] =
          static_cast<int>(net.values.size());
      i = j;
    }
    // Positions without constants inherit the previous offset, so every
    // span [value_begin[p], value_begin[p+1]) is well-formed.
    for (int p = 1; p <= n; ++p) {
      net.value_begin[p] = std::max(net.value_begin[p], net.value_begin[p - 1]);
    }
  }
  return matcher;
}

uint32_t CompiledCatalogMatcher::LookupValue(const RelationNet& net, int p,
                                             const std::string& value) {
  const auto begin = net.values.begin() + net.value_begin[p];
  const auto end = net.values.begin() + net.value_begin[p + 1];
  const auto it = std::lower_bound(begin, end, value);
  if (it == end || *it != value) return 0;
  return net.value_masks[static_cast<size_t>(it - net.values.begin())];
}

uint32_t CompiledCatalogMatcher::MatchMask(const cq::AtomPattern& v) const {
  if (v.relation < 0 ||
      static_cast<size_t>(v.relation) >= nets_.size()) {
    return 0;  // no views over this relation
  }
  const RelationNet& net = nets_[static_cast<size_t>(v.relation)];
  if (net.use_fallback) {
    // Seed per-view loop for pathological relations; same 32-view packing.
    uint32_t mask = 0;
    for (int view_id : catalog_->ViewsOfRelation(v.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (view.bit < 32 && rewriting::AtomRewritable(v, view.pattern)) {
        mask |= uint32_t{1} << view.bit;
      }
    }
    return mask;
  }
  if (v.arity() != net.arity) return 0;  // never rewritable (arity mismatch)
  const int n = net.arity;

  uint32_t mask = net.all_views;
  // class -> first position of the *incoming* pattern (normalized classes
  // are numbered by first occurrence, so `cls == next_class` detects one).
  int first_pos[kMaxCompiledArity];
  int next_class = 0;
  for (int p = 0; p < n && mask != 0; ++p) {
    const PatTerm& vt = v.terms[p];
    if (vt.is_const) {
      // C1: views selecting a constant here must select this value.
      // C3: views exposing the column instead can filter on it.
      mask &= LookupValue(net, p, vt.value) | net.dist_at[p];
      continue;
    }
    // C1 (converse): views selecting any constant here miss tuples v needs.
    mask &= ~net.const_at[p];
    // C4: columns v outputs must be exposed.
    if (vt.distinguished) mask &= net.dist_at[p];
    // C5: equalities v imposes must be imposed by the view or checkable
    // from its output (both positions distinguished). Representative
    // pairing against the class's first occurrence, as in AtomRewritable.
    if (vt.cls == next_class) {
      first_pos[next_class++] = p;
    } else {
      const int q = first_pos[vt.cls];
      mask &= net.same_class[static_cast<size_t>(q) * n + p] |
              (net.dist_at[q] & net.dist_at[p]);
    }
  }
  if (mask == 0) return 0;
  // C2: equalities views impose must be implied by v.
  for (const RelationNet::EqRequirement& req : net.eq_requirements) {
    if ((mask & req.mask) != 0 &&
        !ImpliesEquality(v.terms[req.q], v.terms[req.p])) {
      mask &= ~req.mask;
    }
  }
  return mask;
}

}  // namespace fdc::label
