// NaiveLabel (§3.3): the reference implementation of the labeler induced by
// a family F.
//
//   1: sort F so that F[i] ⪯ F[j] implies i ≤ j
//   2: return the first F[i] with W ⪯ F[i]; ⊤ if none.
//
// Linear in |F| and only correct when F induces a labeler (Theorem 3.7);
// kept as the semantic baseline the faster labelers are tested against.
#pragma once

#include <optional>

#include "label/labeler.h"
#include "order/preorder.h"

namespace fdc::label {

class NaiveLabeler {
 public:
  /// `family` is F; it is topologically sorted once at construction.
  NaiveLabeler(const order::DisclosureOrder* order, LabelFamily family);

  /// Label of W: the first (lowest) element of F above W. std::nullopt
  /// encodes ⊤ (no element of F bounds W; per the axioms F should contain
  /// ⊤, in which case nullopt never escapes).
  std::optional<order::ViewSet> Label(const order::ViewSet& w) const;

  /// The sorted family (exposed for tests asserting the sort invariant).
  const LabelFamily& sorted_family() const { return family_; }

 private:
  const order::DisclosureOrder* order_;
  LabelFamily family_;
};

}  // namespace fdc::label
