#include "label/dissect.h"

#include <string>
#include <unordered_set>

#include "rewriting/fold.h"

namespace fdc::label {

std::vector<cq::AtomPattern> Dissect(const cq::ConjunctiveQuery& query,
                                     const DissectOptions& options) {
  const cq::ConjunctiveQuery folded =
      options.fold ? rewriting::Fold(query) : query;

  // Promote existential variables shared by ≥ 2 atoms.
  const std::vector<int> atom_counts = folded.AtomCountPerVar();
  std::vector<bool> distinguished(atom_counts.size(), false);
  for (size_t v = 0; v < atom_counts.size(); ++v) {
    distinguished[v] = folded.IsDistinguished(static_cast<int>(v)) ||
                       atom_counts[v] >= 2;
  }

  std::vector<cq::AtomPattern> out;
  std::unordered_set<std::string> seen;
  out.reserve(folded.atoms().size());
  for (const cq::Atom& atom : folded.atoms()) {
    cq::AtomPattern pattern = cq::AtomPattern::FromAtom(atom, distinguished);
    if (seen.insert(pattern.Key()).second) out.push_back(std::move(pattern));
  }
  return out;
}

std::vector<cq::AtomPattern> DissectAll(
    const std::vector<cq::ConjunctiveQuery>& queries,
    const DissectOptions& options) {
  std::vector<cq::AtomPattern> out;
  std::unordered_set<std::string> seen;
  for (const cq::ConjunctiveQuery& q : queries) {
    for (cq::AtomPattern& p : Dissect(q, options)) {
      if (seen.insert(p.Key()).second) out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace fdc::label
