#include "label/naive_labeler.h"

#include <algorithm>

namespace fdc::label {

NaiveLabeler::NaiveLabeler(const order::DisclosureOrder* order,
                           LabelFamily family)
    : order_(order), family_(std::move(family)) {
  // Topological sort under ⪯ (lines 2–3 of the §3.3 algorithm): insertion
  // sort with the preorder comparison. ⪯ is not total, so we use a stable
  // selection: repeatedly emit an element with no remaining strict
  // predecessor.
  LabelFamily sorted;
  std::vector<bool> used(family_.size(), false);
  for (size_t round = 0; round < family_.size(); ++round) {
    int pick = -1;
    for (size_t i = 0; i < family_.size(); ++i) {
      if (used[i]) continue;
      bool minimal = true;
      for (size_t j = 0; j < family_.size(); ++j) {
        if (j == i || used[j]) continue;
        // j strictly below i blocks i.
        if (order_->Leq(family_[j], family_[i]) &&
            !order_->Leq(family_[i], family_[j])) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        pick = static_cast<int>(i);
        break;
      }
    }
    used[pick] = true;
    sorted.push_back(family_[pick]);
  }
  family_ = std::move(sorted);
}

std::optional<order::ViewSet> NaiveLabeler::Label(
    const order::ViewSet& w) const {
  for (const order::ViewSet& candidate : family_) {
    if (order_->Leq(w, candidate)) return candidate;
  }
  return std::nullopt;
}

}  // namespace fdc::label
