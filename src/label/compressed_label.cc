#include "label/compressed_label.h"

#include <algorithm>

namespace fdc::label {

void DisclosureLabel::Add(PackedAtomLabel atom) {
  if (atom.mask() == 0) {
    top_ = true;
    return;
  }
  atoms_.push_back(atom);
}

void DisclosureLabel::AddWide(WideAtomLabel atom) {
  atom.Normalize();
  if (atom.mask.empty()) {
    top_ = true;
    return;
  }
  wide_atoms_.push_back(std::move(atom));
}

void DisclosureLabel::Seal() {
  std::sort(atoms_.begin(), atoms_.end());
  atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
  if (!wide_atoms_.empty()) {
    std::sort(wide_atoms_.begin(), wide_atoms_.end());
    wide_atoms_.erase(std::unique(wide_atoms_.begin(), wide_atoms_.end()),
                      wide_atoms_.end());
  }
}

bool DisclosureLabel::Leq(const DisclosureLabel& other) const {
  if (other.top_) return true;   // everything is below ⊤
  if (top_) return false;        // ⊤ is only below ⊤
  for (const PackedAtomLabel& a : atoms_) {
    bool bounded = false;
    for (const PackedAtomLabel& b : other.atoms_) {
      if (a.LeqAtom(b)) {
        bounded = true;
        break;
      }
    }
    for (size_t i = 0; !bounded && i < other.wide_atoms_.size(); ++i) {
      bounded = PackedCoversWide(a, other.wide_atoms_[i]);
    }
    if (!bounded) return false;
  }
  for (const WideAtomLabel& a : wide_atoms_) {
    bool bounded = false;
    for (const WideAtomLabel& b : other.wide_atoms_) {
      if (a.LeqAtom(b)) {
        bounded = true;
        break;
      }
    }
    for (size_t i = 0; !bounded && i < other.atoms_.size(); ++i) {
      bounded = WideCoversPacked(a, other.atoms_[i]);
    }
    if (!bounded) return false;
  }
  return true;
}

void DisclosureLabel::UnionWith(const DisclosureLabel& other) {
  top_ = top_ || other.top_;
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
  wide_atoms_.insert(wide_atoms_.end(), other.wide_atoms_.begin(),
                     other.wide_atoms_.end());
  Seal();
}

void WideAtomLabel::SetBit(int bit) {
  const size_t word = static_cast<size_t>(bit) / 64;
  if (word >= mask.size()) mask.resize(word + 1, 0);
  mask[word] |= (1ULL << (bit % 64));
}

bool WideAtomLabel::MaskEmpty() const {
  for (uint64_t w : mask) {
    if (w != 0) return false;
  }
  return true;
}

void WideAtomLabel::Normalize() {
  while (!mask.empty() && mask.back() == 0) mask.pop_back();
}

bool WideAtomLabel::LeqAtom(const WideAtomLabel& other) const {
  if (relation != other.relation) return false;
  // ℓ+(this) ⊇ ℓ+(other): every bit of other present here.
  for (size_t i = 0; i < other.mask.size(); ++i) {
    const uint64_t mine = i < mask.size() ? mask[i] : 0;
    if ((other.mask[i] & ~mine) != 0) return false;
  }
  return true;
}

bool PackedCoversWide(const PackedAtomLabel& packed,
                      const WideAtomLabel& wide) {
  if (wide.relation < 0 ||
      packed.relation() != static_cast<uint32_t>(wide.relation)) {
    return false;
  }
  const uint64_t packed_bits = packed.mask();  // bits 0..31 only
  for (size_t i = 0; i < wide.mask.size(); ++i) {
    const uint64_t mine = i == 0 ? packed_bits : 0;
    if ((wide.mask[i] & ~mine) != 0) return false;
  }
  return true;
}

bool WideCoversPacked(const WideAtomLabel& wide,
                      const PackedAtomLabel& packed) {
  if (wide.relation < 0 ||
      packed.relation() != static_cast<uint32_t>(wide.relation)) {
    return false;
  }
  const uint64_t mine = wide.mask.empty() ? 0 : wide.mask[0];
  return (static_cast<uint64_t>(packed.mask()) & ~mine) == 0;
}

void WideLabel::Add(WideAtomLabel atom) {
  atom.Normalize();
  if (atom.mask.empty()) {
    top_ = true;
    return;
  }
  atoms_.push_back(std::move(atom));
}

bool WideLabel::Leq(const WideLabel& other) const {
  if (other.top_) return true;
  if (top_) return false;
  for (const WideAtomLabel& a : atoms_) {
    bool bounded = false;
    for (const WideAtomLabel& b : other.atoms_) {
      if (a.LeqAtom(b)) {
        bounded = true;
        break;
      }
    }
    if (!bounded) return false;
  }
  return true;
}

}  // namespace fdc::label
