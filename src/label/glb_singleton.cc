#include "label/glb_singleton.h"

#include <string>
#include <vector>

#include "rewriting/atom_rewriting.h"

namespace fdc::label {

namespace {

using cq::AtomPattern;
using cq::PatTerm;

// Union-find over the merged variable classes of the two patterns, carrying
// per-root: whether the class absorbed an existential variable, and an
// optional constant binding.
class MergeState {
 public:
  explicit MergeState(int n)
      : parent_(n), has_existential_(n, false), bound_(n, false), constant_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void MarkExistential(int x) { has_existential_[Find(x)] = true; }

  bool HasExistential(int x) { return has_existential_[Find(x)]; }

  /// Unifies a class with a constant. Fails (returns false) when the class
  /// contains an existential variable (§5.1 rule 1) or is bound to a
  /// different constant.
  bool BindConstant(int x, const std::string& value) {
    int r = Find(x);
    if (has_existential_[r]) return false;
    if (bound_[r]) return constant_[r] == value;
    bound_[r] = true;
    constant_[r] = value;
    return true;
  }

  /// Unifies two classes. Merged class is existential if either side was
  /// (§5.1 rules 2–3); fails if the merge would bind an existential class
  /// to a constant or conflict two constants.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (bound_[a] && bound_[b] && constant_[a] != constant_[b]) return false;
    const bool merged_exist = has_existential_[a] || has_existential_[b];
    const bool merged_bound = bound_[a] || bound_[b];
    if (merged_exist && merged_bound) return false;  // const ∪ existential
    if (bound_[b]) std::swap(a, b);
    parent_[b] = a;
    has_existential_[a] = merged_exist;
    // bound_/constant_ of a already correct after the swap.
    return true;
  }

  bool IsBound(int x) {
    int r = Find(x);
    return bound_[r];
  }

  const std::string& Value(int x) { return constant_[Find(x)]; }

 private:
  std::vector<int> parent_;
  std::vector<bool> has_existential_;
  std::vector<bool> bound_;
  std::vector<std::string> constant_;
};

}  // namespace

std::optional<AtomPattern> GenMgu(const AtomPattern& v1,
                                  const AtomPattern& v2) {
  if (v1.relation != v2.relation || v1.arity() != v2.arity()) {
    return std::nullopt;
  }
  const int n1 = v1.NumClasses();
  const int n2 = v2.NumClasses();
  MergeState state(n1 + n2);
  for (int c = 0; c < n1; ++c) {
    bool dist = false;
    for (const PatTerm& pt : v1.terms) {
      if (!pt.is_const && pt.cls == c) dist = pt.distinguished;
    }
    if (!dist) state.MarkExistential(c);
  }
  for (int c = 0; c < n2; ++c) {
    bool dist = false;
    for (const PatTerm& pt : v2.terms) {
      if (!pt.is_const && pt.cls == c) dist = pt.distinguished;
    }
    if (!dist) state.MarkExistential(n1 + c);
  }

  for (int p = 0; p < v1.arity(); ++p) {
    const PatTerm& a = v1.terms[p];
    const PatTerm& b = v2.terms[p];
    if (a.is_const && b.is_const) {
      if (a.value != b.value) return std::nullopt;
    } else if (a.is_const) {
      if (!state.BindConstant(n1 + b.cls, a.value)) return std::nullopt;
    } else if (b.is_const) {
      if (!state.BindConstant(a.cls, b.value)) return std::nullopt;
    } else {
      if (!state.Union(a.cls, n1 + b.cls)) return std::nullopt;
    }
  }

  // Materialize the unified atom.
  AtomPattern out;
  out.relation = v1.relation;
  out.terms.resize(v1.arity());
  for (int p = 0; p < v1.arity(); ++p) {
    const PatTerm& a = v1.terms[p];
    const PatTerm& b = v2.terms[p];
    PatTerm& o = out.terms[p];
    if (a.is_const && b.is_const) {
      o.is_const = true;
      o.value = a.value;
      continue;
    }
    const int node = a.is_const ? (n1 + b.cls) : a.cls;
    if (state.IsBound(node)) {
      o.is_const = true;
      o.value = state.Value(node);
    } else {
      o.is_const = false;
      o.cls = state.Find(node);
      o.distinguished = !state.HasExistential(node);
    }
  }
  out.Normalize();
  return out;
}

std::optional<AtomPattern> GlbSingleton(const AtomPattern& v1,
                                        const AtomPattern& v2) {
  std::optional<AtomPattern> candidate = GenMgu(v1, v2);
  if (!candidate.has_value()) return std::nullopt;
  // Lower-bound check, subsuming the Example 5.3 corner case: the GLB must
  // be computable from each input alone.
  if (!rewriting::AtomRewritable(*candidate, v1) ||
      !rewriting::AtomRewritable(*candidate, v2)) {
    return std::nullopt;
  }
  return candidate;
}

}  // namespace fdc::label
