#include "label/pipeline.h"

#include <algorithm>
#include <cassert>

#include "rewriting/atom_rewriting.h"

namespace fdc::label {

bool SetLabel::Leq(const SetLabel& other) const {
  if (other.top) return true;
  if (top) return false;
  for (const std::set<int>& a : per_atom) {
    bool bounded = false;
    for (const std::set<int>& b : other.per_atom) {
      // ℓ+(a) ⊇ ℓ+(b).
      bounded = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (bounded) break;
    }
    if (!bounded) return false;
  }
  return true;
}

SetLabel LabelerPipeline::LabelBaseline(
    const cq::ConjunctiveQuery& query) const {
  SetLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    std::set<int> plus;
    // Deliberately scan every view in the catalog: views over other
    // relations fail inside AtomRewritable. This is the §4.2 algorithm
    // without the §6 optimizations.
    for (const SecurityView& view : catalog_->views()) {
      if (rewriting::AtomRewritable(atom, view.pattern)) {
        plus.insert(view.id);
      }
    }
    if (plus.empty()) label.top = true;
    label.per_atom.push_back(std::move(plus));
  }
  return label;
}

SetLabel LabelerPipeline::LabelHashed(const cq::ConjunctiveQuery& query) const {
  SetLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    std::set<int> plus;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      if (rewriting::AtomRewritable(atom, catalog_->view(view_id).pattern)) {
        plus.insert(view_id);
      }
    }
    if (plus.empty()) label.top = true;
    label.per_atom.push_back(std::move(plus));
  }
  return label;
}

DisclosureLabel LabelerPipeline::LabelPacked(
    const cq::ConjunctiveQuery& query) const {
  assert(catalog_->MaxViewsPerRelation() <= 32 &&
         "packed labels hold at most 32 views per relation; use LabelWide");
  DisclosureLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    uint32_t mask = 0;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (rewriting::AtomRewritable(atom, view.pattern)) {
        mask |= (1u << view.bit);
      }
    }
    label.Add(PackedAtomLabel(static_cast<uint32_t>(atom.relation), mask));
  }
  label.Seal();
  return label;
}

WideLabel LabelerPipeline::LabelWide(const cq::ConjunctiveQuery& query) const {
  WideLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    WideAtomLabel wide;
    wide.relation = atom.relation;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (rewriting::AtomRewritable(atom, view.pattern)) {
        wide.SetBit(view.bit);
      }
    }
    label.Add(std::move(wide));
  }
  return label;
}

}  // namespace fdc::label
