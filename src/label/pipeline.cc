#include "label/pipeline.h"

#include <algorithm>

#include "rewriting/atom_rewriting.h"

namespace fdc::label {

bool SetLabel::Leq(const SetLabel& other) const {
  if (other.top) return true;
  if (top) return false;
  for (const std::set<int>& a : per_atom) {
    bool bounded = false;
    for (const std::set<int>& b : other.per_atom) {
      // ℓ+(a) ⊇ ℓ+(b).
      bounded = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (bounded) break;
    }
    if (!bounded) return false;
  }
  return true;
}

SetLabel LabelerPipeline::LabelBaseline(
    const cq::ConjunctiveQuery& query) const {
  SetLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    std::set<int> plus;
    // Deliberately scan every view in the catalog: views over other
    // relations fail inside AtomRewritable. This is the §4.2 algorithm
    // without the §6 optimizations.
    for (const SecurityView& view : catalog_->views()) {
      if (rewriting::AtomRewritable(atom, view.pattern)) {
        plus.insert(view.id);
      }
    }
    if (plus.empty()) label.top = true;
    label.per_atom.push_back(std::move(plus));
  }
  return label;
}

SetLabel LabelerPipeline::LabelHashed(const cq::ConjunctiveQuery& query) const {
  SetLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    std::set<int> plus;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      if (rewriting::AtomRewritable(atom, catalog_->view(view_id).pattern)) {
        plus.insert(view_id);
      }
    }
    if (plus.empty()) label.top = true;
    label.per_atom.push_back(std::move(plus));
  }
  return label;
}

DisclosureLabel LabelerPipeline::LabelPacked(
    const cq::ConjunctiveQuery& query) const {
  DisclosureLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    uint32_t mask = 0;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      // Packed masks hold kPackedViewCapacity views per relation; views
      // beyond that are excluded (labels get strictly higher — fail-safe),
      // never shifted out of range. The matcher path carries such
      // relations exactly, as wide atoms.
      if (view.bit < kPackedViewCapacity &&
          rewriting::AtomRewritable(atom, view.pattern)) {
        mask |= (1u << view.bit);
      }
    }
    label.Add(PackedAtomLabel(static_cast<uint32_t>(atom.relation), mask));
  }
  label.Seal();
  return label;
}

LabelingPipeline::LabelingPipeline(const ViewCatalog* catalog,
                                   cq::QueryInterner* interner,
                                   rewriting::ContainmentCache* cache,
                                   DissectOptions dissect_options,
                                   Options options,
                                   const CompiledCatalogMatcher* matcher)
    : inner_(catalog, dissect_options),
      dissect_options_(dissect_options),
      options_(options),
      interner_(interner),
      cache_(cache),
      matcher_(matcher) {
  if (interner_ == nullptr) {
    owned_interner_ = std::make_unique<cq::QueryInterner>();
    interner_ = owned_interner_.get();
  }
  if (options_.ablate_compiled_matcher) {
    matcher_ = nullptr;  // seed kernel is the whole point of the ablation
    // The seed kernel probes the cache on its hot path — build it up
    // front. On the compiled path nothing probes it, so a private cache
    // is created lazily on first use (EnsureCache) instead of paying
    // ~1.5 MB per pipeline (e.g. once per FrozenCatalog build).
    EnsureCache();
  } else if (matcher_ == nullptr && !options_.ablate_interning) {
    // ablate_interning routes every query through LabelPacked (the seed
    // benchmark baseline), which never consults the matcher — skip the
    // compile rather than build a dead artifact.
    owned_matcher_ = std::make_unique<CompiledCatalogMatcher>(
        CompiledCatalogMatcher::Compile(*catalog));
    matcher_ = owned_matcher_.get();
  }
}

PackedAtomLabel ComputePatternMask(const ViewCatalog& catalog,
                                   const cq::QueryInterner& interner,
                                   rewriting::ContainmentCache& cache,
                                   int pattern_id,
                                   const cq::AtomPattern& pattern) {
  uint32_t mask = 0;
  for (int view_id : catalog.ViewsOfRelation(pattern.relation)) {
    const SecurityView& view = catalog.view(view_id);
    // OutOfRange guard at the kernel: packed masks carry
    // kPackedViewCapacity views per relation, and shifting by bit ≥ 32 is
    // UB (the seed only asserted one level up, in ComputeLabel, and the
    // assert vanishes under NDEBUG). Excess views are excluded — labels
    // get strictly higher (stricter, fail-safe) — identically to
    // CompiledCatalogMatcher::MatchMask and LabelPacked, so the packed
    // kernels stay mask-for-mask equivalent; the wide matcher path is the
    // one that represents such views exactly.
    if (view.bit < kPackedViewCapacity &&
        cache.RewritableCached(interner, pattern_id, view_id, pattern,
                               view.pattern)) {
      mask |= (1u << view.bit);
    }
  }
  return PackedAtomLabel(static_cast<uint32_t>(pattern.relation), mask);
}

void LabelQueriesBatched(const CompiledCatalogMatcher& matcher,
                         DissectOptions dissect_options,
                         std::span<const cq::ConjunctiveQuery* const> queries,
                         BatchLabelScratch* scratch,
                         std::vector<DisclosureLabel>* labels,
                         BatchLabelCounters* counters) {
  labels->clear();
  labels->resize(queries.size());
  if (queries.empty()) return;
  const uint64_t lanes_before = scratch->kernel.simd_lanes_used();

  // Dissect every query into one flat atom pool (folding included — the
  // same Dissect the per-query paths run).
  scratch->atoms.clear();
  scratch->atom_query.clear();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (cq::AtomPattern& atom : Dissect(*queries[qi], dissect_options)) {
      scratch->atoms.push_back(std::move(atom));
      scratch->atom_query.push_back(static_cast<int32_t>(qi));
    }
  }
  const int total = static_cast<int>(scratch->atoms.size());
  scratch->order.resize(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) scratch->order[static_cast<size_t>(i)] = i;
  // Bucket by relation, arrival order within a bucket (deterministic and
  // stable without std::stable_sort's temporary buffer).
  std::sort(scratch->order.begin(), scratch->order.end(),
            [scratch](int32_t a, int32_t b) {
              const int ra = scratch->atoms[static_cast<size_t>(a)].relation;
              const int rb = scratch->atoms[static_cast<size_t>(b)].relation;
              if (ra != rb) return ra < rb;
              return a < b;
            });

  // Hoisted bucket mask buffer: max bucket length × max words covers every
  // bucket, sized once per call (and only grown across calls).
  int max_bucket = 0;
  for (int i = 0; i < total;) {
    const int relation = scratch->atoms[scratch->order[i]].relation;
    int j = i + 1;
    while (j < total && scratch->atoms[scratch->order[j]].relation == relation)
      ++j;
    max_bucket = std::max(max_bucket, j - i);
    i = j;
  }
  const size_t masks_needed =
      static_cast<size_t>(max_bucket) * matcher.max_mask_words();
  if (scratch->masks.size() < masks_needed) scratch->masks.resize(masks_needed);

  for (int i = 0; i < total;) {
    const int relation = scratch->atoms[scratch->order[i]].relation;
    int j = i + 1;
    while (j < total && scratch->atoms[scratch->order[j]].relation == relation)
      ++j;
    const int len = j - i;
    scratch->bucket.clear();
    for (int k = i; k < j; ++k) {
      scratch->bucket.push_back(&scratch->atoms[scratch->order[k]]);
    }
    const int W = matcher.MaskWords(relation);
    matcher.MatchMaskBatch(
        std::span<const cq::AtomPattern* const>(scratch->bucket),
        scratch->masks.data(), &scratch->kernel);
    counters->batch_mask_evals += static_cast<uint64_t>(len);
    counters->per_view_tests_avoided +=
        static_cast<uint64_t>(len) *
        static_cast<uint64_t>(matcher.AvoidedPerViewTests(relation));
    const bool wide = matcher.UsesWideMask(relation);
    if (wide) counters->wide_mask_evals += static_cast<uint64_t>(len);
    for (int k = i; k < j; ++k) {
      DisclosureLabel& label =
          (*labels)[static_cast<size_t>(scratch->atom_query[scratch->order[k]])];
      const uint64_t* row =
          scratch->masks.data() + static_cast<size_t>(k - i) * W;
      if (wide) {
        WideAtomLabel atom;
        atom.relation = relation;
        atom.mask.assign(row, row + W);
        label.AddWide(std::move(atom));
      } else {
        label.Add(PackedAtomLabel(static_cast<uint32_t>(relation),
                                  static_cast<uint32_t>(row[0])));
      }
    }
    i = j;
  }
  for (DisclosureLabel& label : *labels) label.Seal();
  counters->simd_lanes_used +=
      scratch->kernel.simd_lanes_used() - lanes_before;
}

rewriting::ContainmentCache& LabelingPipeline::EnsureCache() {
  if (cache_ == nullptr) {
    owned_cache_ = std::make_unique<rewriting::ContainmentCache>();
    cache_ = owned_cache_.get();
  }
  return *cache_;
}

PackedAtomLabel LabelingPipeline::MaskFor(int pattern_id,
                                          const cq::AtomPattern& pattern) {
  auto it = mask_by_pattern_.find(pattern_id);
  if (it != mask_by_pattern_.end()) {
    ++stats_.mask_hits;
    return it->second;
  }
  ++stats_.mask_misses;
  const PackedAtomLabel packed = ComputePatternMask(
      inner_.catalog(), *interner_, EnsureCache(), pattern_id, pattern);
  mask_by_pattern_.emplace(pattern_id, packed);
  return packed;
}

DisclosureLabel LabelingPipeline::LabelViaMatcher(
    const cq::ConjunctiveQuery& query) {
  // Compiled path: one net evaluation per atom — no pattern interning
  // (which builds a key string), no mask memo, no cache probes. The net
  // evaluation is cheaper than the memo probe it would feed. Relations
  // beyond the packed view capacity get exact multi-word wide atoms; the
  // rest keep the packed representation (same kernel, one word).
  DisclosureLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    ++stats_.compiled_mask_evals;
    stats_.per_view_tests_avoided +=
        static_cast<uint64_t>(matcher_->AvoidedPerViewTests(atom.relation));
    if (matcher_->UsesWideMask(atom.relation)) {
      ++stats_.wide_mask_evals;
      WideAtomLabel wide;
      matcher_->MatchWideAtom(atom, &wide);
      label.AddWide(std::move(wide));
    } else {
      label.Add(matcher_->MatchLabel(atom));
    }
  }
  label.Seal();
  return label;
}

DisclosureLabel LabelingPipeline::LabelStateless(
    const cq::ConjunctiveQuery& query) {
  if (matcher_ != nullptr) return LabelViaMatcher(query);
  return inner_.LabelPacked(query);
}

DisclosureLabel LabelingPipeline::ComputeLabel(
    const cq::ConjunctiveQuery& canonical) {
  if (matcher_ != nullptr) return LabelViaMatcher(canonical);
  DisclosureLabel label;
  for (const cq::AtomPattern& atom : Dissect(canonical, dissect_options_)) {
    label.Add(MaskFor(interner_->InternPattern(atom), atom));
  }
  label.Seal();
  return label;
}

DisclosureLabel LabelingPipeline::Label(const cq::ConjunctiveQuery& query) {
  if (options_.ablate_interning) return inner_.LabelPacked(query);
  const cq::InternedQuery* handle =
      interner_->TryIntern(query, options_.max_interned_queries);
  if (handle == nullptr) return LabelStateless(query);  // saturated
  const cq::InternedQuery& interned = *handle;
  auto it = label_by_query_.find(interned.id());
  if (it != label_by_query_.end()) {
    ++stats_.label_hits;
    return it->second;
  }
  ++stats_.label_misses;
  if (label_by_query_.size() >= options_.max_label_cache) {
    label_by_query_.clear();
  }
  DisclosureLabel label = ComputeLabel(interned.query());
  label_by_query_.emplace(interned.id(), label);
  return label;
}

std::vector<DisclosureLabel> LabelingPipeline::LabelBatch(
    std::span<const cq::ConjunctiveQuery> queries) {
  std::vector<DisclosureLabel> out;
  out.reserve(queries.size());
  if (options_.ablate_interning) {
    for (const cq::ConjunctiveQuery& query : queries) {
      out.push_back(inner_.LabelPacked(query));
    }
    return out;
  }
  // Bucket by interned id against the persistent memo: the batch's
  // distinct structures are labeled once, duplicates cost one map probe.
  // The capacity check runs only between batches so memo references stay
  // stable within one.
  if (label_by_query_.size() >= options_.max_label_cache) {
    label_by_query_.clear();
  }
  if (matcher_ == nullptr || options_.ablate_batch_kernel) {
    // Pre-batch-kernel shape: each novel structure through the per-atom
    // compiled (or seed) kernel. Kept as the ablation baseline.
    for (const cq::ConjunctiveQuery& query : queries) {
      const cq::InternedQuery* handle =
          interner_->TryIntern(query, options_.max_interned_queries);
      if (handle == nullptr) {
        out.push_back(LabelStateless(query));  // interner saturated
        continue;
      }
      const int id = handle->id();
      auto it = label_by_query_.find(id);
      if (it == label_by_query_.end()) {
        ++stats_.label_misses;
        it = label_by_query_
                 .emplace(id, ComputeLabel(interner_->query(id).query()))
                 .first;
      } else {
        ++stats_.label_hits;
      }
      out.push_back(it->second);
    }
    return out;
  }

  // Batched path: one intern/memo pass marks the novel structures, then
  // their dissected atoms are bucketed per relation and evaluated through
  // the batch kernel (LabelQueriesBatched) — the same labels the per-query
  // path computes, one MatchMaskBatch per relation instead of one
  // MatchMaskWords per atom.
  out.resize(queries.size());
  struct PendingQuery {
    size_t out_index;
    int id;
  };
  std::vector<PendingQuery> pending;
  std::vector<int> novel_ids;
  std::vector<const cq::ConjunctiveQuery*> novel_queries;
  std::unordered_map<int, int32_t> novel_slot;
  for (size_t k = 0; k < queries.size(); ++k) {
    const cq::InternedQuery* handle =
        interner_->TryIntern(queries[k], options_.max_interned_queries);
    if (handle == nullptr) {
      out[k] = LabelStateless(queries[k]);  // interner saturated
      continue;
    }
    const int id = handle->id();
    auto it = label_by_query_.find(id);
    if (it != label_by_query_.end()) {
      ++stats_.label_hits;
      out[k] = it->second;
      continue;
    }
    pending.push_back({k, id});
    if (novel_slot.emplace(id, static_cast<int32_t>(novel_ids.size())).second) {
      ++stats_.label_misses;
      novel_ids.push_back(id);
      novel_queries.push_back(&interner_->query(id).query());
    } else {
      ++stats_.label_hits;  // batch-internal duplicate, as on the memo path
    }
  }
  if (!novel_queries.empty()) {
    std::vector<DisclosureLabel> novel_labels;
    BatchLabelCounters counters;
    LabelQueriesBatched(*matcher_, dissect_options_,
                        std::span<const cq::ConjunctiveQuery* const>(
                            novel_queries),
                        &batch_scratch_, &novel_labels, &counters);
    stats_.compiled_mask_evals += counters.batch_mask_evals;
    stats_.batch_mask_evals += counters.batch_mask_evals;
    stats_.wide_mask_evals += counters.wide_mask_evals;
    stats_.per_view_tests_avoided += counters.per_view_tests_avoided;
    stats_.simd_lanes_used += counters.simd_lanes_used;
    for (size_t s = 0; s < novel_ids.size(); ++s) {
      label_by_query_.emplace(novel_ids[s], std::move(novel_labels[s]));
    }
  }
  for (const PendingQuery& p : pending) {
    out[p.out_index] = label_by_query_.find(p.id)->second;
  }
  return out;
}

WideLabel LabelerPipeline::LabelWide(const cq::ConjunctiveQuery& query) const {
  WideLabel label;
  for (const cq::AtomPattern& atom : Dissect(query, dissect_options_)) {
    WideAtomLabel wide;
    wide.relation = atom.relation;
    for (int view_id : catalog_->ViewsOfRelation(atom.relation)) {
      const SecurityView& view = catalog_->view(view_id);
      if (rewriting::AtomRewritable(atom, view.pattern)) {
        wide.SetBit(view.bit);
      }
    }
    label.Add(std::move(wide));
  }
  return label;
}

}  // namespace fdc::label
