#include "label/glb.h"

#include "label/glb_singleton.h"

namespace fdc::label {

order::ViewSet GlbSets(order::Universe* universe, const order::ViewSet& w1,
                       const order::ViewSet& w2) {
  order::ViewSet out;
  for (int a : w1) {
    for (int b : w2) {
      std::optional<cq::AtomPattern> glb =
          GlbSingleton(universe->Get(a), universe->Get(b));
      if (glb.has_value()) out.push_back(universe->Add(*glb));
    }
  }
  order::NormalizeViewSet(&out);
  return out;
}

order::ViewSet GlbMany(order::Universe* universe,
                       const std::vector<order::ViewSet>& sets) {
  if (sets.empty()) return {};
  order::ViewSet acc = sets.front();
  order::NormalizeViewSet(&acc);
  for (size_t i = 1; i < sets.size(); ++i) {
    acc = GlbSets(universe, acc, sets[i]);
  }
  return acc;
}

}  // namespace fdc::label
