// The registry of security views S (§3.3, §7.2).
//
// Each view is a named single-atom conjunctive view over one relation of the
// schema ("user_likes", "friends_birthday", ...). The catalog assigns every
// view a bit position within its relation, which is the coordinate system of
// the compressed ℓ+ labels (§6.1): bit i of a relation's mask refers to the
// i-th view registered for that relation.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "cq/pattern.h"
#include "cq/query.h"
#include "cq/schema.h"

namespace fdc::label {

struct SecurityView {
  int id = -1;            // catalog-wide id
  std::string name;       // permission name, e.g. "user_likes"
  cq::AtomPattern pattern;
  int relation = -1;
  int bit = -1;           // position within the relation's mask
};

class ViewCatalog {
 public:
  explicit ViewCatalog(const cq::Schema* schema) : schema_(schema) {}

  /// Registers a single-atom view. Fails on duplicate name, multi-atom
  /// definitions, or unknown relation.
  Result<int> AddView(const std::string& name,
                      const cq::ConjunctiveQuery& definition);

  /// Convenience: parse a Datalog definition, then register.
  Result<int> AddViewText(const std::string& name, const std::string& datalog);

  const SecurityView& view(int id) const { return views_[id]; }
  const SecurityView* FindByName(const std::string& name) const;

  int size() const { return static_cast<int>(views_.size()); }
  const std::vector<SecurityView>& views() const { return views_; }

  /// Ids of views over one relation, in bit order.
  const std::vector<int>& ViewsOfRelation(int relation) const;

  /// Largest per-relation view count. Relations up to kPackedViewCapacity
  /// (32) views label as packed atoms; beyond that the compiled matcher
  /// emits exact multi-word wide atoms — no views are ever excluded.
  int MaxViewsPerRelation() const;

  const cq::Schema& schema() const { return *schema_; }

 private:
  const cq::Schema* schema_;
  std::vector<SecurityView> views_;
  std::unordered_map<std::string, int> by_name_;
  std::vector<std::vector<int>> by_relation_;
  static const std::vector<int> kEmpty;
};

}  // namespace fdc::label
