// Pre-labeled query streams for the Figure 6 policy-checker benchmark.
//
// §7.2 runs the policy checker "on a collection of 10 million disclosure
// labels output by the previous experiment", with each labeled query
// containing 1–3 body atoms and a randomly assigned principal. This module
// produces that stream: it generates §7.2 queries, labels them through the
// packed pipeline, and assigns principals deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "label/compressed_label.h"
#include "label/pipeline.h"
#include "workload/query_generator.h"

namespace fdc::workload {

struct LabeledQuery {
  label::DisclosureLabel label;
  uint32_t principal;
};

/// Generates `count` labeled queries over `pipeline`'s catalog, assigning
/// each to a random principal in [0, num_principals).
std::vector<LabeledQuery> GenerateLabelStream(
    const label::LabelerPipeline& pipeline, int count, uint32_t num_principals,
    uint64_t seed);

}  // namespace fdc::workload
