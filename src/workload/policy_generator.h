// Random security policies for the Figure 6 policy-checker experiment.
//
// Per §7.2: each principal's policy is randomly generated; the maximum
// number of partitions is 1 (stateless) or 5 (a fairly complex Chinese-Wall
// policy), the actual count varies per principal; the maximum number of
// single-atom views per partition varies between 5 and 50.
#pragma once

#include <vector>

#include "common/rng.h"
#include "label/view_catalog.h"
#include "policy/policy.h"

namespace fdc::workload {

struct PolicyOptions {
  int max_partitions = 5;
  int max_elements_per_partition = 25;
};

class PolicyGenerator {
 public:
  PolicyGenerator(const label::ViewCatalog* catalog, PolicyOptions options,
                  uint64_t seed)
      : catalog_(catalog), options_(options), rng_(seed) {}

  /// One random policy: 1..max_partitions partitions, each holding
  /// 1..max_elements random distinct catalog views.
  policy::SecurityPolicy Next();

 private:
  const label::ViewCatalog* catalog_;
  PolicyOptions options_;
  Rng rng_;
};

}  // namespace fdc::workload
