#include "workload/label_stream.h"

#include "common/rng.h"

namespace fdc::workload {

std::vector<LabeledQuery> GenerateLabelStream(
    const label::LabelerPipeline& pipeline, int count, uint32_t num_principals,
    uint64_t seed) {
  GeneratorOptions options;
  options.subqueries = 1;  // realistic 1–3 atom queries
  QueryGenerator generator(&pipeline.catalog().schema(), options, seed);
  Rng rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  std::vector<LabeledQuery> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    LabeledQuery lq;
    lq.label = pipeline.LabelPacked(generator.Next());
    lq.principal = static_cast<uint32_t>(rng.Below(num_principals));
    out.push_back(std::move(lq));
  }
  return out;
}

}  // namespace fdc::workload
