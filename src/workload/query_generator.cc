#include "workload/query_generator.h"

#include <cassert>

#include "fb/fb_schema.h"

namespace fdc::workload {

QueryGenerator::QueryGenerator(const cq::Schema* schema,
                               GeneratorOptions options, uint64_t seed)
    : schema_(schema), options_(options), rng_(seed) {
  const cq::RelationDef* fr = schema->Find(fb::kFriend);
  friend_relation_ = fr == nullptr ? -1 : fr->id;
}

Audience QueryGenerator::PickAudience() {
  double total = 0;
  for (double w : options_.audience_weights) total += w;
  double draw = rng_.NextUnit() * total;
  Audience picked = Audience::kNonFriend;
  for (int i = 0; i < 4; ++i) {
    draw -= options_.audience_weights[i];
    if (draw <= 0) {
      picked = static_cast<Audience>(i);
      break;
    }
  }
  // Schemas without a Friend relation (synthetic ablation schemas) cannot
  // express the join audiences; degrade to the selection-only ones.
  if (friend_relation_ < 0 && (picked == Audience::kFriend ||
                               picked == Audience::kFriendOfFriend)) {
    picked = Audience::kSelf;
  }
  return picked;
}

void QueryGenerator::AppendSubquery(int target_uid,
                                    std::vector<cq::Atom>* atoms,
                                    std::vector<cq::Term>* head) {
  // Step 1: random relation (skip Friend itself as the payload relation so
  // audience semantics stay meaningful).
  int relation;
  do {
    relation = static_cast<int>(rng_.Below(schema_->NumRelations()));
  } while (relation == friend_relation_);
  const cq::RelationDef* rel = schema_->FindById(relation);

  const int uid_idx = fb::OwnerUidIndex(*schema_, relation);
  const int rel_idx = fb::ViewerRelIndex(*schema_, relation);
  assert(uid_idx >= 0 && rel_idx >= 0);

  // Step 3 first (it decides the uid term and the Friend joins).
  const Audience audience = PickAudience();
  const char* rel_value = fb::kSelf;
  cq::Term uid_term = cq::Term::Var(target_uid);
  switch (audience) {
    case Audience::kSelf:
      rel_value = fb::kSelf;
      // The current user's uid: join variable in stress mode keeps queries
      // connected; the uid is still selected via Friend-free equality to
      // 'me' only in single-subquery mode for realism.
      if (options_.subqueries == 1) uid_term = cq::Term::Const("me");
      break;
    case Audience::kFriend: {
      rel_value = fb::kFriendRel;
      // Friend('me', target, _)
      std::vector<cq::Term> ft = {cq::Term::Const("me"),
                                  cq::Term::Var(target_uid),
                                  cq::Term::Var(FreshVar())};
      atoms->emplace_back(friend_relation_, std::move(ft));
      break;
    }
    case Audience::kFriendOfFriend: {
      rel_value = fb::kFof;
      const int middle = FreshVar();
      std::vector<cq::Term> f1 = {cq::Term::Const("me"), cq::Term::Var(middle),
                                  cq::Term::Var(FreshVar())};
      std::vector<cq::Term> f2 = {cq::Term::Var(middle),
                                  cq::Term::Var(target_uid),
                                  cq::Term::Var(FreshVar())};
      atoms->emplace_back(friend_relation_, std::move(f1));
      atoms->emplace_back(friend_relation_, std::move(f2));
      break;
    }
    case Audience::kNonFriend:
      rel_value = fb::kOther;
      break;
  }

  // Step 2: random nonempty attribute subset. Apps typically fetch a
  // handful of fields, so we draw 1–4 distinct payload columns.
  std::vector<int> payload;
  payload.reserve(rel->arity());
  for (int i = 0; i < rel->arity(); ++i) {
    if (i != uid_idx && i != rel_idx) payload.push_back(i);
  }
  const int want = static_cast<int>(rng_.Range(
      1, std::min<uint64_t>(4, payload.size())));
  for (int i = 0; i < want; ++i) {
    const int j = i + static_cast<int>(
                          rng_.Below(static_cast<uint64_t>(payload.size() - i)));
    std::swap(payload[i], payload[j]);
  }
  std::vector<bool> selected(static_cast<size_t>(rel->arity()), false);
  for (int i = 0; i < want; ++i) selected[payload[i]] = true;

  std::vector<cq::Term> terms(static_cast<size_t>(rel->arity()),
                              cq::Term::Var(-1));
  for (int i = 0; i < rel->arity(); ++i) {
    if (i == uid_idx) {
      terms[i] = uid_term;
      continue;
    }
    if (i == rel_idx) {
      terms[i] = cq::Term::Const(rel_value);
      continue;
    }
    const int var = FreshVar();
    terms[i] = cq::Term::Var(var);
    if (selected[i]) head->push_back(cq::Term::Var(var));
  }
  if (uid_term.is_var()) head->push_back(uid_term);
  atoms->emplace_back(relation, std::move(terms));
}

cq::ConjunctiveQuery QueryGenerator::Next() {
  next_var_ = 0;
  std::vector<cq::Atom> atoms;
  std::vector<cq::Term> head;
  const int shared_uid = FreshVar();  // uid join variable across subqueries
  const int count = options_.subqueries <= 1
                        ? 1
                        : static_cast<int>(rng_.Range(
                              1, static_cast<uint64_t>(options_.subqueries)));
  for (int s = 0; s < count; ++s) {
    AppendSubquery(shared_uid, &atoms, &head);
  }
  // Deduplicate head terms (a variable may be pushed by several subqueries).
  std::vector<cq::Term> dedup_head;
  for (const cq::Term& t : head) {
    bool seen = false;
    for (const cq::Term& u : dedup_head) seen = seen || (u == t);
    if (!seen) dedup_head.push_back(t);
  }
  return cq::ConjunctiveQuery("W", std::move(dedup_head), std::move(atoms));
}

}  // namespace fdc::workload
