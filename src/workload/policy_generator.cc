#include "workload/policy_generator.h"

#include <algorithm>
#include <cassert>

namespace fdc::workload {

policy::SecurityPolicy PolicyGenerator::Next() {
  const int num_partitions =
      static_cast<int>(rng_.Range(1, options_.max_partitions));
  std::vector<policy::Partition> partitions;
  partitions.reserve(num_partitions);
  const int catalog_size = catalog_->size();
  for (int p = 0; p < num_partitions; ++p) {
    const int want = static_cast<int>(
        rng_.Range(1, options_.max_elements_per_partition));
    // Sample `want` distinct views (bounded by catalog size).
    std::vector<int> ids(catalog_size);
    for (int i = 0; i < catalog_size; ++i) ids[i] = i;
    for (int i = 0; i < std::min(want, catalog_size); ++i) {
      const int j =
          i + static_cast<int>(rng_.Below(static_cast<uint64_t>(
                  catalog_size - i)));
      std::swap(ids[i], ids[j]);
    }
    ids.resize(std::min(want, catalog_size));
    partitions.push_back({"P" + std::to_string(p), std::move(ids)});
  }
  Result<policy::SecurityPolicy> compiled =
      policy::SecurityPolicy::Compile(*catalog_, std::move(partitions));
  assert(compiled.ok());
  return std::move(compiled).value();
}

}  // namespace fdc::workload
