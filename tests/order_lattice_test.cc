#include <gtest/gtest.h>

#include "order/disclosure_lattice.h"
#include "order/down_set.h"
#include "order/explicit_preorder.h"
#include "order/lattice_checks.h"
#include "order/rewriting_order.h"
#include "order/set_order.h"
#include "order/universe.h"
#include "test_util.h"

namespace fdc::order {
namespace {

// Figure 3's universe as fact sets: V1 = full Meetings, V2 = π_time,
// V4 = π_person, V5 = nonemptiness.
ExplicitPreorder Figure3Order() {
  // facts: bit0 = nonemptiness, bit1 = column 1 content, bit2 = column 2
  // content, bit3 = the row pairing.
  return ExplicitPreorder({/*V1=*/0b1111, /*V2=*/0b0011, /*V4=*/0b0101,
                           /*V5=*/0b0001});
}

TEST(SetOrderTest, SubsetSemantics) {
  SetOrder order;
  EXPECT_TRUE(order.Leq({0, 1}, {0, 1, 2}));
  EXPECT_FALSE(order.Leq({0, 3}, {0, 1, 2}));
  EXPECT_TRUE(order.Leq({}, {0}));
  EXPECT_TRUE(order.Equivalent({0, 1}, {1, 0}));
}

TEST(SetOrderTest, SatisfiesDisclosureOrderAxioms) {
  SetOrder order;
  EXPECT_TRUE(CheckDisclosureOrderAxioms(order, 5).ok());
}

TEST(ExplicitPreorderTest, SatisfiesDisclosureOrderAxioms) {
  ExplicitPreorder order = Figure3Order();
  EXPECT_TRUE(CheckDisclosureOrderAxioms(order, 4).ok());
}

TEST(ExplicitPreorderTest, Figure3Relations) {
  ExplicitPreorder order = Figure3Order();
  EXPECT_TRUE(order.LeqSingle(1, {0}));   // V2 ⪯ V1
  EXPECT_TRUE(order.LeqSingle(2, {0}));   // V4 ⪯ V1
  EXPECT_TRUE(order.LeqSingle(3, {1}));   // V5 ⪯ V2
  EXPECT_FALSE(order.LeqSingle(0, {1, 2}));  // V1 not from projections
  EXPECT_FALSE(order.LeqSingle(1, {2}));
}

TEST(DownSetTest, Figure3DownSets) {
  ExplicitPreorder order = Figure3Order();
  EXPECT_EQ(DownSet(order, {0}, 4), 0b1111ULL);      // ⇓{V1} = everything
  EXPECT_EQ(DownSet(order, {1}, 4), 0b1010ULL);      // ⇓{V2} = {V2, V5}
  EXPECT_EQ(DownSet(order, {2}, 4), 0b1100ULL);      // ⇓{V4} = {V4, V5}
  EXPECT_EQ(DownSet(order, {3}, 4), 0b1000ULL);      // ⇓{V5} = {V5}
  EXPECT_EQ(DownSet(order, {}, 4), 0ULL);            // ⊥
  EXPECT_EQ(DownSet(order, {1, 2}, 4), 0b1110ULL);   // not ⊤!
}

TEST(DownSetTest, BitsRoundTrip) {
  EXPECT_EQ(ViewSetToBits(BitsToViewSet(0b10110ULL)), 0b10110ULL);
  EXPECT_EQ(BitsToViewSet(0b101ULL), (ViewSet{0, 2}));
}

// Regression: the 1ULL << v shifts were guarded only by asserts, so under
// NDEBUG a universe (or view id) at or past 64 was undefined behavior. The
// wrap-safe contract skips unrepresentable views — under-approximating the
// down-set (stricter, never looser) — pinned here at the 63/64/65 boundary.
TEST(DownSetTest, RepresentationBoundaryIsWrapSafe) {
  // 66 views that all carry the same single fact: every view ⪯ any
  // non-empty W, so an exact down-set would be the whole universe.
  ExplicitPreorder order(std::vector<uint64_t>(66, 0b1ULL));
  EXPECT_EQ(DownSet(order, {0}, 63), (~0ULL) >> 1);  // bits 0..62
  EXPECT_EQ(DownSet(order, {0}, 64), ~0ULL);         // bits 0..63, no UB
  // universe_size 65/66: views 64+ have no bit; they are skipped, the
  // representable 64 remain exact.
  EXPECT_EQ(DownSet(order, {0}, 65), ~0ULL);
  EXPECT_EQ(DownSet(order, {65}, 66), ~0ULL);  // W beyond 64 still usable
  EXPECT_EQ(DownSet(order, {}, 65), 0ULL);

  EXPECT_EQ(ViewSetToBits({62, 63}), (0b11ULL << 62));
  // Ids 64/65 (and negatives) have no bit: skipped, not shifted.
  EXPECT_EQ(ViewSetToBits({63, 64, 65}), (1ULL << 63));
  EXPECT_EQ(ViewSetToBits({64}), 0ULL);
  EXPECT_EQ(ViewSetToBits({-1, 7}), (1ULL << 7));
}

TEST(DisclosureLatticeTest, Figure3LatticeShape) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  // Figure 3 has exactly 6 elements: ⊥, ⇓{V5}, ⇓{V2}, ⇓{V4}, ⇓{V2,V4}, ⊤.
  EXPECT_EQ(lattice->NumElements(), 6);

  const int bottom = lattice->Bottom();
  const int top = lattice->Top();
  const int v2 = lattice->IndexOfDownSet({1});
  const int v4 = lattice->IndexOfDownSet({2});
  const int v5 = lattice->IndexOfDownSet({3});
  const int v24 = lattice->IndexOfDownSet({1, 2});
  ASSERT_GE(v2, 0);
  ASSERT_GE(v4, 0);
  ASSERT_GE(v5, 0);
  ASSERT_GE(v24, 0);

  // GLB of ⇓{V2} and ⇓{V4} is ⇓{V5} (§3.2).
  EXPECT_EQ(lattice->Glb(v2, v4), v5);
  // Their LUB is ⇓{V2,V4}, which is *properly below* ⊤ = ⇓{V1}: it is
  // impossible to reconstitute Meetings from its two projections.
  EXPECT_EQ(lattice->Lub(v2, v4), v24);
  EXPECT_NE(v24, top);
  EXPECT_TRUE(lattice->Below(v24, top));
  EXPECT_TRUE(lattice->Below(bottom, v5));
}

TEST(DisclosureLatticeTest, LatticeLawsHold) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  EXPECT_TRUE(CheckLatticeLaws(*lattice).ok());
}

TEST(DisclosureLatticeTest, HasseCoversOfTop) {
  ExplicitPreorder order = Figure3Order();
  auto lattice = DisclosureLattice::Build(order, 4);
  ASSERT_TRUE(lattice.ok());
  // Figure 3: the unique lower cover of ⊤ is ⇓{V2,V4}.
  std::vector<int> covers = lattice->LowerCovers(lattice->Top());
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0], lattice->IndexOfDownSet({1, 2}));
}

TEST(DisclosureLatticeTest, RejectsOversizedUniverse) {
  SetOrder order;
  EXPECT_FALSE(DisclosureLattice::Build(order, 17).ok());
}

// ---- Non-distributive example (M3) --------------------------------------

ExplicitPreorder M3Order() {
  // Three views with pairwise-overlapping fact sets; pairwise GLB is ⊥ and
  // pairwise LUB is ⊤ — the diamond M3.
  return ExplicitPreorder({0b011, 0b110, 0b101});
}

TEST(LatticeChecksTest, M3IsNotDistributive) {
  ExplicitPreorder order = M3Order();
  ASSERT_TRUE(CheckDisclosureOrderAxioms(order, 3).ok());
  auto lattice = DisclosureLattice::Build(order, 3);
  ASSERT_TRUE(lattice.ok());
  EXPECT_EQ(lattice->NumElements(), 5);  // ⊥, three atoms, ⊤
  EXPECT_FALSE(IsDistributive(*lattice));
  EXPECT_FALSE(IsDecomposable(order, 3));
}

// ---- Theorem 4.8: decomposable ⇒ distributive ---------------------------

TEST(LatticeChecksTest, Theorem48OnDecomposableUniverse) {
  // Disjoint fact sets: {V} ⪯ W1 ∪ W2 forces the single fact bit into one
  // side, so the universe is decomposable.
  ExplicitPreorder order({0b001, 0b010, 0b100});
  ASSERT_TRUE(CheckDisclosureOrderAxioms(order, 3).ok());
  EXPECT_TRUE(IsDecomposable(order, 3));
  auto lattice = DisclosureLattice::Build(order, 3);
  ASSERT_TRUE(lattice.ok());
  EXPECT_TRUE(IsDistributive(*lattice));
}

TEST(LatticeChecksTest, Theorem48PropertySweep) {
  // Random fact assignments: every decomposable universe must yield a
  // distributive lattice (the converse need not hold).
  Rng rng(99);
  int decomposable_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint64_t> facts(4);
    for (auto& f : facts) f = rng.Below(16);
    ExplicitPreorder order(facts);
    auto lattice = DisclosureLattice::Build(order, 4);
    ASSERT_TRUE(lattice.ok());
    if (IsDecomposable(order, 4)) {
      ++decomposable_seen;
      EXPECT_TRUE(IsDistributive(*lattice))
          << "facts: " << facts[0] << "," << facts[1] << "," << facts[2]
          << "," << facts[3];
    }
  }
  EXPECT_GT(decomposable_seen, 0);
}

// ---- The rewriting order through the same machinery ---------------------

TEST(RewritingOrderTest, Figure3ViaRealViews) {
  cq::Schema schema = test::MakePaperSchema();
  Universe universe;
  const int v1 = universe.Add(test::P("V1(x, y) :- Meetings(x, y)", schema));
  const int v2 = universe.Add(test::P("V2(x) :- Meetings(x, y)", schema));
  const int v4 = universe.Add(test::P("V4(y) :- Meetings(x, y)", schema));
  const int v5 = universe.Add(test::P("V5() :- Meetings(x, y)", schema));
  RewritingOrder order(&universe);

  auto lattice = DisclosureLattice::Build(order, universe.size());
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  EXPECT_EQ(lattice->NumElements(), 6);
  EXPECT_EQ(lattice->Glb(lattice->IndexOfDownSet({v2}),
                         lattice->IndexOfDownSet({v4})),
            lattice->IndexOfDownSet({v5}));
  EXPECT_NE(lattice->Lub(lattice->IndexOfDownSet({v2}),
                         lattice->IndexOfDownSet({v4})),
            lattice->IndexOfDownSet({v1}));
}

TEST(RewritingOrderTest, AxiomsOnProjectionUniverse) {
  Universe universe;
  universe.AddAllProjections(/*relation=*/0, /*arity=*/3);
  RewritingOrder order(&universe);
  EXPECT_TRUE(CheckDisclosureOrderAxioms(order, universe.size()).ok());
}

TEST(RewritingOrderTest, SingleAtomUniverseIsDecomposable) {
  // §5.1: "U_atom is decomposable" — check it exhaustively on the 8-view
  // projection universe of Figure 4.
  Universe universe;
  universe.AddAllProjections(0, 3);
  RewritingOrder order(&universe);
  EXPECT_TRUE(IsDecomposable(order, universe.size()));
}

TEST(UniverseTest, InternsUpToPatternEquality) {
  cq::Schema schema = test::MakePaperSchema();
  Universe universe;
  const int a = universe.Add(test::P("V(x, y) :- Meetings(x, y)", schema));
  const int b = universe.Add(test::P("W(y, x) :- Meetings(x, y)", schema));
  EXPECT_EQ(a, b);
  EXPECT_EQ(universe.size(), 1);
  EXPECT_EQ(universe.Find(test::P("U(x, y) :- Meetings(x, y)", schema)), a);
}

TEST(UniverseTest, AddAllProjectionsCounts) {
  Universe universe;
  std::vector<int> ids = universe.AddAllProjections(0, 3);
  EXPECT_EQ(ids.size(), 8u);  // Figure 4: 2^3 projections
  EXPECT_EQ(universe.size(), 8);
}

}  // namespace
}  // namespace fdc::order
