#include "rewriting/atom_rewriting.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "rewriting/containment.h"
#include "storage/database.h"
#include "storage/evaluator.h"
#include "test_util.h"

namespace fdc::rewriting {
namespace {

using cq::AtomPattern;
using cq::ConjunctiveQuery;
using cq::Schema;

class AtomRewritingTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();

  bool Leq(const std::string& v, const std::string& w) {
    return AtomRewritable(test::P(v, schema_), test::P(w, schema_));
  }
};

// ---- Figure 3 universe -------------------------------------------------

TEST_F(AtomRewritingTest, Figure3Order) {
  const std::string v1 = "V1(x, y) :- Meetings(x, y)";
  const std::string v2 = "V2(x) :- Meetings(x, y)";
  const std::string v4 = "V4(y) :- Meetings(x, y)";
  const std::string v5 = "V5() :- Meetings(x, y)";

  // Projections are computable from the full table.
  EXPECT_TRUE(Leq(v2, v1));
  EXPECT_TRUE(Leq(v4, v1));
  EXPECT_TRUE(Leq(v5, v1));
  EXPECT_TRUE(Leq(v5, v2));
  EXPECT_TRUE(Leq(v5, v4));
  // Not the other way.
  EXPECT_FALSE(Leq(v1, v2));
  EXPECT_FALSE(Leq(v1, v4));
  EXPECT_FALSE(Leq(v1, v5));
  EXPECT_FALSE(Leq(v2, v5));
  EXPECT_FALSE(Leq(v2, v4));
  EXPECT_FALSE(Leq(v4, v2));
  // Reflexivity.
  EXPECT_TRUE(Leq(v1, v1));
  EXPECT_TRUE(Leq(v5, v5));
}

TEST_F(AtomRewritingTest, ColumnSwapEquivalence) {
  // §3.1: V1 and V1' disclose the same information despite different heads.
  EXPECT_TRUE(Leq("V1(x, y) :- Meetings(x, y)",
                  "V1p(y, x) :- Meetings(x, y)"));
  EXPECT_TRUE(Leq("V1p(y, x) :- Meetings(x, y)",
                  "V1(x, y) :- Meetings(x, y)"));
}

// ---- Example 5.1: constants vs emptiness tests -------------------------

TEST_F(AtomRewritingTest, Example51TupleTestVsNonEmptiness) {
  const std::string v13 = "V13() :- Meetings(9, 'Jim')";
  const std::string v14 = "V14() :- Meetings(x, y)";
  EXPECT_FALSE(Leq(v13, v14));
  EXPECT_FALSE(Leq(v14, v13));
}

// ---- Example 5.3 views -------------------------------------------------

TEST_F(AtomRewritingTest, Example53DiagonalVsScan) {
  const std::string v14 = "V14() :- Meetings(x, y)";
  const std::string v15 = "V15() :- Meetings(z, z)";
  EXPECT_FALSE(Leq(v14, v15));
  EXPECT_FALSE(Leq(v15, v14));
}

TEST_F(AtomRewritingTest, DiagonalFromFullTable) {
  EXPECT_TRUE(Leq("V15() :- Meetings(z, z)", "V1(x, y) :- Meetings(x, y)"));
  // Distinguished diagonal needs both columns.
  EXPECT_TRUE(Leq("V(z) :- Meetings(z, z)", "V1(x, y) :- Meetings(x, y)"));
  EXPECT_FALSE(Leq("V(z) :- Meetings(z, z)", "V2(x) :- Meetings(x, y)"));
}

// ---- Constant selections -----------------------------------------------

TEST_F(AtomRewritingTest, SelectionFromExposedColumn) {
  // σ_person='Cathy'(π_time) from the full table: filter on column 2.
  EXPECT_TRUE(
      Leq("Q(x) :- Meetings(x, 'Cathy')", "V1(x, y) :- Meetings(x, y)"));
  // ... but not from π_time alone (cannot filter a hidden column).
  EXPECT_FALSE(
      Leq("Q(x) :- Meetings(x, 'Cathy')", "V2(x) :- Meetings(x, y)"));
}

TEST_F(AtomRewritingTest, MatchingConstantSelections) {
  EXPECT_TRUE(Leq("Q(x) :- Meetings(x, 'Cathy')",
                  "W(x) :- Meetings(x, 'Cathy')"));
  EXPECT_FALSE(Leq("Q(x) :- Meetings(x, 'Cathy')",
                   "W(x) :- Meetings(x, 'Bob')"));
}

TEST_F(AtomRewritingTest, ViewSelectionMustBeImplied) {
  // W restricted to Cathy cannot answer the unrestricted projection.
  EXPECT_FALSE(
      Leq("V2(x) :- Meetings(x, y)", "W(x) :- Meetings(x, 'Cathy')"));
  // Boolean "is there a Cathy meeting" is computable from it.
  EXPECT_TRUE(
      Leq("B() :- Meetings(x, 'Cathy')", "W(x) :- Meetings(x, 'Cathy')"));
}

TEST_F(AtomRewritingTest, ConstantOverDifferentRelationIncomparable) {
  EXPECT_FALSE(
      Leq("Q(x) :- Meetings(x, y)", "W(x) :- Contacts(x, y, z)"));
}

// ---- Hidden-column equality (C5) ---------------------------------------

TEST_F(AtomRewritingTest, EqualityCheckableOnlyIfExposed) {
  // V wants rows where both Contacts columns 1,2 agree.
  const std::string v = "V(x) :- Contacts(x, e, e)";
  EXPECT_TRUE(Leq(v, "W(x, y, z) :- Contacts(x, y, z)"));
  EXPECT_FALSE(Leq(v, "W(x, y) :- Contacts(x, y, z)"));
}

// ---- BuildRewriting soundness ------------------------------------------

TEST_F(AtomRewritingTest, RewritingWitnessUnfoldsToEquivalent) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"V2(x) :- Meetings(x, y)", "V1(x, y) :- Meetings(x, y)"},
      {"V5() :- Meetings(x, y)", "V2(x) :- Meetings(x, y)"},
      {"Q(x) :- Meetings(x, 'Cathy')", "V1(x, y) :- Meetings(x, y)"},
      {"V(z) :- Meetings(z, z)", "V1(x, y) :- Meetings(x, y)"},
      {"V(x) :- Contacts(x, e, e)", "W(x, y, z) :- Contacts(x, y, z)"},
  };
  for (const auto& [v_text, w_text] : pairs) {
    AtomPattern v = test::P(v_text, schema_);
    AtomPattern w = test::P(w_text, schema_);
    auto rewriting = BuildRewriting(v, w);
    ASSERT_TRUE(rewriting.has_value()) << v_text << " via " << w_text;
    ConjunctiveQuery unfolded = UnfoldRewriting(*rewriting, w);
    EXPECT_TRUE(AreEquivalent(unfolded, v.ToQuery("V")))
        << v_text << " via " << w_text;
  }
}

// ---- Oracle cross-check (property suite) -------------------------------

struct OracleParams {
  uint64_t seed;
  int arity;
};

class RewritingOracleTest : public ::testing::TestWithParam<OracleParams> {};

TEST_P(RewritingOracleTest, MatchesBruteForceOracle) {
  Rng rng(GetParam().seed);
  const int arity = GetParam().arity;
  int agree_true = 0;
  for (int trial = 0; trial < 120; ++trial) {
    AtomPattern v = test::RandomPattern(&rng, 0, arity);
    AtomPattern w = test::RandomPattern(&rng, 0, arity);
    const bool fast = AtomRewritable(v, w);
    const bool oracle = AtomRewritableOracle(v, w);
    EXPECT_EQ(fast, oracle) << "v=" << v.Key() << " w=" << w.Key();
    agree_true += (fast && oracle);
  }
  // Sanity: the sample isn't vacuous (some pairs are rewritable).
  EXPECT_GT(agree_true, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RewritingOracleTest,
    ::testing::Values(OracleParams{1, 2}, OracleParams{2, 2},
                      OracleParams{3, 3}, OracleParams{4, 3},
                      OracleParams{5, 3}, OracleParams{6, 4}));

// ---- Semantic determinacy spot-check -----------------------------------
// If {V} ⪯ {W}, then W's answer must determine V's answer: any two
// databases with equal W-answers must have equal V-answers.

TEST(RewritingSemanticTest, PositivePairsAreDeterminate) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a", "b"}).ok());
  Rng rng(77);
  const std::vector<std::string> pool = {"a", "b"};

  int positive_pairs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    AtomPattern v = test::RandomPattern(&rng, 0, 2);
    AtomPattern w = test::RandomPattern(&rng, 0, 2);
    if (!AtomRewritable(v, w)) continue;
    ++positive_pairs;
    ConjunctiveQuery vq = v.ToQuery("V");
    ConjunctiveQuery wq = w.ToQuery("W");

    // All databases over {a,b}^2 with ≤ 4 rows: 2^4 subsets.
    std::map<std::string, std::string> w_to_v;
    for (unsigned rows = 0; rows < 16; ++rows) {
      storage::Database db(&schema);
      int bit = 0;
      for (const std::string& x : pool) {
        for (const std::string& y : pool) {
          if ((rows >> bit) & 1u) {
            ASSERT_TRUE(db.Insert("R", {x, y}).ok());
          }
          ++bit;
        }
      }
      auto v_ans = storage::Evaluate(db, vq);
      auto w_ans = storage::Evaluate(db, wq);
      ASSERT_TRUE(v_ans.ok() && w_ans.ok());
      auto serialize = [](const std::vector<storage::Tuple>& tuples) {
        std::string s;
        for (const auto& t : tuples) {
          for (const auto& val : t) s += val + ",";
          s += ";";
        }
        return s;
      };
      const std::string w_key = serialize(*w_ans);
      const std::string v_key = serialize(*v_ans);
      auto [it, inserted] = w_to_v.emplace(w_key, v_key);
      EXPECT_EQ(it->second, v_key)
          << "determinacy violated: v=" << v.Key() << " w=" << w.Key();
    }
  }
  EXPECT_GT(positive_pairs, 5);
}

}  // namespace
}  // namespace fdc::rewriting
