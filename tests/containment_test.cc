#include "rewriting/containment.h"

#include <gtest/gtest.h>

#include "rewriting/homomorphism.h"
#include "test_util.h"

namespace fdc::rewriting {
namespace {

using cq::ConjunctiveQuery;
using cq::Schema;

class ContainmentTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

TEST_F(ContainmentTest, SelectionContainedInFullScan) {
  ConjunctiveQuery sel = test::Q("Q(x) :- Meetings(x, 'Cathy')", schema_);
  ConjunctiveQuery all = test::Q("Q(x) :- Meetings(x, y)", schema_);
  EXPECT_TRUE(IsContainedIn(sel, all));
  EXPECT_FALSE(IsContainedIn(all, sel));
}

TEST_F(ContainmentTest, EquivalentUpToRenaming) {
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery b = test::Q("Q(u) :- Meetings(u, v)", schema_);
  EXPECT_TRUE(AreEquivalent(a, b));
}

TEST_F(ContainmentTest, RedundantAtomEquivalence) {
  // Chandra–Merlin classic: an extra homomorphically-redundant atom does
  // not change the answer.
  ConjunctiveQuery one = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery two =
      test::Q("Q(x) :- Meetings(x, y), Meetings(x, z)", schema_);
  EXPECT_TRUE(AreEquivalent(one, two));
}

TEST_F(ContainmentTest, JoinNotEquivalentToScan) {
  ConjunctiveQuery join =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, z)", schema_);
  ConjunctiveQuery scan = test::Q("Q(x) :- Meetings(x, y)", schema_);
  // The join is more restrictive: contained, not containing.
  EXPECT_TRUE(IsContainedIn(join, scan));
  EXPECT_FALSE(IsContainedIn(scan, join));
}

TEST_F(ContainmentTest, DiagonalContainedInScan) {
  ConjunctiveQuery diag = test::Q("Q() :- Meetings(z, z)", schema_);
  ConjunctiveQuery any = test::Q("Q() :- Meetings(x, y)", schema_);
  EXPECT_TRUE(IsContainedIn(diag, any));
  EXPECT_FALSE(IsContainedIn(any, diag));
}

TEST_F(ContainmentTest, HeadArityMismatchIncomparable) {
  ConjunctiveQuery one = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery two = test::Q("Q(x, y) :- Meetings(x, y)", schema_);
  EXPECT_FALSE(IsContainedIn(one, two));
  EXPECT_FALSE(IsContainedIn(two, one));
}

TEST_F(ContainmentTest, HeadOrderMatters) {
  ConjunctiveQuery a = test::Q("Q(x, y) :- Meetings(x, y)", schema_);
  ConjunctiveQuery b = test::Q("Q(y, x) :- Meetings(x, y)", schema_);
  // As queries (ordered tuples), the column swap changes answers.
  EXPECT_FALSE(IsContainedIn(a, b));
  EXPECT_FALSE(IsContainedIn(b, a));
}

TEST_F(ContainmentTest, ConstantMismatch) {
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, 'A')", schema_);
  ConjunctiveQuery b = test::Q("Q(x) :- Meetings(x, 'B')", schema_);
  EXPECT_FALSE(IsContainedIn(a, b));
  EXPECT_FALSE(IsContainedIn(b, a));
}

TEST_F(ContainmentTest, BooleanContainment) {
  ConjunctiveQuery specific = test::Q("Q() :- Meetings(9, 'Jim')", schema_);
  ConjunctiveQuery nonempty = test::Q("Q() :- Meetings(x, y)", schema_);
  EXPECT_TRUE(IsContainedIn(specific, nonempty));
  EXPECT_FALSE(IsContainedIn(nonempty, specific));
}

TEST(HomomorphismTest, FindsMappingWithSeed) {
  Schema schema = test::MakePaperSchema();
  ConjunctiveQuery from = test::Q("Q(x) :- Meetings(x, y)", schema);
  ConjunctiveQuery to = test::Q("Q(u) :- Meetings(u, 'Cathy')", schema);
  HomOptions options;
  options.seed = {{0, cq::Term::Var(0)}};
  auto mapping = FindHomomorphism(from, to, options);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ((*mapping)[1], cq::Term::Const("Cathy"));
}

TEST(HomomorphismTest, RespectsAtomRestriction) {
  Schema schema = test::MakePaperSchema();
  ConjunctiveQuery q =
      test::Q("Q(x) :- Meetings(x, y), Meetings(x, z)", schema);
  // Map into atom 0 only: possible (y,z both to y-image).
  std::vector<bool> allowed = {true, false};
  HomOptions options;
  options.fix_distinguished = true;
  EXPECT_TRUE(FindHomomorphism(q, q, options, allowed).has_value());
}

TEST(HomomorphismTest, FixDistinguishedBlocksCollapse) {
  Schema schema = test::MakePaperSchema();
  // Q(x,z): two meetings with distinct distinguished times; cannot retract
  // one atom onto the other without moving a head variable.
  ConjunctiveQuery q =
      test::Q("Q(x, z) :- Meetings(x, y), Meetings(z, y)", schema);
  HomOptions options;
  options.fix_distinguished = true;
  std::vector<bool> allowed = {true, false};
  EXPECT_FALSE(FindHomomorphism(q, q, options, allowed).has_value());
}

}  // namespace
}  // namespace fdc::rewriting
