#include "cq/canonical.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fdc::cq {
namespace {

class CanonicalTest : public ::testing::Test {
 protected:
  Schema schema_ = test::MakePaperSchema();
};

TEST_F(CanonicalTest, VariableRenamingInvariance) {
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery b = test::Q("Q(u) :- Meetings(u, v)", schema_);
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, AtomOrderInvariance) {
  ConjunctiveQuery a =
      test::Q("Q(x) :- Meetings(x, y), Contacts(y, w, z)", schema_);
  ConjunctiveQuery b =
      test::Q("Q(x) :- Contacts(y, w, z), Meetings(x, y)", schema_);
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, DistinguishesDifferentQueries) {
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery b = test::Q("Q(y) :- Meetings(x, y)", schema_);
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, DistinguishesConstants) {
  ConjunctiveQuery a = test::Q("Q(x) :- Meetings(x, 'A')", schema_);
  ConjunctiveQuery b = test::Q("Q(x) :- Meetings(x, 'B')", schema_);
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, SelfJoinOrderInvariance) {
  ConjunctiveQuery a =
      test::Q("Q(t) :- Meetings(t, p), Meetings(t2, p)", schema_);
  ConjunctiveQuery b =
      test::Q("Q(t) :- Meetings(s2, q), Meetings(t, q)", schema_);
  // Same shape: one distinguished-time atom and one existential-time atom
  // sharing the person.
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST_F(CanonicalTest, CompactVariablesDensifies) {
  ConjunctiveQuery q(
      "Q", {Term::Var(7)},
      {Atom(0, {Term::Var(7), Term::Var(3)})});
  ConjunctiveQuery compact = CompactVariables(q);
  EXPECT_EQ(compact.MaxVarId(), 1);
  EXPECT_EQ(compact.head()[0], Term::Var(0));
}

TEST_F(CanonicalTest, ShiftVariables) {
  ConjunctiveQuery q = test::Q("Q(x) :- Meetings(x, y)", schema_);
  ConjunctiveQuery shifted = ShiftVariables(q, 100);
  EXPECT_EQ(shifted.head()[0], Term::Var(100));
  EXPECT_EQ(shifted.atoms()[0].terms[1], Term::Var(101));
}

TEST_F(CanonicalTest, CanonicalizeIsIdempotent) {
  ConjunctiveQuery q =
      test::Q("Q(x) :- Contacts(y, w, z), Meetings(x, y)", schema_);
  ConjunctiveQuery once = Canonicalize(q);
  ConjunctiveQuery twice = Canonicalize(once);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace fdc::cq
