// Cross-validation property suite on randomly generated single-atom view
// universes: the three labeling algorithms (§3.3 NaiveLabel, §4.1 GLBLabel,
// §4.2 LabelGen) must agree up to ≡, and the disclosure-order axioms must
// hold for the rewriting order with constants and repeated variables in
// play. Seeds are fixed; failures print the offending pattern keys.
#include <gtest/gtest.h>

#include "label/generating_set.h"
#include "label/glb_labeler.h"
#include "label/label_gen.h"
#include "label/naive_labeler.h"
#include "order/lattice_checks.h"
#include "order/rewriting_order.h"
#include "order/universe.h"
#include "test_util.h"

namespace fdc::label {
namespace {

using order::RewritingOrder;
using order::Universe;
using order::ViewSet;

struct UniverseParams {
  uint64_t seed;
  int arity;
  int num_views;
};

class RandomUniverseTest : public ::testing::TestWithParam<UniverseParams> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    for (int i = 0; i < GetParam().num_views; ++i) {
      // Two relations so cross-relation incomparability is exercised.
      const int relation = static_cast<int>(rng.Below(2));
      universe_.Add(test::RandomPattern(&rng, relation, GetParam().arity));
    }
    base_size_ = universe_.size();
  }

  Universe universe_;
  int base_size_ = 0;
};

TEST_P(RandomUniverseTest, DisclosureOrderAxiomsHold) {
  RewritingOrder order(&universe_);
  const int check_size = std::min(base_size_, 8);
  EXPECT_TRUE(order::CheckDisclosureOrderAxioms(order, check_size).ok());
}

TEST_P(RandomUniverseTest, SingleAtomUniverseDecomposable) {
  RewritingOrder order(&universe_);
  const int check_size = std::min(base_size_, 7);
  EXPECT_TRUE(order::IsDecomposable(order, check_size));
}

TEST_P(RandomUniverseTest, NaiveAndGlbLabelersAgree) {
  RewritingOrder order(&universe_);
  // Generating family: singletons of the base views.
  LabelFamily singletons;
  for (int v = 0; v < base_size_; ++v) singletons.push_back({v});

  // F = closure under GLB (Theorem 4.5) induces the labeler NaiveLabel
  // implements directly; GLBLabel uses only the generating set.
  LabelFamily closed = CloseUnderGlb(order, &universe_, singletons);
  NaiveLabeler naive(&order, closed);
  GlbLabeler fast(&order, &universe_, singletons);

  for (int v = 0; v < base_size_; ++v) {
    auto naive_label = naive.Label({v});
    auto fast_label = fast.Label({v});
    ASSERT_EQ(naive_label.has_value(), fast_label.has_value())
        << universe_.Get(v).Key();
    if (naive_label.has_value()) {
      EXPECT_TRUE(order.Equivalent(*naive_label, *fast_label))
          << universe_.Get(v).Key();
    }
  }
}

TEST_P(RandomUniverseTest, LabelGenMatchesGlbLabelOnSingletons) {
  RewritingOrder order(&universe_);
  LabelFamily singletons;
  for (int v = 0; v < base_size_; ++v) singletons.push_back({v});
  GlbLabeler glb(&order, &universe_, singletons);
  LabelGenLabeler gen(&order, &universe_, singletons);

  for (int v = 0; v < base_size_; ++v) {
    auto glb_label = glb.Label({v});
    auto gen_label = gen.Label({v});
    ASSERT_EQ(!glb_label.has_value(), gen_label.top);
    if (glb_label.has_value()) {
      EXPECT_TRUE(order.Equivalent(*glb_label, gen_label.views))
          << universe_.Get(v).Key();
    }
  }
}

TEST_P(RandomUniverseTest, LabelerAxiomsForGlbLabeler) {
  RewritingOrder order(&universe_);
  LabelFamily singletons;
  for (int v = 0; v < base_size_; ++v) singletons.push_back({v});
  GlbLabeler labeler(&order, &universe_, singletons);

  for (int v = 0; v < base_size_; ++v) {
    auto label = labeler.Label({v});
    if (!label.has_value()) continue;  // ⊤: nothing to check below
    // Axiom (c): {v} ⪯ ℓ({v}).
    EXPECT_TRUE(order.LeqSingle(v, *label)) << universe_.Get(v).Key();
    // Axiom (b): family elements are fixpoints.
  }
  for (const ViewSet& member : singletons) {
    auto label = labeler.Label(member);
    ASSERT_TRUE(label.has_value());
    EXPECT_TRUE(order.Equivalent(*label, member));
  }
  // Axiom (d): monotonicity on singleton pairs.
  for (int a = 0; a < base_size_; ++a) {
    for (int b = 0; b < base_size_; ++b) {
      if (!order.LeqSingle(a, {b})) continue;
      auto la = labeler.Label({a});
      auto lb = labeler.Label({b});
      if (!lb.has_value()) continue;  // ℓ(b) = ⊤ bounds everything
      ASSERT_TRUE(la.has_value());
      EXPECT_TRUE(order.Leq(*la, *lb))
          << universe_.Get(a).Key() << " vs " << universe_.Get(b).Key();
    }
  }
}

TEST_P(RandomUniverseTest, MinimalGeneratingSetStillGenerates) {
  RewritingOrder order(&universe_);
  LabelFamily singletons;
  for (int v = 0; v < base_size_; ++v) singletons.push_back({v});
  LabelFamily closed = CloseUnderGlb(order, &universe_, singletons);
  LabelFamily minimal = MinimalDownwardGeneratingSet(order, &universe_, closed);
  EXPECT_LE(minimal.size(), closed.size());

  // The minimal set must label every universe element the same way the
  // closed family does.
  NaiveLabeler reference(&order, closed);
  GlbLabeler via_minimal(&order, &universe_, minimal);
  for (int v = 0; v < base_size_; ++v) {
    auto ref = reference.Label({v});
    auto got = via_minimal.Label({v});
    ASSERT_EQ(ref.has_value(), got.has_value()) << universe_.Get(v).Key();
    if (ref.has_value()) {
      EXPECT_TRUE(order.Equivalent(*ref, *got)) << universe_.Get(v).Key();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomUniverseTest,
    ::testing::Values(UniverseParams{1001, 2, 6}, UniverseParams{1002, 2, 8},
                      UniverseParams{1003, 3, 6}, UniverseParams{1004, 3, 8},
                      UniverseParams{1005, 3, 10},
                      UniverseParams{1006, 4, 8}));

}  // namespace
}  // namespace fdc::label
